//! # mocp — minimum orthogonal convex polygons in 2-D faulty meshes
//!
//! Facade over the workspace crates reproducing *Wu & Jiang, "On
//! Constructing the Minimum Orthogonal Convex Polygon in 2-D Faulty
//! Meshes" (IPDPS 2004)*. Depend on this crate to get every layer under
//! one name, or depend on the individual crates re-exported below.
//!
//! ```
//! use mocp::faultgen::{generate_faults, FaultDistribution};
//! use mocp::fblock::FaultModel as _;
//! use mocp::mesh2d::Mesh2D;
//!
//! let mesh = Mesh2D::square(12);
//! let faults = generate_faults(mesh, 10, FaultDistribution::Clustered, 1);
//! let registry = mocp::mocp_core::standard_registry();
//! let outcome = registry.construct("CMFP", &mesh, &faults).unwrap();
//! assert!(outcome.covers_all_faults());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use distsim;
pub use experiments;
pub use faultgen;
pub use fblock;
pub use mesh2d;
pub use meshroute;
pub use mocp_3d;
pub use mocp_core;
pub use mocp_incremental;
pub use mocp_obs;
pub use mocp_serve;
pub use mocp_topology;
pub use mocp_traffic;
