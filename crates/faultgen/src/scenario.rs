//! Hand-built fault scenarios taken from the paper's figures.
//!
//! These small deterministic configurations are used throughout the test
//! suites and the examples because their faulty blocks, sub-minimum faulty
//! polygons and minimum faulty polygons can be worked out by hand and checked
//! against the paper's figures.

use mesh2d::{Coord, FaultSet, Mesh2D};

/// A named deterministic fault configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name.
    pub name: &'static str,
    /// Description of where in the paper the configuration appears.
    pub description: &'static str,
    /// The mesh the scenario lives in.
    pub mesh: Mesh2D,
    /// Faulty nodes, in insertion order.
    pub faults: Vec<Coord>,
}

impl Scenario {
    /// Builds the scenario's [`FaultSet`].
    pub fn fault_set(&self) -> FaultSet {
        FaultSet::from_coords(self.mesh, self.faults.iter().copied())
    }
}

fn coords(list: &[(i32, i32)]) -> Vec<Coord> {
    list.iter().map(|&(x, y)| Coord::new(x, y)).collect()
}

/// The routing example of Figure 2: an L-shaped faulty polygon
/// `{(2,4), (3,4), (4,3)}` in an 8×8 mesh, with a message routed from (1,3)
/// to (6,4).
pub fn figure2_l_shape() -> Scenario {
    Scenario {
        name: "figure2-l-shape",
        description:
            "L-shaped faulty polygon used by the extended e-cube routing example (Figure 2)",
        mesh: Mesh2D::square(8),
        faults: coords(&[(2, 4), (3, 4), (4, 3)]),
    }
}

/// The example of Figure 8: a single 8-connected component with ten faulty
/// nodes in a 6×7 grid region, whose concave row/column sections exercise the
/// distributed solution (initiator at the west-most south-west corner).
///
/// The coordinates are read off the figure: the component contains a vertical
/// arm in columns 0–1 and a staircase arm reaching (5, 6).
pub fn figure8_component() -> Scenario {
    Scenario {
        name: "figure8-component",
        description: "ten-fault single component from Figure 8 (distributed solution walkthrough)",
        mesh: Mesh2D::square(10),
        faults: coords(&[
            (0, 0),
            (1, 1),
            (0, 2),
            (1, 3),
            (2, 2),
            (3, 3),
            (4, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ]),
    }
}

/// Ten faults forming two nearby groups, in the spirit of Figure 3: the
/// rectangular faulty block merges them and disables many healthy nodes,
/// the sub-minimum polygon recovers some, and the minimum polygons recover
/// almost all of them.
pub fn figure3_two_groups() -> Scenario {
    Scenario {
        name: "figure3-two-groups",
        description:
            "two nearby fault groups whose faulty block over-approximates heavily (Figure 3)",
        mesh: Mesh2D::square(12),
        faults: coords(&[
            // left group: a small diagonal cluster
            (2, 6),
            (3, 7),
            (3, 5),
            (2, 4),
            // right group: an L-shape two columns away
            (7, 6),
            (7, 5),
            (8, 5),
            (8, 4),
            (9, 4),
            (7, 7),
        ]),
    }
}

/// A U-shaped fault pattern: the classic case where the faulty *component*
/// is not orthogonally convex, so the minimum polygon must add the notch
/// nodes back.
pub fn u_shape() -> Scenario {
    Scenario {
        name: "u-shape",
        description: "U-shaped component whose concave column section must be disabled",
        mesh: Mesh2D::square(8),
        faults: coords(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]),
    }
}

/// Two interleaved components where the concave section of one component is
/// blocked by the other — exercising the "blocking polygon" bypass of the
/// distributed notification (Figure 7).
pub fn blocking_polygons() -> Scenario {
    Scenario {
        name: "blocking-polygons",
        description: "a concave section of one component overlaps another component (Figure 7)",
        mesh: Mesh2D::square(12),
        faults: coords(&[
            // component 1: a large C opening east, column 2 plus rows 2 and 8
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 2),
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (2, 7),
            (2, 8),
            (3, 8),
            (4, 8),
            (5, 8),
            // component 2: a small block sitting inside the C's concave region
            (4, 4),
            (4, 5),
            (5, 4),
            (5, 5),
        ]),
    }
}

/// A single isolated fault — the smallest possible scenario.
pub fn single_fault() -> Scenario {
    Scenario {
        name: "single-fault",
        description: "one faulty node; every model should disable zero healthy nodes",
        mesh: Mesh2D::square(5),
        faults: coords(&[(2, 2)]),
    }
}

/// Every scenario in this module, for exhaustive test sweeps.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        single_fault(),
        figure2_l_shape(),
        figure3_two_groups(),
        figure8_component(),
        u_shape(),
        blocking_polygons(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Connectivity, Region};

    #[test]
    fn scenarios_fit_their_meshes() {
        for s in all_scenarios() {
            for f in &s.faults {
                assert!(s.mesh.contains(*f), "{}: {f} outside mesh", s.name);
            }
            assert_eq!(
                s.fault_set().len(),
                s.faults.len(),
                "{}: duplicate fault",
                s.name
            );
        }
    }

    #[test]
    fn figure2_is_orthogonally_convex() {
        let s = figure2_l_shape();
        let region = Region::from_coords(s.faults.iter().copied());
        assert!(region.is_orthogonally_convex());
    }

    #[test]
    fn figure8_is_one_component() {
        let s = figure8_component();
        let region = Region::from_coords(s.faults.iter().copied());
        assert_eq!(region.components(Connectivity::Eight).len(), 1);
        assert_eq!(region.len(), 10);
    }

    #[test]
    fn u_shape_is_single_nonconvex_component() {
        let s = u_shape();
        let region = Region::from_coords(s.faults.iter().copied());
        assert_eq!(region.components(Connectivity::Eight).len(), 1);
        assert!(!region.is_orthogonally_convex());
    }

    #[test]
    fn blocking_scenario_has_two_components() {
        let s = blocking_polygons();
        let region = Region::from_coords(s.faults.iter().copied());
        assert_eq!(region.components(Connectivity::Eight).len(), 2);
    }

    #[test]
    fn figure3_has_two_groups() {
        let s = figure3_two_groups();
        let region = Region::from_coords(s.faults.iter().copied());
        assert_eq!(region.components(Connectivity::Eight).len(), 2);
        assert_eq!(region.len(), 10);
    }
}
