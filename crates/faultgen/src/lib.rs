//! # faultgen — fault-injection workloads
//!
//! The evaluation of *Wu & Jiang (IPDPS 2004)* injects node faults
//! sequentially into a 100×100 mesh under two distributions (Section 4):
//!
//! * the **random fault distribution model** — every healthy node is equally
//!   likely to be the next fault;
//! * the **clustered fault distribution model** — all nodes start with the
//!   same failure rate, and after a fault `(x, y)` is inserted the failure
//!   rate of its eight adjacent neighbors (Definition 2) is doubled, so there
//!   are exactly two failure rates in the system and faults tend to form
//!   clusters.
//!
//! This crate provides seeded, reproducible generators for both models, an
//! incremental [`FaultInjector`] (so experiments can take prefixes of one
//! fault sequence when sweeping the fault count), and a library of small
//! hand-built [`scenario`]s lifted from the paper's figures for tests and
//! examples.
//!
//! Since the `mocp_topology` redesign the injector is **generic over the
//! mesh topology**: `FaultInjector<Mesh2D>` (the default) and
//! `FaultInjector<Mesh3D>` are the same seeded draw / boost / undo loop
//! over the same [`WeightTable`]; only the topology's cluster
//! neighborhood — what "adjacent" means to the clustered model — differs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod injector;
pub mod scenario;
pub mod weights;

pub use injector::{
    generate_faults, EventStream, FaultDistribution, FaultInjector, InjectorSnapshot,
};
pub use weights::{DrawRecord, WeightTable};
