//! Sequential fault injection under the paper's two distribution models.

use mesh2d::{Coord, FaultSet, Grid, Mesh2D};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which of the paper's two fault distribution models to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultDistribution {
    /// Every healthy node is equally likely to fail next.
    Random,
    /// Healthy nodes adjacent (8-neighborhood) to an existing fault fail with
    /// twice the base rate, so faults tend to form clusters.
    Clustered,
}

impl FaultDistribution {
    /// Both models, in the order the paper presents them.
    pub const ALL: [FaultDistribution; 2] =
        [FaultDistribution::Random, FaultDistribution::Clustered];

    /// Short label used by the experiment harness ("random" / "clustered").
    pub fn label(self) -> &'static str {
        match self {
            FaultDistribution::Random => "random",
            FaultDistribution::Clustered => "clustered",
        }
    }
}

/// Incremental, seeded fault injector.
///
/// Faults are added one at a time, which matches the paper's "all faults are
/// sequentially added to the network" and lets a single injector serve a
/// whole fault-count sweep: the first `k` faults of a sequence are exactly
/// the faults the model would have produced for a budget of `k`.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    mesh: Mesh2D,
    distribution: FaultDistribution,
    rng: StdRng,
    faults: FaultSet,
    /// Relative failure weight per node: 1 for base rate, 2 once the node is
    /// adjacent to an existing fault (clustered model only). Faulty nodes
    /// have weight 0 so they are never drawn twice.
    weight: Grid<u32>,
    total_weight: u64,
}

impl FaultInjector {
    /// Creates an injector for `mesh` with the given model and RNG seed.
    pub fn new(mesh: Mesh2D, distribution: FaultDistribution, seed: u64) -> Self {
        let weight = Grid::for_mesh(&mesh, 1u32);
        let total_weight = mesh.node_count() as u64;
        FaultInjector {
            mesh,
            distribution,
            rng: StdRng::seed_from_u64(seed),
            faults: FaultSet::new(mesh),
            weight,
            total_weight,
        }
    }

    /// The mesh being injected into.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// The distribution model in use.
    pub fn distribution(&self) -> FaultDistribution {
        self.distribution
    }

    /// The faults injected so far.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Number of faults injected so far.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no fault has been injected yet.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injects one more fault and returns its position, or `None` when every
    /// node has already failed.
    pub fn inject_one(&mut self) -> Option<Coord> {
        if self.total_weight == 0 {
            return None;
        }
        let target = self.rng.gen_range(0..self.total_weight);
        let victim = self.pick_by_weight(target)?;
        self.mark_faulty(victim);
        Some(victim)
    }

    /// Injects faults until `count` faults exist in total. Returns the number
    /// of faults actually present afterwards (saturating at the mesh size).
    pub fn inject_up_to(&mut self, count: usize) -> usize {
        while self.faults.len() < count {
            if self.inject_one().is_none() {
                break;
            }
        }
        self.faults.len()
    }

    fn pick_by_weight(&self, mut target: u64) -> Option<Coord> {
        // Linear scan over the weight grid. With at most a few thousand draws
        // per experiment and 10^4 nodes this is far from the bottleneck; the
        // polygon constructions dominate.
        for (c, &w) in self.weight.iter() {
            let w = w as u64;
            if target < w {
                return Some(c);
            }
            target -= w;
        }
        None
    }

    fn mark_faulty(&mut self, victim: Coord) {
        debug_assert!(!self.faults.is_faulty(victim));
        self.total_weight -= self.weight[victim] as u64;
        self.weight[victim] = 0;
        self.faults.insert(victim);

        if self.distribution == FaultDistribution::Clustered {
            // Double the failure rate of healthy adjacent neighbors that are
            // still at the base rate. The paper keeps exactly two rates, so a
            // node adjacent to several faults is not doubled repeatedly.
            for n in self.mesh.neighbors8(victim) {
                if let Some(w) = self.weight.get_mut(n) {
                    if *w == 1 {
                        *w = 2;
                        self.total_weight += 1;
                    }
                }
            }
        }
    }
}

/// Convenience wrapper: generates `count` faults in one call.
pub fn generate_faults(
    mesh: Mesh2D,
    count: usize,
    distribution: FaultDistribution,
    seed: u64,
) -> FaultSet {
    let mut inj = FaultInjector::new(mesh, distribution, seed);
    inj.inject_up_to(count);
    inj.faults().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Connectivity, Region};

    #[test]
    fn generates_requested_number_of_distinct_faults() {
        let mesh = Mesh2D::square(20);
        for dist in FaultDistribution::ALL {
            let faults = generate_faults(mesh, 50, dist, 7);
            assert_eq!(faults.len(), 50, "{dist:?}");
            // FaultSet rejects duplicates, so length == 50 implies distinct.
            assert!(faults
                .in_insertion_order()
                .iter()
                .all(|c| mesh.contains(*c)));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mesh = Mesh2D::square(16);
        let a = generate_faults(mesh, 30, FaultDistribution::Clustered, 42);
        let b = generate_faults(mesh, 30, FaultDistribution::Clustered, 42);
        assert_eq!(a.in_insertion_order(), b.in_insertion_order());
        let c = generate_faults(mesh, 30, FaultDistribution::Clustered, 43);
        assert_ne!(a.in_insertion_order(), c.in_insertion_order());
    }

    #[test]
    fn prefix_property_of_incremental_injection() {
        let mesh = Mesh2D::square(16);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Clustered, 9);
        inj.inject_up_to(10);
        let first10: Vec<_> = inj.faults().in_insertion_order().to_vec();
        inj.inject_up_to(25);
        assert_eq!(&inj.faults().in_insertion_order()[..10], &first10[..]);
        assert_eq!(inj.len(), 25);
    }

    #[test]
    fn saturates_when_mesh_is_exhausted() {
        let mesh = Mesh2D::square(3);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Random, 1);
        assert_eq!(inj.inject_up_to(100), 9);
        assert!(inj.inject_one().is_none());
    }

    #[test]
    fn clustered_model_produces_fewer_components_than_random() {
        // Statistical sanity check on moderately large instances: clustering
        // should (on average) pack the same number of faults into fewer
        // 8-connected components than uniform placement. Averaged over seeds
        // to keep the test stable.
        let mesh = Mesh2D::square(40);
        let count = 120;
        let mut random_components = 0usize;
        let mut clustered_components = 0usize;
        for seed in 0..8 {
            let rf = generate_faults(mesh, count, FaultDistribution::Random, seed);
            let cf = generate_faults(mesh, count, FaultDistribution::Clustered, seed);
            random_components += Region::from_coords(rf.in_insertion_order().iter().copied())
                .components(Connectivity::Eight)
                .len();
            clustered_components += Region::from_coords(cf.in_insertion_order().iter().copied())
                .components(Connectivity::Eight)
                .len();
        }
        assert!(
            clustered_components < random_components,
            "clustered {clustered_components} should be < random {random_components}"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(FaultDistribution::Random.label(), "random");
        assert_eq!(FaultDistribution::Clustered.label(), "clustered");
    }
}
