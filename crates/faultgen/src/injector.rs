//! Sequential fault injection under the paper's two distribution models,
//! generic over the mesh topology.
//!
//! One [`FaultInjector`] drives every dimension: the topology supplies
//! dense node indexing (for the flat [`WeightTable`] sampling core) and
//! the cluster neighborhood (whose failure rate the clustered model
//! doubles), and the injector supplies the seeded draw / boost / undo
//! loop. The 2-D injector is `FaultInjector<Mesh2D>` (the default, so
//! existing code reads unchanged) and the 3-D injector is
//! `mocp_3d::FaultInjector3 = FaultInjector<Mesh3D>` — the same code
//! path, byte-for-byte identical fault sequences for equal seeds.

use crate::weights::{DrawRecord, WeightTable};
use mesh2d::{FaultEvent, Mesh2D};
use mocp_topology::{FaultStore, MeshTopology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which of the paper's two fault distribution models to use.
///
/// The enum is shared by every dimension — 2-D and 3-D sweeps spell their
/// `--distribution` flags and series labels identically — and only the
/// meaning of *adjacent* (the topology's cluster neighborhood) differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FaultDistribution {
    /// Every healthy node is equally likely to fail next.
    Random,
    /// Healthy nodes adjacent (the topology's cluster neighborhood: 8
    /// neighbors in 2-D, 26 in 3-D) to an existing fault fail with twice
    /// the base rate, so faults tend to form clusters.
    Clustered,
}

impl FaultDistribution {
    /// Both models, in the order the paper presents them.
    pub const ALL: [FaultDistribution; 2] =
        [FaultDistribution::Random, FaultDistribution::Clustered];

    /// Short label used by the experiment harness ("random" / "clustered").
    pub fn label(self) -> &'static str {
        match self {
            FaultDistribution::Random => "random",
            FaultDistribution::Clustered => "clustered",
        }
    }

    /// Parses a [`label`](Self::label) (ASCII case-insensitive) back into
    /// the distribution — the single parser every CLI flag goes through,
    /// so the spelling is identical across dimensions.
    pub fn from_label(label: &str) -> Option<FaultDistribution> {
        FaultDistribution::ALL
            .into_iter()
            .find(|d| d.label().eq_ignore_ascii_case(label))
    }
}

/// A rewind point of a [`FaultInjector`]: the fault sequence injected so
/// far plus the RNG state, captured by [`FaultInjector::snapshot`].
///
/// Restoring a snapshot rewinds the injector to exactly this state, so
/// injecting again reproduces the same continuation — the property bisection
/// debugging and repair scenarios rely on.
#[derive(Clone, Debug)]
pub struct InjectorSnapshot<T: MeshTopology = Mesh2D> {
    /// The faults present when the snapshot was taken, in insertion order —
    /// both the rewind target and the proof the snapshot belongs to the
    /// injector's current history.
    prefix: Vec<T::Coord>,
    rng: StdRng,
}

impl<T: MeshTopology> InjectorSnapshot<T> {
    /// Number of faults present when the snapshot was taken.
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// True when the snapshot captured a fault-free injector.
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }
}

/// Incremental, seeded fault injector for any [`MeshTopology`].
///
/// Faults are added one at a time, which matches the paper's "all faults are
/// sequentially added to the network" and lets a single injector serve a
/// whole fault-count sweep: the first `k` faults of a sequence are exactly
/// the faults the model would have produced for a budget of `k`.
///
/// Every injection is recorded in an undo log, so a sequence can also be
/// rewound ([`undo_last`](Self::undo_last)) or rolled back to a
/// [`snapshot`](Self::snapshot) with the clustered model's weight
/// bookkeeping restored exactly — the building blocks of repair scenarios
/// and bisection debugging.
#[derive(Clone, Debug)]
pub struct FaultInjector<T: MeshTopology = Mesh2D> {
    mesh: T,
    distribution: FaultDistribution,
    rng: StdRng,
    faults: T::FaultSet,
    /// Relative failure weight per node (1 base rate, 2 once adjacent to a
    /// fault under the clustered model, 0 once faulty), kept by the
    /// dimension-generic sampling core. Nodes are flattened through
    /// [`MeshTopology::index`].
    weights: WeightTable,
    /// One record per injection, in order; popped by `undo_last`.
    log: Vec<DrawRecord>,
}

impl<T: MeshTopology> FaultInjector<T> {
    /// Creates an injector for `mesh` with the given model and RNG seed.
    pub fn new(mesh: T, distribution: FaultDistribution, seed: u64) -> Self {
        FaultInjector {
            mesh,
            distribution,
            rng: StdRng::seed_from_u64(seed),
            faults: T::FaultSet::empty(mesh),
            weights: WeightTable::uniform(mesh.node_count()),
            log: Vec::new(),
        }
    }

    /// The mesh being injected into.
    pub fn mesh(&self) -> &T {
        &self.mesh
    }

    /// The distribution model in use.
    pub fn distribution(&self) -> FaultDistribution {
        self.distribution
    }

    /// The faults injected so far.
    pub fn faults(&self) -> &T::FaultSet {
        &self.faults
    }

    /// Number of faults injected so far.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no fault has been injected yet.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injects one more fault and returns its position, or `None` when every
    /// node has already failed.
    pub fn inject_one(&mut self) -> Option<T::Coord> {
        if self.weights.total() == 0 {
            return None;
        }
        let target = self.rng.gen_range(0..self.weights.total());
        let victim = self.mesh.coord(self.weights.locate(target)?);
        self.mark_faulty(victim);
        Some(victim)
    }

    /// Injects faults until `count` faults exist in total. Returns the number
    /// of faults actually present afterwards (saturating at the mesh size).
    pub fn inject_up_to(&mut self, count: usize) -> usize {
        while self.faults.len() < count {
            if self.inject_one().is_none() {
                break;
            }
        }
        self.faults.len()
    }

    fn mark_faulty(&mut self, victim: T::Coord) {
        let newly_faulty = self.faults.insert(victim);
        // A failed insert would desynchronize the undo log from the fault
        // set (locate() must never return a zero-weight node).
        debug_assert!(newly_faulty, "{victim:?} is already faulty");
        let victim_index = self.mesh.index(victim);
        // The shared core does the zero/boost/undo bookkeeping; the
        // topology only decides what "adjacent" means (8-neighborhood in
        // 2-D, 26-neighborhood in 3-D).
        let record = if self.distribution == FaultDistribution::Clustered {
            let neighbors: Vec<usize> = self
                .mesh
                .cluster_neighbors(victim)
                .into_iter()
                .map(|n| self.mesh.index(n))
                .collect();
            self.weights.mark_faulty(victim_index, neighbors)
        } else {
            self.weights.mark_faulty(victim_index, [])
        };
        self.log.push(record);
        debug_assert!(
            self.mesh.node_count() > 1024 || self.boost_set_matches_dilation(),
            "clustered weight-2 set diverged from the cluster-neighborhood dilation"
        );
    }

    /// Cross-check of the clustered model's bookkeeping against the
    /// bit-parallel dilation kernel: the weight-2 (boosted) nodes must be
    /// exactly the healthy in-mesh nodes of `dilate_cluster(faults) \
    /// faults`. Debug-only; sampled on small meshes by `mark_faulty` and
    /// pinned by the property tests beyond.
    fn boost_set_matches_dilation(&self) -> bool {
        use mocp_topology::BitmapOps;
        if self.distribution != FaultDistribution::Clustered {
            return true;
        }
        let faults = T::Bitmap::from_coords(self.faults.in_insertion_order());
        let mut boosted = faults.dilate_cluster();
        boosted.subtract(&faults);
        (0..self.mesh.node_count()).all(|i| {
            let in_boost = boosted.contains(self.mesh.coord(i));
            (self.weights.weight_of(i) == 2) == in_boost
        })
    }

    /// Un-injects the most recent fault, restoring the weight bookkeeping
    /// (including the clustered model's neighbor boosts) exactly. Returns the
    /// repair event for the revived node, ready to be fed to a streaming
    /// consumer, or `None` when no fault remains.
    ///
    /// The RNG is **not** rewound — use [`snapshot`](Self::snapshot) /
    /// [`restore`](Self::restore) when the continuation must replay
    /// identically.
    pub fn undo_last(&mut self) -> Option<FaultEvent<T::Coord>> {
        let record = self.log.pop()?;
        let victim = self.mesh.coord(record.victim());
        self.weights.undo(record);
        self.faults.remove(victim);
        Some(FaultEvent::Repair(victim))
    }

    /// Captures the injector's current state (fault sequence + RNG state) as
    /// a rewind point for [`restore`](Self::restore).
    pub fn snapshot(&self) -> InjectorSnapshot<T> {
        InjectorSnapshot {
            prefix: self.faults.in_insertion_order().to_vec(),
            rng: self.rng.clone(),
        }
    }

    /// Rewinds to `snapshot` by undoing every fault injected since it was
    /// taken and restoring the RNG, so the continuation replays identically.
    /// Returns the repair events in undo (most-recent-first) order. Returns
    /// `None` — and changes nothing — when the snapshot does not belong to
    /// this injector's current history: taken ahead of the current state, or
    /// taken before the history diverged (e.g. by `undo_last` followed by
    /// fresh injections, which draw from an un-rewound RNG).
    pub fn restore(&mut self, snapshot: &InjectorSnapshot<T>) -> Option<Vec<FaultEvent<T::Coord>>> {
        let order = self.faults.in_insertion_order();
        if !order.starts_with(&snapshot.prefix) {
            return None;
        }
        let mut repairs = Vec::with_capacity(order.len() - snapshot.prefix.len());
        while self.faults.len() > snapshot.prefix.len() {
            repairs.push(self.undo_last().expect("log holds every fault"));
        }
        self.rng = snapshot.rng.clone();
        Some(repairs)
    }

    /// Streams up to `count` further injections as [`FaultEvent::Inject`]
    /// events — the adapter that feeds an injector into an event-driven
    /// consumer (e.g. `mocp_incremental`'s engine). The stream ends early
    /// when the mesh is exhausted.
    pub fn event_stream(&mut self, count: usize) -> EventStream<'_, T> {
        EventStream {
            injector: self,
            remaining: count,
        }
    }
}

/// Iterator returned by [`FaultInjector::event_stream`]: each `next` injects
/// one fault and yields it as an event.
#[derive(Debug)]
pub struct EventStream<'a, T: MeshTopology = Mesh2D> {
    injector: &'a mut FaultInjector<T>,
    remaining: usize,
}

impl<T: MeshTopology> Iterator for EventStream<'_, T> {
    type Item = FaultEvent<T::Coord>;

    fn next(&mut self) -> Option<FaultEvent<T::Coord>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.injector.inject_one().map(FaultEvent::Inject)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

/// Convenience wrapper: generates `count` faults in one call, for any
/// topology (`generate_faults(Mesh2D::square(..), ..)` returns a 2-D
/// `FaultSet`; `mocp_3d::generate_faults_3d` delegates here with `Mesh3D`).
pub fn generate_faults<T: MeshTopology>(
    mesh: T,
    count: usize,
    distribution: FaultDistribution,
    seed: u64,
) -> T::FaultSet {
    let mut inj = FaultInjector::new(mesh, distribution, seed);
    inj.inject_up_to(count);
    inj.faults().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Connectivity, Region};

    #[test]
    fn generates_requested_number_of_distinct_faults() {
        let mesh = Mesh2D::square(20);
        for dist in FaultDistribution::ALL {
            let faults = generate_faults(mesh, 50, dist, 7);
            assert_eq!(faults.len(), 50, "{dist:?}");
            // FaultSet rejects duplicates, so length == 50 implies distinct.
            assert!(faults
                .in_insertion_order()
                .iter()
                .all(|c| mesh.contains(*c)));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mesh = Mesh2D::square(16);
        let a = generate_faults(mesh, 30, FaultDistribution::Clustered, 42);
        let b = generate_faults(mesh, 30, FaultDistribution::Clustered, 42);
        assert_eq!(a.in_insertion_order(), b.in_insertion_order());
        let c = generate_faults(mesh, 30, FaultDistribution::Clustered, 43);
        assert_ne!(a.in_insertion_order(), c.in_insertion_order());
    }

    #[test]
    fn prefix_property_of_incremental_injection() {
        let mesh = Mesh2D::square(16);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Clustered, 9);
        inj.inject_up_to(10);
        let first10: Vec<_> = inj.faults().in_insertion_order().to_vec();
        inj.inject_up_to(25);
        assert_eq!(&inj.faults().in_insertion_order()[..10], &first10[..]);
        assert_eq!(inj.len(), 25);
    }

    #[test]
    fn saturates_when_mesh_is_exhausted() {
        let mesh = Mesh2D::square(3);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Random, 1);
        assert_eq!(inj.inject_up_to(100), 9);
        assert!(inj.inject_one().is_none());
    }

    #[test]
    fn clustered_model_produces_fewer_components_than_random() {
        // Statistical sanity check on moderately large instances: clustering
        // should (on average) pack the same number of faults into fewer
        // 8-connected components than uniform placement. Averaged over seeds
        // to keep the test stable.
        let mesh = Mesh2D::square(40);
        let count = 120;
        let mut random_components = 0usize;
        let mut clustered_components = 0usize;
        for seed in 0..8 {
            let rf = generate_faults(mesh, count, FaultDistribution::Random, seed);
            let cf = generate_faults(mesh, count, FaultDistribution::Clustered, seed);
            random_components += Region::from_coords(rf.in_insertion_order().iter().copied())
                .components(Connectivity::Eight)
                .len();
            clustered_components += Region::from_coords(cf.in_insertion_order().iter().copied())
                .components(Connectivity::Eight)
                .len();
        }
        assert!(
            clustered_components < random_components,
            "clustered {clustered_components} should be < random {random_components}"
        );
    }

    #[test]
    fn undo_restores_weight_bookkeeping_exactly() {
        let mesh = Mesh2D::square(12);
        for dist in FaultDistribution::ALL {
            let mut inj = FaultInjector::new(mesh, dist, 5);
            inj.inject_up_to(10);
            let reference = inj.clone();
            inj.inject_up_to(17);
            for _ in 0..7 {
                assert!(inj.undo_last().is_some());
            }
            assert_eq!(
                inj.faults().in_insertion_order(),
                reference.faults().in_insertion_order()
            );
            assert_eq!(inj.weights, reference.weights, "{dist:?}");
        }
    }

    /// Snapshot/restore must round-trip the shared sampling core: after a
    /// restore, the weight table (boosts included) is bit-identical to the
    /// one captured at snapshot time.
    #[test]
    fn snapshot_restore_round_trips_the_shared_weight_core() {
        let mesh = Mesh2D::square(10);
        for dist in FaultDistribution::ALL {
            let mut inj = FaultInjector::new(mesh, dist, 21);
            inj.inject_up_to(8);
            let snap = inj.snapshot();
            let weights_at_snapshot = inj.weights.clone();
            inj.inject_up_to(30);
            assert_ne!(inj.weights, weights_at_snapshot, "{dist:?}");
            inj.restore(&snap).expect("snapshot is behind the head");
            assert_eq!(inj.weights, weights_at_snapshot, "{dist:?}");
            assert!(inj.weights.total() > 0, "{dist:?}");
        }
    }

    #[test]
    fn undo_yields_repair_events_in_reverse_order() {
        let mesh = Mesh2D::square(8);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Clustered, 3);
        let injected: Vec<_> = inj.event_stream(4).collect();
        assert_eq!(injected.len(), 4);
        let mut repairs = Vec::new();
        while let Some(e) = inj.undo_last() {
            repairs.push(e);
        }
        let expected: Vec<_> = injected.iter().rev().map(|e| e.inverse()).collect();
        assert_eq!(repairs, expected);
        assert!(inj.is_empty());
        assert!(inj.undo_last().is_none());
    }

    #[test]
    fn snapshot_restore_replays_the_same_continuation() {
        let mesh = Mesh2D::square(14);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Clustered, 11);
        inj.inject_up_to(6);
        let snap = inj.snapshot();
        assert_eq!(snap.len(), 6);
        assert!(!snap.is_empty());

        inj.inject_up_to(20);
        let first_run: Vec<_> = inj.faults().in_insertion_order()[6..].to_vec();
        let repairs = inj.restore(&snap).expect("snapshot is behind the head");
        assert_eq!(repairs.len(), 14);
        assert_eq!(inj.len(), 6);

        inj.inject_up_to(20);
        let second_run: Vec<_> = inj.faults().in_insertion_order()[6..].to_vec();
        assert_eq!(first_run, second_run, "restored RNG replays identically");
    }

    #[test]
    fn restore_rejects_snapshots_from_the_future() {
        let mesh = Mesh2D::square(6);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Random, 1);
        inj.inject_up_to(5);
        let snap = inj.snapshot();
        inj.restore(&snap).expect("no-op restore succeeds");
        while inj.undo_last().is_some() {}
        assert!(
            inj.restore(&snap).is_none(),
            "snapshot is ahead of the head"
        );
        assert!(inj.is_empty(), "failed restore changes nothing");
    }

    #[test]
    fn restore_rejects_diverged_histories() {
        let mesh = Mesh2D::square(10);
        let mut inj = FaultInjector::new(mesh, FaultDistribution::Clustered, 4);
        inj.inject_up_to(5);
        let snap = inj.snapshot();
        // Rewind below the snapshot, then take a different path: the fresh
        // injections draw from the un-rewound RNG, so the history diverges.
        for _ in 0..3 {
            inj.undo_last();
        }
        inj.inject_up_to(5);
        if inj.faults().in_insertion_order() != &snap.prefix[..] {
            assert!(
                inj.restore(&snap).is_none(),
                "a snapshot from another history must be rejected"
            );
            assert_eq!(inj.len(), 5, "failed restore changes nothing");
        }
    }

    #[test]
    fn event_stream_matches_inject_up_to() {
        let mesh = Mesh2D::square(10);
        let mut a = FaultInjector::new(mesh, FaultDistribution::Clustered, 9);
        let mut b = FaultInjector::new(mesh, FaultDistribution::Clustered, 9);
        let events: Vec<_> = a.event_stream(12).collect();
        b.inject_up_to(12);
        let expected: Vec<_> = b
            .faults()
            .in_insertion_order()
            .iter()
            .map(|&c| FaultEvent::Inject(c))
            .collect();
        assert_eq!(events, expected);
        assert_eq!(a.event_stream(0).next(), None);
    }

    #[test]
    fn labels_round_trip_through_the_shared_parser() {
        assert_eq!(FaultDistribution::Random.label(), "random");
        assert_eq!(FaultDistribution::Clustered.label(), "clustered");
        for dist in FaultDistribution::ALL {
            assert_eq!(FaultDistribution::from_label(dist.label()), Some(dist));
        }
        assert_eq!(
            FaultDistribution::from_label("CLUSTERED"),
            Some(FaultDistribution::Clustered)
        );
        assert_eq!(FaultDistribution::from_label("poisson"), None);
    }
}
