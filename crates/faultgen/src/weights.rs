//! The dimension-generic sampling core shared by the 2-D and 3-D injectors.
//!
//! Both of the paper's fault distribution models reduce to the same weighted
//! sampling problem once node addresses are flattened to indices: every
//! healthy node carries a relative failure weight (1 at the base rate, 2 once
//! it is adjacent to a fault under the clustered model, 0 once it has failed),
//! a draw picks a node proportionally to its weight, and marking the victim
//! faulty boosts its still-base-rate neighbors. What *adjacent* means — the
//! 8-neighborhood of a 2-D mesh or the 26-neighborhood of a 3-D mesh — is the
//! caller's business: [`WeightTable::mark_faulty`] takes the neighbor indices
//! as an iterator, so the exact same boost/undo bookkeeping serves every
//! dimension.
//!
//! Every mutation returns a [`DrawRecord`] that [`WeightTable::undo`] replays
//! in reverse, which is what makes injector rewind (`undo_last`) and
//! snapshot/restore exact instead of approximate.

/// Everything one [`WeightTable::mark_faulty`] call changed, so
/// [`WeightTable::undo`] can restore the table exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrawRecord {
    /// Flattened index of the node that failed.
    victim: usize,
    /// The weight the victim carried before it was zeroed.
    prior_weight: u32,
    /// Neighbors whose weight this injection raised from 1 to 2
    /// (clustered model only).
    boosted: Vec<usize>,
}

impl DrawRecord {
    /// Flattened index of the node this record marked faulty.
    pub fn victim(&self) -> usize {
        self.victim
    }
}

/// Per-node failure weights with exact boost/undo bookkeeping.
///
/// The paper keeps exactly two failure rates in the system: the base rate
/// (weight 1) and the doubled rate of nodes adjacent to a fault (weight 2).
/// Faulty nodes drop to weight 0 so they are never drawn twice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightTable {
    weight: Vec<u32>,
    total: u64,
}

impl WeightTable {
    /// A table of `nodes` nodes, all at the base rate.
    pub fn uniform(nodes: usize) -> Self {
        WeightTable {
            weight: vec![1; nodes],
            total: nodes as u64,
        }
    }

    /// Number of nodes (healthy or not) the table covers.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// True when the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// Sum of all weights — the sampling denominator. Zero once every node
    /// has failed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The current weight of node `index`.
    pub fn weight_of(&self, index: usize) -> u32 {
        self.weight[index]
    }

    /// Maps a draw `target` in `0..total()` to the node index whose weight
    /// interval contains it, by linear scan in index order. With at most a
    /// few thousand draws per experiment this is far from the bottleneck;
    /// the polygon/polyhedron constructions dominate.
    pub fn locate(&self, mut target: u64) -> Option<usize> {
        for (i, &w) in self.weight.iter().enumerate() {
            let w = w as u64;
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        None
    }

    /// Marks `victim` faulty (weight 0) and doubles the rate of every
    /// neighbor in `boost` that is still at the base rate. Passing an empty
    /// iterator gives the random model; passing the victim's mesh
    /// neighborhood gives the clustered model. The paper keeps exactly two
    /// rates, so a node adjacent to several faults is not doubled repeatedly
    /// — and duplicate indices in `boost` are harmless for the same reason.
    pub fn mark_faulty(
        &mut self,
        victim: usize,
        boost: impl IntoIterator<Item = usize>,
    ) -> DrawRecord {
        let prior_weight = self.weight[victim];
        debug_assert!(prior_weight > 0, "node {victim} is already faulty");
        self.total -= prior_weight as u64;
        self.weight[victim] = 0;

        let mut boosted = Vec::new();
        for n in boost {
            if self.weight[n] == 1 {
                self.weight[n] = 2;
                self.total += 1;
                boosted.push(n);
            }
        }
        DrawRecord {
            victim,
            prior_weight,
            boosted,
        }
    }

    /// Reverses one [`mark_faulty`](Self::mark_faulty): un-boosts the
    /// neighbors and restores the victim's prior weight. Records must be
    /// undone in reverse order of creation for the bookkeeping to stay exact.
    pub fn undo(&mut self, record: DrawRecord) {
        for n in record.boosted {
            debug_assert_eq!(self.weight[n], 2);
            self.weight[n] = 1;
            self.total -= 1;
        }
        self.weight[record.victim] = record.prior_weight;
        self.total += record.prior_weight as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_sums_to_node_count() {
        let t = WeightTable::uniform(12);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert_eq!(t.total(), 12);
        assert_eq!(t.weight_of(5), 1);
    }

    #[test]
    fn locate_walks_the_weight_intervals() {
        let mut t = WeightTable::uniform(4);
        // weights [0, 2, 1, 1] after marking node 0 with node 1 boosted
        t.mark_faulty(0, [1]);
        assert_eq!(t.total(), 4);
        assert_eq!(t.locate(0), Some(1));
        assert_eq!(t.locate(1), Some(1));
        assert_eq!(t.locate(2), Some(2));
        assert_eq!(t.locate(3), Some(3));
        assert_eq!(t.locate(4), None);
    }

    #[test]
    fn boost_applies_once_and_skips_non_base_nodes() {
        let mut t = WeightTable::uniform(5);
        let r1 = t.mark_faulty(0, [1, 1, 2]);
        assert_eq!(t.weight_of(1), 2, "duplicate boost indices apply once");
        let r2 = t.mark_faulty(3, [1, 2, 4]);
        assert_eq!(t.weight_of(1), 2, "already-boosted node is not redoubled");
        assert_eq!(t.weight_of(2), 2);
        assert_eq!(r1.victim(), 0);
        assert_eq!(r2.victim(), 3);
    }

    /// The snapshot/restore contract of the shared core: replaying the draw
    /// records in reverse restores the table to any earlier state exactly.
    #[test]
    fn snapshot_restore_round_trips_through_draw_records() {
        let mut t = WeightTable::uniform(9);
        // Neighborhood of i on a 3x3 grid, flattened — stands in for what a
        // real 2-D or 3-D injector would pass.
        let neighbors = |i: usize| -> Vec<usize> {
            let (x, y) = (i % 3, i / 3);
            let mut out = Vec::new();
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (nx, ny) = (x as i32 + dx, y as i32 + dy);
                    if (dx, dy) != (0, 0) && (0..3).contains(&nx) && (0..3).contains(&ny) {
                        out.push((ny * 3 + nx) as usize);
                    }
                }
            }
            out
        };

        let mut log = Vec::new();
        log.push(t.mark_faulty(4, neighbors(4)));
        log.push(t.mark_faulty(0, neighbors(0)));
        let snapshot = t.clone();
        log.push(t.mark_faulty(8, neighbors(8)));
        log.push(t.mark_faulty(1, neighbors(1)));
        assert_ne!(t, snapshot);

        t.undo(log.pop().unwrap());
        t.undo(log.pop().unwrap());
        assert_eq!(t, snapshot, "undoing in reverse restores the snapshot");

        t.undo(log.pop().unwrap());
        t.undo(log.pop().unwrap());
        assert_eq!(
            t,
            WeightTable::uniform(9),
            "full rewind restores the base rates"
        );
    }
}
