//! The dimension-generic sampling core shared by the 2-D and 3-D injectors.
//!
//! Both of the paper's fault distribution models reduce to the same weighted
//! sampling problem once node addresses are flattened to indices: every
//! healthy node carries a relative failure weight (1 at the base rate, 2 once
//! it is adjacent to a fault under the clustered model, 0 once it has failed),
//! a draw picks a node proportionally to its weight, and marking the victim
//! faulty boosts its still-base-rate neighbors. What *adjacent* means — the
//! 8-neighborhood of a 2-D mesh or the 26-neighborhood of a 3-D mesh — is the
//! caller's business: [`WeightTable::mark_faulty`] takes the neighbor indices
//! as an iterator, so the exact same boost/undo bookkeeping serves every
//! dimension.
//!
//! Every mutation returns a [`DrawRecord`] that [`WeightTable::undo`] replays
//! in reverse, which is what makes injector rewind (`undo_last`) and
//! snapshot/restore exact instead of approximate.

/// Everything one [`WeightTable::mark_faulty`] call changed, so
/// [`WeightTable::undo`] can restore the table exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DrawRecord {
    /// Flattened index of the node that failed.
    victim: usize,
    /// The weight the victim carried before it was zeroed.
    prior_weight: u32,
    /// Neighbors whose weight this injection raised from 1 to 2
    /// (clustered model only).
    boosted: Vec<usize>,
}

impl DrawRecord {
    /// Flattened index of the node this record marked faulty.
    pub fn victim(&self) -> usize {
        self.victim
    }
}

/// Per-node failure weights with exact boost/undo bookkeeping.
///
/// The paper keeps exactly two failure rates in the system: the base rate
/// (weight 1) and the doubled rate of nodes adjacent to a fault (weight 2).
/// Faulty nodes drop to weight 0 so they are never drawn twice.
///
/// Draws are served by a Fenwick (binary indexed) tree over the weights:
/// [`locate`](Self::locate) descends the tree in O(log n) instead of the
/// O(n) linear scan — at a 512×512 streaming scale the scan is 262 144
/// iterations per draw. The tree is updated incrementally by
/// [`mark_faulty`](Self::mark_faulty) / [`undo`](Self::undo) and the
/// linear scan remains as [`locate_linear`](Self::locate_linear), the
/// equivalence oracle the tests pin the tree against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightTable {
    weight: Vec<u32>,
    total: u64,
    /// Fenwick tree over `weight` (1-based; `fenwick[i]` covers the
    /// `i & i.wrapping_neg()` weights ending at index `i - 1`).
    fenwick: Vec<u64>,
}

impl WeightTable {
    /// A table of `nodes` nodes, all at the base rate.
    pub fn uniform(nodes: usize) -> Self {
        let mut fenwick = vec![0u64; nodes + 1];
        for (i, slot) in fenwick.iter_mut().enumerate().skip(1) {
            // Each tree slot covers `i & -i` unit weights.
            *slot = (i & i.wrapping_neg()) as u64;
        }
        WeightTable {
            weight: vec![1; nodes],
            total: nodes as u64,
            fenwick,
        }
    }

    /// Adds `delta` to node `index`'s weight in the Fenwick tree.
    #[inline]
    fn fenwick_add(&mut self, index: usize, delta: i64) {
        let mut i = index + 1;
        while i < self.fenwick.len() {
            self.fenwick[i] = (self.fenwick[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of nodes (healthy or not) the table covers.
    pub fn len(&self) -> usize {
        self.weight.len()
    }

    /// True when the table covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    /// Sum of all weights — the sampling denominator. Zero once every node
    /// has failed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The current weight of node `index`.
    pub fn weight_of(&self, index: usize) -> u32 {
        self.weight[index]
    }

    /// Maps a draw `target` in `0..total()` to the node index whose weight
    /// interval contains it, by Fenwick-tree descent in O(log n). Returns
    /// `None` when `target` is at or beyond the weight total.
    ///
    /// Equivalent to [`locate_linear`](Self::locate_linear) (the oracle
    /// the equivalence tests pin it against) on every target.
    pub fn locate(&self, target: u64) -> Option<usize> {
        if target >= self.total {
            return None;
        }
        // Descend: find the largest index whose prefix sum is <= target;
        // the answer is the node right after that prefix.
        let n = self.weight.len();
        let mut pos = 0usize;
        let mut remaining = target;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            if next <= n && self.fenwick[next] <= remaining {
                remaining -= self.fenwick[next];
                pos = next;
            }
            step >>= 1;
        }
        debug_assert!(
            self.weight.len() > 4096 || Some(pos) == self.locate_linear(target),
            "Fenwick locate diverged from the linear-scan oracle"
        );
        Some(pos)
    }

    /// The original O(n) interval walk, kept as the specification
    /// [`locate`](Self::locate) is verified against.
    pub fn locate_linear(&self, mut target: u64) -> Option<usize> {
        for (i, &w) in self.weight.iter().enumerate() {
            let w = w as u64;
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        None
    }

    /// Marks `victim` faulty (weight 0) and doubles the rate of every
    /// neighbor in `boost` that is still at the base rate. Passing an empty
    /// iterator gives the random model; passing the victim's mesh
    /// neighborhood gives the clustered model. The paper keeps exactly two
    /// rates, so a node adjacent to several faults is not doubled repeatedly
    /// — and duplicate indices in `boost` are harmless for the same reason.
    pub fn mark_faulty(
        &mut self,
        victim: usize,
        boost: impl IntoIterator<Item = usize>,
    ) -> DrawRecord {
        let prior_weight = self.weight[victim];
        debug_assert!(prior_weight > 0, "node {victim} is already faulty");
        self.total -= prior_weight as u64;
        self.weight[victim] = 0;
        self.fenwick_add(victim, -(prior_weight as i64));

        let mut boosted = Vec::new();
        for n in boost {
            if self.weight[n] == 1 {
                self.weight[n] = 2;
                self.total += 1;
                self.fenwick_add(n, 1);
                boosted.push(n);
            }
        }
        DrawRecord {
            victim,
            prior_weight,
            boosted,
        }
    }

    /// Reverses one [`mark_faulty`](Self::mark_faulty): un-boosts the
    /// neighbors and restores the victim's prior weight. Records must be
    /// undone in reverse order of creation for the bookkeeping to stay exact.
    pub fn undo(&mut self, record: DrawRecord) {
        for n in record.boosted {
            debug_assert_eq!(self.weight[n], 2);
            self.weight[n] = 1;
            self.total -= 1;
            self.fenwick_add(n, -1);
        }
        self.weight[record.victim] = record.prior_weight;
        self.total += record.prior_weight as u64;
        self.fenwick_add(record.victim, record.prior_weight as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_table_sums_to_node_count() {
        let t = WeightTable::uniform(12);
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert_eq!(t.total(), 12);
        assert_eq!(t.weight_of(5), 1);
    }

    /// Deterministic xorshift for the equivalence sweeps below.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The Fenwick descent must agree with the linear interval walk on
    /// every target of every reachable table state — exercised over
    /// random draw sequences with interleaved boosts and undos, including
    /// sizes straddling the power-of-two descent boundary.
    #[test]
    fn fenwick_locate_matches_linear_scan_on_random_sequences() {
        for nodes in [1usize, 2, 63, 64, 65, 100, 257] {
            let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ nodes as u64;
            let mut table = WeightTable::uniform(nodes);
            let mut log = Vec::new();
            for step in 0..200 {
                // Exhaustively compare small tables, sample large ones.
                if table.total() > 0 {
                    for _ in 0..8 {
                        let target = xorshift(&mut state) % table.total();
                        assert_eq!(
                            table.locate(target),
                            table.locate_linear(target),
                            "nodes {nodes} step {step} target {target}"
                        );
                    }
                    assert_eq!(table.locate(table.total()), None);
                    assert_eq!(table.locate_linear(table.total()), None);
                }
                // Mutate: mostly draws, sometimes undos.
                if table.total() == 0 || (step % 7 == 6 && !log.is_empty()) {
                    if let Some(record) = log.pop() {
                        table.undo(record);
                    }
                } else {
                    let target = xorshift(&mut state) % table.total();
                    let victim = table.locate(target).expect("target < total");
                    // Boost a pseudo-random neighborhood.
                    let boost: Vec<usize> = (0..3)
                        .map(|_| xorshift(&mut state) as usize % nodes)
                        .filter(|&n| n != victim)
                        .collect();
                    log.push(table.mark_faulty(victim, boost));
                }
            }
            // Full rewind restores the uniform table (Fenwick included).
            while let Some(record) = log.pop() {
                table.undo(record);
            }
            assert_eq!(table, WeightTable::uniform(nodes));
        }
    }

    #[test]
    fn locate_walks_the_weight_intervals() {
        let mut t = WeightTable::uniform(4);
        // weights [0, 2, 1, 1] after marking node 0 with node 1 boosted
        t.mark_faulty(0, [1]);
        assert_eq!(t.total(), 4);
        assert_eq!(t.locate(0), Some(1));
        assert_eq!(t.locate(1), Some(1));
        assert_eq!(t.locate(2), Some(2));
        assert_eq!(t.locate(3), Some(3));
        assert_eq!(t.locate(4), None);
    }

    #[test]
    fn boost_applies_once_and_skips_non_base_nodes() {
        let mut t = WeightTable::uniform(5);
        let r1 = t.mark_faulty(0, [1, 1, 2]);
        assert_eq!(t.weight_of(1), 2, "duplicate boost indices apply once");
        let r2 = t.mark_faulty(3, [1, 2, 4]);
        assert_eq!(t.weight_of(1), 2, "already-boosted node is not redoubled");
        assert_eq!(t.weight_of(2), 2);
        assert_eq!(r1.victim(), 0);
        assert_eq!(r2.victim(), 3);
    }

    /// The snapshot/restore contract of the shared core: replaying the draw
    /// records in reverse restores the table to any earlier state exactly.
    #[test]
    fn snapshot_restore_round_trips_through_draw_records() {
        let mut t = WeightTable::uniform(9);
        // Neighborhood of i on a 3x3 grid, flattened — stands in for what a
        // real 2-D or 3-D injector would pass.
        let neighbors = |i: usize| -> Vec<usize> {
            let (x, y) = (i % 3, i / 3);
            let mut out = Vec::new();
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let (nx, ny) = (x as i32 + dx, y as i32 + dy);
                    if (dx, dy) != (0, 0) && (0..3).contains(&nx) && (0..3).contains(&ny) {
                        out.push((ny * 3 + nx) as usize);
                    }
                }
            }
            out
        };

        let mut log = Vec::new();
        log.push(t.mark_faulty(4, neighbors(4)));
        log.push(t.mark_faulty(0, neighbors(0)));
        let snapshot = t.clone();
        log.push(t.mark_faulty(8, neighbors(8)));
        log.push(t.mark_faulty(1, neighbors(1)));
        assert_ne!(t, snapshot);

        t.undo(log.pop().unwrap());
        t.undo(log.pop().unwrap());
        assert_eq!(t, snapshot, "undoing in reverse restores the snapshot");

        t.undo(log.pop().unwrap());
        t.undo(log.pop().unwrap());
        assert_eq!(
            t,
            WeightTable::uniform(9),
            "full rewind restores the base rates"
        );
    }
}
