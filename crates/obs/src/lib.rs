//! Zero-dependency observability for the MOCP stack: counters, gauges,
//! log-linear histograms and scoped span timing, all behind one cargo
//! feature.
//!
//! The paper's evaluation is *counted work* — labelling rounds, disabled
//! nodes, polygon sizes — and the runtime layers added around it (the
//! work-stealing pool, the incremental engine) have their own counted
//! work: steals, cache hits, fixpoint rounds. This crate gives every
//! such quantity a first-class exported metric:
//!
//! * [`counter!`] / [`gauge!`] / [`histogram!`] register a metric in a
//!   global registry on first use and cache the `&'static` handle per
//!   call site, so the hot path is one relaxed atomic op;
//! * [`Histogram`] is a log-linear (HDR-style) fixed-table histogram —
//!   16 linear sub-buckets per power of two, ≤ 6.25% relative error over
//!   the full `u64` range — with a [`LocalHistogram`] thread-local
//!   recorder that merges on flush;
//! * [`span!`] returns a guard that times its own scope into a
//!   `<name>.us` histogram and, when [`trace::start_capture`] is armed,
//!   emits Chrome trace-event begin/end pairs
//!   ([`trace::write_chrome_trace`] serializes them for
//!   `chrome://tracing` / Perfetto);
//! * [`snapshot`] / [`reset_all`] scope measurements (per workload, per
//!   run), and [`render_table`] / [`render_json`] format them.
//!
//! # The `enabled` feature
//!
//! Without the `enabled` feature every type above is a zero-sized stub
//! and every call an inline no-op — instrumented crates depend on
//! `mocp_obs` unconditionally and pay nothing. Cargo feature unification
//! turns the whole build's instrumentation on at once: the facade
//! crate's `obs` feature forwards here, so `--features mocp/obs` (or
//! `-p experiments --features obs`, etc.) lights up every layer.
//!
//! ```
//! let trials = mocp_obs::counter!("docs.trials");
//! trials.inc();
//! let _span = mocp_obs::span!("docs.phase");
//! // ... timed work ...
//! drop(_span);
//! let table = mocp_obs::render_table(&mocp_obs::snapshot());
//! # let _ = table;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod report;

pub use report::{render_json, render_table, HistogramSnapshot, MetricSample, MetricValue};

#[cfg(feature = "enabled")]
mod metrics;
#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
mod span;
#[cfg(feature = "enabled")]
pub mod trace;

#[cfg(feature = "enabled")]
pub use metrics::{Counter, Gauge, Histogram, LocalHistogram};
#[cfg(feature = "enabled")]
pub use registry::{counter, gauge, histogram, reset_all, snapshot};
#[cfg(feature = "enabled")]
pub use span::Span;

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
#[path = "noop_trace.rs"]
pub mod trace;

#[cfg(not(feature = "enabled"))]
pub use noop::{
    counter, gauge, histogram, reset_all, snapshot, Counter, Gauge, Histogram, LocalHistogram, Span,
};

/// True when this build carries the live implementation (the `enabled`
/// feature); false when every call site is a no-op stub.
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Returns the counter named `$name`, registering it on first use and
/// caching the `&'static` handle at the call site.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __OBS_COUNTER: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__OBS_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// Returns the counter named `$name` (no-op stub: the `enabled` feature
/// is off).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter($name)
    };
}

/// Returns the gauge named `$name`, registering it on first use and
/// caching the `&'static` handle at the call site.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static __OBS_GAUGE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__OBS_GAUGE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Returns the gauge named `$name` (no-op stub: the `enabled` feature is
/// off).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {
        $crate::gauge($name)
    };
}

/// Returns the histogram named `$name`, registering it on first use and
/// caching the `&'static` handle at the call site.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static __OBS_HISTOGRAM: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__OBS_HISTOGRAM.get_or_init(|| $crate::histogram($name))
    }};
}

/// Returns the histogram named `$name` (no-op stub: the `enabled`
/// feature is off).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {
        $crate::histogram($name)
    };
}

/// Starts a scoped span named `$name`: the returned guard records its
/// lifetime into the `<$name>.us` histogram on drop and emits a Chrome
/// trace begin/end pair while capture is armed. Bind it:
/// `let _span = span!("sweep.construct");`.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __OBS_SPAN_HIST: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::Span::begin(
            $name,
            *__OBS_SPAN_HIST.get_or_init(|| $crate::histogram(concat!($name, ".us"))),
        )
    }};
}

/// Starts a scoped span named `$name` (no-op stub: the `enabled` feature
/// is off).
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span
    };
}
