//! Live metric primitives: atomic counters, gauges and log-linear
//! histograms, plus the thread-local histogram recorder.
//!
//! All of these are lock-free on the record path (relaxed atomics): a
//! metric is a statistic, not a synchronization point, and the registry
//! snapshots are taken at quiescent moments (between workloads, after a
//! sweep) where relaxed counts are exact.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use crate::report::HistogramSnapshot;

/// A monotonically increasing `u64` counter.
///
/// Arithmetic is wrapping: after `u64::MAX` increments the counter rolls
/// over to zero (the same contract as `fetch_add`). [`reset`] stores
/// zero; concurrent increments racing with a reset land on either side
/// of it, so reset only at quiescent points.
///
/// [`reset`]: Counter::reset
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter (metrics are normally created through the
    /// registry, not directly).
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-writer-wins signed level (queue depths, component counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Stores zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values below `SUB_COUNT` get one exact bucket each; every following
/// power of two contributes `SUB_COUNT` buckets, up to `2^63..2^64`.
const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// A log-linear (HDR-style) histogram over the full `u64` range.
///
/// The bucket layout is 16 exact buckets for values 0..16, then 16
/// linear sub-buckets per power of two, so any value is recorded with
/// relative error below 1/16 (6.25%) using a fixed 976-slot table — no
/// allocation, no rebinning, and two relaxed `fetch_add`s plus one
/// `leading_zeros` per record.
///
/// Recording is wait-free and concurrent; [`snapshot`] reads the buckets
/// with relaxed loads, so take snapshots at quiescent points for exact
/// totals.
///
/// [`snapshot`]: Histogram::snapshot
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    /// Exact running sum of recorded values (wrapping).
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index holding `v`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_COUNT as u64 {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros();
            let sub = ((v >> (exp - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
            SUB_COUNT + (exp - SUB_BITS) as usize * SUB_COUNT + sub
        }
    }

    /// The smallest value mapping to bucket `index` — the value reported
    /// for any sample in that bucket.
    pub fn bucket_lower_bound(index: usize) -> u64 {
        assert!(index < BUCKETS, "bucket index out of range");
        if index < SUB_COUNT {
            index as u64
        } else {
            let exp = SUB_BITS + ((index - SUB_COUNT) / SUB_COUNT) as u32;
            let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
            (SUB_COUNT as u64 + sub) << (exp - SUB_BITS)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds `count` occurrences of bucket `index` and `sum` to the exact
    /// total — the merge primitive used by [`LocalHistogram::flush`].
    fn merge_bucket(&self, index: usize, count: u64) {
        self.buckets[index].fetch_add(count, Ordering::Relaxed);
    }

    /// Clears every bucket and the sum. Not atomic with respect to
    /// concurrent recorders; reset at quiescent points.
    pub fn reset(&self) {
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Digest of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return HistogramSnapshot::default();
        }
        let rank = |q: f64| -> u64 {
            // 1-based rank of the q-quantile sample; walk the cumulative
            // counts to the bucket containing it.
            let target = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return Histogram::bucket_lower_bound(i);
                }
            }
            unreachable!("rank exceeds total count")
        };
        let max_bucket = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            p50: rank(0.50),
            p90: rank(0.90),
            p99: rank(0.99),
            max: Histogram::bucket_lower_bound(max_bucket),
        }
    }
}

/// A thread-local, lock-free recorder that buffers into plain `u64`
/// buckets and merges into its parent [`Histogram`] on [`flush`] (or
/// drop). Use one per worker/engine when the record rate is high enough
/// that even relaxed `fetch_add` contention matters.
///
/// [`flush`]: LocalHistogram::flush
#[derive(Debug)]
pub struct LocalHistogram {
    target: &'static Histogram,
    buckets: Vec<u64>,
    sum: u64,
}

impl LocalHistogram {
    /// A fresh empty recorder feeding `target`.
    pub fn new(target: &'static Histogram) -> LocalHistogram {
        LocalHistogram {
            target,
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }

    /// Buffers one value locally (no atomics).
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_index(v)] += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Merges the buffered counts into the parent and clears the buffer.
    pub fn flush(&mut self) {
        for (index, count) in self.buckets.iter_mut().enumerate() {
            if *count > 0 {
                self.target.merge_bucket(index, *count);
                *count = 0;
            }
        }
        if self.sum > 0 {
            self.target.sum.fetch_add(self.sum, Ordering::Relaxed);
            self.sum = 0;
        }
    }
}

/// Cloning yields a fresh *empty* recorder for the same parent: buffered
/// counts belong to the recorder that buffered them, and engines that
/// derive `Clone` must not double-report on flush.
impl Clone for LocalHistogram {
    fn clone(&self) -> LocalHistogram {
        LocalHistogram::new(self.target)
    }
}

impl Drop for LocalHistogram {
    fn drop(&mut self) {
        self.flush();
    }
}
