//! The global metric registry: names to leaked metric objects.
//!
//! Registration happens once per call site (the macros cache the
//! returned `&'static` reference in a `OnceLock`), so the registry mutex
//! is off every hot path. Metrics live for the process; [`reset_all`]
//! zeroes their values but never removes them.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::report::{MetricSample, MetricValue};

enum Entry {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Entry>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the counter registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = map
        .entry(name)
        .or_insert_with(|| Entry::Counter(Box::leak(Box::new(Counter::new()))));
    match entry {
        Entry::Counter(c) => c,
        other => panic!(
            "metric `{name}` is registered as a {}, not a counter",
            other.kind()
        ),
    }
}

/// Returns the gauge registered under `name`, creating it on first use.
/// Panics if `name` is already registered as a different kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = map
        .entry(name)
        .or_insert_with(|| Entry::Gauge(Box::leak(Box::new(Gauge::new()))));
    match entry {
        Entry::Gauge(g) => g,
        other => panic!(
            "metric `{name}` is registered as a {}, not a gauge",
            other.kind()
        ),
    }
}

/// Returns the histogram registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = registry().lock().unwrap_or_else(|e| e.into_inner());
    let entry = map
        .entry(name)
        .or_insert_with(|| Entry::Histogram(Box::leak(Box::new(Histogram::new()))));
    match entry {
        Entry::Histogram(h) => h,
        other => panic!(
            "metric `{name}` is registered as a {}, not a histogram",
            other.kind()
        ),
    }
}

/// Samples every registered metric, sorted by name (the registry is a
/// `BTreeMap`, so the order — and any JSON rendered from it — is
/// deterministic).
pub fn snapshot() -> Vec<MetricSample> {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    map.iter()
        .map(|(&name, entry)| MetricSample {
            name,
            value: match entry {
                Entry::Counter(c) => MetricValue::Counter(c.get()),
                Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            },
        })
        .collect()
}

/// Zeroes every registered metric (names stay registered). Call between
/// workloads to scope the next snapshot; not atomic with respect to
/// concurrent recorders.
pub fn reset_all() {
    let map = registry().lock().unwrap_or_else(|e| e.into_inner());
    for entry in map.values() {
        match entry {
            Entry::Counter(c) => c.reset(),
            Entry::Gauge(g) => g.reset(),
            Entry::Histogram(h) => h.reset(),
        }
    }
}
