//! Scoped span timing: a guard that measures its own lifetime, records
//! the duration into a histogram, and (when trace capture is armed)
//! emits a begin/end event pair.

use std::time::Instant;

use crate::metrics::Histogram;
use crate::trace;

/// A live span: created by [`span!`](crate::span), finished on drop.
///
/// On drop the elapsed wall time in microseconds is recorded into the
/// span's histogram (named `<span name>.us`), and an end event is
/// emitted if the begin was captured.
#[must_use = "a span measures its own lifetime; bind it with `let _span = ...`"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    hist: &'static Histogram,
    start: Instant,
    traced: bool,
}

impl Span {
    /// Starts a span. Call sites should use the [`span!`](crate::span)
    /// macro, which registers and caches the histogram.
    pub fn begin(name: &'static str, hist: &'static Histogram) -> Span {
        Span {
            name,
            hist,
            start: Instant::now(),
            traced: trace::begin(name),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_us = self.start.elapsed().as_micros() as u64;
        self.hist.record(elapsed_us);
        if self.traced {
            trace::end(self.name);
        }
    }
}
