//! No-op trace capture (the `enabled` feature is off): the API accepts
//! every call and emits a valid, empty Chrome trace, so binaries can
//! offer `--trace` unconditionally.

use std::io;
use std::path::Path;

/// Does nothing without the `enabled` feature.
#[inline(always)]
pub fn start_capture() {}

/// Always false without the `enabled` feature.
#[inline(always)]
pub fn is_capturing() -> bool {
    false
}

/// Always zero without the `enabled` feature.
#[inline(always)]
pub fn event_count() -> usize {
    0
}

/// An empty but well-formed Chrome trace document.
pub fn to_chrome_json() -> String {
    "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n".to_string()
}

/// Writes an empty but well-formed trace to `path`; returns 0 events.
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<usize> {
    std::fs::write(path, to_chrome_json())?;
    Ok(0)
}
