//! Chrome trace-event capture: an in-memory buffer of span begin/end
//! events, serialized as `chrome://tracing` / Perfetto JSON.
//!
//! Capture is off by default; [`start_capture`] arms it process-wide.
//! Spans check the armed flag with one relaxed load, so an un-armed
//! process pays nothing beyond that. Only spans that observed the
//! capture *armed at begin time* record an end event, and serialization
//! keeps matched begin/end pairs only, so the emitted trace always
//! balances even if capture starts or stops mid-span.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Begin,
    End,
}

struct Event {
    name: &'static str,
    phase: Phase,
    /// Microseconds since the capture started.
    ts_us: u64,
    /// Stable per-thread id (assigned on each thread's first event).
    tid: u64,
}

#[derive(Default)]
struct Buffer {
    t0: Option<Instant>,
    events: Vec<Event>,
}

static CAPTURING: AtomicBool = AtomicBool::new(false);

fn buffer() -> &'static Mutex<Buffer> {
    static BUFFER: OnceLock<Mutex<Buffer>> = OnceLock::new();
    BUFFER.get_or_init(|| Mutex::new(Buffer::default()))
}

fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Arms capture: clears any previous buffer, zeroes the clock and starts
/// recording span events.
pub fn start_capture() {
    let mut buf = buffer().lock().unwrap_or_else(|e| e.into_inner());
    buf.events.clear();
    buf.t0 = Some(Instant::now());
    CAPTURING.store(true, Ordering::Release);
}

/// True while span events are being recorded.
pub fn is_capturing() -> bool {
    CAPTURING.load(Ordering::Relaxed)
}

/// Number of buffered events (begin + end).
pub fn event_count() -> usize {
    buffer()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .events
        .len()
}

/// Records a span begin if capture is armed; the return value tells the
/// span whether to record the matching end.
pub(crate) fn begin(name: &'static str) -> bool {
    if !is_capturing() {
        return false;
    }
    push(name, Phase::Begin);
    true
}

/// Records a span end (only called by spans whose begin was recorded).
pub(crate) fn end(name: &'static str) {
    push(name, Phase::End);
}

fn push(name: &'static str, phase: Phase) {
    let tid = current_tid();
    let mut buf = buffer().lock().unwrap_or_else(|e| e.into_inner());
    let Some(t0) = buf.t0 else { return };
    let ts_us = t0.elapsed().as_micros() as u64;
    buf.events.push(Event {
        name,
        phase,
        ts_us,
        tid,
    });
}

/// Marks which events form matched begin/end pairs. Per thread, ends pop
/// the most recent unmatched begin (spans nest LIFO within a thread);
/// unmatched events — a begin still open, or an end whose begin predates
/// the capture — are dropped so the output always balances.
fn matched(events: &[Event]) -> Vec<bool> {
    use std::collections::HashMap;
    let mut keep = vec![false; events.len()];
    let mut open: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, event) in events.iter().enumerate() {
        match event.phase {
            Phase::Begin => open.entry(event.tid).or_default().push(i),
            Phase::End => {
                if let Some(j) = open.get_mut(&event.tid).and_then(|stack| stack.pop()) {
                    keep[i] = true;
                    keep[j] = true;
                }
            }
        }
    }
    keep
}

/// Stops capture, drains the buffer and returns the trace as Chrome
/// trace-event JSON (`{"traceEvents": [...]}`). Only matched begin/end
/// pairs are emitted.
pub fn to_chrome_json() -> String {
    CAPTURING.store(false, Ordering::Release);
    let events = {
        let mut buf = buffer().lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut buf.events)
    };
    let keep = matched(&events);
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    for (event, keep) in events.iter().zip(&keep) {
        if !keep {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let phase = match event.phase {
            Phase::Begin => "B",
            Phase::End => "E",
        };
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"mocp\", \"ph\": \"{phase}\", \"ts\": {}, \"pid\": 1, \"tid\": {}}}",
            event.name, event.ts_us, event.tid
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Stops capture and writes the trace JSON to `path`. Returns the number
/// of events written. Open the file in `chrome://tracing` or
/// [ui.perfetto.dev](https://ui.perfetto.dev).
pub fn write_chrome_trace(path: impl AsRef<Path>) -> io::Result<usize> {
    let json = to_chrome_json();
    let events = json.matches("\"ph\":").count();
    std::fs::write(path, json)?;
    Ok(events)
}
