//! Snapshot types and renderers shared by both build modes.
//!
//! Everything here is plain data: the live registry produces
//! [`MetricSample`]s, the no-op stubs produce an empty list, and the
//! renderers work on either. Keeping these types feature-independent
//! means consumers (`perf_report`, `paper_figures`) can format metrics
//! without any `cfg` of their own.

/// Digest of one histogram at snapshot time. Percentiles are reported as
/// the lower bound of the log-linear bucket holding that rank, so they
/// under-report by at most one part in sixteen (see
/// [`Histogram`](crate::Histogram)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (not bucketed).
    pub sum: u64,
    /// Median (bucket lower bound).
    pub p50: u64,
    /// 90th percentile (bucket lower bound).
    pub p90: u64,
    /// 99th percentile (bucket lower bound).
    pub p99: u64,
    /// Largest recorded value, rounded down to its bucket lower bound.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Exact mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The value of one registered metric at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Last-written gauge level.
    Gauge(i64),
    /// Histogram digest.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// True when the metric recorded nothing since the last reset.
    pub fn is_zero(&self) -> bool {
        match self {
            MetricValue::Counter(v) => *v == 0,
            MetricValue::Gauge(v) => *v == 0,
            MetricValue::Histogram(h) => h.count == 0,
        }
    }
}

/// One named metric sampled from the registry.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// Registry name, e.g. `"pool.steals"`.
    pub name: &'static str,
    /// Sampled value.
    pub value: MetricValue,
}

/// Renders samples as an aligned human-readable table, one metric per
/// line. Intended for the `--metrics` flags; returns an explanatory
/// placeholder when the list is empty (the `obs` feature is off or
/// nothing was recorded).
pub fn render_table(samples: &[MetricSample]) -> String {
    if samples.is_empty() {
        return "  (no metrics recorded; build with `--features obs`)\n".to_string();
    }
    let width = samples.iter().map(|s| s.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for sample in samples {
        let rendered = match sample.value {
            MetricValue::Counter(v) => format!("{v}"),
            MetricValue::Gauge(v) => format!("gauge {v}"),
            MetricValue::Histogram(h) => format!(
                "count {} sum {} mean {:.1} p50 {} p90 {} p99 {} max {}",
                h.count,
                h.sum,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.max
            ),
        };
        out.push_str(&format!("  {:<width$}  {rendered}\n", sample.name));
    }
    out
}

/// Renders samples as a deterministic JSON object (`{"name": value,
/// ...}`, histograms as nested objects). Names arrive sorted from the
/// registry, so equal snapshots serialize identically.
pub fn render_json(samples: &[MetricSample]) -> String {
    let mut out = String::from("{");
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": ", sample.name));
        match sample.value {
            MetricValue::Counter(v) => out.push_str(&v.to_string()),
            MetricValue::Gauge(v) => out.push_str(&v.to_string()),
            MetricValue::Histogram(h) => out.push_str(&format!(
                "{{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
                h.count,
                h.sum,
                h.mean(),
                h.p50,
                h.p90,
                h.p99,
                h.max
            )),
        }
    }
    out.push('}');
    out
}
