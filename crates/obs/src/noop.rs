//! No-op stubs: the crate's entire API surface as zero-sized types and
//! `const fn`s that the optimizer erases. Compiled when the `enabled`
//! feature is off, so instrumented call sites never need `cfg` guards of
//! their own.

use crate::report::{HistogramSnapshot, MetricSample};

/// No-op stand-in for the live counter (the `enabled` feature is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn inc(&self) {}
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the live gauge (the `enabled` feature is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}
    /// Always zero.
    #[inline(always)]
    pub fn get(&self) -> i64 {
        0
    }
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the live histogram (the `enabled` feature is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}
    /// Always empty.
    #[inline(always)]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
    /// Does nothing.
    #[inline(always)]
    pub fn reset(&self) {}
}

/// No-op stand-in for the thread-local recorder (the `enabled` feature
/// is off).
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalHistogram;

impl LocalHistogram {
    /// A stub recorder.
    #[inline(always)]
    pub fn new(_target: &'static Histogram) -> LocalHistogram {
        LocalHistogram
    }
    /// Does nothing.
    #[inline(always)]
    pub fn record(&mut self, _v: u64) {}
    /// Does nothing.
    #[inline(always)]
    pub fn flush(&mut self) {}
}

/// No-op stand-in for the live span guard (the `enabled` feature is
/// off). Construct via [`span!`](crate::span).
#[must_use = "a span measures its own lifetime; bind it with `let _span = ...`"]
#[derive(Clone, Copy, Debug, Default)]
pub struct Span;

/// Returns the shared stub counter; compiles to a constant.
#[inline(always)]
pub const fn counter(_name: &'static str) -> &'static Counter {
    &Counter
}

/// Returns the shared stub gauge; compiles to a constant.
#[inline(always)]
pub const fn gauge(_name: &'static str) -> &'static Gauge {
    &Gauge
}

/// Returns the shared stub histogram; compiles to a constant.
#[inline(always)]
pub const fn histogram(_name: &'static str) -> &'static Histogram {
    &Histogram
}

/// Always empty without the `enabled` feature.
#[inline(always)]
pub fn snapshot() -> Vec<MetricSample> {
    Vec::new()
}

/// Does nothing without the `enabled` feature.
#[inline(always)]
pub fn reset_all() {}
