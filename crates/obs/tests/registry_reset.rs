//! `reset_all` semantics, isolated in its own test binary (= its own
//! process) because a global reset racing the other metric tests would
//! zero their counters mid-assertion.

#[test]
fn reset_all_zeroes_values_but_keeps_registrations() {
    let counter = mocp_obs::counter("reset.counter");
    let gauge = mocp_obs::gauge("reset.gauge");
    let hist = mocp_obs::histogram("reset.hist");
    counter.add(3);
    gauge.set(-5);
    hist.record(123);
    hist.record(4096);

    mocp_obs::reset_all();

    assert_eq!(counter.get(), 0);
    assert_eq!(gauge.get(), 0);
    assert_eq!(hist.snapshot(), mocp_obs::HistogramSnapshot::default());
    // The names stay registered and the handles stay live.
    let names: Vec<_> = mocp_obs::snapshot().iter().map(|s| s.name).collect();
    assert!(names.contains(&"reset.counter"));
    assert!(names.contains(&"reset.gauge"));
    assert!(names.contains(&"reset.hist"));
    counter.inc();
    assert_eq!(mocp_obs::counter("reset.counter").get(), 1);
}

#[test]
fn render_helpers_format_samples() {
    let counter = mocp_obs::counter("render.count");
    counter.add(9);
    let samples = mocp_obs::snapshot();
    let table = mocp_obs::render_table(&samples);
    assert!(table.contains("render.count"));
    let json = mocp_obs::render_json(&samples);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"render.count\": 9"));
}
