//! Span + trace capture, isolated in its own test binary because
//! capture state is process-global.

/// Capture is process-global, so the two tests must not overlap even
/// under the default multi-threaded test runner.
static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn count_phase(json: &str, phase: char) -> usize {
    json.matches(&format!("\"ph\": \"{phase}\"")).count()
}

#[test]
fn spans_emit_balanced_pairs_and_feed_histograms() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A span begun before capture is armed must not contribute an
    // unmatched end event.
    let early = mocp_obs::span!("trace.early");
    mocp_obs::trace::start_capture();
    assert!(mocp_obs::trace::is_capturing());
    drop(early);

    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let _outer = mocp_obs::span!("trace.outer");
                for _ in 0..3 {
                    let _inner = mocp_obs::span!("trace.inner");
                }
            });
        }
    });
    // A span still open at serialization time: its begin must be
    // dropped, not emitted unmatched.
    let open = mocp_obs::span!("trace.open");
    assert!(mocp_obs::trace::event_count() > 0);

    let json = mocp_obs::trace::to_chrome_json();
    drop(open);
    assert!(
        !mocp_obs::trace::is_capturing(),
        "serialization stops capture"
    );

    let begins = count_phase(&json, 'B');
    let ends = count_phase(&json, 'E');
    assert_eq!(begins, ends, "emitted trace must balance");
    // 2 threads x (1 outer + 3 inner) = 8 matched pairs; the early and
    // open spans are excluded.
    assert_eq!(begins, 8);
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"name\": \"trace.inner\""));
    assert!(!json.contains("trace.early"));
    assert!(!json.contains("trace.open"));

    // Span durations land in the <name>.us histogram.
    let samples = mocp_obs::snapshot();
    let inner_us = samples
        .iter()
        .find(|s| s.name == "trace.inner.us")
        .expect("span histogram registered");
    match inner_us.value {
        mocp_obs::MetricValue::Histogram(h) => assert_eq!(h.count, 6),
        ref other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn write_chrome_trace_produces_parseable_file() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let path = std::env::temp_dir().join("mocp_obs_trace_test.json");
    mocp_obs::trace::start_capture();
    {
        let _span = mocp_obs::span!("trace.file");
    }
    let events = mocp_obs::trace::write_chrome_trace(&path).expect("trace written");
    assert!(events >= 2, "at least one begin/end pair");
    let body = std::fs::read_to_string(&path).expect("trace readable");
    assert!(body.trim_start().starts_with('{'));
    assert!(body.trim_end().ends_with('}'));
    assert_eq!(count_phase(&body, 'B'), count_phase(&body, 'E'));
    std::fs::remove_file(&path).ok();
}
