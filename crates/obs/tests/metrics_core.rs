//! Metrics-core coverage (runs with `--features enabled` only; see
//! `required-features` in Cargo.toml): cross-thread histogram merge
//! equivalence, log-linear bucket boundaries, and counter
//! overflow/reset semantics.
//!
//! Tests in this binary run concurrently, so each uses its own metric
//! names and none calls `reset_all` (that lives in a separate test
//! binary, i.e. a separate process).

use mocp_obs::{Histogram, LocalHistogram};

/// Deterministic pseudo-random stream (splitmix64) so the concurrent
/// and sequential recorders see the same multiset of values.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Values spread over many octaves (0..2^48) to hit both the linear and
/// log-linear bucket ranges.
fn stream(seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            let octave = splitmix64(&mut state) % 48;
            splitmix64(&mut state) >> (16 + octave)
        })
        .collect()
}

#[test]
fn concurrent_local_recorders_match_sequential_reference() {
    const THREADS: u64 = 4;
    const PER_THREAD: usize = 10_000;

    let concurrent = mocp_obs::histogram("test.merge.concurrent");
    let reference = mocp_obs::histogram("test.merge.reference");

    std::thread::scope(|scope| {
        for seed in 0..THREADS {
            scope.spawn(move || {
                let mut local = LocalHistogram::new(concurrent);
                for v in stream(seed, PER_THREAD) {
                    local.record(v);
                }
                // Dropping `local` flushes the buffered buckets.
            });
        }
    });
    for seed in 0..THREADS {
        for v in stream(seed, PER_THREAD) {
            reference.record(v);
        }
    }

    let got = concurrent.snapshot();
    let want = reference.snapshot();
    assert_eq!(
        got, want,
        "merged concurrent recorders must equal the sequential reference"
    );
    assert_eq!(got.count, THREADS * PER_THREAD as u64);
    assert!(got.sum > 0);
}

#[test]
fn explicit_flush_merges_and_clears() {
    let target = mocp_obs::histogram("test.merge.flush");
    let mut local = LocalHistogram::new(target);
    local.record(7);
    local.record(7000);
    assert_eq!(target.snapshot().count, 0, "nothing visible before flush");
    local.flush();
    assert_eq!(target.snapshot().count, 2);
    local.flush();
    assert_eq!(
        target.snapshot().count,
        2,
        "second flush must not double-report"
    );
    // Clone starts empty: dropping it must not re-flush the original's data.
    let clone = local.clone();
    drop(clone);
    assert_eq!(target.snapshot().count, 2);
}

#[test]
fn bucket_boundaries_are_tight_and_monotonic() {
    // Values below 16 get exact buckets.
    for v in 0..16u64 {
        let idx = Histogram::bucket_index(v);
        assert_eq!(idx, v as usize);
        assert_eq!(Histogram::bucket_lower_bound(idx), v);
    }
    // Boundary cases around powers of two and the extremes.
    let cases = [
        15,
        16,
        17,
        31,
        32,
        33,
        63,
        64,
        65,
        127,
        128,
        129,
        1023,
        1024,
        1025,
        (1 << 32) - 1,
        1 << 32,
        (1 << 32) + 1,
        u64::MAX - 1,
        u64::MAX,
    ];
    for &v in &cases {
        let idx = Histogram::bucket_index(v);
        let lower = Histogram::bucket_lower_bound(idx);
        assert!(lower <= v, "lower bound {lower} must not exceed value {v}");
        // Relative error stays below one sub-bucket: 1/16 of the value.
        assert!(
            v - lower <= v / 16,
            "bucket too wide for {v}: lower {lower}"
        );
    }
    // Indices are monotone in the value.
    let mut prev = 0;
    for &v in &cases {
        let idx = Histogram::bucket_index(v);
        assert!(idx >= prev, "bucket index must not decrease ({v})");
        prev = idx;
    }
}

#[test]
fn percentiles_come_from_bucket_lower_bounds() {
    let hist = mocp_obs::histogram("test.percentiles");
    // 100 values: 1..=100. Exact buckets below 16, log-linear above.
    for v in 1..=100 {
        hist.record(v);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, 100);
    assert_eq!(snap.sum, 5050);
    assert_eq!(
        snap.p50,
        Histogram::bucket_lower_bound(Histogram::bucket_index(50))
    );
    assert_eq!(
        snap.p99,
        Histogram::bucket_lower_bound(Histogram::bucket_index(99))
    );
    assert_eq!(
        snap.max,
        Histogram::bucket_lower_bound(Histogram::bucket_index(100))
    );
    assert!((snap.mean() - 50.5).abs() < 1e-9);
}

#[test]
fn counter_wraps_on_overflow_and_resets_to_zero() {
    let counter = mocp_obs::counter("test.counter.overflow");
    counter.add(u64::MAX);
    assert_eq!(counter.get(), u64::MAX);
    counter.inc();
    assert_eq!(counter.get(), 0, "increments wrap at u64::MAX");
    counter.add(41);
    counter.inc();
    assert_eq!(counter.get(), 42);
    counter.reset();
    assert_eq!(counter.get(), 0);
}

#[test]
fn gauge_tracks_last_level() {
    let gauge = mocp_obs::gauge("test.gauge.level");
    gauge.set(7);
    gauge.add(5);
    gauge.add(-2);
    assert_eq!(gauge.get(), 10);
    gauge.reset();
    assert_eq!(gauge.get(), 0);
}

#[test]
fn registry_returns_same_instance_and_snapshot_is_sorted() {
    let a = mocp_obs::counter("test.registry.same");
    let b = mocp_obs::counter("test.registry.same");
    a.inc();
    b.inc();
    assert_eq!(a.get(), 2, "same name must resolve to the same counter");
    let names: Vec<_> = mocp_obs::snapshot().iter().map(|s| s.name).collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted, "snapshot must be name-sorted");
    assert!(names.contains(&"test.registry.same"));
}

#[test]
#[should_panic(expected = "registered as a counter")]
fn registry_rejects_kind_mismatch() {
    let _ = mocp_obs::counter("test.registry.kind");
    let _ = mocp_obs::gauge("test.registry.kind");
}
