//! # mocp-topology — the dimension-generic fault-model core
//!
//! The paper presents its 3-D orthogonal-convex-polyhedra construction as
//! *the same algorithm on a different topology*. This crate is that claim
//! as an API: everything the experiment harness needs from a mesh — node
//! addressing, neighborhoods, fault sets, per-node status storage, region
//! geometry — is captured by the [`MeshTopology`] trait and its associated
//! types, and everything a fault model produces is the single generic
//! [`Outcome`]. The 2-D (`mesh2d::Mesh2D`) and 3-D (`mocp_3d::Mesh3D`)
//! stacks are two implementations of the same vocabulary:
//!
//! * [`MeshTopology`] — the topology itself: coordinate type, dense node
//!   indexing, the cluster (Definition 2) neighborhood, and the region /
//!   status / fault-set types that live on it;
//! * [`RegionOps`] / [`StatusOps`] / [`FaultStore`] — the shared
//!   operations those associated types provide (union, components,
//!   convexity check; disabled/faulty counts; sequential insertion with
//!   exact removal);
//! * [`BitmapOps`] — the word-packed bitmap each topology exposes
//!   (`MeshTopology::Bitmap`): 64 nodes per word, whole-word subset /
//!   intersection / dilation / convexity kernels that the generic safety
//!   predicates and the per-dimension flood and hull fixpoints run on;
//! * [`FaultModel`] — the one model trait every construction implements,
//!   for any topology (it defaults to `Mesh2D`, so existing 2-D model
//!   impls read unchanged);
//! * [`Outcome`] — the construction result carrying the paper's Figure
//!   9/10 metrics and safety predicates once, generically, instead of one
//!   hand-written impl block per dimension;
//! * [`NamedRegistry`] / [`ModelRegistry`] — the name-keyed constructor
//!   registry the sweeps resolve models through; the 2-D and 3-D
//!   registries are two instantiations of [`ModelRegistry`].
//!
//! Layering: this crate sits between `mesh2d` (which it uses for the 2-D
//! implementation and the trait defaults) and everything else —
//! `fblock`, `mocp_core` and `mocp_3d` implement [`FaultModel`] against
//! it, `faultgen` drives its [`MeshTopology`] from one generic injector,
//! and `experiments` runs one scenario loop over any [`ModelRegistry`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitmap;
pub mod mesh;
pub mod model;
pub mod ops;
pub mod registry;

pub use bitmap::BitmapOps;
pub use mesh::MeshTopology;
pub use model::{FaultModel, Outcome};
pub use ops::{FaultStore, RegionOps, StatusOps};
pub use registry::{BoxedModel, ModelRegistry, NamedRegistry, UnknownModel};
