//! Name-keyed registry of fault-model constructors.
//!
//! The experiment harness, the benches and the examples all need to turn
//! a model *name* ("FB", "CMFP", "MFP3D", …) into a ready-to-run
//! [`FaultModel`]. A scenario lists model names and resolves them through
//! one registry, so adding a model to every sweep is a single
//! [`NamedRegistry::register`] call.
//!
//! The registry machinery itself — name → boxed-constructor entries with
//! case-insensitive lookup and registration order — is independent of
//! *which* model trait is being constructed, so it is provided as the
//! generic [`NamedRegistry`]. [`ModelRegistry`] instantiates it for the
//! generic [`FaultModel`] of a topology: the 2-D registry
//! (`fblock::ModelRegistry`) is `ModelRegistry<Mesh2D>` and the 3-D
//! registry (`mocp_3d::ModelRegistry3`) is `ModelRegistry<Mesh3D>` — one
//! type, two instantiations, one scenario runner over both.

use crate::mesh::MeshTopology;
use crate::model::{FaultModel, Outcome};
use std::fmt;

/// A boxed, thread-shareable fault model for topology `T`, as produced by
/// the registry.
pub type BoxedModel<T> = Box<dyn FaultModel<T> + Send + Sync>;

/// Registry mapping model names to constructors for topology `T`.
pub type ModelRegistry<T> = NamedRegistry<dyn FaultModel<T> + Send + Sync>;

/// One registered model: its name, a one-line description, and the
/// factory producing fresh instances.
struct ModelEntry<M: ?Sized> {
    name: &'static str,
    description: &'static str,
    factory: Box<dyn Fn() -> Box<M> + Send + Sync>,
}

/// Registry mapping names to boxed constructors of some model trait `M`
/// (a `dyn Trait + Send + Sync` type in practice).
///
/// Lookup is case-insensitive (ASCII) so CLI flags like `--models fb,fp`
/// resolve; registered names keep their canonical spelling and
/// registration order, which is the order sweeps report them in.
pub struct NamedRegistry<M: ?Sized> {
    entries: Vec<ModelEntry<M>>,
}

impl<M: ?Sized> Default for NamedRegistry<M> {
    fn default() -> Self {
        NamedRegistry {
            entries: Vec::new(),
        }
    }
}

impl<M: ?Sized> NamedRegistry<M> {
    /// An empty registry.
    pub fn empty() -> Self {
        NamedRegistry::default()
    }

    /// Registers a model under `name`. Panics if the name (ignoring ASCII
    /// case) is already taken — duplicate registrations are programming
    /// errors, not runtime conditions.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        factory: impl Fn() -> Box<M> + Send + Sync + 'static,
    ) {
        assert!(!self.contains(name), "model {name:?} is already registered");
        self.entries.push(ModelEntry {
            name,
            description,
            factory: Box::new(factory),
        });
    }

    fn entry(&self, name: &str) -> Option<&ModelEntry<M>> {
        self.entries
            .iter()
            .find(|e| e.name.eq_ignore_ascii_case(name))
    }

    /// True when `name` resolves to a registered model.
    pub fn contains(&self, name: &str) -> bool {
        self.entry(name).is_some()
    }

    /// Builds a fresh instance of the named model.
    pub fn build(&self, name: &str) -> Result<Box<M>, UnknownModel> {
        match self.entry(name) {
            Some(entry) => Ok((entry.factory)()),
            None => Err(UnknownModel {
                requested: name.to_string(),
                known: self.names().collect(),
            }),
        }
    }

    /// Canonical model names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|e| e.name)
    }

    /// `(name, description)` pairs, in registration order.
    pub fn descriptions(&self) -> impl Iterator<Item = (&'static str, &'static str)> + '_ {
        self.entries.iter().map(|e| (e.name, e.description))
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<T: MeshTopology> ModelRegistry<T> {
    /// Resolves `name` and runs its construction in one call — the same
    /// entry point for every dimension.
    pub fn construct(
        &self,
        name: &str,
        mesh: &T,
        faults: &T::FaultSet,
    ) -> Result<Outcome<T>, UnknownModel> {
        Ok(self.build(name)?.construct(mesh, faults))
    }
}

impl<M: ?Sized> fmt::Debug for NamedRegistry<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NamedRegistry")
            .field("models", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

/// Error returned when a model name does not resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownModel {
    /// The name that failed to resolve.
    pub requested: String,
    /// The names that would have resolved, in registration order.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown fault model {:?} (known models: {})",
            self.requested,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownModel {}

#[cfg(test)]
mod tests {
    use super::*;
    use distsim::RoundStats;
    use mesh2d::{Coord, Mesh2D, StatusMap};

    /// A registry is usable with nothing but this crate: a trivial model
    /// that disables nothing.
    struct NullModel;

    impl FaultModel for NullModel {
        fn name(&self) -> &'static str {
            "NULL"
        }
        fn construct(&self, mesh: &Mesh2D, faults: &mesh2d::FaultSet) -> Outcome<Mesh2D> {
            Outcome {
                model: self.name().to_string(),
                status: StatusMap::from_faults(mesh, &faults.region()),
                regions: faults
                    .region()
                    .components(mesh2d::Connectivity::Eight)
                    .into_iter()
                    .collect(),
                rounds: RoundStats::quiescent(),
            }
        }
    }

    fn null_registry() -> ModelRegistry<Mesh2D> {
        let mut registry = ModelRegistry::<Mesh2D>::empty();
        registry.register("NULL", "covers faults with their own components", || {
            Box::new(NullModel)
        });
        registry
    }

    #[test]
    fn lookup_is_case_insensitive_but_names_stay_canonical() {
        let registry = null_registry();
        assert!(registry.contains("null"));
        assert_eq!(registry.build("NuLl").unwrap().name(), "NULL");
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
    }

    #[test]
    fn unknown_name_reports_the_known_models() {
        let registry = null_registry();
        let err = match registry.build("MFP?") {
            Ok(model) => panic!("{:?} should not resolve", model.name()),
            Err(err) => err,
        };
        assert_eq!(err.requested, "MFP?");
        assert_eq!(err.known, vec!["NULL"]);
        let msg = err.to_string();
        assert!(msg.contains("MFP?") && msg.contains("NULL"), "{msg}");
    }

    #[test]
    fn construct_runs_the_resolved_model() {
        let registry = null_registry();
        let mesh = Mesh2D::square(6);
        let faults = mesh2d::FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
        let outcome = registry.construct("NULL", &mesh, &faults).unwrap();
        assert_eq!(outcome.model, "NULL");
        assert!(outcome.covers_all_faults());
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        let err = registry.construct("nope", &mesh, &faults).unwrap_err();
        assert_eq!(err.requested, "nope");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        let mut registry = null_registry();
        registry.register("null", "case-insensitive duplicate", || Box::new(NullModel));
    }
}
