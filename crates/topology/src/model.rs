//! The dimension-generic fault-model trait and construction outcome.

use crate::bitmap::BitmapOps;
use crate::mesh::MeshTopology;
use crate::ops::{RegionOps, StatusOps};
use distsim::RoundStats;
use mesh2d::{BitGrid, Connectivity, Mesh2D, Region, StatusMap};
use serde::{Deserialize, Serialize};

/// Size cap under which the bit-parallel predicates re-verify against
/// their scalar specifications in debug builds. Larger instances are
/// covered by the dedicated property tests instead, so debug test runs do
/// not pay the scalar cost on full-size sweeps.
const ORACLE_NODE_CAP: usize = 1024;

/// The outcome of running a fault-model construction on a faulty mesh,
/// for any [`MeshTopology`].
///
/// `fblock::ModelOutcome` and `mocp_3d::Outcome3` are the 2-D and 3-D
/// instantiations of this one type; the Figure 9/10 metrics and the
/// safety predicates below are written once, against the topology's
/// [`RegionOps`] / [`StatusOps`], instead of the two hand-duplicated
/// per-dimension impl blocks they replace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Outcome<T: MeshTopology> {
    /// Short model name ("FB", "FP", "CMFP", "DMFP", "FB3D", "MFP3D").
    pub model: String,
    /// Final status of every node (faulty / disabled / enabled).
    pub status: T::Status,
    /// The fault regions (blocks, polygons, cuboids or polyhedra) the
    /// model produced, i.e. the connected excluded areas messages must
    /// route around.
    pub regions: Vec<T::Region>,
    /// Rounds of neighbor information exchange the construction needed.
    pub rounds: RoundStats,
}

impl<T: MeshTopology> Outcome<T> {
    /// Number of non-faulty nodes the model disables — the paper's
    /// Figure 9 metric.
    pub fn disabled_nonfaulty(&self) -> usize {
        self.status.disabled_count()
    }

    /// Number of faulty nodes covered.
    pub fn faulty_count(&self) -> usize {
        self.status.faulty_count()
    }

    /// Average number of nodes (faulty + disabled) per region — the
    /// paper's Figure 10 metric. Zero when there are no regions.
    pub fn average_region_size(&self) -> f64 {
        if self.regions.is_empty() {
            0.0
        } else {
            let total: usize = self.regions.iter().map(RegionOps::len).sum();
            total as f64 / self.regions.len() as f64
        }
    }

    /// Checks the fundamental safety property shared by every model in
    /// every dimension: every faulty node is covered by some region.
    ///
    /// Runs as a whole-word bitmap subtraction: the faults not yet covered
    /// shrink region by region, and the final emptiness test is one word
    /// scan. The scalar any-region-contains loop remains the debug oracle.
    pub fn covers_all_faults(&self) -> bool {
        let faults = self.status.faulty_coords();
        let mut uncovered = T::Bitmap::from_coords(&faults);
        for r in &self.regions {
            if uncovered.is_empty() {
                break;
            }
            uncovered.subtract(&r.to_bitmap());
        }
        let covered = uncovered.is_empty();
        debug_assert!(
            faults.len() > ORACLE_NODE_CAP
                || covered
                    == faults
                        .iter()
                        .all(|&c| self.regions.iter().any(|r| r.contains(c))),
            "bitmap covers_all_faults diverged from the scalar oracle"
        );
        covered
    }

    /// True when every produced region is orthogonally convex
    /// (Definition 1, generalized per dimension) — the word-parallel
    /// span/run scan of the region's bitmap, with the scalar
    /// [`RegionOps::is_orthogonally_convex`] as the debug oracle.
    pub fn all_regions_convex(&self) -> bool {
        self.regions.iter().all(|r| {
            let convex = r.to_bitmap().is_orthogonally_convex();
            debug_assert!(
                r.len() > ORACLE_NODE_CAP || convex == r.is_orthogonally_convex(),
                "bitmap convexity diverged from the scalar oracle"
            );
            convex
        })
    }

    /// True when the produced regions are pairwise disjoint — one running
    /// union bitmap and a whole-word intersection test per region instead
    /// of the scalar all-pairs scan (which remains the debug oracle).
    pub fn regions_disjoint(&self) -> bool {
        let mut seen = T::Bitmap::empty();
        let mut disjoint = true;
        for r in &self.regions {
            let bits = r.to_bitmap();
            if bits.intersects(&seen) {
                disjoint = false;
                break;
            }
            seen.union_with(&bits);
        }
        debug_assert!(
            self.regions.iter().map(RegionOps::len).sum::<usize>() > ORACLE_NODE_CAP || {
                let mut oracle = true;
                'outer: for (i, a) in self.regions.iter().enumerate() {
                    for b in &self.regions[i + 1..] {
                        if !a.is_disjoint(b) {
                            oracle = false;
                            break 'outer;
                        }
                    }
                }
                oracle == disjoint
            },
            "bitmap regions_disjoint diverged from the scalar oracle"
        );
        disjoint
    }
}

impl Outcome<Mesh2D> {
    /// Splits the excluded node set into its 4-connected regions. Used by
    /// 2-D models whose construction produces a status map first and
    /// regions second.
    ///
    /// Labelling runs as a word-scan flood on the packed excluded bitmap;
    /// the scalar [`Region::components`] decomposition is the debug oracle.
    pub fn regions_from_status(status: &StatusMap) -> Vec<Region> {
        let excluded = BitGrid::from_coords(status.grid().coords_where(|s| s.is_excluded()));
        let regions: Vec<Region> = excluded
            .components(Connectivity::Four)
            .iter()
            .map(BitGrid::to_region)
            .collect();
        debug_assert!(
            excluded.len() > ORACLE_NODE_CAP
                || regions == status.excluded_region().components(Connectivity::Four),
            "word-flood regions_from_status diverged from the scalar oracle"
        );
        regions
    }
}

/// A fault-model construction: given the mesh and the faults, decide
/// which non-faulty nodes must be disabled so that the excluded regions
/// have the shape the model promises (rectangles for FB, orthogonal
/// convex polygons for FP / MFP, cuboids for FB-3D, orthogonal convex
/// polyhedra for MFP-3D).
///
/// The topology parameter defaults to the 2-D mesh, so the paper's 2-D
/// models read exactly as before (`impl FaultModel for FaultyBlockModel`);
/// 3-D models implement `FaultModel<Mesh3D>`. Each instantiation gets its
/// own [`ModelRegistry`](crate::ModelRegistry), and one generic scenario
/// runner drives them all.
///
/// ```
/// use mocp_topology::{FaultModel, MeshTopology, Outcome};
///
/// // A dimension-generic harness needs nothing beyond the trait pair:
/// fn disabled_by<T: MeshTopology>(
///     model: &dyn FaultModel<T>,
///     mesh: &T,
///     faults: &T::FaultSet,
/// ) -> usize {
///     let outcome: Outcome<T> = model.construct(mesh, faults);
///     assert!(outcome.covers_all_faults());
///     outcome.disabled_nonfaulty()
/// }
/// ```
pub trait FaultModel<T: MeshTopology = Mesh2D> {
    /// Short display name ("FB", "FP", "CMFP", "DMFP", "FB3D", "MFP3D").
    fn name(&self) -> &'static str;

    /// Runs the construction.
    fn construct(&self, mesh: &T, faults: &T::FaultSet) -> Outcome<T>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Coord, NodeStatus};

    fn outcome_with(regions: Vec<Region>, status: StatusMap) -> Outcome<Mesh2D> {
        Outcome {
            model: "test".to_string(),
            status,
            regions,
            rounds: RoundStats::quiescent(),
        }
    }

    #[test]
    fn average_region_size_handles_empty() {
        let mesh = Mesh2D::square(4);
        let o = outcome_with(vec![], StatusMap::all_enabled(&mesh));
        assert_eq!(o.average_region_size(), 0.0);
        assert_eq!(o.disabled_nonfaulty(), 0);
        assert!(o.covers_all_faults());
        assert!(o.all_regions_convex());
        assert!(o.regions_disjoint());
    }

    #[test]
    fn metrics_reflect_status_map() {
        let mesh = Mesh2D::square(4);
        let mut status = StatusMap::all_enabled(&mesh);
        status.set(Coord::new(0, 0), NodeStatus::Faulty);
        status.set(Coord::new(1, 0), NodeStatus::Disabled);
        let region = Region::from_coords([Coord::new(0, 0), Coord::new(1, 0)]);
        let o = outcome_with(vec![region], status);
        assert_eq!(o.disabled_nonfaulty(), 1);
        assert_eq!(o.faulty_count(), 1);
        assert_eq!(o.average_region_size(), 2.0);
        assert!(o.covers_all_faults());
    }

    #[test]
    fn covers_all_faults_detects_missing_fault() {
        let mesh = Mesh2D::square(4);
        let mut status = StatusMap::all_enabled(&mesh);
        status.set(Coord::new(3, 3), NodeStatus::Faulty);
        let o = outcome_with(vec![], status);
        assert!(!o.covers_all_faults());
    }

    #[test]
    fn overlapping_regions_detected() {
        let mesh = Mesh2D::square(4);
        let a = Region::from_coords([Coord::new(0, 0), Coord::new(1, 0)]);
        let b = Region::from_coords([Coord::new(1, 0)]);
        let o = outcome_with(vec![a, b], StatusMap::all_enabled(&mesh));
        assert!(!o.regions_disjoint());
    }

    #[test]
    fn regions_from_status_splits_components() {
        let mesh = Mesh2D::square(6);
        let mut status = StatusMap::all_enabled(&mesh);
        status.set(Coord::new(0, 0), NodeStatus::Faulty);
        status.set(Coord::new(0, 1), NodeStatus::Disabled);
        status.set(Coord::new(4, 4), NodeStatus::Faulty);
        let regions = Outcome::<Mesh2D>::regions_from_status(&status);
        assert_eq!(regions.len(), 2);
    }
}
