//! The shared word-packed bitmap vocabulary of the mesh topologies.
//!
//! Every [`MeshTopology`](crate::MeshTopology) names a `Bitmap` type —
//! `mesh2d::BitGrid` in 2-D, `mocp_3d::BitGrid3` in 3-D — implementing
//! [`BitmapOps`]: a node set packed 64 nodes per `u64` word, with the
//! whole-word operations the generic layers' hot predicates are built
//! from (subset / intersection tests for the `Outcome` safety checks,
//! cluster-neighborhood dilation for the flood frontiers and the
//! clustered fault distribution's boost set, and the orthogonal-convexity
//! scan of Definition 1).
//!
//! A new topology joins the bit-parallel fast path by implementing this
//! one trait next to its `MeshTopology` impl; the scalar
//! [`RegionOps`](crate::RegionOps) implementations remain the
//! specification every bitmap kernel is property-tested against.

use std::fmt::Debug;

/// A word-packed node set of one mesh dimension.
///
/// Implementations store one bit per node over a rectangular (2-D) or
/// box-shaped (3-D) frame that grows on demand; binary operations between
/// two bitmaps run whole-word (the frames share a 64-aligned phase on the
/// packed axis).
pub trait BitmapOps: Clone + Debug + Default + Send + Sync + 'static {
    /// The node address type of the bitmap's topology.
    type Coord: Copy + Debug;

    /// The empty bitmap.
    fn empty() -> Self;

    /// Builds a bitmap from coordinates (duplicates are ignored), framed
    /// by their bounding box.
    fn from_coords(coords: &[Self::Coord]) -> Self;

    /// Number of set nodes.
    fn len(&self) -> usize;

    /// True when no node is set.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test.
    fn contains(&self, c: Self::Coord) -> bool;

    /// Inserts a node, growing the frame when needed. Returns `true` when
    /// newly set.
    fn insert(&mut self, c: Self::Coord) -> bool;

    /// `self |= other` (whole-word OR; grows the frame when needed).
    fn union_with(&mut self, other: &Self);

    /// `self &= !other` (whole-word AND-NOT).
    fn subtract(&mut self, other: &Self);

    /// True when the two bitmaps share a node (whole-word AND scan).
    fn intersects(&self, other: &Self) -> bool;

    /// True when every node of `self` is in `other` (whole-word AND-NOT
    /// scan).
    fn is_subset_of(&self, other: &Self) -> bool;

    /// The orthogonal-convexity test of Definition 1, word-parallel.
    fn is_orthogonally_convex(&self) -> bool;

    /// The cluster-neighborhood dilation of the dimension (8-neighborhood
    /// in 2-D, 26-neighborhood in 3-D) as shifted-word ORs: every set node
    /// plus all its cluster neighbors.
    fn dilate_cluster(&self) -> Self;

    /// The set nodes, in the bitmap's deterministic storage order.
    fn coords(&self) -> Vec<Self::Coord>;
}

impl BitmapOps for mesh2d::BitGrid {
    type Coord = mesh2d::Coord;

    fn empty() -> Self {
        mesh2d::BitGrid::empty()
    }

    fn from_coords(coords: &[mesh2d::Coord]) -> Self {
        mesh2d::BitGrid::from_coords(coords.iter().copied())
    }

    fn len(&self) -> usize {
        mesh2d::BitGrid::len(self)
    }

    fn contains(&self, c: mesh2d::Coord) -> bool {
        mesh2d::BitGrid::contains(self, c)
    }

    fn insert(&mut self, c: mesh2d::Coord) -> bool {
        mesh2d::BitGrid::insert(self, c)
    }

    fn union_with(&mut self, other: &Self) {
        mesh2d::BitGrid::union_with(self, other)
    }

    fn subtract(&mut self, other: &Self) {
        mesh2d::BitGrid::subtract(self, other)
    }

    fn intersects(&self, other: &Self) -> bool {
        mesh2d::BitGrid::intersects(self, other)
    }

    fn is_subset_of(&self, other: &Self) -> bool {
        mesh2d::BitGrid::is_subset_of(self, other)
    }

    fn is_orthogonally_convex(&self) -> bool {
        mesh2d::BitGrid::is_orthogonally_convex(self)
    }

    fn dilate_cluster(&self) -> Self {
        self.dilate8()
    }

    fn coords(&self) -> Vec<mesh2d::Coord> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{BitGrid, Coord};

    #[test]
    fn bitgrid_implements_the_shared_ops() {
        let coords = [Coord::new(0, 0), Coord::new(65, 2)];
        let mut b = <BitGrid as BitmapOps>::from_coords(&coords);
        assert_eq!(BitmapOps::len(&b), 2);
        assert!(BitmapOps::contains(&b, Coord::new(65, 2)));
        assert!(BitmapOps::insert(&mut b, Coord::new(-5, -5)));
        assert!(!BitmapOps::is_empty(&b));
        assert!(b.is_orthogonally_convex() || !b.is_orthogonally_convex()); // total
        let dilated = b.dilate_cluster();
        assert!(b.is_subset_of(&dilated));
        assert!(dilated.intersects(&b));
        assert_eq!(BitmapOps::coords(&b).len(), 3);
        let mut d = dilated.clone();
        d.subtract(&b);
        assert!(!d.contains(Coord::new(0, 0)));
        let mut u = <BitGrid as BitmapOps>::empty();
        u.union_with(&b);
        assert_eq!(BitmapOps::len(&u), 3);
    }
}
