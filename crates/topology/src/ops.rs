//! The operations a topology's region, status and fault-set types share.
//!
//! These traits name exactly the vocabulary the generic layers are built
//! from: [`Outcome`](crate::Outcome)'s metrics and safety predicates are
//! written against [`RegionOps`] and [`StatusOps`], and the generic fault
//! injector in `faultgen` drives any [`FaultStore`]. The 2-D
//! implementations live here (this crate owns the traits and depends on
//! `mesh2d`); the 3-D implementations live in `mocp_3d`.

use crate::bitmap::BitmapOps;
use crate::mesh::MeshTopology;
use mesh2d::{BitGrid, Connectivity, Coord, FaultSet, Mesh2D, Region, StatusMap};
use std::fmt::Debug;

/// Node-set geometry shared by every dimension: size, membership, union,
/// connected components under the topology's cluster adjacency, and the
/// orthogonal-convexity check of the paper's Definition 1.
pub trait RegionOps: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The node address type of the region's topology.
    type Coord: Copy;

    /// The word-packed bitmap type of the region's topology (the same
    /// type the topology names as `MeshTopology::Bitmap`).
    type Bitmap: BitmapOps<Coord = Self::Coord>;

    /// Builds a region from coordinates (duplicates are ignored).
    fn from_coords(coords: Vec<Self::Coord>) -> Self;

    /// Number of nodes in the region.
    fn len(&self) -> usize;

    /// True when the region contains no node.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when `c` belongs to the region.
    fn contains(&self, c: Self::Coord) -> bool;

    /// The nodes of the region, in the region's deterministic order.
    fn coords(&self) -> Vec<Self::Coord>;

    /// The union of two regions.
    fn union(&self, other: &Self) -> Self;

    /// True when the two regions share no node. Implementations should
    /// override the default scan when they can do better (the 2-D region
    /// delegates to its ordered-set disjointness test).
    fn is_disjoint(&self, other: &Self) -> bool {
        self.coords().into_iter().all(|c| !other.contains(c))
    }

    /// Decomposes the region into connected components under the cluster
    /// adjacency of its dimension (8-neighborhood in 2-D, 26-neighborhood
    /// in 3-D) — the relation of the paper's component merge process.
    fn cluster_components(&self) -> Vec<Self>;

    /// The orthogonal-convexity test (Definition 1, per dimension): along
    /// every axis-parallel line the region's nodes form one contiguous run.
    fn is_orthogonally_convex(&self) -> bool;

    /// The region as a word-packed bitmap (framed by its bounding box) —
    /// the entry ticket to the whole-word predicates of [`BitmapOps`].
    fn to_bitmap(&self) -> Self::Bitmap;
}

impl RegionOps for Region {
    type Coord = Coord;
    type Bitmap = BitGrid;

    fn from_coords(coords: Vec<Coord>) -> Self {
        Region::from_coords(coords)
    }

    fn len(&self) -> usize {
        Region::len(self)
    }

    fn contains(&self, c: Coord) -> bool {
        Region::contains(self, c)
    }

    fn coords(&self) -> Vec<Coord> {
        self.iter().collect()
    }

    fn union(&self, other: &Self) -> Self {
        Region::union(self, other)
    }

    fn is_disjoint(&self, other: &Self) -> bool {
        Region::is_disjoint(self, other)
    }

    fn cluster_components(&self) -> Vec<Self> {
        self.components(Connectivity::Eight)
    }

    fn is_orthogonally_convex(&self) -> bool {
        Region::is_orthogonally_convex(self)
    }

    fn to_bitmap(&self) -> BitGrid {
        BitGrid::from_region(self)
    }
}

/// Per-node construction status (faulty / disabled / enabled) with the
/// counts behind the paper's Figure 9 metric.
pub trait StatusOps: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The node address type of the status map's topology.
    type Coord: Copy;

    /// Number of non-faulty nodes the construction disabled.
    fn disabled_count(&self) -> usize;

    /// Number of faulty nodes.
    fn faulty_count(&self) -> usize;

    /// The faulty nodes, in the map's deterministic order.
    fn faulty_coords(&self) -> Vec<Self::Coord>;
}

impl StatusOps for StatusMap {
    type Coord = Coord;

    fn disabled_count(&self) -> usize {
        StatusMap::disabled_count(self)
    }

    fn faulty_count(&self) -> usize {
        StatusMap::faulty_count(self)
    }

    fn faulty_coords(&self) -> Vec<Coord> {
        self.faulty_region().iter().collect()
    }
}

/// A topology's fault population: sequential insertion (the paper adds
/// faults one at a time), exact removal (repair / rewind), and the
/// insertion order the clustered distribution model depends on.
pub trait FaultStore<T: MeshTopology>: Clone + Debug + Send + Sync + 'static {
    /// An empty fault set for `mesh`.
    fn empty(mesh: T) -> Self;

    /// Marks `c` faulty. Returns `true` when newly marked, `false` for
    /// duplicates or coordinates outside the mesh.
    fn insert(&mut self, c: T::Coord) -> bool;

    /// Clears the fault at `c`, modelling node recovery. Returns `true`
    /// when the node was faulty.
    fn remove(&mut self, c: T::Coord) -> bool;

    /// Number of faults.
    fn len(&self) -> usize;

    /// True when no node is faulty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The faults in injection order.
    fn in_insertion_order(&self) -> &[T::Coord];
}

impl FaultStore<Mesh2D> for FaultSet {
    fn empty(mesh: Mesh2D) -> Self {
        FaultSet::new(mesh)
    }

    fn insert(&mut self, c: Coord) -> bool {
        FaultSet::insert(self, c)
    }

    fn remove(&mut self, c: Coord) -> bool {
        FaultSet::remove(self, c)
    }

    fn len(&self) -> usize {
        FaultSet::len(self)
    }

    fn in_insertion_order(&self) -> &[Coord] {
        FaultSet::in_insertion_order(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::NodeStatus;

    #[test]
    fn region_ops_match_the_inherent_api() {
        let r = <Region as RegionOps>::from_coords(vec![
            Coord::new(0, 0),
            Coord::new(1, 1),
            Coord::new(5, 5),
        ]);
        assert_eq!(RegionOps::len(&r), 3);
        assert!(RegionOps::contains(&r, Coord::new(1, 1)));
        assert_eq!(
            r.cluster_components().len(),
            2,
            "8-adjacency merges the diagonal pair"
        );
        assert!(RegionOps::is_orthogonally_convex(&r));
        let u = RegionOps::union(
            &r,
            &<Region as RegionOps>::from_coords(vec![Coord::new(9, 9)]),
        );
        assert_eq!(RegionOps::len(&u), 4);
        assert_eq!(r.coords().len(), 3);
        let far = <Region as RegionOps>::from_coords(vec![Coord::new(9, 9)]);
        assert!(RegionOps::is_disjoint(&r, &far));
        assert!(!RegionOps::is_disjoint(&u, &far));
    }

    #[test]
    fn status_ops_count_like_the_status_map() {
        let mesh = Mesh2D::square(4);
        let mut map = StatusMap::all_enabled(&mesh);
        map.set(Coord::new(0, 0), NodeStatus::Faulty);
        map.set(Coord::new(1, 0), NodeStatus::Disabled);
        assert_eq!(StatusOps::disabled_count(&map), 1);
        assert_eq!(StatusOps::faulty_count(&map), 1);
        assert_eq!(map.faulty_coords(), vec![Coord::new(0, 0)]);
    }

    #[test]
    fn fault_store_round_trips_through_the_trait() {
        let mesh = Mesh2D::square(5);
        let mut fs = <FaultSet as FaultStore<Mesh2D>>::empty(mesh);
        assert!(FaultStore::is_empty(&fs));
        assert!(FaultStore::insert(&mut fs, Coord::new(2, 2)));
        assert!(!FaultStore::insert(&mut fs, Coord::new(2, 2)));
        assert_eq!(FaultStore::len(&fs), 1);
        assert_eq!(
            FaultStore::<Mesh2D>::in_insertion_order(&fs),
            &[Coord::new(2, 2)]
        );
        assert!(FaultStore::remove(&mut fs, Coord::new(2, 2)));
        assert!(FaultStore::is_empty(&fs));
    }
}
