//! The [`MeshTopology`] trait: what every mesh dimension provides.

use crate::bitmap::BitmapOps;
use crate::ops::{FaultStore, RegionOps, StatusOps};
use mesh2d::{BitGrid, Coord, FaultSet, Mesh2D, Region, StatusMap};
use std::fmt::Debug;

/// A mesh topology the fault-model stack can run on.
///
/// The trait names exactly what the dimension-generic layers consume: a
/// coordinate vocabulary with dense indexing (the fault injector's
/// weighted-sampling core is a flat table over `0..node_count()`), the
/// *cluster* neighborhood of the paper's Definition 2 (the adjacency the
/// clustered fault distribution boosts and the component merge process
/// flood-fills), and the associated region / status / fault-set types the
/// generic [`Outcome`](crate::Outcome) is made of.
///
/// `mesh2d::Mesh2D` implements it here; `mocp_3d::Mesh3D` implements it in
/// the `mocp_3d` crate. A new topology (a torus family, a 4-D mesh) joins
/// every sweep, bench and figure by implementing this one trait.
///
/// ```
/// use mocp_topology::MeshTopology;
/// use mesh2d::Mesh2D;
///
/// // Dimension-generic code speaks the trait vocabulary:
/// fn healthy_nodes<T: MeshTopology>(mesh: &T, faults: &T::FaultSet) -> usize {
///     use mocp_topology::FaultStore;
///     mesh.node_count() - faults.len()
/// }
///
/// let mesh = Mesh2D::square(8);
/// assert_eq!(mesh.node_count(), 64);
/// assert_eq!(Mesh2D::DIM, 2);
/// // Dense indexing round-trips every node.
/// let c = mesh.coord(17);
/// assert_eq!(mesh.index(c), 17);
/// // The 2-D cluster neighborhood is the 8-neighborhood.
/// use mesh2d::Coord;
/// assert_eq!(mesh.cluster_neighbors(Coord::new(3, 3)).len(), 8);
/// ```
pub trait MeshTopology: Copy + PartialEq + Debug + Send + Sync + 'static {
    /// Node address type (`Coord` in 2-D, `Coord3` in 3-D).
    type Coord: Copy + Ord + Debug + Send + Sync + 'static;

    /// Word-packed bitmap type (64 nodes per `u64`) carrying the
    /// dimension's bit-parallel kernels; shared with
    /// [`Region::to_bitmap`](RegionOps::to_bitmap) so regions and meshes
    /// speak the same fast-path type.
    type Bitmap: BitmapOps<Coord = Self::Coord> + Send + Sync;

    /// Node-set type with the shared geometric ops.
    type Region: RegionOps<Coord = Self::Coord, Bitmap = Self::Bitmap> + Send + Sync;

    /// Per-node construction-status storage.
    type Status: StatusOps<Coord = Self::Coord> + Send + Sync;

    /// Fault-population type driven by the generic injector. `Send +
    /// Sync` (like the other associated data types) so fault sets and
    /// regions can be shared with the work-stealing pool's tasks.
    type FaultSet: FaultStore<Self> + Send + Sync;

    /// Number of spatial dimensions (2 or 3 in this workspace).
    const DIM: u32;

    /// A mesh with every side of length `side` — the square/cubic
    /// configuration the paper's sweeps use.
    fn from_side(side: u32) -> Self;

    /// Total number of nodes.
    fn node_count(&self) -> usize;

    /// True when `c` addresses a node of this mesh.
    fn contains(&self, c: Self::Coord) -> bool;

    /// Flattens an in-mesh coordinate to a dense index in
    /// `0..node_count()`. The mapping (with [`coord`](Self::coord) as its
    /// inverse) is what ties a mesh to the injector's flat weight table.
    fn index(&self, c: Self::Coord) -> usize;

    /// Inverse of [`index`](Self::index).
    fn coord(&self, index: usize) -> Self::Coord;

    /// The in-mesh *cluster* neighborhood of `c` — the Definition 2
    /// adjacency of the dimension (8-neighborhood in 2-D, 26-neighborhood
    /// in 3-D). The clustered fault distribution doubles these nodes'
    /// failure rate; the merge process floods along this relation.
    fn cluster_neighbors(&self, c: Self::Coord) -> Vec<Self::Coord>;
}

impl MeshTopology for Mesh2D {
    type Coord = Coord;
    type Bitmap = BitGrid;
    type Region = Region;
    type Status = StatusMap;
    type FaultSet = FaultSet;

    const DIM: u32 = 2;

    fn from_side(side: u32) -> Self {
        Mesh2D::square(side)
    }

    fn node_count(&self) -> usize {
        Mesh2D::node_count(self)
    }

    fn contains(&self, c: Coord) -> bool {
        Mesh2D::contains(self, c)
    }

    fn index(&self, c: Coord) -> usize {
        self.index_of(c)
    }

    fn coord(&self, index: usize) -> Coord {
        self.coord_of(index)
    }

    fn cluster_neighbors(&self, c: Coord) -> Vec<Coord> {
        self.neighbors8(c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh2d_trait_view_matches_the_inherent_api() {
        let mesh = <Mesh2D as MeshTopology>::from_side(6);
        assert_eq!(mesh, Mesh2D::square(6));
        assert_eq!(MeshTopology::node_count(&mesh), 36);
        for i in 0..MeshTopology::node_count(&mesh) {
            let c = MeshTopology::coord(&mesh, i);
            assert!(MeshTopology::contains(&mesh, c));
            assert_eq!(MeshTopology::index(&mesh, c), i);
        }
        assert_eq!(mesh.cluster_neighbors(Coord::new(0, 0)).len(), 3);
        assert_eq!(mesh.cluster_neighbors(Coord::new(2, 2)).len(), 8);
        assert_eq!(Mesh2D::DIM, 2);
    }
}
