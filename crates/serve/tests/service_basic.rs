//! End-to-end behaviour of [`MonitorService`]: ingestion, ordering,
//! queries, fan-out, backpressure and shutdown semantics.

use mesh2d::{Connectivity, Coord, FaultEvent, Mesh2D, NodeStatus};
use mocp_incremental::IncrementalEngine;
use mocp_serve::{MonitorService, ServeConfig, SubmitError};

fn small_config() -> ServeConfig {
    ServeConfig::default().with_shards(4).with_workers(2)
}

#[test]
fn create_tenant_rejects_duplicates_and_counts() {
    let service = MonitorService::start(small_config());
    assert_eq!(service.tenant_count(), 0);
    assert!(service.create_tenant(1, Mesh2D::square(8)));
    assert!(!service.create_tenant(1, Mesh2D::square(8)));
    assert!(service.create_tenant(2, Mesh2D::mesh(4, 6)));
    assert_eq!(service.tenant_count(), 2);
    service.shutdown();
}

#[test]
fn unknown_tenants_are_rejected_everywhere() {
    let service = MonitorService::start(small_config());
    let c = Coord::new(0, 0);
    assert_eq!(
        service.submit(9, vec![FaultEvent::Inject(c)]),
        Err(SubmitError::UnknownTenant(9))
    );
    assert_eq!(
        service.try_submit(9, vec![FaultEvent::Inject(c)]),
        Err(SubmitError::UnknownTenant(9))
    );
    assert_eq!(service.node_status(9, c), None);
    assert_eq!(service.region_of(9, c), None);
    assert_eq!(service.counts(9), None);
    assert_eq!(service.polygons(9), None);
    assert!(service.subscribe(9, None).is_none());
    service.shutdown();
}

#[test]
fn queries_match_a_sequentially_fed_engine() {
    let service = MonitorService::start(small_config());
    let mesh = Mesh2D::square(12);
    service.create_tenant(5, mesh);
    let events = vec![
        FaultEvent::Inject(Coord::new(2, 2)),
        FaultEvent::Inject(Coord::new(3, 2)),
        FaultEvent::Inject(Coord::new(2, 3)),
        FaultEvent::Inject(Coord::new(8, 8)),
        FaultEvent::Repair(Coord::new(3, 2)),
        FaultEvent::Inject(Coord::new(9, 9)),
    ];
    // Split across several batches; one submitting thread keeps order.
    for chunk in events.chunks(2) {
        service.submit(5, chunk.to_vec()).unwrap();
    }
    service.quiesce();

    let mut reference = IncrementalEngine::new(Mesh2D::square(12));
    for &event in &events {
        reference.apply(event);
    }
    assert_eq!(service.polygons(5), Some(reference.polygons()));
    let counts = service.counts(5).unwrap();
    assert_eq!(counts.faulty, reference.faulty_count());
    assert_eq!(counts.disabled_nonfaulty, reference.disabled_nonfaulty());
    assert_eq!(counts.components, reference.component_count());
    assert_eq!(counts.events_applied, events.len() as u64);
    assert_eq!(counts.seq, 3, "three batches were applied");
    for x in 0..12 {
        for y in 0..12 {
            let c = Coord::new(x, y);
            assert_eq!(service.node_status(5, c), reference.status().get(c));
            assert_eq!(service.region_of(5, c), reference.region_of(c));
        }
    }
    service.shutdown();
}

#[test]
fn subscribers_get_coalesced_updates_with_contiguous_seq() {
    let service = MonitorService::start(small_config());
    service.create_tenant(1, Mesh2D::square(10));
    let updates = service.subscribe(1, None).unwrap();

    // Batch 1: one injection.
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(4, 4))])
        .unwrap();
    // Batch 2: self-cancelling churn on (6, 6) — must produce NO update.
    service
        .submit(
            1,
            vec![
                FaultEvent::Inject(Coord::new(6, 6)),
                FaultEvent::Repair(Coord::new(6, 6)),
            ],
        )
        .unwrap();
    // Batch 3: another injection.
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(4, 5))])
        .unwrap();
    service.quiesce();

    let first = updates.try_recv().expect("batch 1 produced an update");
    assert_eq!((first.tenant, first.seq), (1, 1));
    assert_eq!(
        first.delta.changes(),
        &[(Coord::new(4, 4), NodeStatus::Enabled, NodeStatus::Faulty)]
    );
    let third = updates.try_recv().expect("batch 3 produced an update");
    assert_eq!(third.seq, 3, "batch 2 coalesced to nothing and was skipped");
    assert!(third
        .delta
        .changes()
        .iter()
        .any(|&(c, _, new)| c == Coord::new(4, 5) && new == NodeStatus::Faulty));
    assert!(updates.try_recv().is_err(), "no further updates");

    let stats = service.stats();
    assert_eq!(stats.batches, 3);
    assert_eq!(stats.events, 4);
    assert_eq!(stats.updates_sent, 2);
    assert_eq!(stats.updates_dropped, 0);
    service.shutdown();
}

#[test]
fn bounded_subscribers_drop_updates_instead_of_stalling() {
    let service = MonitorService::start(small_config());
    service.create_tenant(1, Mesh2D::square(32));
    let updates = service.subscribe(1, Some(1)).unwrap();

    // Ten delta-producing batches against a capacity-1 subscriber that
    // never reads: at least one lands, the rest are dropped, ingestion
    // finishes regardless.
    for i in 0..10i32 {
        service
            .submit(1, vec![FaultEvent::Inject(Coord::new(3 * (i % 10), 0))])
            .unwrap();
    }
    service.quiesce();

    let stats = service.stats();
    assert_eq!(stats.updates_sent + stats.updates_dropped, 10);
    assert!(stats.updates_dropped >= 9, "capacity-1 buffer: {stats:?}");
    let got = updates.recv().unwrap();
    assert_eq!(got.seq, 1, "the buffered update is the oldest one");
    service.shutdown();
}

#[test]
fn dropped_subscribers_are_unregistered() {
    let service = MonitorService::start(small_config());
    service.create_tenant(1, Mesh2D::square(8));
    let updates = service.subscribe(1, None).unwrap();
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(1, 1))])
        .unwrap();
    service.quiesce();
    assert_eq!(service.stats().updates_sent, 1);
    drop(updates);
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(5, 5))])
        .unwrap();
    service.quiesce();
    let stats = service.stats();
    assert_eq!(stats.updates_sent, 1, "nobody left to deliver to");
    assert_eq!(stats.updates_dropped, 0, "disconnect is not a drop");
    service.shutdown();
}

#[test]
fn try_submit_surfaces_backpressure_without_losing_order() {
    // One worker with a single-batch queue: keep the worker busy long
    // enough and try_submit must eventually report Backpressure.
    let service = MonitorService::start(
        ServeConfig::default()
            .with_shards(1)
            .with_workers(1)
            .with_queue_capacity(1),
    );
    service.create_tenant(1, Mesh2D::square(64));
    let mut accepted = 0u64;
    let mut saw_backpressure = false;
    for wave in 0..200i32 {
        let x = wave % 64;
        let batch: Vec<FaultEvent> = (0..8)
            .map(|y| FaultEvent::Inject(Coord::new(x, 8 * y)))
            .collect();
        match service.try_submit(1, batch) {
            Ok(()) => accepted += 8,
            Err(SubmitError::Backpressure(1)) => saw_backpressure = true,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    service.quiesce();
    assert_eq!(service.counts(1).unwrap().events_applied, accepted);
    assert!(
        saw_backpressure || accepted == 200 * 8,
        "either backpressure fired or the worker kept up with everything"
    );
    service.shutdown();
}

#[test]
fn shutdown_drains_queued_batches_and_drop_is_equivalent() {
    for explicit in [true, false] {
        let service = MonitorService::start(small_config());
        service.create_tenant(1, Mesh2D::square(16));
        let updates = service.subscribe(1, None).unwrap();
        for x in 0..10 {
            service
                .submit(1, vec![FaultEvent::Inject(Coord::new(x, x))])
                .unwrap();
        }
        // No quiesce: shutdown itself must drain the queues first.
        if explicit {
            service.shutdown();
        } else {
            drop(service);
        }
        assert_eq!(
            updates.try_iter().count(),
            10,
            "every queued batch was applied before the workers exited"
        );
        // The service is gone, so the fan-out senders are dropped too.
        assert!(updates.recv().is_err());
    }
}

#[test]
fn region_of_through_the_service_reflects_engine_semantics() {
    let service = MonitorService::start(small_config());
    service.create_tenant(1, Mesh2D::square(12));
    service
        .submit(
            1,
            vec![
                FaultEvent::Inject(Coord::new(2, 2)),
                FaultEvent::Inject(Coord::new(3, 3)),
                FaultEvent::Inject(Coord::new(3, 4)),
            ],
        )
        .unwrap();
    service.quiesce();
    let region = service
        .region_of(1, Coord::new(2, 2))
        .expect("faulty node is covered");
    assert!(
        region.contains(Coord::new(3, 4)),
        "8-connected faults share a polygon"
    );
    assert_eq!(
        service.region_of(1, Coord::new(10, 10)),
        None,
        "far-away enabled node is uncovered"
    );
    // The polygon is orthogonal convex over the component, consistent
    // with the snapshot query.
    assert_eq!(service.polygons(1).unwrap().len(), 1);
    let _ = Connectivity::Eight; // semantic anchor: components are 8-connected
    service.shutdown();
}
