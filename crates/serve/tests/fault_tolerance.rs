//! Fault-tolerance integration tests: supervised recovery from worker
//! kills, WAL replay equivalence, degraded reads, saturation, and the
//! structured shutdown report.

use std::time::{Duration, Instant};

use mesh2d::{Coord, FaultEvent, Mesh2D, NodeStatus};
use mocp_incremental::IncrementalEngine;
use mocp_serve::chaos::install_quiet_panic_hook;
use mocp_serve::{
    ChaosPlan, IngestError, KillMode, KillSpec, MonitorService, RetryPolicy, ServeConfig,
    TenantHealth,
};

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// Sequential ground truth: a fresh engine fed the same events in order.
fn replay(mesh: Mesh2D, events: &[FaultEvent]) -> IncrementalEngine {
    let mut engine = IncrementalEngine::new(mesh);
    for &event in events {
        engine.apply(event);
    }
    engine
}

fn assert_matches_replay(
    service: &MonitorService,
    tenant: u64,
    mesh: Mesh2D,
    events: &[FaultEvent],
) {
    let oracle = replay(mesh, events);
    let counts = service.counts(tenant).unwrap();
    assert_eq!(
        counts.faulty,
        oracle.faulty_count(),
        "tenant {tenant} faulty"
    );
    assert_eq!(
        counts.disabled_nonfaulty,
        oracle.disabled_nonfaulty(),
        "tenant {tenant} disabled"
    );
    assert_eq!(
        counts.components,
        oracle.component_count(),
        "tenant {tenant} components"
    );
    assert_eq!(
        service.polygons(tenant).unwrap(),
        oracle.polygons(),
        "tenant {tenant} polygons"
    );
}

#[test]
fn clean_worker_kill_recovers_to_sequential_equivalence() {
    install_quiet_panic_hook();
    let plan = ChaosPlan {
        kills: vec![KillSpec {
            after_batches: 3,
            mode: KillMode::Clean,
        }],
    };
    let service = MonitorService::start_with_chaos(
        ServeConfig::default().with_workers(1).with_shards(4),
        plan,
    );
    let mesh = Mesh2D::square(16);
    let tenants: Vec<u64> = (1..=4).collect();
    let mut streams: Vec<Vec<FaultEvent>> = Vec::new();
    for (i, &t) in tenants.iter().enumerate() {
        assert!(service.create_tenant(t, mesh));
        let i = i as i32;
        streams.push(vec![
            FaultEvent::Inject(Coord::new(2 + i, 3)),
            FaultEvent::Inject(Coord::new(2 + i, 4)),
            FaultEvent::Inject(Coord::new(9, 9 - i)),
            FaultEvent::Repair(Coord::new(2 + i, 3)),
        ]);
    }
    // Two batches per tenant; the third dequeued batch kills the worker.
    for (i, &t) in tenants.iter().enumerate() {
        service.submit(t, streams[i][..2].to_vec()).unwrap();
    }
    for (i, &t) in tenants.iter().enumerate() {
        service.submit(t, streams[i][2..].to_vec()).unwrap();
    }
    service.quiesce();
    assert!(service.chaos().kills_fired() >= 1, "the kill fired");
    // Recovery credits the ledger per tenant, so quiesce can return a
    // beat before the supervisor finishes the restart bookkeeping.
    wait_until("all tenants live", || {
        tenants
            .iter()
            .all(|&t| service.health(t) == Some(TenantHealth::Live))
    });
    for (stream, &t) in streams.iter().zip(&tenants) {
        assert_matches_replay(&service, t, mesh, stream);
    }
    wait_until("replacement worker", || service.stats().restarts == 1);
    assert_eq!(service.stats().panicked_workers, 1);
    let report = service.shutdown();
    assert_eq!(report.panicked_workers, 1);
    assert_eq!(report.supervisor_restarts, 1);
}

#[test]
fn mid_apply_kill_serves_snapshot_while_rebuilding_then_recovers() {
    install_quiet_panic_hook();
    let plan = ChaosPlan {
        kills: vec![KillSpec {
            after_batches: 4,
            mode: KillMode::MidApply { after_events: 0 },
        }],
    };
    let service = MonitorService::start_with_chaos(
        ServeConfig::default()
            .with_workers(1)
            .with_shards(2)
            .with_snapshot_every(1),
        plan,
    );
    let mesh = Mesh2D::square(16);
    assert!(service.create_tenant(1, mesh));
    assert!(service.create_tenant(2, mesh));

    // Freeze the supervisor before recovery so the degraded states stay
    // observable for as long as this test needs.
    service.chaos().hold_recovery();

    // Batches 1-3 apply cleanly; batch 4 (tenant 1 again) is killed
    // after 0 of its events, leaving tenant 1 quarantined mid-apply.
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(1, 1))])
        .unwrap();
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(2, 2))])
        .unwrap();
    service
        .submit(2, vec![FaultEvent::Inject(Coord::new(5, 5))])
        .unwrap();
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(3, 3))])
        .unwrap();

    wait_until("the mid-apply kill", || service.chaos().kills_fired() >= 1);
    wait_until("tenant 1 quarantined", || {
        service.health(1) == Some(TenantHealth::Rebuilding)
    });
    // The supervisor fences the dead worker before it parks on the held
    // recovery gate, so the coherent co-tenant degrades.
    wait_until("tenant 2 degraded", || {
        service.health(2) == Some(TenantHealth::Degraded)
    });

    // Rebuilding reads come from the last coherent snapshot: batches
    // 1-2 are visible, the killed batch 4 is not, and nothing panics on
    // the poisoned shard.
    let counts = service.counts(1).unwrap();
    assert_eq!(counts.faulty, 2, "snapshot state: batches 1-2");
    assert_eq!(counts.seq, 2, "snapshot sequence number");
    assert_eq!(
        service.node_status(1, Coord::new(1, 1)),
        Some(NodeStatus::Faulty)
    );
    assert_eq!(
        service.node_status(1, Coord::new(3, 3)),
        Some(NodeStatus::Enabled),
        "killed batch not visible in the snapshot"
    );
    assert!(service.region_of(1, Coord::new(1, 1)).is_some());
    let snap = service.status_snapshot(1).unwrap();
    assert_eq!((snap.seq, snap.health), (2, TenantHealth::Rebuilding));
    // Degraded reads are exact (the engine is coherent).
    assert_eq!(service.counts(2).unwrap().faulty, 1);

    service.chaos().release_recovery();
    service.quiesce();
    wait_until("tenant 1 live", || {
        service.health(1) == Some(TenantHealth::Live)
    });
    assert_eq!(service.health(2), Some(TenantHealth::Live));
    assert_matches_replay(
        &service,
        1,
        mesh,
        &[
            FaultEvent::Inject(Coord::new(1, 1)),
            FaultEvent::Inject(Coord::new(2, 2)),
            FaultEvent::Inject(Coord::new(3, 3)),
        ],
    );
    assert_matches_replay(&service, 2, mesh, &[FaultEvent::Inject(Coord::new(5, 5))]);
    let stats = service.stats();
    assert!(stats.replayed_events >= 1, "WAL replayed the killed batch");
    let report = service.shutdown();
    assert_eq!(report.panicked_workers, 1);
}

#[test]
fn ingest_saturates_with_typed_error_and_full_rollback() {
    let service = MonitorService::start_with_chaos(
        ServeConfig::default()
            .with_workers(1)
            .with_shards(2)
            .with_queue_capacity(1),
        ChaosPlan::none(),
    );
    let mesh = Mesh2D::square(12);
    assert!(service.create_tenant(1, mesh));
    service.chaos().hold_intake();

    let policy = RetryPolicy::default()
        .with_deadline(Duration::from_millis(40))
        .with_max_retries(3)
        .with_base(Duration::from_millis(1))
        .with_seed(7);
    // With the intake gate held the single worker never drains, so at
    // most two batches are absorbed (one parked at the gate, one in the
    // capacity-1 queue); ingests must start saturating within a few
    // attempts instead of blocking forever.
    let mut accepted: Vec<FaultEvent> = Vec::new();
    let mut saturated = None;
    for i in 0..4i32 {
        let events = vec![FaultEvent::Inject(Coord::new(i + 1, 2))];
        match service.ingest(1, events.clone(), &policy) {
            Ok(()) => accepted.extend(events),
            Err(err) => {
                saturated = Some(err);
                break;
            }
        }
    }
    let err = saturated.expect("a capacity-1 queue under a held gate saturates");
    assert!(
        matches!(err, IngestError::Saturated { tenant: 1, retries } if retries >= 1),
        "typed saturation: {err:?}"
    );
    let stats = service.stats();
    assert!(stats.ingest_retries >= 1, "bounded sends backed off");
    assert_eq!(stats.ingest_saturated, 1);

    // The saturated batch was fully rolled back: re-ingesting it after
    // the gate opens must apply it exactly once.
    service.chaos().release_intake();
    let retry_events = vec![FaultEvent::Inject(Coord::new(9, 9))];
    service
        .ingest(1, retry_events.clone(), &RetryPolicy::default())
        .expect("drained queue accepts");
    accepted.extend(retry_events);
    service.quiesce();
    assert_matches_replay(&service, 1, mesh, &accepted);
    service.shutdown();
}

#[test]
fn quiesce_timeout_reports_inflight_work_without_wedging() {
    let service = MonitorService::start_with_chaos(
        ServeConfig::default().with_workers(1).with_shards(2),
        ChaosPlan::none(),
    );
    assert!(service.create_tenant(1, Mesh2D::square(8)));
    service.chaos().hold_intake();
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(2, 2))])
        .unwrap();
    assert!(
        !service.quiesce_timeout(Duration::from_millis(30)),
        "gated worker cannot drain in time"
    );
    service.chaos().release_intake();
    assert!(service.quiesce_timeout(Duration::from_secs(10)));
    assert_eq!(service.counts(1).unwrap().faulty, 1);
    service.shutdown();
}

#[test]
fn multiple_kills_across_workers_converge() {
    install_quiet_panic_hook();
    let plan = ChaosPlan::seeded(0xDEAD_BEEF, 3, 24, 0.5);
    let service = MonitorService::start_with_chaos(
        ServeConfig::default()
            .with_workers(3)
            .with_shards(8)
            .with_queue_capacity(4),
        plan,
    );
    let mesh = Mesh2D::square(20);
    let tenants: Vec<u64> = (0..12).collect();
    let mut streams: Vec<Vec<FaultEvent>> = Vec::new();
    for &t in &tenants {
        assert!(service.create_tenant(t, mesh));
        let x = (t as i32 * 3) % 17 + 1;
        streams.push(vec![
            FaultEvent::Inject(Coord::new(x, 4)),
            FaultEvent::Inject(Coord::new(x, 5)),
            FaultEvent::Inject(Coord::new(x + 1, 4)),
            FaultEvent::Repair(Coord::new(x, 5)),
            FaultEvent::Inject(Coord::new(x, 5)),
        ]);
    }
    for round in 0..5 {
        for (stream, &t) in streams.iter().zip(&tenants) {
            service.submit(t, vec![stream[round]]).unwrap();
        }
    }
    service.quiesce();
    assert!(service.chaos().kills_fired() >= 1, "seeded kills fired");
    wait_until("all tenants live", || {
        tenants
            .iter()
            .all(|&t| service.health(t) == Some(TenantHealth::Live))
    });
    for (stream, &t) in streams.iter().zip(&tenants) {
        assert_matches_replay(&service, t, mesh, stream);
    }
    let fired = service.chaos().kills_fired();
    let report = service.shutdown();
    assert_eq!(report.panicked_workers, fired);
}
