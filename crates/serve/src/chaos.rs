//! Deterministic fault injection for the service.
//!
//! A [`ChaosPlan`] is armed at [`MonitorService::start_with_chaos`]
//! (crate::MonitorService::start_with_chaos) and drives faults from
//! *inside* the workers at exactly reproducible points: the plan speaks
//! in terms of the global dequeue counter (the `n`-th batch any worker
//! pulls off its queue), so a fixed plan plus a fixed workload yields
//! the same kill sites run after run, regardless of thread scheduling
//! jitter in between.
//!
//! Two externally held **gates** make the non-deterministic parts
//! testable too:
//!
//! * the *intake gate* stalls every worker right before it processes a
//!   batch — hold it to saturate the bounded queues and force
//!   `IngestError::Saturated`, release it to drain;
//! * the *recovery gate* stalls the supervisor right before it recovers
//!   a death — hold it to observe `Degraded`/`Rebuilding` health and
//!   snapshot-served queries for as long as the test needs.
//!
//! Injected worker panics carry the [`CHAOS_PANIC`] marker in their
//! payload; [`install_quiet_panic_hook`] keeps them out of test output
//! while letting genuine panics print as usual.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Panic-message marker of a chaos-injected worker kill.
pub const CHAOS_PANIC: &str = "chaos-injected";

/// How a [`KillSpec`] takes its worker down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// The worker panics after dequeuing a batch but before touching the
    /// tenant — the batch is lost from the queue, the engine stays
    /// coherent (`Degraded`), and WAL replay must re-supply the batch.
    Clean,
    /// The worker panics *inside* the apply, after `after_events` of the
    /// batch's events have mutated the engine. The tenant is caught
    /// mid-flight (`Rebuilding`, shard lock poisoned) and must be fully
    /// rebuilt from checkpoint + WAL replay.
    MidApply {
        /// Events of the fatal batch applied before the panic.
        after_events: usize,
    },
}

/// One scheduled worker kill: fires on the first batch dequeued at or
/// after the `after_batches`-th global dequeue. Each spec fires at most
/// once.
#[derive(Clone, Copy, Debug)]
pub struct KillSpec {
    /// Global dequeue count (across all workers) that arms this kill.
    pub after_batches: u64,
    /// How the worker dies.
    pub mode: KillMode,
}

/// A seeded schedule of worker kills.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// The scheduled kills, in no particular order.
    pub kills: Vec<KillSpec>,
}

impl ChaosPlan {
    /// The empty plan: no faults (the service behaves as if started
    /// plainly, minus a few atomic reads per batch).
    pub fn none() -> Self {
        ChaosPlan { kills: Vec::new() }
    }

    /// A deterministic plan derived from `seed`: `kills` worker kills at
    /// dequeue counts spread over `(0, max_batch]`, each mid-apply with
    /// probability `mid_fraction` (panicking after 0..4 events of the
    /// fatal batch), clean otherwise.
    pub fn seeded(seed: u64, kills: usize, max_batch: u64, mid_fraction: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let span = max_batch.max(1);
        let kills = (0..kills)
            .map(|_| KillSpec {
                after_batches: rng.gen_range(1..span + 1),
                mode: if rng.gen_bool(mid_fraction.clamp(0.0, 1.0)) {
                    KillMode::MidApply {
                        after_events: rng.gen_range(0..4usize),
                    }
                } else {
                    KillMode::Clean
                },
            })
            .collect();
        ChaosPlan { kills }
    }
}

/// A barrier a test can close and open: workers (or the supervisor)
/// entering a closed gate block until it opens or the service shuts
/// down.
#[derive(Default)]
struct Gate {
    closed: Mutex<bool>,
    opened: Condvar,
}

impl Gate {
    fn hold(&self) {
        *self.closed.lock().unwrap_or_else(PoisonError::into_inner) = true;
    }

    fn release(&self) {
        *self.closed.lock().unwrap_or_else(PoisonError::into_inner) = false;
        self.opened.notify_all();
    }

    /// Blocks while the gate is closed; `shutting_down` overrides the
    /// gate so shutdown never deadlocks on a test that forgot to release.
    fn wait(&self, shutting_down: &std::sync::atomic::AtomicBool) {
        let mut closed = self.closed.lock().unwrap_or_else(PoisonError::into_inner);
        while *closed && !shutting_down.load(Ordering::SeqCst) {
            closed = self
                .opened
                .wait(closed)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn notify(&self) {
        self.opened.notify_all();
    }
}

/// The live fault-injection surface of a chaos-started service, shared
/// between the test (holding/releasing gates, reading counters) and the
/// workers/supervisor (consulting the plan).
pub struct ChaosControl {
    enabled: bool,
    batches: AtomicU64,
    kills: Mutex<Vec<KillSpec>>,
    kills_fired: AtomicU64,
    intake: Gate,
    recovery: Gate,
}

impl ChaosControl {
    pub(crate) fn new(plan: ChaosPlan) -> Self {
        ChaosControl {
            enabled: !plan.kills.is_empty(),
            batches: AtomicU64::new(0),
            kills: Mutex::new(plan.kills),
            kills_fired: AtomicU64::new(0),
            intake: Gate::default(),
            recovery: Gate::default(),
        }
    }

    /// An always-open control for plainly started services.
    #[cfg(test)]
    fn inert() -> Self {
        Self::new(ChaosPlan::none())
    }

    /// True when the plan schedules at least one fault (workers consult
    /// the plan per batch only in this case; gates work either way).
    pub fn is_armed(&self) -> bool {
        self.enabled
    }

    /// Closes the intake gate: every worker blocks before processing its
    /// next batch, so bounded queues fill and ingest saturates.
    pub fn hold_intake(&self) {
        self.intake.hold();
    }

    /// Reopens the intake gate.
    pub fn release_intake(&self) {
        self.intake.release();
    }

    /// Closes the recovery gate: the supervisor blocks before recovering
    /// the next worker death, freezing `Degraded`/`Rebuilding` states
    /// for observation.
    pub fn hold_recovery(&self) {
        self.recovery.hold();
    }

    /// Reopens the recovery gate.
    pub fn release_recovery(&self) {
        self.recovery.release();
    }

    /// Worker kills fired so far.
    pub fn kills_fired(&self) -> u64 {
        self.kills_fired.load(Ordering::SeqCst)
    }

    /// Global batches dequeued so far (fault-armed services only).
    pub fn batches_dequeued(&self) -> u64 {
        self.batches.load(Ordering::SeqCst)
    }

    /// Called by a worker for each dequeued batch: waits out the intake
    /// gate, bumps the global counter, and claims at most one scheduled
    /// kill whose threshold has passed. Returns the kill to execute, if
    /// any.
    pub(crate) fn on_dequeue(
        &self,
        shutting_down: &std::sync::atomic::AtomicBool,
    ) -> Option<KillMode> {
        self.intake.wait(shutting_down);
        let batch = self.batches.fetch_add(1, Ordering::SeqCst) + 1;
        let mut kills = self.kills.lock().unwrap_or_else(PoisonError::into_inner);
        let due = kills.iter().position(|k| k.after_batches <= batch)?;
        let kill = kills.swap_remove(due);
        self.kills_fired.fetch_add(1, Ordering::SeqCst);
        Some(kill.mode)
    }

    /// Called by the supervisor before recovering a death.
    pub(crate) fn wait_recovery_gate(&self, shutting_down: &std::sync::atomic::AtomicBool) {
        self.recovery.wait(shutting_down);
    }

    /// Wakes every gate waiter at shutdown (the gates re-check the
    /// shutdown flag and fall through).
    pub(crate) fn notify_shutdown(&self) {
        self.intake.notify();
        self.recovery.notify();
    }
}

/// Installs a process-wide panic hook that suppresses chaos-injected
/// worker panics (payloads containing [`CHAOS_PANIC`]) and defers to the
/// previous hook for everything else. Idempotent enough for tests:
/// installing it twice just nests two filters.
pub fn install_quiet_panic_hook() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains(CHAOS_PANIC))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains(CHAOS_PANIC))
            })
            .unwrap_or(false);
        if !injected {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = ChaosPlan::seeded(42, 5, 100, 0.5);
        let b = ChaosPlan::seeded(42, 5, 100, 0.5);
        assert_eq!(a.kills.len(), 5);
        for (x, y) in a.kills.iter().zip(&b.kills) {
            assert_eq!(x.after_batches, y.after_batches);
            assert_eq!(x.mode, y.mode);
            assert!((1..=100).contains(&x.after_batches));
        }
        let c = ChaosPlan::seeded(43, 5, 100, 0.5);
        assert!(
            a.kills
                .iter()
                .zip(&c.kills)
                .any(|(x, y)| x.after_batches != y.after_batches || x.mode != y.mode),
            "different seeds differ"
        );
        assert!(ChaosPlan::seeded(7, 3, 50, 0.0)
            .kills
            .iter()
            .all(|k| k.mode == KillMode::Clean));
        assert!(ChaosPlan::seeded(7, 3, 50, 1.0)
            .kills
            .iter()
            .all(|k| matches!(k.mode, KillMode::MidApply { .. })));
    }

    #[test]
    fn kills_fire_once_at_their_threshold() {
        let control = ChaosControl::new(ChaosPlan {
            kills: vec![KillSpec {
                after_batches: 3,
                mode: KillMode::Clean,
            }],
        });
        let down = AtomicBool::new(false);
        assert_eq!(control.on_dequeue(&down), None);
        assert_eq!(control.on_dequeue(&down), None);
        assert_eq!(control.on_dequeue(&down), Some(KillMode::Clean));
        assert_eq!(control.on_dequeue(&down), None, "each kill fires once");
        assert_eq!(control.kills_fired(), 1);
        assert_eq!(control.batches_dequeued(), 4);
    }

    #[test]
    fn held_gate_blocks_until_released_or_shutdown() {
        let control = std::sync::Arc::new(ChaosControl::inert());
        control.hold_intake();
        let down = std::sync::Arc::new(AtomicBool::new(false));
        let (c, d) = (
            std::sync::Arc::clone(&control),
            std::sync::Arc::clone(&down),
        );
        let waiter = std::thread::spawn(move || {
            c.on_dequeue(&d);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "gate held");
        control.release_intake();
        waiter.join().unwrap();

        // Shutdown overrides a held gate.
        control.hold_recovery();
        down.store(true, Ordering::SeqCst);
        control.notify_shutdown();
        control.wait_recovery_gate(&down); // must not block
    }
}
