//! Worker supervision: death detection, fencing, WAL replay, respawn.
//!
//! One supervisor thread per service sleeps on the death signal. When a
//! worker's [`DeathWatch`](crate::service) reports a death, the
//! supervisor:
//!
//! 1. **fences** the dead worker — takes its queue sender (submitters
//!    stop targeting the dead queue), bumps its epoch (in-flight enqueue
//!    acknowledgements are rejected and the batches resent), joins the
//!    corpse, and marks every owned tenant [`Degraded`] (engines still
//!    coherent) — tenants caught mid-apply already carry [`Rebuilding`];
//! 2. waits out the **recovery gate** (tests hold it to observe the
//!    degraded states for as long as they need);
//! 3. **recovers** each owned tenant from the write-ahead log: a
//!    `Rebuilding` tenant's engine is rebuilt from the checkpoint fault
//!    set plus a full suffix replay, a `Degraded` tenant's coherent
//!    engine just catches up the enqueued-but-unapplied tail; either way
//!    the tenant ends `Live` with a fresh coherent snapshot;
//! 4. **respawns** a replacement worker (skipped during shutdown; the
//!    shutdown path runs its own final recovery sweep instead).
//!
//! [`Degraded`]: crate::TenantHealth::Degraded
//! [`Rebuilding`]: crate::TenantHealth::Rebuilding

use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::thread::JoinHandle;

use mesh2d::{FaultEvent, StatusDelta};
use mocp_incremental::IncrementalEngine;

use crate::registry::{spread, CoherentSnapshot, TenantHealth};
use crate::service::{fan_out, spawn_worker, Core, TenantId, WorkerDeath};

/// Spawns the supervisor thread for `core`.
pub(crate) fn spawn(core: Arc<Core>) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("mocp-serve-supervisor".into())
        .spawn(move || supervisor_loop(&core))
        .expect("supervisor thread spawn cannot fail")
}

fn supervisor_loop(core: &Arc<Core>) {
    loop {
        let death = {
            let mut deaths = core.deaths.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Pending deaths are recovered even during shutdown —
                // their tenants' WAL replay must not wait for the final
                // sweep to discover them.
                if let Some(death) = deaths.pop_front() {
                    break Some(death);
                }
                if core.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                deaths = core
                    .death_signal
                    .wait(deaths)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(death) = death else { return };
        fence_worker(core, death);
        core.chaos.wait_recovery_gate(&core.shutting_down);
        recover_worker(core, death.worker);
    }
}

/// Fences a dead worker: no new batches reach its queue, no in-flight
/// acknowledgement can slip past the recovery, the corpse is joined,
/// and its tenants' health reflects the outage.
fn fence_worker(core: &Core, death: WorkerDeath) {
    core.slots[death.worker]
        .sender
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    // The epoch bump must precede the recovery-spec reads below: an
    // acknowledgement validated after this line sees the new epoch and
    // fails, so its batch is resent rather than silently lost with the
    // dead queue.
    core.epochs[death.worker].fetch_add(1, Ordering::SeqCst);
    let handle = core.slots[death.worker]
        .handle
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(handle) = handle {
        if handle.join().is_err() {
            core.stats.panicked_workers.fetch_add(1, Ordering::Relaxed);
        }
    }
    for tenant in owned_tenants(core, death.worker) {
        core.registry.with(tenant, |state| {
            if state.health == TenantHealth::Live {
                state.health = TenantHealth::Degraded;
            }
        });
    }
}

/// Recovers every tenant of a fenced worker and spawns its replacement.
fn recover_worker(core: &Arc<Core>, worker: usize) {
    let _span = mocp_obs::span!("serve.recovery");
    for tenant in owned_tenants(core, worker) {
        recover_tenant(core, tenant);
    }
    if !core.shutting_down.load(Ordering::SeqCst) {
        spawn_worker(core, worker);
        core.stats.restarts.fetch_add(1, Ordering::Relaxed);
        mocp_obs::counter!("serve.supervisor.restarts").inc();
    }
}

fn owned_tenants(core: &Core, worker: usize) -> Vec<TenantId> {
    let workers = core.slots.len() as u64;
    let mut tenants = core.registry.ids();
    tenants.retain(|&t| spread(t) % workers == worker as u64);
    tenants
}

/// Brings one tenant back to `Live` from the write-ahead log. Returns
/// the number of events replayed. Also the shutdown path's final-sweep
/// primitive; a no-op for tenants that are already live and caught up.
pub(crate) fn recover_tenant(core: &Core, tenant: TenantId) -> u64 {
    core.registry
        .with(tenant, |state| {
            let Some(spec) = core.wal.recovery_spec(tenant) else {
                return 0;
            };
            if state.health == TenantHealth::Live && spec.lag_events == 0 {
                return 0;
            }
            let replayed;
            if state.health == TenantHealth::Rebuilding {
                // The engine may be mid-apply (or behind a poisoned
                // lock): rebuild from the checkpoint fault set plus the
                // full enqueued suffix. Duplicate injects and
                // repairs-of-healthy are engine no-ops, so overlap with
                // whatever the dead worker half-applied is harmless.
                let mesh = *state.engine.mesh();
                let mut engine = IncrementalEngine::with_solution(mesh, core.config.solution);
                for &c in spec.checkpoint.in_insertion_order() {
                    engine.apply(FaultEvent::Inject(c));
                }
                for &event in &spec.full_replay {
                    engine.apply(event);
                }
                state.engine = engine;
                replayed = spec.full_replay.len() as u64;
                // No fan-out: subscribers see the seq jump as a gap and
                // resynchronize from a status snapshot.
            } else {
                // Coherent engine (Degraded, or a live tenant in the
                // shutdown sweep): catch up the enqueued-but-unapplied
                // tail and fan it out as one coalesced update.
                let mut delta = StatusDelta::new();
                for &event in &spec.lag_replay {
                    delta.extend(state.engine.apply(event));
                }
                replayed = spec.lag_replay.len() as u64;
                state.seq = spec.batches_enqueued;
                let (sent, dropped) = fan_out(state, tenant, delta);
                core.stats.updates_sent.fetch_add(sent, Ordering::Relaxed);
                core.stats
                    .updates_dropped
                    .fetch_add(dropped, Ordering::Relaxed);
            }
            state.seq = spec.batches_enqueued;
            state.events_applied = spec.enqueued;
            state.snapshot =
                CoherentSnapshot::capture(&state.engine, state.seq, state.events_applied);
            state.health = TenantHealth::Live;
            core.wal.complete_recovery(tenant);
            core.ledger.add_applied(spec.lag_events);
            if replayed > 0 {
                core.stats
                    .replayed_events
                    .fetch_add(replayed, Ordering::Relaxed);
                mocp_obs::counter!("serve.wal.replayed_events").add(replayed);
            }
            replayed
        })
        .unwrap_or(0)
}
