//! Per-tenant in-memory write-ahead event log.
//!
//! Every batch is appended here **before** it is offered to a worker
//! queue, so the events of a batch that dies with its worker — queued
//! but never applied, or half-applied when the worker panicked — can be
//! replayed onto a rebuilt engine. The log is not a history: once the
//! worker acknowledges application, the applied prefix is folded into a
//! per-tenant checkpoint [`FaultSet`] (the engine's observable state is
//! a pure function of the fault set, so replaying checkpoint + suffix
//! reproduces status, counts and polygons exactly).
//!
//! Three per-tenant watermarks order the life of an event, with the
//! invariant `applied ≤ enqueued ≤ appended`:
//!
//! * **appended** — written to the log by a submitter;
//! * **enqueued** — acknowledged as accepted by a (then-live) worker
//!   queue; only the submitter that appended advances this, and only
//!   after validating the worker's epoch (see below);
//! * **applied** — applied to the tenant's engine by a worker.
//!
//! Recovery replays exactly `(applied, enqueued]`: those events were
//! accepted but died with the worker. Events in `(enqueued, appended]`
//! are still owned by a submitter that is retrying (or about to give up
//! and [`retract`](Wal::retract) them), so replaying them here would
//! double-apply once the submitter succeeds.
//!
//! The enqueue acknowledgement is **epoch-validated**: a submitter reads
//! the owning worker's epoch before taking its sender, and
//! [`mark_enqueued_if`](Wal::mark_enqueued_if) only records the
//! acknowledgement (under the same WAL shard lock the recovery snapshot
//! is taken under) if the epoch is unchanged. The supervisor bumps the
//! epoch *before* reading a dead worker's recovery spec, so a send that
//! raced into the dying queue either lands in the spec (ack won the
//! lock) or is rejected and resent to the replacement worker — never
//! silently lost, never applied twice.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use mesh2d::{FaultEvent, FaultSet, Mesh2D};

use crate::registry::spread;
use crate::service::TenantId;

/// One tenant's log: checkpoint + un-folded suffix + watermarks.
struct TenantWal {
    /// Fault set equivalent to the first `offset` events of the stream.
    checkpoint: FaultSet,
    /// Events `(offset, appended]`, oldest first.
    suffix: VecDeque<FaultEvent>,
    /// Events folded into `checkpoint`.
    offset: u64,
    /// Total events ever appended (minus retractions).
    appended: u64,
    /// Events acknowledged as accepted by a worker queue.
    enqueued: u64,
    /// Events applied to the engine.
    applied: u64,
    /// Batches appended / enqueued / applied (mirror the event marks).
    batches_appended: u64,
    batches_enqueued: u64,
    batches_applied: u64,
}

/// What the supervisor needs to rebuild or catch up one tenant.
pub(crate) struct RecoverySpec {
    /// Fault set equivalent to the stream before the suffix.
    pub checkpoint: FaultSet,
    /// Every enqueued-but-unfolded event, for a full rebuild.
    pub full_replay: Vec<FaultEvent>,
    /// The enqueued-but-unapplied tail, for a coherent-engine catch-up.
    pub lag_replay: Vec<FaultEvent>,
    /// `enqueued - applied`: events the recovery re-applies.
    pub lag_events: u64,
    /// Absolute event count after recovery (`enqueued`).
    pub enqueued: u64,
    /// Absolute batch count after recovery (`batches_enqueued`).
    pub batches_enqueued: u64,
}

/// The mutex-striped write-ahead log: tenants hash onto shards with the
/// same [`spread`] the registry uses, so WAL contention mirrors registry
/// contention.
pub(crate) struct Wal {
    shards: Vec<Mutex<HashMap<TenantId, TenantWal>>>,
}

impl Wal {
    pub fn new(shards: usize) -> Self {
        Wal {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, tenant: TenantId) -> std::sync::MutexGuard<'_, HashMap<TenantId, TenantWal>> {
        self.shards[(spread(tenant) % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a fresh tenant with an empty log.
    pub fn register(&self, tenant: TenantId, mesh: Mesh2D) {
        self.shard(tenant)
            .entry(tenant)
            .or_insert_with(|| TenantWal {
                checkpoint: FaultSet::new(mesh),
                suffix: VecDeque::new(),
                offset: 0,
                appended: 0,
                enqueued: 0,
                applied: 0,
                batches_appended: 0,
                batches_enqueued: 0,
                batches_applied: 0,
            });
    }

    /// Appends one batch; returns `(upto, batch_no)` — the absolute
    /// event and batch counts after this batch, the ticket later marks
    /// refer to. Must only be called by the tenant's single submitter.
    pub fn append(&self, tenant: TenantId, events: &[FaultEvent]) -> (u64, u64) {
        let mut shard = self.shard(tenant);
        let wal = shard.get_mut(&tenant).expect("tenant registered in WAL");
        wal.suffix.extend(events.iter().copied());
        wal.appended += events.len() as u64;
        wal.batches_appended += 1;
        (wal.appended, wal.batches_appended)
    }

    /// Rolls back the latest appended-but-unacknowledged batch of `n`
    /// events — the submitter gave up (saturation) and still owns them.
    /// Valid because each tenant has a single submitter: the last `n`
    /// appended events are exactly that submitter's batch.
    pub fn retract(&self, tenant: TenantId, n: u64) {
        let mut shard = self.shard(tenant);
        let wal = shard.get_mut(&tenant).expect("tenant registered in WAL");
        debug_assert!(
            wal.appended - wal.enqueued >= n,
            "retract of an acknowledged batch"
        );
        for _ in 0..n {
            wal.suffix.pop_back();
        }
        wal.appended -= n;
        wal.batches_appended -= 1;
    }

    /// Acknowledges the batch ticketed `(upto, batch_no)` as accepted by
    /// the worker whose `epoch` still reads `expected` — the epoch the
    /// submitter saw before taking the worker's sender. Returns `false`
    /// (recording nothing) when the worker was replaced in between: the
    /// batch may sit in a dead queue, so the submitter must resend it.
    ///
    /// The check-and-mark runs under the WAL shard lock and the
    /// supervisor bumps the epoch before reading the recovery spec under
    /// that same lock, so an acknowledgement is either visible to the
    /// recovery that replaces the worker, or rejected here.
    pub fn mark_enqueued_if(
        &self,
        tenant: TenantId,
        upto: u64,
        batch_no: u64,
        epoch: &AtomicU64,
        expected: u64,
    ) -> bool {
        let mut shard = self.shard(tenant);
        if epoch.load(Ordering::SeqCst) != expected {
            return false;
        }
        let wal = shard.get_mut(&tenant).expect("tenant registered in WAL");
        wal.enqueued = wal.enqueued.max(upto);
        wal.batches_enqueued = wal.batches_enqueued.max(batch_no);
        true
    }

    /// Records the batch ticketed `(upto, batch_no)` as applied. Called
    /// by the worker that just applied it, under the tenant's registry
    /// shard lock; a worker that holds a batch proves it was enqueued,
    /// so the enqueue watermark is raised too (the submitter's own
    /// acknowledgement may still be in flight — both marks are
    /// max-merges, so the order does not matter). Folds the applied
    /// prefix into the checkpoint once it exceeds `checkpoint_every`.
    pub fn mark_applied(&self, tenant: TenantId, upto: u64, batch_no: u64, checkpoint_every: u64) {
        let mut shard = self.shard(tenant);
        let wal = shard.get_mut(&tenant).expect("tenant registered in WAL");
        wal.applied = wal.applied.max(upto);
        wal.batches_applied = wal.batches_applied.max(batch_no);
        wal.enqueued = wal.enqueued.max(upto);
        wal.batches_enqueued = wal.batches_enqueued.max(batch_no);
        wal.truncate(checkpoint_every.max(1));
    }

    /// Events acknowledged but not applied (`enqueued - applied`).
    #[cfg(test)]
    pub fn lag(&self, tenant: TenantId) -> u64 {
        let shard = self.shard(tenant);
        shard
            .get(&tenant)
            .map_or(0, |wal| wal.enqueued - wal.applied)
    }

    /// Snapshot of what a recovery must replay for `tenant`.
    pub fn recovery_spec(&self, tenant: TenantId) -> Option<RecoverySpec> {
        let shard = self.shard(tenant);
        let wal = shard.get(&tenant)?;
        let full_end = (wal.enqueued - wal.offset) as usize;
        let lag_start = (wal.applied - wal.offset) as usize;
        let full_replay: Vec<FaultEvent> = wal.suffix.iter().copied().take(full_end).collect();
        Some(RecoverySpec {
            checkpoint: wal.checkpoint.clone(),
            lag_replay: full_replay[lag_start..].to_vec(),
            full_replay,
            lag_events: wal.enqueued - wal.applied,
            enqueued: wal.enqueued,
            batches_enqueued: wal.batches_enqueued,
        })
    }

    /// Marks a finished recovery: everything acknowledged is now
    /// applied, and the log is folded down to the checkpoint.
    pub fn complete_recovery(&self, tenant: TenantId) {
        let mut shard = self.shard(tenant);
        let wal = shard.get_mut(&tenant).expect("tenant registered in WAL");
        wal.applied = wal.enqueued;
        wal.batches_applied = wal.batches_enqueued;
        wal.truncate(1);
    }
}

impl TenantWal {
    /// Folds the applied prefix of the suffix into the checkpoint once
    /// it is at least `threshold` events long.
    fn truncate(&mut self, threshold: u64) {
        if self.applied - self.offset < threshold {
            return;
        }
        while self.offset < self.applied {
            let event = self
                .suffix
                .pop_front()
                .expect("applied events are in the suffix");
            self.checkpoint.apply(event);
            self.offset += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    fn inject(x: i32, y: i32) -> FaultEvent {
        FaultEvent::Inject(Coord::new(x, y))
    }

    fn repair(x: i32, y: i32) -> FaultEvent {
        FaultEvent::Repair(Coord::new(x, y))
    }

    #[test]
    fn watermarks_follow_the_batch_lifecycle() {
        let wal = Wal::new(4);
        wal.register(7, Mesh2D::square(8));
        let epoch = AtomicU64::new(0);

        let (upto, batch) = wal.append(7, &[inject(1, 1), inject(2, 2)]);
        assert_eq!((upto, batch), (2, 1));
        assert_eq!(wal.lag(7), 0, "appended but not acknowledged");

        assert!(wal.mark_enqueued_if(7, upto, batch, &epoch, 0));
        assert_eq!(wal.lag(7), 2);

        wal.mark_applied(7, upto, batch, 64);
        assert_eq!(wal.lag(7), 0);
    }

    #[test]
    fn epoch_mismatch_rejects_the_acknowledgement() {
        let wal = Wal::new(1);
        wal.register(1, Mesh2D::square(4));
        let epoch = AtomicU64::new(0);
        let (upto, batch) = wal.append(1, &[inject(0, 0)]);
        epoch.store(1, Ordering::SeqCst);
        assert!(!wal.mark_enqueued_if(1, upto, batch, &epoch, 0));
        assert_eq!(wal.lag(1), 0, "nothing recorded");
        assert!(wal.mark_enqueued_if(1, upto, batch, &epoch, 1));
        assert_eq!(wal.lag(1), 1);
    }

    #[test]
    fn retract_rolls_back_an_unacknowledged_batch() {
        let wal = Wal::new(1);
        wal.register(1, Mesh2D::square(4));
        let epoch = AtomicU64::new(0);
        let (u1, b1) = wal.append(1, &[inject(0, 0)]);
        assert!(wal.mark_enqueued_if(1, u1, b1, &epoch, 0));
        wal.append(1, &[inject(1, 1), inject(2, 2)]);
        wal.retract(1, 2);
        // The retracted batch's ticket is reusable: the next append gets
        // the same numbers.
        let (u2, b2) = wal.append(1, &[inject(3, 3)]);
        assert_eq!((u2, b2), (2, 2));
        let spec = wal.recovery_spec(1).unwrap();
        assert_eq!(
            spec.full_replay,
            vec![inject(0, 0)],
            "only acknowledged events replay"
        );
    }

    #[test]
    fn recovery_spec_slices_lag_and_checkpoint_folds_applied_prefix() {
        let wal = Wal::new(2);
        wal.register(3, Mesh2D::square(8));
        let epoch = AtomicU64::new(5);

        let (u1, b1) = wal.append(3, &[inject(1, 1), inject(2, 2)]);
        assert!(wal.mark_enqueued_if(3, u1, b1, &epoch, 5));
        wal.mark_applied(3, u1, b1, 1); // eager checkpoint: folds both events

        let (u2, b2) = wal.append(3, &[repair(1, 1), inject(4, 4)]);
        assert!(wal.mark_enqueued_if(3, u2, b2, &epoch, 5));
        // Worker dies before applying batch 2.
        let spec = wal.recovery_spec(3).unwrap();
        assert_eq!(spec.lag_events, 2);
        assert_eq!(spec.lag_replay, vec![repair(1, 1), inject(4, 4)]);
        assert_eq!(
            spec.full_replay, spec.lag_replay,
            "applied prefix was folded"
        );
        assert!(spec.checkpoint.is_faulty(Coord::new(1, 1)));
        assert!(spec.checkpoint.is_faulty(Coord::new(2, 2)));
        assert_eq!(spec.enqueued, 4);
        assert_eq!(spec.batches_enqueued, 2);

        wal.complete_recovery(3);
        assert_eq!(wal.lag(3), 0);
        let spec = wal.recovery_spec(3).unwrap();
        assert!(spec.full_replay.is_empty());
        assert!(
            !spec.checkpoint.is_faulty(Coord::new(1, 1)),
            "repair folded in"
        );
        assert!(spec.checkpoint.is_faulty(Coord::new(4, 4)));
    }

    #[test]
    fn lazy_checkpoint_keeps_the_suffix_until_threshold() {
        let wal = Wal::new(1);
        wal.register(1, Mesh2D::square(8));
        let epoch = AtomicU64::new(0);
        for i in 0..3 {
            let (u, b) = wal.append(1, &[inject(i, 0)]);
            assert!(wal.mark_enqueued_if(1, u, b, &epoch, 0));
            wal.mark_applied(1, u, b, 100);
        }
        let spec = wal.recovery_spec(1).unwrap();
        assert_eq!(spec.full_replay.len(), 3, "below threshold: nothing folded");
        assert_eq!(spec.lag_events, 0);
    }
}
