//! # mocp_serve — sharded multi-tenant MFP monitoring service
//!
//! The paper's construction exists so a *live* mesh can keep routing
//! while faults arrive; the
//! [`IncrementalEngine`](mocp_incremental::IncrementalEngine) maintains
//! one mesh's minimum faulty polygons event by event. This crate turns that
//! single-mesh library into a service: **thousands of tenant meshes**
//! monitored concurrently, each absorbing its own
//! [`FaultEvent`](mesh2d::FaultEvent) stream while point queries are
//! answered from maintained state.
//!
//! Architecture (one [`MonitorService`]):
//!
//! * a **sharded registry** of engines — tenants hash onto mutex-striped
//!   shards, so an event batch being applied to one tenant only blocks
//!   queries that land on the *same shard*, never the whole service;
//! * an **ingestion front** — [`MonitorService::submit`] routes a batch
//!   of events to the bounded MPSC queue ([`crossbeam::channel`]) of the
//!   worker that owns the tenant. One worker owns each tenant (by hash),
//!   so a tenant's events are applied **in arrival order**; bounded
//!   queues give natural backpressure ([`MonitorService::try_submit`]
//!   surfaces it as [`SubmitError::Backpressure`] instead of blocking);
//! * **worker threads** drain the queues, apply each batch through the
//!   tenant's engine, and fan the batch's **coalesced**
//!   [`StatusDelta`](mesh2d::StatusDelta) (at most one transition per
//!   node, self-cancelling churn dropped) out to the tenant's
//!   subscribers;
//! * **point queries** — [`node_status`](MonitorService::node_status),
//!   [`region_of`](MonitorService::region_of),
//!   [`counts`](MonitorService::counts),
//!   [`polygons`](MonitorService::polygons) — read the maintained engine
//!   state under the shard lock: O(1) or output-proportional, no
//!   reconstruction, timed into the `serve.query.us` histogram.
//!
//! [`MonitorService::quiesce`] blocks until every submitted event has
//! been applied — the barrier the deterministic workload generator and
//! the sequential-equivalence tests stand on: after a quiesce, each
//! tenant's engine state equals a fresh engine fed that tenant's event
//! stream sequentially, no matter how many ingest threads interleaved
//! their submissions.
//!
//! ## Fault tolerance
//!
//! The service survives its own failures the way the paper's meshes
//! survive theirs:
//!
//! * every batch is appended to a per-tenant **write-ahead log** before
//!   it is enqueued, so batches that die with a worker are replayed —
//!   [`MonitorService::quiesce`] still means "every accepted event is
//!   applied" across worker panics;
//! * a **supervisor** thread detects worker deaths, fences the dead
//!   worker, rebuilds mid-apply tenants (checkpoint + WAL replay),
//!   catches up coherent ones, and respawns a replacement;
//! * per-tenant **health** ([`TenantHealth`]) is surfaced through
//!   queries; a rebuilding tenant serves its last coherent snapshot
//!   instead of a half-applied engine, and poisoned locks are stripped,
//!   never propagated;
//! * [`MonitorService::ingest`] bounds backpressure with a deadline and
//!   seeded decorrelated-jitter retries ([`RetryPolicy`]), returning
//!   [`IngestError::Saturated`] instead of blocking forever;
//!   [`MonitorService::quiesce_timeout`] bounds the drain barrier;
//! * [`MonitorService::shutdown`] returns a [`ShutdownReport`] instead
//!   of panicking when a worker died;
//! * the [`chaos`] module drives all of it deterministically: seeded
//!   kill plans, intake/recovery gates, and a quiet panic hook for
//!   tests.
//!
//! ```
//! use mesh2d::{Coord, FaultEvent, Mesh2D, NodeStatus};
//! use mocp_serve::{MonitorService, ServeConfig};
//!
//! let service = MonitorService::start(ServeConfig::default());
//! service.create_tenant(7, Mesh2D::square(16));
//! let updates = service.subscribe(7, None).unwrap();
//! service
//!     .submit(7, vec![FaultEvent::Inject(Coord::new(3, 3))])
//!     .unwrap();
//! service.quiesce();
//! assert_eq!(service.node_status(7, Coord::new(3, 3)), Some(NodeStatus::Faulty));
//! assert_eq!(updates.recv().unwrap().delta.len(), 1);
//! service.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
mod config;
mod registry;
mod service;
mod supervisor;
mod wal;

pub use chaos::{ChaosControl, ChaosPlan, KillMode, KillSpec};
pub use config::ServeConfig;
pub use registry::TenantHealth;
pub use service::{
    IngestError, MonitorService, RetryPolicy, ServiceStatsSnapshot, ShutdownReport, StatusSnapshot,
    SubmitError, TenantCounts, TenantId, TenantUpdate,
};
