//! The monitoring service: ingestion front, supervised worker threads,
//! fan-out and point queries.
//!
//! # Fault tolerance
//!
//! Every batch is written to the per-tenant [`Wal`] *before* it is
//! offered to a worker queue, so a worker death never loses accepted
//! events. A dedicated supervisor thread watches for worker deaths
//! (panics — including chaos-injected ones — are reported by a drop
//! guard inside the worker), fences the dead worker (sender removed,
//! epoch bumped so in-flight enqueue acknowledgements are rejected and
//! resent), rebuilds or catches up every tenant the worker owned by WAL
//! replay, and spawns a replacement. Queries keep working throughout:
//! a tenant whose engine is coherent serves exact answers
//! ([`TenantHealth::Degraded`]); a tenant caught mid-apply serves its
//! last coherent snapshot ([`TenantHealth::Rebuilding`]) until replay
//! completes. Poisoned locks are stripped, never propagated.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, SendTimeoutError, Sender, TrySendError};
use mesh2d::{Coord, FaultEvent, Mesh2D, NodeStatus, Region, StatusDelta, StatusMap};
use mocp_incremental::IncrementalEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::chaos::{ChaosControl, ChaosPlan, KillMode, CHAOS_PANIC};
use crate::config::ServeConfig;
use crate::registry::{spread, CoherentSnapshot, ShardedRegistry, Tenant, TenantHealth};
use crate::supervisor;
use crate::wal::Wal;

/// Tenant identifier: one monitored mesh per id.
pub type TenantId = u64;

/// One coalesced status update fanned out to a tenant's subscribers:
/// everything one ingested batch changed, at most one transition per
/// node. Batches that change nothing produce no update.
#[derive(Clone, Debug)]
pub struct TenantUpdate {
    /// The tenant whose mesh changed.
    pub tenant: TenantId,
    /// The tenant's batch sequence number (1-based, increments per
    /// applied batch whether or not anything changed) — gaps tell a
    /// bounded subscriber how many updates it missed.
    pub seq: u64,
    /// The coalesced per-node transitions.
    pub delta: StatusDelta,
}

/// O(1) counters answered from one tenant's maintained state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantCounts {
    /// Faulty (black) nodes.
    pub faulty: usize,
    /// Non-faulty disabled (gray) nodes — the paper's Figure 9 metric,
    /// live.
    pub disabled_nonfaulty: usize,
    /// Live faulty components (= maintained polygons).
    pub components: usize,
    /// Events applied to this tenant so far (including no-ops).
    pub events_applied: u64,
    /// Batches applied to this tenant so far.
    pub seq: u64,
}

/// A coherent point-in-time view of one tenant's per-node statuses,
/// with the health it was served under. While the tenant is
/// [`Rebuilding`](TenantHealth::Rebuilding) the snapshot is the last
/// coherent state (stale but consistent); otherwise it is the live
/// engine state.
#[derive(Clone, Debug)]
pub struct StatusSnapshot {
    /// The tenant snapshotted.
    pub tenant: TenantId,
    /// Batch sequence number the statuses reflect.
    pub seq: u64,
    /// The tenant's health at capture time.
    pub health: TenantHealth,
    /// Per-node statuses.
    pub status: StatusMap,
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant id is not registered.
    UnknownTenant(TenantId),
    /// The owning worker's bounded queue is full
    /// ([`MonitorService::try_submit`] only; [`MonitorService::submit`]
    /// blocks instead).
    Backpressure(TenantId),
    /// The service is shutting down and no longer accepts events.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            SubmitError::Backpressure(t) => {
                write!(f, "ingestion queue full for tenant {t}'s worker")
            }
            SubmitError::Shutdown => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a deadline-bounded [`MonitorService::ingest`] gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// The tenant id is not registered.
    UnknownTenant(TenantId),
    /// The owning worker's queue stayed full past the retry policy's
    /// deadline/retry budget. The batch was fully rolled back — nothing
    /// is partially enqueued, and re-ingesting the same events later is
    /// safe.
    Saturated {
        /// The tenant whose worker was saturated.
        tenant: TenantId,
        /// Bounded sends attempted before giving up.
        retries: u32,
    },
    /// The service is shutting down and no longer accepts events.
    Shutdown,
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            IngestError::Saturated { tenant, retries } => write!(
                f,
                "tenant {tenant}'s worker stayed saturated through {retries} bounded retries"
            ),
            IngestError::Shutdown => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Deadline/retry policy for [`MonitorService::ingest`]: bounded sends
/// with decorrelated-jitter backoff, then a typed
/// [`IngestError::Saturated`] instead of blocking forever.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total time budget across all attempts (default 250 ms).
    pub deadline: Duration,
    /// Bounded-send attempts after the first before giving up
    /// (default 8).
    pub max_retries: u32,
    /// Initial/minimum backoff wait (default 500 µs).
    pub base: Duration,
    /// Maximum single backoff wait (default 20 ms).
    pub cap: Duration,
    /// Seed of the jitter RNG (mixed with the tenant id, so tenants
    /// back off decorrelated even under one seed; default 0).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            deadline: Duration::from_millis(250),
            max_retries: 8,
            base: Duration::from_micros(500),
            cap: Duration::from_millis(20),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy (250 ms deadline, 8 retries, 500 µs..20 ms
    /// decorrelated-jitter backoff).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the total deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the minimum backoff wait.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Sets the maximum backoff wait.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// What [`MonitorService::shutdown`] observed: faults survived and work
/// replayed over the service's lifetime. Returned instead of panicking
/// (a worker panic is the service's problem to absorb, not the
/// caller's).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Worker threads that died by panic (chaos-injected or genuine).
    pub panicked_workers: u64,
    /// Events re-applied from the write-ahead log by recoveries
    /// (supervisor restarts and the final shutdown sweep).
    pub replayed_events: u64,
    /// Replacement workers the supervisor spawned.
    pub supervisor_restarts: u64,
}

/// A snapshot of the service-wide counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Event batches applied by the workers.
    pub batches: u64,
    /// Events applied (including per-engine no-ops).
    pub events: u64,
    /// Point queries answered.
    pub queries: u64,
    /// Coalesced updates delivered to subscribers.
    pub updates_sent: u64,
    /// Updates dropped because a bounded subscriber was full.
    pub updates_dropped: u64,
    /// Replacement workers spawned by the supervisor.
    pub restarts: u64,
    /// Events re-applied from the write-ahead log.
    pub replayed_events: u64,
    /// Bounded ingest sends that timed out and backed off.
    pub ingest_retries: u64,
    /// Ingest calls that gave up saturated.
    pub ingest_saturated: u64,
    /// Worker threads that died by panic.
    pub panicked_workers: u64,
}

#[derive(Default)]
pub(crate) struct ServiceStats {
    pub batches: AtomicU64,
    pub events: AtomicU64,
    pub queries: AtomicU64,
    pub updates_sent: AtomicU64,
    pub updates_dropped: AtomicU64,
    pub restarts: AtomicU64,
    pub replayed_events: AtomicU64,
    pub ingest_retries: AtomicU64,
    pub ingest_saturated: AtomicU64,
    pub panicked_workers: AtomicU64,
}

impl ServiceStats {
    fn snapshot(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            updates_sent: self.updates_sent.load(Ordering::Relaxed),
            updates_dropped: self.updates_dropped.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            replayed_events: self.replayed_events.load(Ordering::Relaxed),
            ingest_retries: self.ingest_retries.load(Ordering::Relaxed),
            ingest_saturated: self.ingest_saturated.load(Ordering::Relaxed),
            panicked_workers: self.panicked_workers.load(Ordering::Relaxed),
        }
    }
}

/// Submitted-vs-applied event accounting behind
/// [`MonitorService::quiesce`]. A mutex-guarded pair (not two atomics):
/// `quiesce` must observe `applied == submitted` consistently, and the
/// ledger is touched once per *batch*, so the lock is off the per-event
/// path. Poison is stripped: the ledger stays usable after a worker
/// panic.
#[derive(Default)]
pub(crate) struct Ledger {
    counts: Mutex<(u64, u64)>, // (submitted, applied)
    drained: Condvar,
}

impl Ledger {
    fn lock(&self) -> std::sync::MutexGuard<'_, (u64, u64)> {
        self.counts.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn add_submitted(&self, n: u64) {
        self.lock().0 += n;
    }

    /// Compensation for a submission the channel refused after the
    /// submitted count was already bumped.
    fn retract_submitted(&self, n: u64) {
        self.lock().0 -= n;
        self.drained.notify_all();
    }

    pub(crate) fn add_applied(&self, n: u64) {
        let mut counts = self.lock();
        counts.1 += n;
        if counts.1 >= counts.0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut counts = self.lock();
        while counts.1 < counts.0 {
            counts = self
                .drained
                .wait(counts)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Like [`wait_drained`](Self::wait_drained) with a bound: `false`
    /// when the timeout elapsed first.
    fn wait_drained_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut counts = self.lock();
        while counts.1 < counts.0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            counts = self
                .drained
                .wait_timeout(counts, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        true
    }
}

/// One queued unit of ingestion: a tenant's events, applied atomically
/// under the tenant's shard lock and fanned out as one coalesced update.
/// Carries its WAL ticket — the tenant's absolute event and batch
/// counts at append — so application is idempotent under resends.
#[derive(Clone)]
pub(crate) struct Batch {
    tenant: TenantId,
    events: Vec<FaultEvent>,
    /// Tenant's absolute event count after this batch (WAL ticket).
    upto: u64,
    /// Tenant's absolute batch count after this batch (WAL ticket).
    batch_no: u64,
}

/// A worker death noticed by its [`DeathWatch`]. Whether the death was
/// a panic is established authoritatively when the supervisor joins the
/// corpse.
#[derive(Clone, Copy, Debug)]
pub(crate) struct WorkerDeath {
    pub worker: usize,
}

/// One worker's replaceable attachment points: the live queue sender
/// (taken while the worker is down) and its join handle.
#[derive(Default)]
pub(crate) struct Slot {
    pub sender: Mutex<Option<Sender<Batch>>>,
    pub handle: Mutex<Option<JoinHandle<()>>>,
}

/// Everything shared between the front (submitters, queries), the
/// workers and the supervisor.
pub(crate) struct Core {
    pub config: ServeConfig,
    pub registry: ShardedRegistry,
    pub wal: Wal,
    pub ledger: Ledger,
    pub stats: ServiceStats,
    pub slots: Vec<Slot>,
    /// Per-worker fencing epochs: bumped by the supervisor before it
    /// reads recovery specs, checked by submitters before they record
    /// an enqueue acknowledgement (see [`Wal::mark_enqueued_if`]).
    pub epochs: Vec<AtomicU64>,
    pub shutting_down: AtomicBool,
    pub deaths: Mutex<VecDeque<WorkerDeath>>,
    pub death_signal: Condvar,
    pub chaos: ChaosControl,
}

impl Core {
    pub fn worker_of(&self, tenant: TenantId) -> usize {
        (spread(tenant) % self.slots.len() as u64) as usize
    }

    fn sender_of(&self, worker: usize) -> Option<Sender<Batch>> {
        self.slots[worker]
            .sender
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// The sharded multi-tenant monitoring service. See the [crate
/// docs](crate) for the architecture and the [module
/// docs](self) for the fault-tolerance design.
///
/// Dropping the service shuts it down: queued batches are still drained
/// (no accepted event is lost, even across worker deaths — WAL replay
/// covers batches that died with their worker), then the workers exit
/// and are joined. [`shutdown`](Self::shutdown) does the same
/// explicitly and returns what happened.
pub struct MonitorService {
    core: Arc<Core>,
    supervisor: Option<JoinHandle<()>>,
}

impl MonitorService {
    /// Starts the service: builds the shard stripes and spawns the
    /// ingestion workers and their supervisor.
    pub fn start(config: ServeConfig) -> MonitorService {
        Self::start_with_chaos(config, ChaosPlan::none())
    }

    /// Starts the service with a [`ChaosPlan`] armed: workers consult
    /// the plan on every dequeued batch and die at the scheduled points.
    /// With the empty plan this is exactly [`start`](Self::start) (the
    /// gates of [`chaos`](Self::chaos) work either way).
    pub fn start_with_chaos(config: ServeConfig, plan: ChaosPlan) -> MonitorService {
        let workers = config.workers.max(1);
        let core = Arc::new(Core {
            config,
            registry: ShardedRegistry::new(config.shards),
            wal: Wal::new(config.shards),
            ledger: Ledger::default(),
            stats: ServiceStats::default(),
            slots: (0..workers).map(|_| Slot::default()).collect(),
            epochs: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            shutting_down: AtomicBool::new(false),
            deaths: Mutex::new(VecDeque::new()),
            death_signal: Condvar::new(),
            chaos: ChaosControl::new(plan),
        });
        for w in 0..workers {
            spawn_worker(&core, w);
        }
        let supervisor = supervisor::spawn(Arc::clone(&core));
        MonitorService {
            core,
            supervisor: Some(supervisor),
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// The live fault-injection surface: gates and counters (inert but
    /// functional on plainly started services).
    pub fn chaos(&self) -> &ChaosControl {
        &self.core.chaos
    }

    /// Registers a fresh fault-free tenant mesh, using the configured
    /// centralized solution. Returns `false` (and changes nothing) when
    /// the id is already registered. Tenants are never removed.
    pub fn create_tenant(&self, tenant: TenantId, mesh: Mesh2D) -> bool {
        // WAL entry first: a worker can touch the tenant the instant it
        // is visible in the registry, and the WAL must already be there.
        self.core.wal.register(tenant, mesh);
        let created = self.core.registry.insert(
            tenant,
            Tenant::new(IncrementalEngine::with_solution(
                mesh,
                self.core.config.solution,
            )),
        );
        if created {
            mocp_obs::gauge!("serve.tenants").set(self.core.registry.len() as i64);
        }
        created
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.core.registry.len()
    }

    /// Submits a batch of events for `tenant`, blocking while the owning
    /// worker's queue is full (backpressure) and riding out worker
    /// deaths (the batch is resent to the replacement worker if its
    /// acceptance could not be confirmed). Events of one tenant are
    /// applied in submission order as long as each tenant is fed from
    /// one thread at a time. An empty batch is a no-op.
    pub fn submit(&self, tenant: TenantId, events: Vec<FaultEvent>) -> Result<(), SubmitError> {
        if events.is_empty() {
            return Ok(());
        }
        if !self.core.registry.contains(tenant) {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let core = &self.core;
        let n = events.len() as u64;
        // Submitted is bumped before the send so `applied <= submitted`
        // holds at every instant a worker could observe the batch; the
        // WAL append precedes the send so no accepted event can be lost.
        core.ledger.add_submitted(n);
        let (upto, batch_no) = core.wal.append(tenant, &events);
        let worker = core.worker_of(tenant);
        loop {
            if core.shutting_down.load(Ordering::SeqCst) {
                core.wal.retract(tenant, n);
                core.ledger.retract_submitted(n);
                return Err(SubmitError::Shutdown);
            }
            let epoch = core.epochs[worker].load(Ordering::SeqCst);
            let Some(sender) = core.sender_of(worker) else {
                // The worker is down and being replaced; wait it out.
                std::thread::sleep(Duration::from_micros(200));
                continue;
            };
            let batch = Batch {
                tenant,
                events: events.clone(),
                upto,
                batch_no,
            };
            match sender.send(batch) {
                Ok(())
                    if core.wal.mark_enqueued_if(
                        tenant,
                        upto,
                        batch_no,
                        &core.epochs[worker],
                        epoch,
                    ) =>
                {
                    mocp_obs::counter!("serve.submitted").add(n);
                    return Ok(());
                }
                // Epoch moved mid-send: the batch may sit in a dead
                // queue, so resend to the replacement (idempotent —
                // workers skip batches whose ticket is already applied).
                Ok(()) => {}
                // Queue died under us: the owning worker is being
                // replaced.
                Err(_) => std::thread::sleep(Duration::from_micros(200)),
            }
        }
    }

    /// Like [`submit`](Self::submit) but never blocks: a full worker
    /// queue (or one fenced off for recovery) returns
    /// [`SubmitError::Backpressure`] with the batch fully rolled back —
    /// nothing is partially enqueued and resubmitting later is safe.
    pub fn try_submit(&self, tenant: TenantId, events: Vec<FaultEvent>) -> Result<(), SubmitError> {
        if events.is_empty() {
            return Ok(());
        }
        if !self.core.registry.contains(tenant) {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let core = &self.core;
        let n = events.len() as u64;
        core.ledger.add_submitted(n);
        let (upto, batch_no) = core.wal.append(tenant, &events);
        let worker = core.worker_of(tenant);
        let rollback = |err| {
            core.wal.retract(tenant, n);
            core.ledger.retract_submitted(n);
            Err(err)
        };
        let epoch = core.epochs[worker].load(Ordering::SeqCst);
        let Some(sender) = core.sender_of(worker) else {
            mocp_obs::counter!("serve.backpressure").inc();
            return rollback(SubmitError::Backpressure(tenant));
        };
        let batch = Batch {
            tenant,
            events: events.clone(),
            upto,
            batch_no,
        };
        match sender.try_send(batch) {
            Ok(())
                if core.wal.mark_enqueued_if(
                    tenant,
                    upto,
                    batch_no,
                    &core.epochs[worker],
                    epoch,
                ) =>
            {
                mocp_obs::counter!("serve.submitted").add(n);
                Ok(())
            }
            // Accepted by a queue that died mid-send: roll back (the
            // unacknowledged batch is invisible to recovery) and report
            // backpressure so the caller retries.
            Ok(()) => {
                mocp_obs::counter!("serve.backpressure").inc();
                rollback(SubmitError::Backpressure(tenant))
            }
            Err(TrySendError::Full(_)) => {
                mocp_obs::counter!("serve.backpressure").inc();
                rollback(SubmitError::Backpressure(tenant))
            }
            Err(TrySendError::Disconnected(_)) => {
                if core.shutting_down.load(Ordering::SeqCst) {
                    rollback(SubmitError::Shutdown)
                } else {
                    mocp_obs::counter!("serve.backpressure").inc();
                    rollback(SubmitError::Backpressure(tenant))
                }
            }
        }
    }

    /// Deadline-bounded submission: like [`submit`](Self::submit) but a
    /// persistently full queue makes bounded attempts with
    /// decorrelated-jitter backoff (seeded — reproducible) and then
    /// returns [`IngestError::Saturated`] with the batch fully rolled
    /// back, instead of blocking forever.
    pub fn ingest(
        &self,
        tenant: TenantId,
        events: Vec<FaultEvent>,
        policy: &RetryPolicy,
    ) -> Result<(), IngestError> {
        if events.is_empty() {
            return Ok(());
        }
        if !self.core.registry.contains(tenant) {
            return Err(IngestError::UnknownTenant(tenant));
        }
        let core = &self.core;
        let n = events.len() as u64;
        core.ledger.add_submitted(n);
        let (upto, batch_no) = core.wal.append(tenant, &events);
        let worker = core.worker_of(tenant);
        let deadline = Instant::now() + policy.deadline;
        let mut rng = StdRng::seed_from_u64(policy.seed ^ spread(tenant));
        let mut wait = policy.base.max(Duration::from_nanos(1));
        let mut retries = 0u32;
        let saturate = |retries| {
            core.wal.retract(tenant, n);
            core.ledger.retract_submitted(n);
            core.stats.ingest_saturated.fetch_add(1, Ordering::Relaxed);
            mocp_obs::counter!("serve.ingest.saturated").inc();
            Err(IngestError::Saturated { tenant, retries })
        };
        loop {
            if core.shutting_down.load(Ordering::SeqCst) {
                core.wal.retract(tenant, n);
                core.ledger.retract_submitted(n);
                return Err(IngestError::Shutdown);
            }
            let epoch = core.epochs[worker].load(Ordering::SeqCst);
            let Some(sender) = core.sender_of(worker) else {
                // Worker down; its replacement is the supervisor's job,
                // bounded by our own deadline.
                if Instant::now() >= deadline {
                    return saturate(retries);
                }
                std::thread::sleep(Duration::from_micros(200));
                continue;
            };
            let batch = Batch {
                tenant,
                events: events.clone(),
                upto,
                batch_no,
            };
            // The backoff wait doubles as send time: waiting *inside*
            // the bounded send reacts the instant a slot opens.
            let attempt_deadline = deadline.min(Instant::now() + wait);
            match sender.send_deadline(batch, attempt_deadline) {
                Ok(())
                    if core.wal.mark_enqueued_if(
                        tenant,
                        upto,
                        batch_no,
                        &core.epochs[worker],
                        epoch,
                    ) =>
                {
                    mocp_obs::counter!("serve.submitted").add(n);
                    return Ok(());
                }
                // Worker replaced mid-send: resend (not a saturation).
                Ok(()) => {}
                Err(SendTimeoutError::Timeout(_)) => {
                    retries += 1;
                    core.stats.ingest_retries.fetch_add(1, Ordering::Relaxed);
                    mocp_obs::counter!("serve.ingest.retries").inc();
                    if retries > policy.max_retries || Instant::now() >= deadline {
                        return saturate(retries);
                    }
                    // Decorrelated jitter: next wait is uniform in
                    // [base, 3·previous), clamped to the cap.
                    let base_ns = policy.base.as_nanos().max(1) as u64;
                    let prev_ns = wait.as_nanos() as u64;
                    let hi = prev_ns.saturating_mul(3).max(base_ns + 1);
                    wait = Duration::from_nanos(rng.gen_range(base_ns..hi)).min(policy.cap);
                }
                Err(SendTimeoutError::Disconnected(_)) => {
                    if Instant::now() >= deadline {
                        return saturate(retries);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
    }

    /// Blocks until every event submitted so far has been applied. New
    /// submissions racing with the wait extend it; with submissions
    /// stopped this is the "all queues drained" barrier. Worker deaths
    /// extend the wait only until recovery replays the lost events.
    pub fn quiesce(&self) {
        self.core.ledger.wait_drained();
    }

    /// Like [`quiesce`](Self::quiesce) with a bound: `true` when the
    /// service drained, `false` when `timeout` elapsed first (events
    /// still in flight — the service keeps working on them).
    pub fn quiesce_timeout(&self, timeout: Duration) -> bool {
        self.core.ledger.wait_drained_timeout(timeout)
    }

    /// Registers a subscriber for `tenant`'s coalesced updates and
    /// returns the receiving end. `capacity: None` subscribes over an
    /// unbounded channel (never misses an update); `Some(n)` bounds the
    /// buffer at `n` updates and *drops* updates while the subscriber is
    /// full — the worker never stalls on a slow consumer, and `seq` gaps
    /// tell the subscriber what it missed (see
    /// [`LiveReroute`](../mocp_traffic) consumers for gap recovery).
    /// `None` is returned for unknown tenants. Dropping the receiver
    /// unsubscribes (lazily, at the next fan-out).
    pub fn subscribe(
        &self,
        tenant: TenantId,
        capacity: Option<usize>,
    ) -> Option<Receiver<TenantUpdate>> {
        let (tx, rx) = match capacity {
            Some(n) => channel::bounded(n),
            None => channel::unbounded(),
        };
        self.core
            .registry
            .with(tenant, move |state| state.subscribers.push(tx))
            .map(|()| rx)
    }

    /// The tenant's current serving health; `None` for unknown tenants.
    pub fn health(&self, tenant: TenantId) -> Option<TenantHealth> {
        self.core.registry.with(tenant, |state| state.health)
    }

    /// A coherent per-node status snapshot of one tenant — the live
    /// state when the tenant is healthy, the last coherent snapshot
    /// while it is rebuilding; `None` for unknown tenants. This is the
    /// resynchronization primitive for subscribers that detected a
    /// `seq` gap.
    pub fn status_snapshot(&self, tenant: TenantId) -> Option<StatusSnapshot> {
        self.core.registry.with(tenant, |state| match state.health {
            TenantHealth::Rebuilding => StatusSnapshot {
                tenant,
                seq: state.snapshot.seq,
                health: state.health,
                status: state.snapshot.status.clone(),
            },
            _ => StatusSnapshot {
                tenant,
                seq: state.seq,
                health: state.health,
                status: state.engine.status().clone(),
            },
        })
    }

    /// The maintained status of one node: `None` for unknown tenants and
    /// out-of-mesh coordinates. Served from the last coherent snapshot
    /// while the tenant is rebuilding.
    pub fn node_status(&self, tenant: TenantId, c: Coord) -> Option<NodeStatus> {
        self.query_tenant(tenant, |state| match state.health {
            TenantHealth::Rebuilding => state.snapshot.status.get(c),
            _ => state.engine.status().get(c),
        })
        .flatten()
    }

    /// The maintained minimum polygon containing the node, if any (see
    /// [`IncrementalEngine::region_of`]): `None` for unknown tenants,
    /// out-of-mesh coordinates and enabled nodes. Served from the last
    /// coherent snapshot while the tenant is rebuilding.
    pub fn region_of(&self, tenant: TenantId, c: Coord) -> Option<Region> {
        self.query_tenant(tenant, |state| match state.health {
            TenantHealth::Rebuilding => state
                .snapshot
                .polygons
                .iter()
                .find(|region| region.contains(c))
                .cloned(),
            _ => state.engine.region_of(c),
        })
        .flatten()
    }

    /// O(1) counters for one tenant; `None` for unknown tenants. Served
    /// from the last coherent snapshot while the tenant is rebuilding.
    pub fn counts(&self, tenant: TenantId) -> Option<TenantCounts> {
        self.query_tenant(tenant, |state| match state.health {
            TenantHealth::Rebuilding => TenantCounts {
                faulty: state.snapshot.faulty,
                disabled_nonfaulty: state.snapshot.disabled_nonfaulty,
                components: state.snapshot.polygons.len(),
                events_applied: state.snapshot.events_applied,
                seq: state.snapshot.seq,
            },
            _ => TenantCounts {
                faulty: state.engine.faulty_count(),
                disabled_nonfaulty: state.engine.disabled_nonfaulty(),
                components: state.engine.component_count(),
                events_applied: state.events_applied,
                seq: state.seq,
            },
        })
    }

    /// A snapshot of every maintained polygon of one tenant, in
    /// deterministic component order; `None` for unknown tenants. Served
    /// from the last coherent snapshot while the tenant is rebuilding.
    pub fn polygons(&self, tenant: TenantId) -> Option<Vec<Region>> {
        self.query_tenant(tenant, |state| match state.health {
            TenantHealth::Rebuilding => state.snapshot.polygons.clone(),
            _ => state.engine.polygons(),
        })
    }

    /// Service-wide counters.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        self.core.stats.snapshot()
    }

    /// Shuts the service down: disconnects the ingestion queues, lets
    /// the workers drain what was already queued, joins everything, and
    /// replays whatever a late worker death left behind. Never panics —
    /// worker panics are counted in the returned [`ShutdownReport`].
    pub fn shutdown(mut self) -> ShutdownReport {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> ShutdownReport {
        let core = &self.core;
        core.shutting_down.store(true, Ordering::SeqCst);
        // Wake everyone parked on a gate or the death signal; they
        // re-check the flag and fall through.
        core.chaos.notify_shutdown();
        core.death_signal.notify_all();
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Disconnect the queues: workers drain what is queued and exit.
        for slot in &core.slots {
            slot.sender
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
        }
        for slot in &core.slots {
            let handle = slot
                .handle
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            if let Some(handle) = handle {
                if handle.join().is_err() {
                    core.stats.panicked_workers.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Final sweep: a death during the drain had no supervisor left
        // to recover it — replay whatever the WAL still holds.
        for tenant in core.registry.ids() {
            supervisor::recover_tenant(core, tenant);
        }
        let stats = core.stats.snapshot();
        ShutdownReport {
            panicked_workers: stats.panicked_workers,
            replayed_events: stats.replayed_events,
            supervisor_restarts: stats.restarts,
        }
    }

    /// Runs one timed point query against a tenant's state.
    fn query_tenant<R>(&self, tenant: TenantId, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let _span = mocp_obs::span!("serve.query");
        self.core.stats.queries.fetch_add(1, Ordering::Relaxed);
        mocp_obs::counter!("serve.queries").inc();
        self.core.registry.with(tenant, f)
    }
}

impl Drop for MonitorService {
    fn drop(&mut self) {
        if !self.core.shutting_down.load(Ordering::SeqCst) {
            self.shutdown_in_place();
        }
    }
}

impl fmt::Debug for MonitorService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorService")
            .field("config", &self.core.config)
            .field("tenants", &self.core.registry.len())
            .field("workers", &self.core.slots.len())
            .field("stats", &self.core.stats.snapshot())
            .finish()
    }
}

/// Spawns (or respawns) worker `w`: fresh bounded queue, thread, then
/// the sender is published last so no batch can race the handle into
/// the slot.
pub(crate) fn spawn_worker(core: &Arc<Core>, w: usize) {
    let (tx, rx) = channel::bounded::<Batch>(core.config.queue_capacity.max(1));
    let handle = std::thread::Builder::new()
        .name(format!("mocp-serve-{w}"))
        .spawn({
            let core = Arc::clone(core);
            move || worker_loop(&core, w, rx)
        })
        .expect("worker thread spawn cannot fail");
    *core.slots[w]
        .handle
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(handle);
    *core.slots[w]
        .sender
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = Some(tx);
}

/// Reports the enclosing worker's death to the supervisor from its
/// `Drop` — the one hook that still runs when the worker panics.
struct DeathWatch<'a> {
    core: &'a Core,
    worker: usize,
}

impl Drop for DeathWatch<'_> {
    fn drop(&mut self) {
        let panicked = std::thread::panicking();
        if !panicked && self.core.shutting_down.load(Ordering::SeqCst) {
            return; // orderly exit at shutdown, not a death
        }
        let mut deaths = self
            .core
            .deaths
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        deaths.push_back(WorkerDeath {
            worker: self.worker,
        });
        drop(deaths);
        self.core.death_signal.notify_all();
    }
}

/// One worker: drain the queue, apply each batch under its tenant's
/// shard lock, fan out the coalesced delta. Exits when the service
/// disconnects the queue *and* every queued batch has been processed;
/// a panic (chaos-injected or genuine) is reported by the
/// [`DeathWatch`], which drops before the queue receiver.
fn worker_loop(core: &Core, worker: usize, queue: Receiver<Batch>) {
    let _watch = DeathWatch { core, worker };
    while let Ok(batch) = queue.recv() {
        let mut panic_after = None;
        if let Some(mode) = core.chaos.on_dequeue(&core.shutting_down) {
            match mode {
                KillMode::Clean => {
                    std::panic::panic_any(format!("{CHAOS_PANIC}: clean kill of worker {worker}"))
                }
                KillMode::MidApply { after_events } => {
                    // Clamp so the kill always fires inside this batch.
                    panic_after = Some(after_events.min(batch.events.len().saturating_sub(1)));
                }
            }
        }
        apply_batch(core, batch, panic_after);
    }
}

/// Applies one batch to its tenant under the shard lock. A duplicate
/// resend (the WAL ticket shows the batch already applied) is skipped
/// entirely.
///
/// Health dips to `Rebuilding` for the duration of the mutation and
/// back to `Live` before the lock is released: invisible in normal
/// operation, but a panic mid-apply (chaos or genuine) leaves the
/// quarantine marker set, so every later reader serves the snapshot
/// instead of the half-applied engine.
fn apply_batch(core: &Core, batch: Batch, panic_after: Option<usize>) {
    let _span = mocp_obs::span!("serve.apply");
    let tenant = batch.tenant;
    core.registry
        .with(tenant, |state| {
            if batch.upto <= state.events_applied {
                // Duplicate of an applied batch (resent because the
                // submitter's acknowledgement raced a recovery).
                return;
            }
            state.health = TenantHealth::Rebuilding;
            let mut delta = StatusDelta::new();
            for (i, &event) in batch.events.iter().enumerate() {
                if panic_after == Some(i) {
                    std::panic::panic_any(format!(
                        "{CHAOS_PANIC}: mid-apply kill in tenant {tenant}"
                    ));
                }
                delta.extend(state.engine.apply(event));
            }
            let n = batch.events.len() as u64;
            state.seq = batch.batch_no;
            state.events_applied = batch.upto;
            // Applied mark and ledger credit inside the lock: recovery
            // observes the engine mutation and its accounting atomically.
            core.wal.mark_applied(
                tenant,
                batch.upto,
                batch.batch_no,
                core.config.wal_checkpoint_every,
            );
            if state.seq - state.snapshot.seq >= core.config.snapshot_every.max(1) {
                state.snapshot =
                    CoherentSnapshot::capture(&state.engine, state.seq, state.events_applied);
            }
            state.health = TenantHealth::Live;
            let (sent, dropped) = fan_out(state, tenant, delta);
            core.stats.batches.fetch_add(1, Ordering::Relaxed);
            core.stats.events.fetch_add(n, Ordering::Relaxed);
            core.stats.updates_sent.fetch_add(sent, Ordering::Relaxed);
            core.stats
                .updates_dropped
                .fetch_add(dropped, Ordering::Relaxed);
            mocp_obs::counter!("serve.batches").inc();
            mocp_obs::counter!("serve.events").add(n);
            // Ledger credit last: when `quiesce` returns, every applied
            // batch's update and counters are already visible.
            core.ledger.add_applied(n);
        })
        // Unknown tenants cannot happen today (submit checks and tenants
        // are never removed), but losing that race must not wedge the
        // ledger: the batch was never marked enqueued, so nothing leaks.
        .unwrap_or(())
}

/// Delivers one batch's coalesced delta to the tenant's subscribers.
/// Returns `(updates sent, updates dropped)`; disconnected subscribers
/// are unregistered.
pub(crate) fn fan_out(state: &mut Tenant, tenant: TenantId, delta: StatusDelta) -> (u64, u64) {
    if state.subscribers.is_empty() {
        return (0, 0);
    }
    let coalesced = delta.coalesced();
    if coalesced.is_empty() {
        return (0, 0);
    }
    mocp_obs::counter!("serve.fanout_deltas").add(coalesced.len() as u64);
    let seq = state.seq;
    let mut sent = 0;
    let mut dropped = 0;
    state.subscribers.retain(|subscriber| {
        let update = TenantUpdate {
            tenant,
            seq,
            delta: coalesced.clone(),
        };
        match subscriber.try_send(update) {
            Ok(()) => {
                sent += 1;
                true
            }
            Err(TrySendError::Full(_)) => {
                // A slow bounded subscriber loses this update instead of
                // stalling ingestion; the seq gap tells it so.
                dropped += 1;
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    });
    if dropped > 0 {
        mocp_obs::counter!("serve.fanout_dropped").add(dropped);
    }
    (sent, dropped)
}
