//! The monitoring service: ingestion front, worker threads, fan-out and
//! point queries.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use mesh2d::{Coord, FaultEvent, Mesh2D, NodeStatus, Region, StatusDelta};
use mocp_incremental::IncrementalEngine;

use crate::config::ServeConfig;
use crate::registry::{spread, ShardedRegistry, Tenant};

/// Tenant identifier: one monitored mesh per id.
pub type TenantId = u64;

/// One coalesced status update fanned out to a tenant's subscribers:
/// everything one ingested batch changed, at most one transition per
/// node. Batches that change nothing produce no update.
#[derive(Clone, Debug)]
pub struct TenantUpdate {
    /// The tenant whose mesh changed.
    pub tenant: TenantId,
    /// The tenant's batch sequence number (1-based, increments per
    /// applied batch whether or not anything changed) — gaps tell a
    /// bounded subscriber how many updates it missed.
    pub seq: u64,
    /// The coalesced per-node transitions.
    pub delta: StatusDelta,
}

/// O(1) counters answered from one tenant's maintained state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantCounts {
    /// Faulty (black) nodes.
    pub faulty: usize,
    /// Non-faulty disabled (gray) nodes — the paper's Figure 9 metric,
    /// live.
    pub disabled_nonfaulty: usize,
    /// Live faulty components (= maintained polygons).
    pub components: usize,
    /// Events applied to this tenant so far (including no-ops).
    pub events_applied: u64,
    /// Batches applied to this tenant so far.
    pub seq: u64,
}

/// Why a submission was not accepted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant id is not registered.
    UnknownTenant(TenantId),
    /// The owning worker's bounded queue is full
    /// ([`MonitorService::try_submit`] only; [`MonitorService::submit`]
    /// blocks instead).
    Backpressure(TenantId),
    /// The service is shutting down and no longer accepts events.
    Shutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            SubmitError::Backpressure(t) => {
                write!(f, "ingestion queue full for tenant {t}'s worker")
            }
            SubmitError::Shutdown => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A snapshot of the service-wide counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStatsSnapshot {
    /// Event batches applied by the workers.
    pub batches: u64,
    /// Events applied (including per-engine no-ops).
    pub events: u64,
    /// Point queries answered.
    pub queries: u64,
    /// Coalesced updates delivered to subscribers.
    pub updates_sent: u64,
    /// Updates dropped because a bounded subscriber was full.
    pub updates_dropped: u64,
}

#[derive(Default)]
struct ServiceStats {
    batches: AtomicU64,
    events: AtomicU64,
    queries: AtomicU64,
    updates_sent: AtomicU64,
    updates_dropped: AtomicU64,
}

impl ServiceStats {
    fn snapshot(&self) -> ServiceStatsSnapshot {
        ServiceStatsSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            events: self.events.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            updates_sent: self.updates_sent.load(Ordering::Relaxed),
            updates_dropped: self.updates_dropped.load(Ordering::Relaxed),
        }
    }
}

/// Submitted-vs-applied event accounting behind
/// [`MonitorService::quiesce`]. A mutex-guarded pair (not two atomics):
/// `quiesce` must observe `applied == submitted` consistently, and the
/// ledger is touched once per *batch*, so the lock is off the per-event
/// path.
#[derive(Default)]
struct Ledger {
    counts: Mutex<(u64, u64)>, // (submitted, applied)
    drained: Condvar,
}

impl Ledger {
    fn add_submitted(&self, n: u64) {
        self.counts.lock().expect("ledger poisoned").0 += n;
    }

    /// Compensation for a submission the channel refused after the
    /// submitted count was already bumped.
    fn retract_submitted(&self, n: u64) {
        self.counts.lock().expect("ledger poisoned").0 -= n;
        self.drained.notify_all();
    }

    fn add_applied(&self, n: u64) {
        let mut counts = self.counts.lock().expect("ledger poisoned");
        counts.1 += n;
        if counts.1 >= counts.0 {
            self.drained.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut counts = self.counts.lock().expect("ledger poisoned");
        while counts.1 < counts.0 {
            counts = self.drained.wait(counts).expect("ledger poisoned");
        }
    }
}

/// One queued unit of ingestion: a tenant's events, applied atomically
/// under the tenant's shard lock and fanned out as one coalesced update.
struct Batch {
    tenant: TenantId,
    events: Vec<FaultEvent>,
}

/// The sharded multi-tenant monitoring service. See the [crate
/// docs](crate) for the architecture.
///
/// Dropping the service shuts it down: queued batches are still drained
/// (no submitted event is lost), then the workers exit and are joined.
/// [`shutdown`](Self::shutdown) does the same explicitly.
pub struct MonitorService {
    config: ServeConfig,
    registry: Arc<ShardedRegistry>,
    /// One bounded queue per worker; cleared to disconnect on shutdown.
    queues: Vec<Sender<Batch>>,
    workers: Vec<JoinHandle<()>>,
    ledger: Arc<Ledger>,
    stats: Arc<ServiceStats>,
}

impl MonitorService {
    /// Starts the service: builds the shard stripes and spawns the
    /// ingestion workers.
    pub fn start(config: ServeConfig) -> MonitorService {
        let registry = Arc::new(ShardedRegistry::new(config.shards));
        let ledger = Arc::new(Ledger::default());
        let stats = Arc::new(ServiceStats::default());
        let mut queues = Vec::with_capacity(config.workers.max(1));
        let mut workers = Vec::with_capacity(config.workers.max(1));
        for w in 0..config.workers.max(1) {
            let (tx, rx) = channel::bounded::<Batch>(config.queue_capacity.max(1));
            queues.push(tx);
            let registry = Arc::clone(&registry);
            let ledger = Arc::clone(&ledger);
            let stats = Arc::clone(&stats);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mocp-serve-{w}"))
                    .spawn(move || worker_loop(&registry, &rx, &ledger, &stats))
                    .expect("worker thread spawn cannot fail"),
            );
        }
        MonitorService {
            config,
            registry,
            queues,
            workers,
            ledger,
            stats,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Registers a fresh fault-free tenant mesh, using the configured
    /// centralized solution. Returns `false` (and changes nothing) when
    /// the id is already registered. Tenants are never removed.
    pub fn create_tenant(&self, tenant: TenantId, mesh: Mesh2D) -> bool {
        let created = self.registry.insert(
            tenant,
            Tenant {
                engine: IncrementalEngine::with_solution(mesh, self.config.solution),
                seq: 0,
                events_applied: 0,
                subscribers: Vec::new(),
            },
        );
        if created {
            mocp_obs::gauge!("serve.tenants").set(self.registry.len() as i64);
        }
        created
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.registry.len()
    }

    /// Submits a batch of events for `tenant`, blocking while the owning
    /// worker's queue is full (backpressure). Events of one tenant are
    /// applied in submission order as long as each tenant is fed from
    /// one thread at a time. An empty batch is a no-op.
    pub fn submit(&self, tenant: TenantId, events: Vec<FaultEvent>) -> Result<(), SubmitError> {
        if events.is_empty() {
            return Ok(());
        }
        if !self.registry.contains(tenant) {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let n = events.len() as u64;
        // Submitted is bumped before the send so `applied <= submitted`
        // holds at every instant a worker could observe the batch.
        self.ledger.add_submitted(n);
        match self.queue_of(tenant).send(Batch { tenant, events }) {
            Ok(()) => {
                mocp_obs::counter!("serve.submitted").add(n);
                Ok(())
            }
            Err(_) => {
                self.ledger.retract_submitted(n);
                Err(SubmitError::Shutdown)
            }
        }
    }

    /// Like [`submit`](Self::submit) but never blocks: a full worker
    /// queue returns [`SubmitError::Backpressure`] and hands the events
    /// back via the error (the batch is not partially enqueued).
    pub fn try_submit(&self, tenant: TenantId, events: Vec<FaultEvent>) -> Result<(), SubmitError> {
        if events.is_empty() {
            return Ok(());
        }
        if !self.registry.contains(tenant) {
            return Err(SubmitError::UnknownTenant(tenant));
        }
        let n = events.len() as u64;
        self.ledger.add_submitted(n);
        match self.queue_of(tenant).try_send(Batch { tenant, events }) {
            Ok(()) => {
                mocp_obs::counter!("serve.submitted").add(n);
                Ok(())
            }
            Err(TrySendError::Full(_)) => {
                self.ledger.retract_submitted(n);
                mocp_obs::counter!("serve.backpressure").inc();
                Err(SubmitError::Backpressure(tenant))
            }
            Err(TrySendError::Disconnected(_)) => {
                self.ledger.retract_submitted(n);
                Err(SubmitError::Shutdown)
            }
        }
    }

    /// Blocks until every event submitted so far has been applied. New
    /// submissions racing with the wait extend it; with submissions
    /// stopped this is the "all queues drained" barrier.
    pub fn quiesce(&self) {
        self.ledger.wait_drained();
    }

    /// Registers a subscriber for `tenant`'s coalesced updates and
    /// returns the receiving end. `capacity: None` subscribes over an
    /// unbounded channel (never misses an update); `Some(n)` bounds the
    /// buffer at `n` updates and *drops* updates while the subscriber is
    /// full — the worker never stalls on a slow consumer, and `seq` gaps
    /// tell the subscriber what it missed. `None` is returned for
    /// unknown tenants. Dropping the receiver unsubscribes (lazily, at
    /// the next fan-out).
    pub fn subscribe(
        &self,
        tenant: TenantId,
        capacity: Option<usize>,
    ) -> Option<Receiver<TenantUpdate>> {
        let (tx, rx) = match capacity {
            Some(n) => channel::bounded(n),
            None => channel::unbounded(),
        };
        self.registry
            .with(tenant, move |state| state.subscribers.push(tx))
            .map(|()| rx)
    }

    /// The maintained status of one node: `None` for unknown tenants and
    /// out-of-mesh coordinates.
    pub fn node_status(&self, tenant: TenantId, c: Coord) -> Option<NodeStatus> {
        self.query(tenant, |engine| engine.status().get(c))
            .flatten()
    }

    /// The maintained minimum polygon containing the node, if any (see
    /// [`IncrementalEngine::region_of`]): `None` for unknown tenants,
    /// out-of-mesh coordinates and enabled nodes.
    pub fn region_of(&self, tenant: TenantId, c: Coord) -> Option<Region> {
        self.query(tenant, |engine| engine.region_of(c)).flatten()
    }

    /// O(1) counters for one tenant; `None` for unknown tenants.
    pub fn counts(&self, tenant: TenantId) -> Option<TenantCounts> {
        self.query_tenant(tenant, |state| TenantCounts {
            faulty: state.engine.faulty_count(),
            disabled_nonfaulty: state.engine.disabled_nonfaulty(),
            components: state.engine.component_count(),
            events_applied: state.events_applied,
            seq: state.seq,
        })
    }

    /// A snapshot of every maintained polygon of one tenant, in
    /// deterministic component order; `None` for unknown tenants.
    pub fn polygons(&self, tenant: TenantId) -> Option<Vec<Region>> {
        self.query(tenant, |engine| engine.polygons())
    }

    /// Service-wide counters.
    pub fn stats(&self) -> ServiceStatsSnapshot {
        self.stats.snapshot()
    }

    /// Shuts the service down: disconnects the ingestion queues, lets
    /// the workers drain what was already queued, and joins them.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queues.clear();
        let mut worker_panicked = false;
        for handle in self.workers.drain(..) {
            worker_panicked |= handle.join().is_err();
        }
        if worker_panicked && !std::thread::panicking() {
            panic!("a mocp-serve worker thread panicked");
        }
    }

    fn queue_of(&self, tenant: TenantId) -> &Sender<Batch> {
        &self.queues[(spread(tenant) % self.queues.len() as u64) as usize]
    }

    /// Runs one timed point query against a tenant's engine.
    fn query<R>(&self, tenant: TenantId, f: impl FnOnce(&IncrementalEngine) -> R) -> Option<R> {
        self.query_tenant(tenant, |state| f(&state.engine))
    }

    fn query_tenant<R>(&self, tenant: TenantId, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let _span = mocp_obs::span!("serve.query");
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        mocp_obs::counter!("serve.queries").inc();
        self.registry.with(tenant, f)
    }
}

impl Drop for MonitorService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_in_place();
        }
    }
}

impl fmt::Debug for MonitorService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorService")
            .field("config", &self.config)
            .field("tenants", &self.registry.len())
            .field("workers", &self.workers.len())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

/// One worker: drain the queue, apply each batch under its tenant's
/// shard lock, fan out the coalesced delta. Exits when the service
/// disconnects the queue *and* every queued batch has been processed.
fn worker_loop(
    registry: &ShardedRegistry,
    queue: &Receiver<Batch>,
    ledger: &Ledger,
    stats: &ServiceStats,
) {
    while let Ok(batch) = queue.recv() {
        let n = batch.events.len() as u64;
        let (sent, dropped) = {
            let _span = mocp_obs::span!("serve.apply");
            registry
                .with(batch.tenant, |state| {
                    let mut delta = StatusDelta::new();
                    for event in batch.events {
                        delta.extend(state.engine.apply(event));
                    }
                    state.seq += 1;
                    state.events_applied += n;
                    fan_out(state, batch.tenant, delta)
                })
                // Unknown tenants cannot happen today (submit checks and
                // tenants are never removed), but losing that race must
                // not wedge the ledger.
                .unwrap_or((0, 0))
        };
        stats.batches.fetch_add(1, Ordering::Relaxed);
        stats.events.fetch_add(n, Ordering::Relaxed);
        stats.updates_sent.fetch_add(sent, Ordering::Relaxed);
        stats.updates_dropped.fetch_add(dropped, Ordering::Relaxed);
        mocp_obs::counter!("serve.batches").inc();
        mocp_obs::counter!("serve.events").add(n);
        ledger.add_applied(n);
    }
}

/// Delivers one batch's coalesced delta to the tenant's subscribers.
/// Returns `(updates sent, updates dropped)`; disconnected subscribers
/// are unregistered.
fn fan_out(state: &mut Tenant, tenant: TenantId, delta: StatusDelta) -> (u64, u64) {
    if state.subscribers.is_empty() {
        return (0, 0);
    }
    let coalesced = delta.coalesced();
    if coalesced.is_empty() {
        return (0, 0);
    }
    mocp_obs::counter!("serve.fanout_deltas").add(coalesced.len() as u64);
    let seq = state.seq;
    let mut sent = 0;
    let mut dropped = 0;
    state.subscribers.retain(|subscriber| {
        let update = TenantUpdate {
            tenant,
            seq,
            delta: coalesced.clone(),
        };
        match subscriber.try_send(update) {
            Ok(()) => {
                sent += 1;
                true
            }
            Err(TrySendError::Full(_)) => {
                // A slow bounded subscriber loses this update instead of
                // stalling ingestion; the seq gap tells it so.
                dropped += 1;
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    });
    if dropped > 0 {
        mocp_obs::counter!("serve.fanout_dropped").add(dropped);
    }
    (sent, dropped)
}
