//! Service sizing knobs.

use mocp_core::CentralizedSolution;

/// Configuration of a [`MonitorService`](crate::MonitorService).
///
/// The defaults target the service's design point — thousands of small
/// tenant meshes behind a handful of workers — and every knob has a
/// `with_*` builder so call sites only spell out what they change.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of mutex-striped registry shards tenants hash onto. More
    /// shards means less query/ingest contention; memory cost is one
    /// mutex + map per shard. Clamped to at least 1.
    pub shards: usize,
    /// Number of ingestion worker threads, each owning the tenants that
    /// hash to it (per-tenant event order is preserved because exactly
    /// one worker ever applies a given tenant's batches). Clamped to at
    /// least 1.
    pub workers: usize,
    /// Capacity of each worker's bounded batch queue. A full queue
    /// blocks [`submit`](crate::MonitorService::submit) and fails
    /// [`try_submit`](crate::MonitorService::try_submit) — the service's
    /// backpressure. Clamped to at least 1.
    pub queue_capacity: usize,
    /// Which centralized construction dirty components are rebuilt with;
    /// both produce identical polygons (see
    /// [`IncrementalEngine::with_solution`](mocp_incremental::IncrementalEngine::with_solution)).
    pub solution: CentralizedSolution,
    /// How many applied events a tenant's write-ahead log may accumulate
    /// before its suffix is folded into the checkpoint fault set. Lower
    /// values keep the log small; higher values amortize the folding.
    /// Clamped to at least 1.
    pub wal_checkpoint_every: u64,
    /// How many applied batches may pass before a tenant's coherent
    /// snapshot (the state degraded reads are served from while the
    /// tenant is rebuilding) is refreshed. Lower values make degraded
    /// reads fresher; higher values cost less per batch. Clamped to at
    /// least 1.
    pub snapshot_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 64,
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().max(2)),
            queue_capacity: 1024,
            solution: CentralizedSolution::ConcaveSections,
            wal_checkpoint_every: 256,
            snapshot_every: 32,
        }
    }
}

impl ServeConfig {
    /// The default configuration (64 shards, one worker per available
    /// core with a floor of two, 1024-batch queues).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the per-worker queue capacity (in batches).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the centralized construction used for dirty components.
    pub fn with_solution(mut self, solution: CentralizedSolution) -> Self {
        self.solution = solution;
        self
    }

    /// Sets the write-ahead log checkpoint interval (in events).
    pub fn with_wal_checkpoint_every(mut self, events: u64) -> Self {
        self.wal_checkpoint_every = events;
        self
    }

    /// Sets the coherent-snapshot refresh interval (in batches).
    pub fn with_snapshot_every(mut self, batches: u64) -> Self {
        self.snapshot_every = batches;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_and_builders_chain() {
        let c = ServeConfig::new();
        assert!(c.shards >= 1 && c.workers >= 1 && c.queue_capacity >= 1);
        let c = ServeConfig::default()
            .with_shards(8)
            .with_workers(3)
            .with_queue_capacity(16)
            .with_solution(CentralizedSolution::VirtualBlock)
            .with_wal_checkpoint_every(17)
            .with_snapshot_every(5);
        assert_eq!((c.shards, c.workers, c.queue_capacity), (8, 3, 16));
        assert_eq!(c.solution, CentralizedSolution::VirtualBlock);
        assert_eq!((c.wal_checkpoint_every, c.snapshot_every), (17, 5));
    }
}
