//! The mutex-striped tenant registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::channel::Sender;
use mocp_incremental::IncrementalEngine;

use crate::service::{TenantId, TenantUpdate};

/// One monitored mesh: its maintenance engine plus the service-level
/// bookkeeping that lives under the same shard lock.
pub(crate) struct Tenant {
    /// The per-mesh incremental MFP engine.
    pub engine: IncrementalEngine,
    /// Batches applied so far; stamped onto fan-out updates so
    /// subscribers can detect (their own) missed updates.
    pub seq: u64,
    /// Events applied so far (including no-ops).
    pub events_applied: u64,
    /// Registered delta subscribers. `None` capacity means the
    /// subscriber's channel is unbounded; bounded subscribers that fall
    /// behind have updates dropped rather than stalling the worker.
    pub subscribers: Vec<Sender<TenantUpdate>>,
}

/// Tenants spread over mutex-striped shards: looking up a tenant locks
/// only its shard, so ingestion into one shard never blocks queries on
/// another.
pub(crate) struct ShardedRegistry {
    shards: Vec<Mutex<HashMap<TenantId, Tenant>>>,
    tenants: AtomicUsize,
}

/// SplitMix64 finalizer: spreads sequential tenant ids over shards and
/// workers without clustering.
#[inline]
pub(crate) fn spread(id: TenantId) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedRegistry {
    pub fn new(shards: usize) -> Self {
        ShardedRegistry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            tenants: AtomicUsize::new(0),
        }
    }

    fn shard(&self, tenant: TenantId) -> &Mutex<HashMap<TenantId, Tenant>> {
        &self.shards[(spread(tenant) % self.shards.len() as u64) as usize]
    }

    /// Inserts a fresh tenant; `false` (tenant untouched) when the id is
    /// already registered.
    pub fn insert(&self, tenant: TenantId, state: Tenant) -> bool {
        let mut shard = self.shard(tenant).lock().expect("shard lock poisoned");
        if shard.contains_key(&tenant) {
            return false;
        }
        shard.insert(tenant, state);
        self.tenants.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// True when the id is registered.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.shard(tenant)
            .lock()
            .expect("shard lock poisoned")
            .contains_key(&tenant)
    }

    /// Runs `f` on the tenant's state under its shard lock; `None` for
    /// unknown tenants.
    pub fn with<R>(&self, tenant: TenantId, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let mut shard = self.shard(tenant).lock().expect("shard lock poisoned");
        shard.get_mut(&tenant).map(f)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Mesh2D;

    fn tenant(mesh_side: u32) -> Tenant {
        Tenant {
            engine: IncrementalEngine::new(Mesh2D::square(mesh_side)),
            seq: 0,
            events_applied: 0,
            subscribers: Vec::new(),
        }
    }

    #[test]
    fn insert_contains_with_and_duplicate_rejection() {
        let reg = ShardedRegistry::new(4);
        assert_eq!(reg.len(), 0);
        assert!(reg.insert(3, tenant(8)));
        assert!(!reg.insert(3, tenant(8)), "duplicate id rejected");
        assert!(reg.contains(3));
        assert!(!reg.contains(4));
        assert_eq!(reg.len(), 1);
        let nodes = reg.with(3, |t| t.engine.mesh().node_count());
        assert_eq!(nodes, Some(64));
        assert_eq!(reg.with(4, |_| ()), None);
    }

    #[test]
    fn spread_separates_sequential_ids() {
        // Sequential tenant ids must not pile onto one shard.
        let shards = 8u64;
        let mut hits = vec![0u32; shards as usize];
        for id in 0..64 {
            hits[(spread(id) % shards) as usize] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "all shards used: {hits:?}");
    }

    #[test]
    fn single_shard_registry_still_works() {
        let reg = ShardedRegistry::new(0); // clamped to 1
        assert!(reg.insert(1, tenant(4)));
        assert!(reg.insert(2, tenant(4)));
        assert_eq!(reg.len(), 2);
    }
}
