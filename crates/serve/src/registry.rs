//! The mutex-striped tenant registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crossbeam::channel::Sender;
use mesh2d::{Region, StatusMap};
use mocp_incremental::IncrementalEngine;

use crate::service::{TenantId, TenantUpdate};

/// One tenant's serving health, surfaced through queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantHealth {
    /// A live worker owns the tenant and its engine is coherent.
    Live,
    /// The tenant's worker died but the engine is coherent — queries are
    /// exact, ingestion is paused until the supervisor restores a
    /// worker.
    Degraded,
    /// The engine is mid-rebuild (the worker died inside an apply, or a
    /// poisoned lock quarantined the tenant). Queries are served from
    /// the last coherent snapshot until WAL replay completes.
    Rebuilding,
}

/// The last coherent engine state, kept so [`TenantHealth::Rebuilding`]
/// reads degrade to a stale-but-consistent answer instead of exposing a
/// half-applied engine.
pub(crate) struct CoherentSnapshot {
    /// Batch sequence number the snapshot reflects.
    pub seq: u64,
    /// Events applied at capture time.
    pub events_applied: u64,
    /// Per-node statuses.
    pub status: StatusMap,
    /// Maintained polygons, deterministic component order.
    pub polygons: Vec<Region>,
    /// Faulty node count.
    pub faulty: usize,
    /// Non-faulty disabled node count.
    pub disabled_nonfaulty: usize,
}

impl CoherentSnapshot {
    pub fn capture(engine: &IncrementalEngine, seq: u64, events_applied: u64) -> Self {
        CoherentSnapshot {
            seq,
            events_applied,
            status: engine.status().clone(),
            polygons: engine.polygons(),
            faulty: engine.faulty_count(),
            disabled_nonfaulty: engine.disabled_nonfaulty(),
        }
    }
}

/// One monitored mesh: its maintenance engine plus the service-level
/// bookkeeping that lives under the same shard lock.
pub(crate) struct Tenant {
    /// The per-mesh incremental MFP engine.
    pub engine: IncrementalEngine,
    /// Batches applied so far; stamped onto fan-out updates so
    /// subscribers can detect (their own) missed updates.
    pub seq: u64,
    /// Events applied so far (including no-ops).
    pub events_applied: u64,
    /// Registered delta subscribers. `None` capacity means the
    /// subscriber's channel is unbounded; bounded subscribers that fall
    /// behind have updates dropped rather than stalling the worker.
    pub subscribers: Vec<Sender<TenantUpdate>>,
    /// Current serving health (see [`TenantHealth`]).
    pub health: TenantHealth,
    /// Last coherent state, served while `health == Rebuilding`.
    pub snapshot: CoherentSnapshot,
}

impl Tenant {
    /// A fresh live tenant with a coherent snapshot of its (fault-free)
    /// engine.
    pub fn new(engine: IncrementalEngine) -> Self {
        let snapshot = CoherentSnapshot::capture(&engine, 0, 0);
        Tenant {
            engine,
            seq: 0,
            events_applied: 0,
            subscribers: Vec::new(),
            health: TenantHealth::Live,
            snapshot,
        }
    }
}

/// Tenants spread over mutex-striped shards: looking up a tenant locks
/// only its shard, so ingestion into one shard never blocks queries on
/// another.
///
/// Every lock acquisition strips poison: a worker that panicked while
/// holding a shard lock leaves its tenant in `Rebuilding` health (set
/// before the first engine mutation), so later readers see a quarantined
/// tenant served from its snapshot — not a propagated panic.
pub(crate) struct ShardedRegistry {
    shards: Vec<Mutex<HashMap<TenantId, Tenant>>>,
    tenants: AtomicUsize,
}

/// SplitMix64 finalizer: spreads sequential tenant ids over shards and
/// workers without clustering.
#[inline]
pub(crate) fn spread(id: TenantId) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ShardedRegistry {
    pub fn new(shards: usize) -> Self {
        ShardedRegistry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            tenants: AtomicUsize::new(0),
        }
    }

    fn shard(&self, tenant: TenantId) -> std::sync::MutexGuard<'_, HashMap<TenantId, Tenant>> {
        self.shards[(spread(tenant) % self.shards.len() as u64) as usize]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Inserts a fresh tenant; `false` (tenant untouched) when the id is
    /// already registered.
    pub fn insert(&self, tenant: TenantId, state: Tenant) -> bool {
        let mut shard = self.shard(tenant);
        if shard.contains_key(&tenant) {
            return false;
        }
        shard.insert(tenant, state);
        self.tenants.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// True when the id is registered.
    pub fn contains(&self, tenant: TenantId) -> bool {
        self.shard(tenant).contains_key(&tenant)
    }

    /// Runs `f` on the tenant's state under its shard lock; `None` for
    /// unknown tenants.
    pub fn with<R>(&self, tenant: TenantId, f: impl FnOnce(&mut Tenant) -> R) -> Option<R> {
        let mut shard = self.shard(tenant);
        shard.get_mut(&tenant).map(f)
    }

    /// Every registered tenant id, in no particular order.
    pub fn ids(&self) -> Vec<TenantId> {
        let mut ids = Vec::with_capacity(self.len());
        for shard in &self.shards {
            ids.extend(
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .keys()
                    .copied(),
            );
        }
        ids
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.tenants.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Mesh2D;

    fn tenant(mesh_side: u32) -> Tenant {
        Tenant::new(IncrementalEngine::new(Mesh2D::square(mesh_side)))
    }

    #[test]
    fn insert_contains_with_and_duplicate_rejection() {
        let reg = ShardedRegistry::new(4);
        assert_eq!(reg.len(), 0);
        assert!(reg.insert(3, tenant(8)));
        assert!(!reg.insert(3, tenant(8)), "duplicate id rejected");
        assert!(reg.contains(3));
        assert!(!reg.contains(4));
        assert_eq!(reg.len(), 1);
        let nodes = reg.with(3, |t| t.engine.mesh().node_count());
        assert_eq!(nodes, Some(64));
        assert_eq!(reg.with(4, |_| ()), None);
    }

    #[test]
    fn spread_separates_sequential_ids() {
        // Sequential tenant ids must not pile onto one shard.
        let shards = 8u64;
        let mut hits = vec![0u32; shards as usize];
        for id in 0..64 {
            hits[(spread(id) % shards) as usize] += 1;
        }
        assert!(hits.iter().all(|&h| h > 0), "all shards used: {hits:?}");
    }

    #[test]
    fn single_shard_registry_still_works() {
        let reg = ShardedRegistry::new(0); // clamped to 1
        assert!(reg.insert(1, tenant(4)));
        assert!(reg.insert(2, tenant(4)));
        assert_eq!(reg.len(), 2);
        let mut ids = reg.ids();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn fresh_tenants_are_live_with_a_coherent_snapshot() {
        let reg = ShardedRegistry::new(2);
        assert!(reg.insert(9, tenant(6)));
        reg.with(9, |t| {
            assert_eq!(t.health, TenantHealth::Live);
            assert_eq!(t.snapshot.seq, 0);
            assert_eq!(t.snapshot.faulty, 0);
            assert!(t.snapshot.polygons.is_empty());
        })
        .unwrap();
    }

    #[test]
    fn poisoned_shard_lock_is_recovered_not_propagated() {
        let reg = std::sync::Arc::new(ShardedRegistry::new(1));
        assert!(reg.insert(1, tenant(4)));
        let poisoner = std::sync::Arc::clone(&reg);
        let _ = std::thread::spawn(move || {
            poisoner.with(1, |t| {
                t.health = TenantHealth::Rebuilding;
                panic!("poison the shard");
            });
        })
        .join();
        // The panic poisoned the shard mutex; lookups must still work and
        // must see the quarantine marker.
        assert!(reg.contains(1));
        assert_eq!(reg.with(1, |t| t.health), Some(TenantHealth::Rebuilding));
    }
}
