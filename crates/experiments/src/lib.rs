//! # experiments — the paper's evaluation, reproduced
//!
//! Section 4 of *Wu & Jiang (IPDPS 2004)* evaluates the minimum faulty
//! polygon model on a 100×100 mesh with up to 800 sequentially injected
//! faults, under a random and a clustered fault distribution, reporting three
//! figures:
//!
//! * **Figure 9** — average number of non-faulty but disabled nodes in the
//!   whole network under FB, FP and MFP (log₁₀ scale);
//! * **Figure 10** — average size of a faulty block / polygon (number of
//!   faulty + non-faulty nodes it contains);
//! * **Figure 11** — average number of rounds of status determination under
//!   FB, FP, CMFP and DMFP.
//!
//! This crate contains **one** sweep runner for every dimension: the
//! scenario-driven [`scenario`] module executes any declarative
//! [`Scenario`] — mesh side, fault distribution and counts, model names,
//! trial count — against any `mocp_topology::ModelRegistry<T>`, so the
//! paper's 2-D figures and the 3-D Figure 9/10 analogues
//! (`paper_figures --dim 3`, FB-3D vs MFP-3D on a 32³ mesh) are the same
//! code path with different registries. Around it sit the [`streaming`]
//! execution mode that produces the Figure 9/10 MFP curves from *one*
//! pass over each injection sequence via the incremental maintenance
//! engine, the per-figure series extractors ([`fig9`], [`fig10`],
//! [`fig11`]) over [`ScenarioResult`], sweep sizing ([`sweep`]),
//! plain-text/CSV rendering ([`table`]), and the `paper_figures` binary
//! that prints any figure from the command line. Beyond the paper's
//! single-mesh evaluation, the [`serve_workload`] module generates the
//! deterministic N-tenants × M-events × K-queries load (seeded
//! inject/repair churn) that drives the multi-tenant monitoring
//! service ([`mocp_serve`]) — from the `serve_workload` binary, the
//! sequential-equivalence tests and the `serve_ingest_1k_tenants` perf
//! workload. The [`chaos_workload`] module runs the same streams against
//! a service armed with a seeded fault plan — worker kills, WAL replay,
//! lossy live-reroute subscribers — and verifies convergence back to the
//! sequential oracle (the `serve_chaos` binary and the chaos property
//! test).
//! The Criterion benches in the `bench` crate reuse the same sweep code
//! so the benchmarked work is exactly the reported work.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos_workload;
pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod scenario;
pub mod serve_workload;
pub mod streaming;
pub mod sweep;
pub mod table;
pub mod traffic;

pub use chaos_workload::{run_chaos_workload, ChaosOutcome, ChaosWorkloadConfig};
pub use scenario::{
    paper_model_names, paper_model_names_3d, run_scenario, Metric, Scenario, ScenarioPoint,
    ScenarioResult,
};
pub use serve_workload::{
    replay_tenant, run_serve_workload, tenant_events, tenant_queries, ServeWorkloadConfig,
    WorkloadOutcome,
};
pub use streaming::{run_scenario_streaming, StreamingPoint, StreamingResult};
pub use sweep::{ModelPoint, SweepConfig};
pub use table::{render_csv, render_table, Series};
pub use traffic::{render_traffic_csv, run_traffic, TrafficCell, TrafficResult, TrafficScenario};
