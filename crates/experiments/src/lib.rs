//! # experiments — the paper's evaluation, reproduced
//!
//! Section 4 of *Wu & Jiang (IPDPS 2004)* evaluates the minimum faulty
//! polygon model on a 100×100 mesh with up to 800 sequentially injected
//! faults, under a random and a clustered fault distribution, reporting three
//! figures:
//!
//! * **Figure 9** — average number of non-faulty but disabled nodes in the
//!   whole network under FB, FP and MFP (log₁₀ scale);
//! * **Figure 10** — average size of a faulty block / polygon (number of
//!   faulty + non-faulty nodes it contains);
//! * **Figure 11** — average number of rounds of status determination under
//!   FB, FP, CMFP and DMFP.
//!
//! This crate contains the scenario-driven runner ([`scenario`]) that
//! executes any declarative [`Scenario`] — mesh size, fault distribution
//! and counts, model names resolved through the model registry, trial
//! count — with one code path, the [`streaming`] execution mode that
//! produces the Figure 9/10 MFP curves from *one* pass over each
//! injection sequence via the incremental maintenance engine, the
//! compatibility sweep driver ([`sweep`]) that regenerates all three
//! figures from one pass over the fault counts, per-figure series
//! extractors ([`fig9`], [`fig10`], [`fig11`]), the [`three_d`] sweep
//! producing the Figure 9/10 analogues for the 3-D extension (FB-3D vs
//! MFP-3D, `paper_figures --three-d`), plain-text/CSV rendering
//! ([`table`]), and the `paper_figures` binary that prints any figure
//! from the command line.
//! The Criterion benches in the `bench` crate reuse the same sweep code
//! so the benchmarked work is exactly the reported work.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig10;
pub mod fig11;
pub mod fig9;
pub mod scenario;
pub mod streaming;
pub mod sweep;
pub mod table;
pub mod three_d;

pub use scenario::{run_scenario, Metric, Scenario, ScenarioPoint, ScenarioResult};
pub use streaming::{run_scenario_streaming, StreamingPoint, StreamingResult};
pub use sweep::{run_sweep, ModelPoint, SweepConfig, SweepPoint, SweepResult};
pub use table::{render_csv, render_table, Series};
pub use three_d::{run_scenario_3d, Scenario3, Scenario3Point, Scenario3Result};
