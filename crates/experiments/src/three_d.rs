//! The 3-D scenario sweep: Figure 9/10 analogues for FB-3D vs MFP-3D.
//!
//! The paper's conclusion proposes extending the construction to 3-D
//! meshes; the `mocp_3d` crate implements that extension and this module
//! evaluates it the way Section 4 evaluates the 2-D models: faults are
//! injected sequentially into a 32×32×32 mesh under the random and
//! clustered distribution models, and at each fault count every model
//! (resolved by name through the 3-D registry) reports the number of
//! disabled non-faulty nodes (Figure 9 analogue) and the average region
//! size (Figure 10 analogue). `paper_figures --three-d` emits both series
//! for both distributions.

use crate::table::Series;
use faultgen::FaultDistribution;
use fblock::UnknownModel;
use mocp_3d::{BoxedModel3, FaultInjector3, Mesh3D, ModelRegistry3};
use serde::{Deserialize, Serialize};

/// A declarative description of one 3-D sweep experiment — the 3-D
/// counterpart of [`Scenario`](crate::scenario::Scenario).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario3 {
    /// Human-readable name, used in reported series titles.
    pub name: String,
    /// Mesh side length (the 3-D sweep defaults to 32, i.e. 32³ nodes).
    pub mesh_size: u32,
    /// Fault distribution model driving the injector.
    pub distribution: FaultDistribution,
    /// Fault counts to evaluate, in ascending order.
    pub fault_counts: Vec<usize>,
    /// Names of the 3-D fault models to run, resolved through the registry
    /// passed to [`run_scenario_3d`].
    pub models: Vec<String>,
    /// Number of independent trials averaged per point.
    pub trials: u32,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

/// The two 3-D models, in presentation order.
pub fn paper_model_names_3d() -> Vec<String> {
    ["FB3D", "MFP3D"].map(String::from).to_vec()
}

impl Scenario3 {
    /// The default 3-D sweep: a 32×32×32 mesh with 100..800 faults (the
    /// same absolute counts as the paper's 2-D sweep), FB-3D vs MFP-3D,
    /// 3 trials.
    pub fn paper_figures(distribution: FaultDistribution) -> Self {
        Scenario3 {
            name: format!("3d-figures-{}", distribution.label()),
            mesh_size: 32,
            distribution,
            fault_counts: (1..=8).map(|i| i * 100).collect(),
            models: paper_model_names_3d(),
            trials: 3,
            base_seed: 2004,
        }
    }

    /// A small configuration for smoke tests and CI: a 12³ mesh with up to
    /// 80 faults.
    pub fn quick(distribution: FaultDistribution) -> Self {
        Scenario3 {
            name: format!("3d-quick-{}", distribution.label()),
            mesh_size: 12,
            fault_counts: vec![20, 40, 60, 80],
            trials: 2,
            ..Scenario3::paper_figures(distribution)
        }
    }
}

/// One x-axis point: per-model `(disabled non-faulty, average region size)`
/// averages, parallel to the scenario's model list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario3Point {
    /// Number of faults injected.
    pub fault_count: usize,
    /// Averaged disabled non-faulty node counts, one per model.
    pub disabled_nonfaulty: Vec<f64>,
    /// Averaged region sizes, one per model.
    pub avg_region_size: Vec<f64>,
}

/// The averaged outcome of running a 3-D scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario3Result {
    /// The scenario that was run.
    pub scenario: Scenario3,
    /// One entry per fault count, in the scenario's order.
    pub points: Vec<Scenario3Point>,
}

impl Scenario3Result {
    /// The Figure 9 analogue: disabled non-faulty nodes per model.
    pub fn fig9_series(&self) -> Series {
        let mut series = Series::new(
            format!(
                "{}: disabled non-faulty nodes (fig9-3d)",
                self.scenario.name
            ),
            "faults".to_string(),
            self.scenario.models.clone(),
        );
        for p in &self.points {
            series.push_row(p.fault_count, p.disabled_nonfaulty.clone());
        }
        series
    }

    /// The Figure 10 analogue: average region size per model.
    pub fn fig10_series(&self) -> Series {
        let mut series = Series::new(
            format!("{}: avg region size (fig10-3d)", self.scenario.name),
            "faults".to_string(),
            self.scenario.models.clone(),
        );
        for p in &self.points {
            series.push_row(p.fault_count, p.avg_region_size.clone());
        }
        series
    }
}

/// Runs every model of `scenario` (resolved through `registry`) over its
/// fault counts, averaging `trials` independent seeded fault sequences —
/// the same trial-parallel loop as the 2-D
/// [`run_scenario`](crate::scenario::run_scenario), instantiated for the
/// 3-D registry.
///
/// Fails fast with [`UnknownModel`] if any model name does not resolve.
pub fn run_scenario_3d(
    registry: &ModelRegistry3,
    scenario: &Scenario3,
) -> Result<Scenario3Result, UnknownModel> {
    for name in &scenario.models {
        registry.build(name)?;
    }

    let trials = scenario.trials.max(1);
    let trial_results: Vec<Vec<Scenario3Point>> =
        crate::scenario::run_trials(trials, |t| run_trial(registry, scenario, t));

    let models = scenario.models.len();
    let mut points: Vec<Scenario3Point> = scenario
        .fault_counts
        .iter()
        .map(|&fault_count| Scenario3Point {
            fault_count,
            disabled_nonfaulty: vec![0.0; models],
            avg_region_size: vec![0.0; models],
        })
        .collect();
    for trial in &trial_results {
        for (acc, p) in points.iter_mut().zip(trial) {
            for m in 0..models {
                acc.disabled_nonfaulty[m] += p.disabled_nonfaulty[m];
                acc.avg_region_size[m] += p.avg_region_size[m];
            }
        }
    }
    let factor = 1.0 / trials as f64;
    for p in &mut points {
        for m in 0..models {
            p.disabled_nonfaulty[m] *= factor;
            p.avg_region_size[m] *= factor;
        }
    }

    Ok(Scenario3Result {
        scenario: scenario.clone(),
        points,
    })
}

/// One seeded pass over the fault counts: inject incrementally, run every
/// model at each count.
fn run_trial(registry: &ModelRegistry3, scenario: &Scenario3, trial: u32) -> Vec<Scenario3Point> {
    let mesh = Mesh3D::cube(scenario.mesh_size);
    let models: Vec<BoxedModel3> = scenario
        .models
        .iter()
        .map(|name| {
            registry
                .build(name)
                .expect("names validated by run_scenario_3d")
        })
        .collect();
    let mut injector = FaultInjector3::new(
        mesh,
        scenario.distribution,
        scenario.base_seed + trial as u64,
    );
    let mut points = Vec::with_capacity(scenario.fault_counts.len());
    for &count in &scenario.fault_counts {
        injector.inject_up_to(count);
        let faults = injector.faults();
        let outcomes: Vec<_> = models
            .iter()
            .map(|model| model.construct(&mesh, faults))
            .collect();
        points.push(Scenario3Point {
            fault_count: count,
            disabled_nonfaulty: outcomes
                .iter()
                .map(|o| o.disabled_nonfaulty() as f64)
                .collect(),
            avg_region_size: outcomes.iter().map(|o| o.average_region_size()).collect(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocp_3d::standard_registry_3d;

    #[test]
    fn quick_sweep_orders_mfp_below_fb_at_every_fault_count() {
        let registry = standard_registry_3d();
        for dist in FaultDistribution::ALL {
            let result = run_scenario_3d(&registry, &Scenario3::quick(dist)).unwrap();
            assert_eq!(result.points.len(), 4);
            for p in &result.points {
                let (fb, mfp) = (p.disabled_nonfaulty[0], p.disabled_nonfaulty[1]);
                assert!(
                    mfp <= fb + 1e-9,
                    "{dist:?} @ {}: MFP3D {mfp} > FB3D {fb}",
                    p.fault_count
                );
            }
        }
    }

    #[test]
    fn series_have_one_column_per_model_and_one_row_per_count() {
        let registry = standard_registry_3d();
        let result =
            run_scenario_3d(&registry, &Scenario3::quick(FaultDistribution::Clustered)).unwrap();
        let fig9 = result.fig9_series();
        let fig10 = result.fig10_series();
        assert_eq!(fig9.curves, vec!["FB3D", "MFP3D"]);
        assert_eq!(fig9.rows.len(), 4);
        assert_eq!(fig10.curves, vec!["FB3D", "MFP3D"]);
        assert!(fig9.title.contains("disabled non-faulty"));
        assert!(fig10.title.contains("avg region size"));
        // Region sizes include the faults, so they are at least 1 once
        // faults exist.
        for (_, row) in &fig10.rows {
            assert!(row.iter().all(|&v| v >= 1.0));
        }
    }

    #[test]
    fn unknown_model_fails_before_running() {
        let registry = standard_registry_3d();
        let mut scenario = Scenario3::quick(FaultDistribution::Random);
        scenario.models.push("CMFP".to_string());
        let err = run_scenario_3d(&registry, &scenario).unwrap_err();
        assert_eq!(err.requested, "CMFP");
    }

    #[test]
    fn deterministic_across_runs() {
        let registry = standard_registry_3d();
        let scenario = Scenario3::quick(FaultDistribution::Clustered);
        let a = run_scenario_3d(&registry, &scenario).unwrap();
        let b = run_scenario_3d(&registry, &scenario).unwrap();
        assert_eq!(a.points, b.points);
    }
}
