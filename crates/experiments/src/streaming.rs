//! Streaming execution mode: one pass over one injection sequence.
//!
//! The batch runner ([`run_scenario`](crate::scenario::run_scenario))
//! re-runs every model from scratch at every fault count — O(sweep × mesh)
//! work. For the minimum-polygon model that is pure waste: the paper's
//! sweep injects faults *sequentially*, so an incremental engine
//! ([`mocp_incremental::IncrementalEngine`]) can absorb each fault as an
//! event and have the Figure 9/10 metrics ready at every checkpoint, in one
//! pass, touching only the changed region.
//!
//! [`run_scenario_streaming`] executes a [`Scenario`] this way for the MFP
//! model. For equal seeds it reproduces the batch runner's CMFP/DMFP
//! Figure 9 and Figure 10 columns **exactly** (same injection sequences,
//! same polygons, same trial averaging order — verified by the
//! `streaming_equivalence` integration test), which is what makes the
//! streaming mode a drop-in replacement rather than an approximation.

use crate::scenario::Scenario;
use crate::table::Series;
use faultgen::FaultInjector;
use mesh2d::Mesh2D;
use mocp_incremental::IncrementalEngine;
use serde::{Deserialize, Serialize};

/// The streaming engine's Figure 9/10 metrics at one fault count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingPoint {
    /// Number of faults injected.
    pub fault_count: usize,
    /// Non-faulty nodes the MFP model disables (Figure 9).
    pub disabled_nonfaulty: f64,
    /// Average polygon size in nodes, faults included (Figure 10).
    pub avg_region_size: f64,
}

impl StreamingPoint {
    fn accumulate(&mut self, other: StreamingPoint) {
        self.disabled_nonfaulty += other.disabled_nonfaulty;
        self.avg_region_size += other.avg_region_size;
    }

    fn scale(&mut self, factor: f64) {
        self.disabled_nonfaulty *= factor;
        self.avg_region_size *= factor;
    }
}

/// The averaged outcome of one streaming sweep (MFP curve only — the other
/// paper models have no incremental formulation).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StreamingResult {
    /// The scenario that was run (its `models` list is ignored; streaming
    /// always maintains the minimum-polygon model).
    pub scenario: Scenario,
    /// One entry per fault count, in the scenario's order.
    pub points: Vec<StreamingPoint>,
}

impl StreamingResult {
    /// The streaming Figure 9 series (raw disabled-node counts, MFP curve).
    pub fn fig9_series(&self) -> Series {
        let mut series = Series::new(
            format!(
                "Figure 9 ({}) streaming: # of disabled non-faulty nodes",
                self.scenario.distribution.label()
            ),
            "faults".to_string(),
            vec!["MFP".to_string()],
        );
        for p in &self.points {
            series.push_row(p.fault_count, vec![p.disabled_nonfaulty]);
        }
        series
    }

    /// The streaming Figure 10 series (average polygon size, MFP curve).
    pub fn fig10_series(&self) -> Series {
        let mut series = Series::new(
            format!(
                "Figure 10 ({}) streaming: average polygon size",
                self.scenario.distribution.label()
            ),
            "faults".to_string(),
            vec!["MFP".to_string()],
        );
        for p in &self.points {
            series.push_row(p.fault_count, vec![p.avg_region_size]);
        }
        series
    }
}

/// Runs `scenario` in streaming mode: per trial, one injector pass feeds an
/// incremental engine one fault event at a time, and the Figure 9/10
/// metrics are read off the engine's caches at every fault count. Trials
/// run on separate threads and are averaged in trial order, exactly like
/// the batch runner, so the result is deterministic and bit-identical to
/// the batch CMFP columns for the same seeds.
pub fn run_scenario_streaming(scenario: &Scenario) -> StreamingResult {
    let trials = scenario.trials.max(1);
    let trial_results: Vec<Vec<StreamingPoint>> =
        crate::scenario::run_trials(trials, |t| run_streaming_trial(scenario, t));

    let mut points: Vec<StreamingPoint> = scenario
        .fault_counts
        .iter()
        .map(|&fault_count| StreamingPoint {
            fault_count,
            ..StreamingPoint::default()
        })
        .collect();
    for trial in &trial_results {
        for (acc, p) in points.iter_mut().zip(trial) {
            acc.accumulate(*p);
        }
    }
    let factor = 1.0 / trials as f64;
    for p in &mut points {
        p.scale(factor);
    }

    StreamingResult {
        scenario: scenario.clone(),
        points,
    }
}

/// One seeded streaming pass: the same injector the batch trial would use,
/// consumed as an event stream by one engine.
fn run_streaming_trial(scenario: &Scenario, trial: u32) -> Vec<StreamingPoint> {
    let _span = mocp_obs::span!("sweep.stream_trial");
    let mesh = Mesh2D::square(scenario.mesh_size);
    let mut injector = FaultInjector::new(
        mesh,
        scenario.distribution,
        scenario.base_seed + trial as u64,
    );
    let mut engine = IncrementalEngine::new(mesh);
    let mut points = Vec::with_capacity(scenario.fault_counts.len());
    for &count in &scenario.fault_counts {
        let missing = count.saturating_sub(injector.len());
        for event in injector.event_stream(missing) {
            engine.apply(event);
        }
        points.push(StreamingPoint {
            fault_count: count,
            disabled_nonfaulty: engine.disabled_nonfaulty() as f64,
            avg_region_size: engine.average_region_size(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::run_scenario;
    use crate::sweep::SweepConfig;
    use faultgen::FaultDistribution;

    fn quick_scenario(dist: FaultDistribution) -> Scenario {
        Scenario::paper_figures(&SweepConfig::quick(), dist)
    }

    #[test]
    fn streaming_matches_batch_cmfp_exactly() {
        for dist in FaultDistribution::ALL {
            let scenario = quick_scenario(dist);
            let streaming = run_scenario_streaming(&scenario);
            let registry = mocp_core::standard_registry();
            let batch = run_scenario(&registry, &scenario).unwrap();
            let cmfp = batch.model_curve("CMFP").unwrap();
            assert_eq!(streaming.points.len(), cmfp.len());
            for (s, b) in streaming.points.iter().zip(&cmfp) {
                assert_eq!(s.disabled_nonfaulty, b.disabled_nonfaulty, "{dist:?}");
                assert_eq!(s.avg_region_size, b.avg_region_size, "{dist:?}");
            }
        }
    }

    #[test]
    fn streaming_is_deterministic() {
        let scenario = quick_scenario(FaultDistribution::Clustered);
        let a = run_scenario_streaming(&scenario);
        let b = run_scenario_streaming(&scenario);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn series_have_one_mfp_curve_per_point() {
        let scenario = quick_scenario(FaultDistribution::Random);
        let result = run_scenario_streaming(&scenario);
        for series in [result.fig9_series(), result.fig10_series()] {
            assert_eq!(series.curves, vec!["MFP"]);
            assert_eq!(series.rows.len(), scenario.fault_counts.len());
            assert!(series.title.contains("streaming"));
        }
    }
}
