//! The scenario-driven sweep runner — one code path for every figure in
//! every dimension.
//!
//! A [`Scenario`] describes an experiment as data: mesh side length,
//! fault distribution and counts (from `faultgen`), the *names* of the
//! models to run, and how many seeded trials to average. [`run_scenario`]
//! executes any scenario with the same trial-parallel loop for **any**
//! [`MeshTopology`]: pass `mocp_core::standard_registry()` and it sweeps
//! the paper's 2-D models; pass `mocp_3d::standard_registry_3d()` and the
//! identical code sweeps FB-3D/MFP-3D on a cubic mesh. Reproducing a new
//! figure — or adding a whole new fault model or mesh dimension to every
//! figure — is a registry entry or a trait impl, not a new runner.
//!
//! The paper's Figures 9–11 are the scenario built by
//! [`Scenario::paper_figures`]; the 3-D Figure 9/10 analogues are
//! [`Scenario::paper_figures_3d`], executed by the very same
//! [`run_scenario`].

use crate::sweep::{ModelPoint, SweepConfig};
use crate::table::Series;
use faultgen::{FaultDistribution, FaultInjector};
use mocp_topology::{BoxedModel, MeshTopology, ModelRegistry, UnknownModel};
use serde::{Deserialize, Serialize};

/// A declarative description of one sweep experiment.
///
/// The description is dimension-agnostic: the same struct drives the 2-D
/// and 3-D sweeps, and which dimension runs is decided by the registry
/// handed to [`run_scenario`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name, used in reported series titles.
    pub name: String,
    /// Mesh side length: an `n × n` mesh in 2-D (the paper uses 100), an
    /// `n × n × n` mesh in 3-D (the analogue sweep uses 32).
    pub mesh_size: u32,
    /// Fault distribution model driving the injector.
    pub distribution: FaultDistribution,
    /// Fault counts to evaluate, in ascending order.
    pub fault_counts: Vec<usize>,
    /// Names of the fault models to run, resolved through the registry
    /// passed to [`run_scenario`].
    pub models: Vec<String>,
    /// Number of independent trials averaged per point.
    pub trials: u32,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Scenario {
    /// A scenario with sensible defaults: 100×100 mesh, the paper's
    /// 100..800 fault counts under the random distribution, all four
    /// paper models, 5 trials.
    pub fn new(name: impl Into<String>) -> Self {
        let config = SweepConfig::default();
        Scenario {
            name: name.into(),
            mesh_size: config.mesh_size,
            distribution: FaultDistribution::Random,
            fault_counts: config.fault_counts,
            models: paper_model_names(),
            trials: config.trials,
            base_seed: config.base_seed,
        }
    }

    /// The scenario behind the paper's Figures 9–11: the four models of
    /// the paper under `distribution`, sized by `config`.
    pub fn paper_figures(config: &SweepConfig, distribution: FaultDistribution) -> Self {
        Scenario {
            name: format!("paper-figures-{}", distribution.label()),
            mesh_size: config.mesh_size,
            distribution,
            fault_counts: config.fault_counts.clone(),
            models: paper_model_names(),
            trials: config.trials,
            base_seed: config.base_seed,
        }
    }

    /// The 3-D Figure 9/10 analogue sweep: a 32×32×32 mesh with 100..800
    /// faults (the same absolute counts and base seed as the paper's 2-D
    /// sweep), FB-3D vs MFP-3D, 3 trials. Run it with
    /// `mocp_3d::standard_registry_3d()`.
    pub fn paper_figures_3d(distribution: FaultDistribution) -> Self {
        Scenario {
            name: format!("3d-figures-{}", distribution.label()),
            mesh_size: 32,
            distribution,
            fault_counts: (1..=8).map(|i| i * 100).collect(),
            models: paper_model_names_3d(),
            trials: 3,
            base_seed: 2004,
        }
    }

    /// A small 3-D configuration for smoke tests and CI: a 12³ mesh with
    /// up to 80 faults.
    pub fn quick_3d(distribution: FaultDistribution) -> Self {
        Scenario {
            name: format!("3d-quick-{}", distribution.label()),
            mesh_size: 12,
            fault_counts: vec![20, 40, 60, 80],
            trials: 2,
            ..Scenario::paper_figures_3d(distribution)
        }
    }

    /// Replaces the model list (builder style).
    pub fn with_models<S: Into<String>>(mut self, models: impl IntoIterator<Item = S>) -> Self {
        self.models = models.into_iter().map(Into::into).collect();
        self
    }

    /// Replaces the fault distribution (builder style).
    pub fn with_distribution(mut self, distribution: FaultDistribution) -> Self {
        self.distribution = distribution;
        self
    }
}

/// The four models of the paper, in presentation order.
pub fn paper_model_names() -> Vec<String> {
    ["FB", "FP", "CMFP", "DMFP"].map(String::from).to_vec()
}

/// The two 3-D models, in presentation order.
pub fn paper_model_names_3d() -> Vec<String> {
    ["FB3D", "MFP3D"].map(String::from).to_vec()
}

/// Which [`ModelPoint`] metric a figure plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Non-faulty nodes the model disabled (Figure 9).
    DisabledNonfaulty,
    /// Average region size in nodes, faults included (Figure 10).
    AvgRegionSize,
    /// Rounds of status determination (Figure 11).
    Rounds,
}

impl Metric {
    /// Short label used in series titles.
    pub fn label(self) -> &'static str {
        match self {
            Metric::DisabledNonfaulty => "disabled non-faulty nodes",
            Metric::AvgRegionSize => "avg region size",
            Metric::Rounds => "rounds",
        }
    }

    /// Extracts this metric from one model point.
    pub fn of(self, point: &ModelPoint) -> f64 {
        match self {
            Metric::DisabledNonfaulty => point.disabled_nonfaulty,
            Metric::AvgRegionSize => point.avg_region_size,
            Metric::Rounds => point.rounds,
        }
    }
}

/// One x-axis point: per-model metrics at one fault count, parallel to
/// the scenario's model list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPoint {
    /// Number of faults injected.
    pub fault_count: usize,
    /// Averaged metrics, one entry per scenario model, in order.
    pub metrics: Vec<ModelPoint>,
}

/// The averaged outcome of running a scenario (in either dimension — the
/// result shape is dimension-free).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// One entry per fault count, in the scenario's order.
    pub points: Vec<ScenarioPoint>,
}

impl ScenarioResult {
    /// The model names of this result, in column order.
    pub fn models(&self) -> &[String] {
        &self.scenario.models
    }

    /// The per-fault-count metric points of one model.
    pub fn model_curve(&self, name: &str) -> Option<Vec<ModelPoint>> {
        let idx = self
            .scenario
            .models
            .iter()
            .position(|m| m.eq_ignore_ascii_case(name))?;
        Some(self.points.iter().map(|p| p.metrics[idx]).collect())
    }

    /// Renders one metric of every model as a [`Series`] (the CSV/table
    /// shape all figures share).
    pub fn series(&self, metric: Metric) -> Series {
        let mut series = Series::new(
            format!("{}: {}", self.scenario.name, metric.label()),
            "faults".to_string(),
            self.scenario.models.clone(),
        );
        for point in &self.points {
            series.push_row(
                point.fault_count,
                point.metrics.iter().map(|m| metric.of(m)).collect(),
            );
        }
        series
    }
}

/// Runs the trials on the work-stealing pool and collects the results
/// in trial order — the skeleton shared by the batch and streaming
/// runners, so their deterministic trial-order averaging cannot drift
/// apart. The pool caps concurrency at its worker count (a 100-trial
/// scenario no longer creates 100 OS threads), and the ordered collect
/// keeps result `t` at index `t` regardless of scheduling.
pub(crate) fn run_trials<T: Send>(trials: u32, run: impl Fn(u32) -> T + Sync) -> Vec<T> {
    use rayon::prelude::*;
    (0..trials).into_par_iter().map(run).collect()
}

/// Runs every model of `scenario` (resolved through `registry`) over its
/// fault counts, averaging `trials` independent seeded fault sequences.
/// Trials (and the models within each trial) run as tasks on the
/// work-stealing pool; the result is deterministic for a given scenario
/// at any thread count, because trial `t` always draws from seed
/// `base_seed + t` and both parallel collects are ordered (output index
/// = input index), so the final averaging folds identical numbers in an
/// identical order.
///
/// This is the **only** sweep code path: the dimension is decided by the
/// registry's topology parameter (`ModelRegistry<Mesh2D>` for the paper's
/// figures, `ModelRegistry<Mesh3D>` for the 3-D analogues), and the mesh
/// is the topology's square/cube of side [`Scenario::mesh_size`].
///
/// Fails fast with [`UnknownModel`] if any model name does not resolve —
/// before any trial work starts.
pub fn run_scenario<T: MeshTopology>(
    registry: &ModelRegistry<T>,
    scenario: &Scenario,
) -> Result<ScenarioResult, UnknownModel> {
    for name in &scenario.models {
        registry.build(name)?;
    }

    let _span = mocp_obs::span!("sweep.scenario");
    let trials = scenario.trials.max(1);
    let trial_results: Vec<Vec<ScenarioPoint>> =
        run_trials(trials, |t| run_trial(registry, scenario, t));

    let mut points: Vec<ScenarioPoint> = scenario
        .fault_counts
        .iter()
        .map(|&fault_count| ScenarioPoint {
            fault_count,
            metrics: vec![ModelPoint::default(); scenario.models.len()],
        })
        .collect();
    for trial in &trial_results {
        for (acc, p) in points.iter_mut().zip(trial) {
            for (acc_m, m) in acc.metrics.iter_mut().zip(&p.metrics) {
                acc_m.accumulate(*m);
            }
        }
    }
    let factor = 1.0 / trials as f64;
    for p in &mut points {
        for m in &mut p.metrics {
            m.scale(factor);
        }
    }

    Ok(ScenarioResult {
        scenario: scenario.clone(),
        points,
    })
}

/// One seeded pass over the fault counts: inject incrementally, run
/// every model at each count.
fn run_trial<T: MeshTopology>(
    registry: &ModelRegistry<T>,
    scenario: &Scenario,
    trial: u32,
) -> Vec<ScenarioPoint> {
    let mesh = T::from_side(scenario.mesh_size);
    let models: Vec<BoxedModel<T>> = scenario
        .models
        .iter()
        .map(|name| {
            registry
                .build(name)
                .expect("names validated by run_scenario")
        })
        .collect();
    let mut injector = FaultInjector::new(
        mesh,
        scenario.distribution,
        scenario.base_seed + trial as u64,
    );
    let _span = mocp_obs::span!("sweep.trial");
    let mut points = Vec::with_capacity(scenario.fault_counts.len());
    for &count in &scenario.fault_counts {
        {
            let _span = mocp_obs::span!("sweep.inject");
            injector.inject_up_to(count);
        }
        let faults = injector.faults();
        // The fault sequence is incremental across counts, so the counts
        // stay sequential — but at a fixed count the models are
        // independent and fan out across the pool (ordered collect keeps
        // the metrics column order equal to the scenario's model order).
        use rayon::prelude::*;
        points.push(ScenarioPoint {
            fault_count: count,
            metrics: models
                .par_iter()
                .map(|model| {
                    let outcome = {
                        let _span = mocp_obs::span!("sweep.construct");
                        model.construct(&mesh, faults)
                    };
                    let _span = mocp_obs::span!("sweep.analyze");
                    ModelPoint::from_outcome(&outcome)
                })
                .collect(),
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use distsim::RoundStats;
    use fblock::{FaultModel, FaultyBlockModel, ModelOutcome};
    use mesh2d::{FaultSet, Mesh2D};
    use mocp_3d::standard_registry_3d;

    fn quick_scenario(models: &[&str]) -> Scenario {
        Scenario {
            name: "quick".to_string(),
            mesh_size: 20,
            distribution: FaultDistribution::Clustered,
            fault_counts: vec![10, 20],
            models: models.iter().map(|m| m.to_string()).collect(),
            trials: 2,
            base_seed: 5,
        }
    }

    #[test]
    fn runs_an_arbitrary_model_subset() {
        let registry = mocp_core::standard_registry();
        let result = run_scenario(&registry, &quick_scenario(&["FP", "FB"])).unwrap();
        assert_eq!(result.models(), ["FP", "FB"]);
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert_eq!(p.metrics.len(), 2);
            // FP (column 0) never disables more than FB (column 1)
            assert!(p.metrics[0].disabled_nonfaulty <= p.metrics[1].disabled_nonfaulty + 1e-9);
        }
    }

    #[test]
    fn unknown_model_fails_before_running() {
        let registry = mocp_core::standard_registry();
        let err = run_scenario(&registry, &quick_scenario(&["FB", "MFP"])).unwrap_err();
        assert_eq!(err.requested, "MFP");
    }

    /// The one generic runner drives the 3-D registry with the identical
    /// code path — and the 3-D MFP never disables more than FB-3D.
    #[test]
    fn same_runner_drives_the_3d_registry() {
        let registry = standard_registry_3d();
        for dist in FaultDistribution::ALL {
            let result = run_scenario(&registry, &Scenario::quick_3d(dist)).unwrap();
            assert_eq!(result.points.len(), 4);
            for p in &result.points {
                let (fb, mfp) = (
                    p.metrics[0].disabled_nonfaulty,
                    p.metrics[1].disabled_nonfaulty,
                );
                assert!(
                    mfp <= fb + 1e-9,
                    "{dist:?} @ {}: MFP3D {mfp} > FB3D {fb}",
                    p.fault_count
                );
            }
        }
    }

    #[test]
    fn three_d_series_have_one_column_per_model_and_one_row_per_count() {
        let registry = standard_registry_3d();
        let result =
            run_scenario(&registry, &Scenario::quick_3d(FaultDistribution::Clustered)).unwrap();
        let fig9 = result.series(Metric::DisabledNonfaulty);
        let fig10 = result.series(Metric::AvgRegionSize);
        assert_eq!(fig9.curves, vec!["FB3D", "MFP3D"]);
        assert_eq!(fig9.rows.len(), 4);
        assert_eq!(fig10.curves, vec!["FB3D", "MFP3D"]);
        assert!(fig9.title.contains("disabled non-faulty"));
        assert!(fig10.title.contains("avg region size"));
        // Region sizes include the faults, so they are at least 1 once
        // faults exist.
        for (_, row) in &fig10.rows {
            assert!(row.iter().all(|&v| v >= 1.0));
        }
    }

    #[test]
    fn unknown_model_fails_in_3d_too() {
        let registry = standard_registry_3d();
        let mut scenario = Scenario::quick_3d(FaultDistribution::Random);
        scenario.models.push("CMFP".to_string());
        let err = run_scenario(&registry, &scenario).unwrap_err();
        assert_eq!(err.requested, "CMFP");
    }

    #[test]
    fn deterministic_across_runs_in_both_dimensions() {
        let registry = mocp_core::standard_registry();
        let scenario = quick_scenario(&["FB", "CMFP"]);
        let a = run_scenario(&registry, &scenario).unwrap();
        let b = run_scenario(&registry, &scenario).unwrap();
        assert_eq!(a.points, b.points);

        let registry3 = standard_registry_3d();
        let scenario3 = Scenario::quick_3d(FaultDistribution::Clustered);
        let a3 = run_scenario(&registry3, &scenario3).unwrap();
        let b3 = run_scenario(&registry3, &scenario3).unwrap();
        assert_eq!(a3.points, b3.points);
    }

    #[test]
    fn series_extracts_one_metric_per_model() {
        let registry = mocp_core::standard_registry();
        let result = run_scenario(&registry, &quick_scenario(&["FB", "CMFP"])).unwrap();
        let series = result.series(Metric::DisabledNonfaulty);
        assert_eq!(series.curves, vec!["FB", "CMFP"]);
        assert_eq!(series.rows.len(), 2);
        let fb = series.curve("FB").unwrap();
        let cmfp = series.curve("CMFP").unwrap();
        for i in 0..fb.len() {
            assert!(cmfp[i] <= fb[i] + 1e-9);
        }
        assert!(series.title.contains("disabled non-faulty nodes"));
    }

    /// A model extension is one registry entry — nothing else changes.
    #[test]
    fn new_models_join_sweeps_via_a_single_registry_entry() {
        struct RenamedFb;
        impl FaultModel for RenamedFb {
            fn name(&self) -> &'static str {
                "FB2"
            }
            fn construct(&self, mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
                ModelOutcome {
                    model: self.name().to_string(),
                    ..FaultyBlockModel.construct(mesh, faults)
                }
            }
        }

        let mut registry = mocp_core::standard_registry();
        registry.register("FB2", "faulty block under a second name", || {
            Box::new(RenamedFb)
        });
        let result = run_scenario(&registry, &quick_scenario(&["FB", "FB2"])).unwrap();
        for p in &result.points {
            assert_eq!(
                p.metrics[0], p.metrics[1],
                "same construction, same metrics"
            );
        }
    }

    #[test]
    fn metric_labels_and_extraction() {
        let point = ModelPoint {
            disabled_nonfaulty: 1.0,
            avg_region_size: 2.0,
            rounds: 3.0,
        };
        assert_eq!(Metric::DisabledNonfaulty.of(&point), 1.0);
        assert_eq!(Metric::AvgRegionSize.of(&point), 2.0);
        assert_eq!(Metric::Rounds.of(&point), 3.0);
        assert!(!Metric::Rounds.label().is_empty());
    }

    #[test]
    fn builder_helpers_replace_fields() {
        let s = Scenario::new("custom")
            .with_models(["FB"])
            .with_distribution(FaultDistribution::Clustered);
        assert_eq!(s.models, vec!["FB".to_string()]);
        assert_eq!(s.distribution, FaultDistribution::Clustered);
        assert_eq!(s.mesh_size, 100);
    }

    #[test]
    fn rounds_stats_default_sanity() {
        // Guard against RoundStats default drifting: quiescent means zero
        // rounds, which the averaging relies on for empty accumulators.
        assert_eq!(RoundStats::quiescent().rounds, 0);
    }
}
