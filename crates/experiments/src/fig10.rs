//! Figure 10: average size of a faulty block / polygon (faulty plus
//! non-faulty nodes it contains) under FB, FP and MFP.

use crate::sweep::SweepResult;
use crate::table::Series;

/// Extracts the Figure 10 series.
pub fn figure10(result: &SweepResult) -> Series {
    let label = match result.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    };
    let mut series = Series::new(
        format!("Figure 10 {label}: average size of fault block/polygon"),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    for p in &result.points {
        series.push_row(
            p.fault_count,
            vec![
                p.fb.avg_region_size,
                p.fp.avg_region_size,
                p.cmfp.avg_region_size,
            ],
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use faultgen::FaultDistribution;

    #[test]
    fn mfp_regions_are_smallest_on_average() {
        for dist in FaultDistribution::ALL {
            let result = run_sweep(&SweepConfig::quick(), dist);
            let series = figure10(&result);
            let fb = series.curve("FB").unwrap();
            let fp = series.curve("FP").unwrap();
            let mfp = series.curve("MFP").unwrap();
            for i in 0..fb.len() {
                assert!(mfp[i] <= fb[i] + 1e-9, "{dist:?}: MFP should not exceed FB");
                assert!(fp[i] <= fb[i] + 1e-9, "{dist:?}: FP should not exceed FB");
            }
        }
    }

    #[test]
    fn clustered_blocks_are_larger_than_random_blocks() {
        // The paper: under the clustered model the average faulty block size
        // can be several times that of the random model.
        let config = SweepConfig {
            mesh_size: 40,
            fault_counts: vec![120],
            trials: 3,
            base_seed: 11,
        };
        let random = run_sweep(&config, FaultDistribution::Random);
        let clustered = run_sweep(&config, FaultDistribution::Clustered);
        let fb_random = figure10(&random).curve("FB").unwrap()[0];
        let fb_clustered = figure10(&clustered).curve("FB").unwrap()[0];
        assert!(
            fb_clustered > fb_random,
            "clustered {fb_clustered} vs random {fb_random}"
        );
    }

    #[test]
    fn every_region_contains_at_least_one_node() {
        let result = run_sweep(&SweepConfig::quick(), FaultDistribution::Random);
        let series = figure10(&result);
        for (_, values) in &series.rows {
            for v in values {
                assert!(*v >= 1.0);
            }
        }
    }
}
