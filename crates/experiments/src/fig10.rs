//! Figure 10: average size of a faulty block / polygon (faulty plus
//! non-faulty nodes it contains) under FB, FP and MFP.

use crate::scenario::ScenarioResult;
use crate::table::Series;

/// Extracts the Figure 10 series.
///
/// # Panics
/// Panics when the result was not produced by a scenario containing the
/// paper's FB, FP and CMFP models.
pub fn figure10(result: &ScenarioResult) -> Series {
    let label = match result.scenario.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    };
    let mut series = Series::new(
        format!("Figure 10 {label}: average size of fault block/polygon"),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    let [fb, fp, mfp] = ["FB", "FP", "CMFP"].map(|m| {
        result
            .model_curve(m)
            .unwrap_or_else(|| panic!("paper-figure scenario ran without the {m} model"))
    });
    for (i, p) in result.points.iter().enumerate() {
        series.push_row(
            p.fault_count,
            vec![
                fb[i].avg_region_size,
                fp[i].avg_region_size,
                mfp[i].avg_region_size,
            ],
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Scenario};
    use crate::sweep::SweepConfig;
    use faultgen::FaultDistribution;

    fn result_for(config: &SweepConfig, dist: FaultDistribution) -> ScenarioResult {
        let registry = mocp_core::standard_registry();
        run_scenario(&registry, &Scenario::paper_figures(config, dist)).unwrap()
    }

    #[test]
    fn mfp_regions_are_smallest_on_average() {
        for dist in FaultDistribution::ALL {
            let series = figure10(&result_for(&SweepConfig::quick(), dist));
            let fb = series.curve("FB").unwrap();
            let fp = series.curve("FP").unwrap();
            let mfp = series.curve("MFP").unwrap();
            for i in 0..fb.len() {
                assert!(mfp[i] <= fb[i] + 1e-9, "{dist:?}: MFP should not exceed FB");
                assert!(fp[i] <= fb[i] + 1e-9, "{dist:?}: FP should not exceed FB");
            }
        }
    }

    #[test]
    fn clustered_blocks_are_larger_than_random_blocks() {
        // The paper: under the clustered model the average faulty block size
        // can be several times that of the random model.
        let config = SweepConfig {
            mesh_size: 40,
            fault_counts: vec![120],
            trials: 3,
            base_seed: 11,
        };
        let fb_random = figure10(&result_for(&config, FaultDistribution::Random))
            .curve("FB")
            .unwrap()[0];
        let fb_clustered = figure10(&result_for(&config, FaultDistribution::Clustered))
            .curve("FB")
            .unwrap()[0];
        assert!(
            fb_clustered > fb_random,
            "clustered {fb_clustered} vs random {fb_random}"
        );
    }

    #[test]
    fn every_region_contains_at_least_one_node() {
        let series = figure10(&result_for(
            &SweepConfig::quick(),
            FaultDistribution::Random,
        ));
        for (_, values) in &series.rows {
            for v in values {
                assert!(*v >= 1.0);
            }
        }
    }
}
