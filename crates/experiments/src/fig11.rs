//! Figure 11: average number of rounds for status determination under FB,
//! FP, CMFP (centralized) and DMFP (distributed).

use crate::sweep::SweepResult;
use crate::table::Series;

/// Extracts the Figure 11 series.
pub fn figure11(result: &SweepResult) -> Series {
    let label = match result.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    };
    let mut series = Series::new(
        format!("Figure 11 {label}: average # of rounds for status determination"),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "CMFP".into(), "DMFP".into()],
    );
    for p in &result.points {
        series.push_row(
            p.fault_count,
            vec![p.fb.rounds, p.fp.rounds, p.cmfp.rounds, p.dmfp.rounds],
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use faultgen::FaultDistribution;

    #[test]
    fn fp_needs_more_rounds_than_fb_and_cmfp_fewer_than_fb() {
        // The orderings reported in the paper: FP > FB (extra scheme-2
        // rounds) and CMFP < FB once faulty blocks grow beyond components.
        let config = SweepConfig {
            mesh_size: 40,
            fault_counts: vec![150],
            trials: 3,
            base_seed: 3,
        };
        for dist in FaultDistribution::ALL {
            let result = run_sweep(&config, dist);
            let series = figure11(&result);
            let fb = series.curve("FB").unwrap()[0];
            let fp = series.curve("FP").unwrap()[0];
            let cmfp = series.curve("CMFP").unwrap()[0];
            assert!(fp >= fb, "{dist:?}: FP {fp} vs FB {fb}");
            assert!(cmfp <= fp, "{dist:?}: CMFP {cmfp} vs FP {fp}");
        }
    }

    #[test]
    fn dmfp_needs_more_rounds_than_cmfp() {
        // The distributed construction circles each component, so it pays
        // more rounds than the centralized emulation.
        let result = run_sweep(&SweepConfig::quick(), FaultDistribution::Clustered);
        let series = figure11(&result);
        let cmfp = series.curve("CMFP").unwrap();
        let dmfp = series.curve("DMFP").unwrap();
        for i in 0..cmfp.len() {
            assert!(dmfp[i] >= cmfp[i]);
        }
    }

    #[test]
    fn figure11_has_four_curves() {
        let result = run_sweep(&SweepConfig::quick(), FaultDistribution::Random);
        let series = figure11(&result);
        assert_eq!(series.curves, vec!["FB", "FP", "CMFP", "DMFP"]);
    }
}
