//! Figure 11: average number of rounds for status determination under FB,
//! FP, CMFP (centralized) and DMFP (distributed).

use crate::scenario::ScenarioResult;
use crate::table::Series;

/// Extracts the Figure 11 series.
///
/// # Panics
/// Panics when the result was not produced by a scenario containing the
/// paper's FB, FP, CMFP and DMFP models.
pub fn figure11(result: &ScenarioResult) -> Series {
    let label = match result.scenario.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    };
    let mut series = Series::new(
        format!("Figure 11 {label}: average # of rounds for status determination"),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "CMFP".into(), "DMFP".into()],
    );
    let [fb, fp, cmfp, dmfp] = ["FB", "FP", "CMFP", "DMFP"].map(|m| {
        result
            .model_curve(m)
            .unwrap_or_else(|| panic!("paper-figure scenario ran without the {m} model"))
    });
    for (i, p) in result.points.iter().enumerate() {
        series.push_row(
            p.fault_count,
            vec![fb[i].rounds, fp[i].rounds, cmfp[i].rounds, dmfp[i].rounds],
        );
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Scenario};
    use crate::sweep::SweepConfig;
    use faultgen::FaultDistribution;

    fn result_for(config: &SweepConfig, dist: FaultDistribution) -> ScenarioResult {
        let registry = mocp_core::standard_registry();
        run_scenario(&registry, &Scenario::paper_figures(config, dist)).unwrap()
    }

    #[test]
    fn fp_needs_more_rounds_than_fb_and_cmfp_fewer_than_fb() {
        // The orderings reported in the paper: FP > FB (extra scheme-2
        // rounds) and CMFP < FB once faulty blocks grow beyond components.
        let config = SweepConfig {
            mesh_size: 40,
            fault_counts: vec![150],
            trials: 3,
            base_seed: 3,
        };
        for dist in FaultDistribution::ALL {
            let series = figure11(&result_for(&config, dist));
            let fb = series.curve("FB").unwrap()[0];
            let fp = series.curve("FP").unwrap()[0];
            let cmfp = series.curve("CMFP").unwrap()[0];
            assert!(fp >= fb, "{dist:?}: FP {fp} vs FB {fb}");
            assert!(cmfp <= fp, "{dist:?}: CMFP {cmfp} vs FP {fp}");
        }
    }

    #[test]
    fn dmfp_needs_more_rounds_than_cmfp() {
        // The distributed construction circles each component, so it pays
        // more rounds than the centralized emulation.
        let series = figure11(&result_for(
            &SweepConfig::quick(),
            FaultDistribution::Clustered,
        ));
        let cmfp = series.curve("CMFP").unwrap();
        let dmfp = series.curve("DMFP").unwrap();
        for i in 0..cmfp.len() {
            assert!(dmfp[i] >= cmfp[i]);
        }
    }

    #[test]
    fn figure11_has_four_curves() {
        let series = figure11(&result_for(
            &SweepConfig::quick(),
            FaultDistribution::Random,
        ));
        assert_eq!(series.curves, vec!["FB", "FP", "CMFP", "DMFP"]);
    }
}
