//! Figure 9: average number of non-faulty but disabled nodes under FB, FP
//! and MFP, on a log₁₀ scale, for the random (a) and clustered (b) fault
//! distribution models.

use crate::sweep::SweepResult;
use crate::table::Series;

/// Extracts the Figure 9 series (log₁₀ of the disabled-node counts, as the
/// paper plots them; zero counts are reported as -1 to match the paper's
/// bottom-of-axis convention).
pub fn figure9(result: &SweepResult) -> Series {
    let label = match result.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    };
    let mut series = Series::new(
        format!("Figure 9 {label}: # of disabled non-faulty nodes (log10)"),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    for p in &result.points {
        series.push_row(
            p.fault_count,
            vec![
                log10_or_floor(p.fb.disabled_nonfaulty),
                log10_or_floor(p.fp.disabled_nonfaulty),
                log10_or_floor(p.cmfp.disabled_nonfaulty),
            ],
        );
    }
    series
}

/// Raw (non-logarithmic) variant of Figure 9, convenient for EXPERIMENTS.md.
pub fn figure9_raw(result: &SweepResult) -> Series {
    let mut series = Series::new(
        format!(
            "Figure 9 ({}) raw counts: # of disabled non-faulty nodes",
            result.distribution.label()
        ),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    for p in &result.points {
        series.push_row(
            p.fault_count,
            vec![
                p.fb.disabled_nonfaulty,
                p.fp.disabled_nonfaulty,
                p.cmfp.disabled_nonfaulty,
            ],
        );
    }
    series
}

fn log10_or_floor(v: f64) -> f64 {
    if v < 0.1 {
        -1.0
    } else {
        v.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use faultgen::FaultDistribution;

    #[test]
    fn figure9_orders_models_correctly() {
        let result = run_sweep(&SweepConfig::quick(), FaultDistribution::Clustered);
        let series = figure9_raw(&result);
        let fb = series.curve("FB").unwrap();
        let fp = series.curve("FP").unwrap();
        let mfp = series.curve("MFP").unwrap();
        for i in 0..fb.len() {
            assert!(mfp[i] <= fp[i] + 1e-9);
            assert!(fp[i] <= fb[i] + 1e-9);
        }
    }

    #[test]
    fn log_scale_handles_zero() {
        assert_eq!(log10_or_floor(0.0), -1.0);
        assert!((log10_or_floor(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn figure9_has_three_curves_and_titles_per_distribution() {
        let result = run_sweep(&SweepConfig::quick(), FaultDistribution::Random);
        let series = figure9(&result);
        assert_eq!(series.curves.len(), 3);
        assert!(series.title.contains("random"));
        assert_eq!(series.rows.len(), SweepConfig::quick().fault_counts.len());
    }
}
