//! Figure 9: average number of non-faulty but disabled nodes under FB, FP
//! and MFP, on a log₁₀ scale, for the random (a) and clustered (b) fault
//! distribution models.

use crate::scenario::ScenarioResult;
use crate::sweep::ModelPoint;
use crate::table::Series;

fn distribution_label(result: &ScenarioResult) -> &'static str {
    match result.scenario.distribution {
        faultgen::FaultDistribution::Random => "(a) random fault distribution",
        faultgen::FaultDistribution::Clustered => "(b) clustered fault distribution",
    }
}

/// The FB / FP / MFP curves of a paper-figure scenario result (the MFP
/// curve is the CMFP column; DMFP produces identical polygons).
///
/// # Panics
/// Panics when the result was not produced by a scenario containing the
/// paper's FB, FP and CMFP models.
fn paper_curves(result: &ScenarioResult) -> [Vec<ModelPoint>; 3] {
    ["FB", "FP", "CMFP"].map(|m| {
        result
            .model_curve(m)
            .unwrap_or_else(|| panic!("paper-figure scenario ran without the {m} model"))
    })
}

/// Extracts the Figure 9 series (log₁₀ of the disabled-node counts, as the
/// paper plots them; zero counts are reported as -1 to match the paper's
/// bottom-of-axis convention).
pub fn figure9(result: &ScenarioResult) -> Series {
    let mut series = Series::new(
        format!(
            "Figure 9 {}: # of disabled non-faulty nodes (log10)",
            distribution_label(result)
        ),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    let [fb, fp, mfp] = paper_curves(result);
    for (i, p) in result.points.iter().enumerate() {
        series.push_row(
            p.fault_count,
            vec![
                log10_or_floor(fb[i].disabled_nonfaulty),
                log10_or_floor(fp[i].disabled_nonfaulty),
                log10_or_floor(mfp[i].disabled_nonfaulty),
            ],
        );
    }
    series
}

/// Raw (non-logarithmic) variant of Figure 9, convenient for EXPERIMENTS.md.
pub fn figure9_raw(result: &ScenarioResult) -> Series {
    let mut series = Series::new(
        format!(
            "Figure 9 ({}) raw counts: # of disabled non-faulty nodes",
            result.scenario.distribution.label()
        ),
        "faults".to_string(),
        vec!["FB".into(), "FP".into(), "MFP".into()],
    );
    let [fb, fp, mfp] = paper_curves(result);
    for (i, p) in result.points.iter().enumerate() {
        series.push_row(
            p.fault_count,
            vec![
                fb[i].disabled_nonfaulty,
                fp[i].disabled_nonfaulty,
                mfp[i].disabled_nonfaulty,
            ],
        );
    }
    series
}

fn log10_or_floor(v: f64) -> f64 {
    if v < 0.1 {
        -1.0
    } else {
        v.log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Scenario};
    use crate::sweep::SweepConfig;
    use faultgen::FaultDistribution;

    fn quick_result(dist: FaultDistribution) -> ScenarioResult {
        let registry = mocp_core::standard_registry();
        run_scenario(
            &registry,
            &Scenario::paper_figures(&SweepConfig::quick(), dist),
        )
        .unwrap()
    }

    #[test]
    fn figure9_orders_models_correctly() {
        let series = figure9_raw(&quick_result(FaultDistribution::Clustered));
        let fb = series.curve("FB").unwrap();
        let fp = series.curve("FP").unwrap();
        let mfp = series.curve("MFP").unwrap();
        for i in 0..fb.len() {
            assert!(mfp[i] <= fp[i] + 1e-9);
            assert!(fp[i] <= fb[i] + 1e-9);
        }
    }

    #[test]
    fn log_scale_handles_zero() {
        assert_eq!(log10_or_floor(0.0), -1.0);
        assert!((log10_or_floor(100.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn figure9_has_three_curves_and_titles_per_distribution() {
        let series = figure9(&quick_result(FaultDistribution::Random));
        assert_eq!(series.curves.len(), 3);
        assert!(series.title.contains("random"));
        assert_eq!(series.rows.len(), SweepConfig::quick().fault_counts.len());
    }

    #[test]
    #[should_panic(expected = "without the CMFP model")]
    fn non_paper_scenarios_are_rejected() {
        let registry = mocp_core::standard_registry();
        let scenario = Scenario::paper_figures(&SweepConfig::quick(), FaultDistribution::Random)
            .with_models(["FB", "FP"]);
        let result = run_scenario(&registry, &scenario).unwrap();
        figure9(&result);
    }
}
