//! The fault-count sweep shared by every figure.

use faultgen::{FaultDistribution, FaultInjector};
use fblock::{FaultModel, FaultyBlockModel, ModelOutcome, SubMinimumPolygonModel};
use mesh2d::Mesh2D;
use mocp_core::{CentralizedMfpModel, DistributedMfpModel};
use serde::{Deserialize, Serialize};

/// Configuration of one sweep (one curve family of Figures 9–11).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Mesh side length (the paper uses 100).
    pub mesh_size: u32,
    /// Fault counts to evaluate (the paper sweeps 0..800).
    pub fault_counts: Vec<usize>,
    /// Number of independent trials averaged per point.
    pub trials: u32,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mesh_size: 100,
            fault_counts: (1..=8).map(|i| i * 100).collect(),
            trials: 5,
            base_seed: 2004,
        }
    }
}

impl SweepConfig {
    /// The paper's configuration: 100×100 mesh, 100..800 faults, averaged
    /// over `trials` seeds.
    pub fn paper(trials: u32) -> Self {
        SweepConfig {
            trials,
            ..SweepConfig::default()
        }
    }

    /// A small configuration for unit tests and smoke benchmarks.
    pub fn quick() -> Self {
        SweepConfig {
            mesh_size: 30,
            fault_counts: vec![20, 40, 60],
            trials: 2,
            base_seed: 7,
        }
    }
}

/// The per-model metrics extracted from one construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelPoint {
    /// Non-faulty nodes the model disabled (Figure 9).
    pub disabled_nonfaulty: f64,
    /// Average region size in nodes, faults included (Figure 10).
    pub avg_region_size: f64,
    /// Rounds of status determination (Figure 11).
    pub rounds: f64,
}

impl ModelPoint {
    fn from_outcome(outcome: &ModelOutcome) -> Self {
        ModelPoint {
            disabled_nonfaulty: outcome.disabled_nonfaulty() as f64,
            avg_region_size: outcome.average_region_size(),
            rounds: outcome.rounds.rounds as f64,
        }
    }

    fn accumulate(&mut self, other: ModelPoint) {
        self.disabled_nonfaulty += other.disabled_nonfaulty;
        self.avg_region_size += other.avg_region_size;
        self.rounds += other.rounds;
    }

    fn scale(&mut self, factor: f64) {
        self.disabled_nonfaulty *= factor;
        self.avg_region_size *= factor;
        self.rounds *= factor;
    }
}

/// One x-axis point of the sweep: metrics of all four models at a given
/// fault count, averaged over the trials.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of faults injected.
    pub fault_count: usize,
    /// Rectangular faulty block metrics.
    pub fb: ModelPoint,
    /// Sub-minimum faulty polygon metrics.
    pub fp: ModelPoint,
    /// Centralized minimum faulty polygon metrics.
    pub cmfp: ModelPoint,
    /// Distributed minimum faulty polygon metrics.
    pub dmfp: ModelPoint,
}

/// A full sweep under one fault distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// The fault distribution that produced the curves.
    pub distribution: FaultDistribution,
    /// The configuration used.
    pub config: SweepConfig,
    /// One entry per fault count, in ascending order.
    pub points: Vec<SweepPoint>,
}

/// Runs the constructions for every fault count of one trial.
fn run_trial(config: &SweepConfig, distribution: FaultDistribution, trial: u32) -> Vec<SweepPoint> {
    let mesh = Mesh2D::square(config.mesh_size);
    let mut injector = FaultInjector::new(mesh, distribution, config.base_seed + trial as u64);
    let mut points = Vec::with_capacity(config.fault_counts.len());
    for &count in &config.fault_counts {
        injector.inject_up_to(count);
        let faults = injector.faults();
        let fb = FaultyBlockModel.construct(&mesh, faults);
        let fp = SubMinimumPolygonModel.construct(&mesh, faults);
        let cmfp = CentralizedMfpModel::virtual_block().construct(&mesh, faults);
        let dmfp = DistributedMfpModel.construct(&mesh, faults);
        points.push(SweepPoint {
            fault_count: count,
            fb: ModelPoint::from_outcome(&fb),
            fp: ModelPoint::from_outcome(&fp),
            cmfp: ModelPoint::from_outcome(&cmfp),
            dmfp: ModelPoint::from_outcome(&dmfp),
        });
    }
    points
}

/// Runs the sweep, averaging over `config.trials` independent fault
/// sequences. Trials run on separate threads (crossbeam scope) because each
/// is an independent simulation.
pub fn run_sweep(config: &SweepConfig, distribution: FaultDistribution) -> SweepResult {
    let trials = config.trials.max(1);
    let trial_results: Vec<Vec<SweepPoint>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..trials)
            .map(|t| scope.spawn(move |_| run_trial(config, distribution, t)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("trial panicked")).collect()
    })
    .expect("sweep scope panicked");

    let mut points: Vec<SweepPoint> = config
        .fault_counts
        .iter()
        .map(|&fault_count| SweepPoint {
            fault_count,
            ..SweepPoint::default()
        })
        .collect();
    for trial in &trial_results {
        for (acc, p) in points.iter_mut().zip(trial) {
            acc.fb.accumulate(p.fb);
            acc.fp.accumulate(p.fp);
            acc.cmfp.accumulate(p.cmfp);
            acc.dmfp.accumulate(p.dmfp);
        }
    }
    let factor = 1.0 / trials as f64;
    for p in &mut points {
        p.fb.scale(factor);
        p.fp.scale(factor);
        p.cmfp.scale(factor);
        p.dmfp.scale(factor);
    }

    SweepResult {
        distribution,
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_one_point_per_count() {
        let config = SweepConfig::quick();
        let result = run_sweep(&config, FaultDistribution::Random);
        assert_eq!(result.points.len(), config.fault_counts.len());
        for (p, &count) in result.points.iter().zip(&config.fault_counts) {
            assert_eq!(p.fault_count, count);
        }
    }

    #[test]
    fn model_ordering_matches_the_paper() {
        // MFP disables no more healthy nodes than FP, which disables no more
        // than FB; the centralized and distributed MFP agree.
        let config = SweepConfig::quick();
        for dist in FaultDistribution::ALL {
            let result = run_sweep(&config, dist);
            for p in &result.points {
                assert!(p.cmfp.disabled_nonfaulty <= p.fp.disabled_nonfaulty + 1e-9, "{dist:?}");
                assert!(p.fp.disabled_nonfaulty <= p.fb.disabled_nonfaulty + 1e-9, "{dist:?}");
                assert!((p.cmfp.disabled_nonfaulty - p.dmfp.disabled_nonfaulty).abs() < 1e-9);
                assert!(p.fp.rounds >= p.fb.rounds, "FP adds scheme-2 rounds");
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = SweepConfig {
            mesh_size: 20,
            fault_counts: vec![15, 30],
            trials: 2,
            base_seed: 99,
        };
        let a = run_sweep(&config, FaultDistribution::Clustered);
        let b = run_sweep(&config, FaultDistribution::Clustered);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn disabled_nodes_grow_with_fault_count() {
        let config = SweepConfig::quick();
        let result = run_sweep(&config, FaultDistribution::Clustered);
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(last.fb.disabled_nonfaulty >= first.fb.disabled_nonfaulty);
    }
}
