//! The fault-count sweep shared by every figure.
//!
//! Since the scenario refactor this module is the *presentation-shaped*
//! view of the paper's standard sweep: [`run_sweep`] builds the
//! four-model [`Scenario`], executes it through [`run_scenario`] with
//! the standard model registry, and reshapes the result into the fixed
//! FB/FP/CMFP/DMFP columns of [`SweepPoint`] that the figure extractors
//! consume.

use crate::scenario::{run_scenario, Scenario};
use faultgen::FaultDistribution;
use fblock::ModelOutcome;
use serde::{Deserialize, Serialize};

/// Configuration of one sweep (one curve family of Figures 9–11).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Mesh side length (the paper uses 100).
    pub mesh_size: u32,
    /// Fault counts to evaluate (the paper sweeps 0..800).
    pub fault_counts: Vec<usize>,
    /// Number of independent trials averaged per point.
    pub trials: u32,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mesh_size: 100,
            fault_counts: (1..=8).map(|i| i * 100).collect(),
            trials: 5,
            base_seed: 2004,
        }
    }
}

impl SweepConfig {
    /// The paper's configuration: 100×100 mesh, 100..800 faults, averaged
    /// over `trials` seeds.
    pub fn paper(trials: u32) -> Self {
        SweepConfig {
            trials,
            ..SweepConfig::default()
        }
    }

    /// A small configuration for unit tests and smoke benchmarks.
    pub fn quick() -> Self {
        SweepConfig {
            mesh_size: 30,
            fault_counts: vec![20, 40, 60],
            trials: 2,
            base_seed: 7,
        }
    }
}

/// The per-model metrics extracted from one construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelPoint {
    /// Non-faulty nodes the model disabled (Figure 9).
    pub disabled_nonfaulty: f64,
    /// Average region size in nodes, faults included (Figure 10).
    pub avg_region_size: f64,
    /// Rounds of status determination (Figure 11).
    pub rounds: f64,
}

impl ModelPoint {
    /// Extracts the three figure metrics from one construction outcome.
    pub fn from_outcome(outcome: &ModelOutcome) -> Self {
        ModelPoint {
            disabled_nonfaulty: outcome.disabled_nonfaulty() as f64,
            avg_region_size: outcome.average_region_size(),
            rounds: outcome.rounds.rounds as f64,
        }
    }

    pub(crate) fn accumulate(&mut self, other: ModelPoint) {
        self.disabled_nonfaulty += other.disabled_nonfaulty;
        self.avg_region_size += other.avg_region_size;
        self.rounds += other.rounds;
    }

    pub(crate) fn scale(&mut self, factor: f64) {
        self.disabled_nonfaulty *= factor;
        self.avg_region_size *= factor;
        self.rounds *= factor;
    }
}

/// One x-axis point of the sweep: metrics of all four models at a given
/// fault count, averaged over the trials.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of faults injected.
    pub fault_count: usize,
    /// Rectangular faulty block metrics.
    pub fb: ModelPoint,
    /// Sub-minimum faulty polygon metrics.
    pub fp: ModelPoint,
    /// Centralized minimum faulty polygon metrics.
    pub cmfp: ModelPoint,
    /// Distributed minimum faulty polygon metrics.
    pub dmfp: ModelPoint,
}

/// A full sweep under one fault distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepResult {
    /// The fault distribution that produced the curves.
    pub distribution: FaultDistribution,
    /// The configuration used.
    pub config: SweepConfig,
    /// One entry per fault count, in ascending order.
    pub points: Vec<SweepPoint>,
}

/// Runs the paper's standard four-model sweep, averaging over
/// `config.trials` independent fault sequences.
///
/// This is a compatibility adapter: the actual execution is the
/// scenario runner ([`run_scenario`]) with the models FB, FP, CMFP and
/// DMFP resolved by name through [`mocp_core::standard_registry`].
pub fn run_sweep(config: &SweepConfig, distribution: FaultDistribution) -> SweepResult {
    let registry = mocp_core::standard_registry();
    let scenario = Scenario::paper_figures(config, distribution);
    let result = run_scenario(&registry, &scenario)
        .expect("the standard registry provides every paper model");

    let points = result
        .points
        .iter()
        .map(|p| SweepPoint {
            fault_count: p.fault_count,
            fb: p.metrics[0],
            fp: p.metrics[1],
            cmfp: p.metrics[2],
            dmfp: p.metrics[3],
        })
        .collect();

    SweepResult {
        distribution,
        config: config.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_one_point_per_count() {
        let config = SweepConfig::quick();
        let result = run_sweep(&config, FaultDistribution::Random);
        assert_eq!(result.points.len(), config.fault_counts.len());
        for (p, &count) in result.points.iter().zip(&config.fault_counts) {
            assert_eq!(p.fault_count, count);
        }
    }

    #[test]
    fn model_ordering_matches_the_paper() {
        // MFP disables no more healthy nodes than FP, which disables no more
        // than FB; the centralized and distributed MFP agree.
        let config = SweepConfig::quick();
        for dist in FaultDistribution::ALL {
            let result = run_sweep(&config, dist);
            for p in &result.points {
                assert!(
                    p.cmfp.disabled_nonfaulty <= p.fp.disabled_nonfaulty + 1e-9,
                    "{dist:?}"
                );
                assert!(
                    p.fp.disabled_nonfaulty <= p.fb.disabled_nonfaulty + 1e-9,
                    "{dist:?}"
                );
                assert!((p.cmfp.disabled_nonfaulty - p.dmfp.disabled_nonfaulty).abs() < 1e-9);
                assert!(p.fp.rounds >= p.fb.rounds, "FP adds scheme-2 rounds");
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = SweepConfig {
            mesh_size: 20,
            fault_counts: vec![15, 30],
            trials: 2,
            base_seed: 99,
        };
        let a = run_sweep(&config, FaultDistribution::Clustered);
        let b = run_sweep(&config, FaultDistribution::Clustered);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn disabled_nodes_grow_with_fault_count() {
        let config = SweepConfig::quick();
        let result = run_sweep(&config, FaultDistribution::Clustered);
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(last.fb.disabled_nonfaulty >= first.fb.disabled_nonfaulty);
    }
}
