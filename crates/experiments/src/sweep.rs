//! Sweep sizing and the per-model metric point.
//!
//! The legacy `run_sweep` adapter (fixed FB/FP/CMFP/DMFP columns) is
//! gone: every figure, bench and example now calls
//! [`run_scenario`](crate::scenario::run_scenario) directly. What remains
//! here is the *sizing* vocabulary shared by every sweep — [`SweepConfig`]
//! (mesh side, fault counts, trials, base seed) and [`ModelPoint`] (the
//! three Figure 9/10/11 metrics extracted from one construction outcome,
//! in any dimension).

use fblock::Outcome;
use mocp_topology::MeshTopology;
use serde::{Deserialize, Serialize};

/// Configuration of one sweep (one curve family of Figures 9–11).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Mesh side length (the paper uses 100).
    pub mesh_size: u32,
    /// Fault counts to evaluate (the paper sweeps 0..800).
    pub fault_counts: Vec<usize>,
    /// Number of independent trials averaged per point.
    pub trials: u32,
    /// Base RNG seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            mesh_size: 100,
            fault_counts: (1..=8).map(|i| i * 100).collect(),
            trials: 5,
            base_seed: 2004,
        }
    }
}

impl SweepConfig {
    /// The paper's configuration: 100×100 mesh, 100..800 faults, averaged
    /// over `trials` seeds.
    pub fn paper(trials: u32) -> Self {
        SweepConfig {
            trials,
            ..SweepConfig::default()
        }
    }

    /// A small configuration for unit tests and smoke benchmarks.
    pub fn quick() -> Self {
        SweepConfig {
            mesh_size: 30,
            fault_counts: vec![20, 40, 60],
            trials: 2,
            base_seed: 7,
        }
    }
}

/// The per-model metrics extracted from one construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelPoint {
    /// Non-faulty nodes the model disabled (Figure 9).
    pub disabled_nonfaulty: f64,
    /// Average region size in nodes, faults included (Figure 10).
    pub avg_region_size: f64,
    /// Rounds of status determination (Figure 11).
    pub rounds: f64,
}

impl ModelPoint {
    /// Extracts the three figure metrics from one construction outcome —
    /// for any mesh topology, through the generic [`Outcome`].
    pub fn from_outcome<T: MeshTopology>(outcome: &Outcome<T>) -> Self {
        ModelPoint {
            disabled_nonfaulty: outcome.disabled_nonfaulty() as f64,
            avg_region_size: outcome.average_region_size(),
            rounds: outcome.rounds.rounds as f64,
        }
    }

    pub(crate) fn accumulate(&mut self, other: ModelPoint) {
        self.disabled_nonfaulty += other.disabled_nonfaulty;
        self.avg_region_size += other.avg_region_size;
        self.rounds += other.rounds;
    }

    pub(crate) fn scale(&mut self, factor: f64) {
        self.disabled_nonfaulty *= factor;
        self.avg_region_size *= factor;
        self.rounds *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Scenario};
    use faultgen::FaultDistribution;

    #[test]
    fn quick_sweep_produces_one_point_per_count() {
        let config = SweepConfig::quick();
        let registry = mocp_core::standard_registry();
        let scenario = Scenario::paper_figures(&config, FaultDistribution::Random);
        let result = run_scenario(&registry, &scenario).unwrap();
        assert_eq!(result.points.len(), config.fault_counts.len());
        for (p, &count) in result.points.iter().zip(&config.fault_counts) {
            assert_eq!(p.fault_count, count);
        }
    }

    #[test]
    fn model_ordering_matches_the_paper() {
        // MFP disables no more healthy nodes than FP, which disables no more
        // than FB; the centralized and distributed MFP agree.
        let config = SweepConfig::quick();
        let registry = mocp_core::standard_registry();
        for dist in FaultDistribution::ALL {
            let result = run_scenario(&registry, &Scenario::paper_figures(&config, dist)).unwrap();
            for p in &result.points {
                let [fb, fp, cmfp, dmfp] =
                    [&p.metrics[0], &p.metrics[1], &p.metrics[2], &p.metrics[3]];
                assert!(
                    cmfp.disabled_nonfaulty <= fp.disabled_nonfaulty + 1e-9,
                    "{dist:?}"
                );
                assert!(
                    fp.disabled_nonfaulty <= fb.disabled_nonfaulty + 1e-9,
                    "{dist:?}"
                );
                assert!((cmfp.disabled_nonfaulty - dmfp.disabled_nonfaulty).abs() < 1e-9);
                assert!(fp.rounds >= fb.rounds, "FP adds scheme-2 rounds");
            }
        }
    }

    #[test]
    fn disabled_nodes_grow_with_fault_count() {
        let registry = mocp_core::standard_registry();
        let scenario = Scenario::paper_figures(&SweepConfig::quick(), FaultDistribution::Clustered);
        let result = run_scenario(&registry, &scenario).unwrap();
        let first = result.points.first().unwrap();
        let last = result.points.last().unwrap();
        assert!(last.metrics[0].disabled_nonfaulty >= first.metrics[0].disabled_nonfaulty);
    }
}
