//! Plain-text and CSV rendering of figure series.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A figure rendered as columns: one x column (fault count) and one y column
/// per curve.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Figure title (e.g. "Figure 9(a) ...").
    pub title: String,
    /// Name of the x axis.
    pub x_label: String,
    /// Curve names, in column order.
    pub curves: Vec<String>,
    /// Rows: `(x, y values per curve)`.
    pub rows: Vec<(usize, Vec<f64>)>,
}

impl Series {
    /// Creates an empty series with the given labels.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, curves: Vec<String>) -> Self {
        Series {
            title: title.into(),
            x_label: x_label.into(),
            curves,
            rows: Vec::new(),
        }
    }

    /// Appends one row. Panics if the value count does not match the curves.
    pub fn push_row(&mut self, x: usize, values: Vec<f64>) {
        assert_eq!(values.len(), self.curves.len(), "row width mismatch");
        self.rows.push((x, values));
    }

    /// The values of one curve, in row order.
    pub fn curve(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.curves.iter().position(|c| c == name)?;
        Some(self.rows.iter().map(|(_, v)| v[idx]).collect())
    }
}

/// Renders a series as an aligned plain-text table (what `paper-figures`
/// prints).
pub fn render_table(series: &Series) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", series.title);
    let width = 14usize;
    let _ = write!(out, "{:>width$}", series.x_label);
    for c in &series.curves {
        let _ = write!(out, "{c:>width$}");
    }
    out.push('\n');
    for (x, values) in &series.rows {
        let _ = write!(out, "{x:>width$}");
        for v in values {
            let _ = write!(out, "{v:>width$.3}");
        }
        out.push('\n');
    }
    out
}

/// Renders a series as CSV (header + rows).
pub fn render_csv(series: &Series) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}", series.x_label);
    for c in &series.curves {
        let _ = write!(out, ",{c}");
    }
    out.push('\n');
    for (x, values) in &series.rows {
        let _ = write!(out, "{x}");
        for v in values {
            let _ = write!(out, ",{v:.6}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Series {
        let mut s = Series::new("Figure X", "faults", vec!["FB".into(), "MFP".into()]);
        s.push_row(100, vec![10.0, 1.5]);
        s.push_row(200, vec![25.0, 2.25]);
        s
    }

    #[test]
    fn table_contains_title_headers_and_rows() {
        let text = render_table(&sample());
        assert!(text.contains("# Figure X"));
        assert!(text.contains("FB"));
        assert!(text.contains("MFP"));
        assert!(text.contains("200"));
        assert!(text.contains("25.000"));
    }

    #[test]
    fn csv_round_numbers() {
        let csv = render_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "faults,FB,MFP");
        assert!(lines.next().unwrap().starts_with("100,10.000000,1.500000"));
    }

    #[test]
    fn curve_extraction() {
        let s = sample();
        assert_eq!(s.curve("FB"), Some(vec![10.0, 25.0]));
        assert_eq!(s.curve("MFP"), Some(vec![1.5, 2.25]));
        assert_eq!(s.curve("nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut s = sample();
        s.push_row(300, vec![1.0]);
    }
}
