//! The heavy-traffic sweep: cycle-driven simulation of every
//! (model × pattern) cell over one injected fault population.
//!
//! [`run_traffic`] is the network-dynamics counterpart of
//! [`run_scenario`](crate::run_scenario): where the figure sweeps measure
//! what a fault model *disables*, this sweep measures what the surviving
//! network *delivers* — throughput, latency, stretch and buffer pressure
//! under uniform, transpose and hotspot traffic, with the identical
//! extended e-cube router for every model. The fault population is built
//! once from the scenario seed, each model's status map and region index
//! are derived once, and the (model × pattern × trial) cells then fan out
//! as independent tasks on the work-stealing pool. Trial `t` of a pattern
//! draws its message stream from `base_seed + t` for **every** model, so
//! the FB and MFP columns of one trial see the same offered traffic — the
//! comparison is paired, and the CSV is byte-identical at any thread
//! count because the collect is ordered and the averaging sequential.

use faultgen::{FaultDistribution, FaultInjector};
use mesh2d::{Mesh2D, StatusMap};
use meshroute::RegionMap;
use mocp_topology::{ModelRegistry, UnknownModel};
use mocp_traffic::{pattern_by_name, simulate, SimConfig, TrafficReport, VcOccupancy};
use serde::{Deserialize, Serialize};

/// A declarative description of one traffic sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrafficScenario {
    /// Human-readable name (reported in summaries, not in the CSV).
    pub name: String,
    /// Mesh side length (`n × n`).
    pub mesh_size: u32,
    /// Faults injected before any traffic runs.
    pub faults: usize,
    /// Fault distribution driving the injector.
    pub distribution: FaultDistribution,
    /// Fault-model names, resolved through the registry.
    pub models: Vec<String>,
    /// Traffic-pattern names (see [`mocp_traffic::PATTERN_NAMES`]).
    pub patterns: Vec<String>,
    /// Messages offered per (model × pattern × trial) cell.
    pub messages: usize,
    /// Independent seeded trials averaged per cell.
    pub trials: u32,
    /// Base RNG seed: the fault population uses it directly, trial `t`'s
    /// message stream uses `base_seed + t`.
    pub base_seed: u64,
    /// Messages entering their source queues per cycle.
    pub injection_rate: usize,
    /// Buffer slots per (link, virtual channel).
    pub vc_capacity: usize,
    /// Hard cycle horizon (`0` = auto, see [`SimConfig::max_cycles`]).
    pub max_cycles: u64,
    /// Pairs routed by the static reachability probe per cell.
    pub reachable_sample: usize,
}

impl TrafficScenario {
    /// The acceptance-scale sweep: a 512×512 mesh with 250 random faults,
    /// one million messages per cell, FB vs CMFP under all three patterns.
    pub fn full() -> Self {
        TrafficScenario {
            name: "traffic-512".to_string(),
            mesh_size: 512,
            faults: 250,
            distribution: FaultDistribution::Random,
            models: vec!["FB".to_string(), "CMFP".to_string()],
            patterns: mocp_traffic::PATTERN_NAMES.map(String::from).to_vec(),
            messages: 1_000_000,
            trials: 1,
            base_seed: 2004,
            injection_rate: 256,
            vc_capacity: 4,
            max_cycles: 0,
            reachable_sample: 2000,
        }
    }

    /// A CI-sized smoke sweep: 32×32 mesh, 12 faults, 2000 messages, two
    /// trials.
    pub fn quick() -> Self {
        TrafficScenario {
            name: "traffic-quick".to_string(),
            mesh_size: 32,
            faults: 12,
            messages: 2_000,
            trials: 2,
            injection_rate: 16,
            reachable_sample: 400,
            ..TrafficScenario::full()
        }
    }

    /// The per-cell simulator configuration for trial `t`.
    pub fn sim_config(&self, trial: u32) -> SimConfig {
        SimConfig {
            messages: self.messages,
            seed: self.base_seed + trial as u64,
            injection_rate: self.injection_rate.max(1),
            vc_capacity: self.vc_capacity.max(1),
            max_cycles: self.max_cycles,
            reachable_sample: self.reachable_sample,
        }
    }
}

/// One (model × pattern) cell: the per-trial reports, in trial order.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrafficCell {
    /// Fault-model name.
    pub model: String,
    /// Traffic-pattern name.
    pub pattern: String,
    /// One report per trial (trial `t` at index `t`).
    pub reports: Vec<TrafficReport>,
}

/// The outcome of one traffic sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrafficResult {
    /// The scenario that was run.
    pub scenario: TrafficScenario,
    /// Cells in (model-major, pattern-minor) scenario order.
    pub cells: Vec<TrafficCell>,
}

/// Runs every (model × pattern × trial) cell of `scenario` over one
/// seeded fault population, fanning the cells out on the work-stealing
/// pool. Fails fast — before any simulation — if a model or pattern name
/// does not resolve.
pub fn run_traffic(
    registry: &ModelRegistry<Mesh2D>,
    scenario: &TrafficScenario,
) -> Result<TrafficResult, UnknownModel> {
    for name in &scenario.models {
        registry.build(name)?;
    }
    for name in &scenario.patterns {
        if pattern_by_name(name).is_none() {
            return Err(UnknownModel {
                requested: format!("pattern:{name}"),
                known: mocp_traffic::PATTERN_NAMES.to_vec(),
            });
        }
    }

    let _span = mocp_obs::span!("traffic.sweep");
    let mesh = Mesh2D::square(scenario.mesh_size);
    let mut injector = FaultInjector::new(mesh, scenario.distribution, scenario.base_seed);
    injector.inject_up_to(scenario.faults);
    let faults = injector.faults();

    // One construction + region labelling per model, shared (read-only)
    // by every pattern and trial of that model.
    let networks: Vec<(StatusMap, RegionMap)> = scenario
        .models
        .iter()
        .map(|name| {
            let _span = mocp_obs::span!("traffic.construct");
            let outcome = registry
                .build(name)
                .expect("names validated above")
                .construct(&mesh, faults);
            let regions = RegionMap::from_status(&mesh, &outcome.status);
            (outcome.status, regions)
        })
        .collect();

    let trials = scenario.trials.max(1);
    let mut tasks: Vec<(usize, usize, u32)> = Vec::new();
    for m in 0..scenario.models.len() {
        for p in 0..scenario.patterns.len() {
            for t in 0..trials {
                tasks.push((m, p, t));
            }
        }
    }

    use rayon::prelude::*;
    let reports: Vec<TrafficReport> = tasks
        .par_iter()
        .map(|&(m, p, t)| {
            let (status, regions) = &networks[m];
            let pattern = pattern_by_name(&scenario.patterns[p]).expect("validated above");
            simulate(
                &mesh,
                status,
                regions,
                pattern.as_ref(),
                &scenario.sim_config(t),
            )
        })
        .collect();

    // The ordered collect keeps report (m, p, t) at index
    // ((m * patterns + p) * trials + t); regroup into cells.
    let mut cells = Vec::with_capacity(scenario.models.len() * scenario.patterns.len());
    let mut it = reports.into_iter();
    for model in &scenario.models {
        for pattern in &scenario.patterns {
            cells.push(TrafficCell {
                model: model.clone(),
                pattern: pattern.clone(),
                reports: (0..trials)
                    .map(|_| it.next().expect("task per cell"))
                    .collect(),
            });
        }
    }

    Ok(TrafficResult {
        scenario: scenario.clone(),
        cells,
    })
}

/// Renders a traffic result as CSV: one summary row per (model × pattern)
/// cell with trial-averaged metrics, then a per-virtual-channel occupancy
/// histogram section with counts summed over trials. Deterministic to the
/// byte for a given result.
pub fn render_traffic_csv(result: &TrafficResult) -> String {
    let mut out = String::new();
    out.push_str(
        "mesh,faults,model,pattern,trials,offered,injected,endpoint_excluded,unreachable,\
         delivered,stranded,cycles,delivered_fraction,throughput,avg_stretch,latency_mean,\
         latency_p50,latency_p90,latency_p99,latency_max,abnormal_frac,detours,\
         reachable_fraction,vc0_mean,vc1_mean,vc2_mean,vc3_mean\n",
    );
    let s = &result.scenario;
    for cell in &result.cells {
        let n = cell.reports.len().max(1) as f64;
        let mean = |f: &dyn Fn(&TrafficReport) -> f64| cell.reports.iter().map(f).sum::<f64>() / n;
        let abnormal_frac = mean(&|r| {
            if r.total_hops == 0 {
                0.0
            } else {
                r.abnormal_hops as f64 / r.total_hops as f64
            }
        });
        out.push_str(&format!(
            "{},{},{},{},{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.6},{:.6},{:.6},\
             {:.6},{:.1},{:.1},{:.1},{:.1},{:.6},{:.1},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
            s.mesh_size,
            s.faults,
            cell.model,
            cell.pattern,
            cell.reports.len(),
            mean(&|r| r.offered as f64),
            mean(&|r| r.injected as f64),
            mean(&|r| r.endpoint_excluded as f64),
            mean(&|r| r.unreachable as f64),
            mean(&|r| r.delivered as f64),
            mean(&|r| r.stranded as f64),
            mean(&|r| r.cycles as f64),
            mean(&|r| r.delivered_fraction()),
            mean(&|r| r.throughput()),
            mean(&|r| r.avg_stretch),
            mean(&|r| r.latency.mean),
            mean(&|r| r.latency.p50 as f64),
            mean(&|r| r.latency.p90 as f64),
            mean(&|r| r.latency.p99 as f64),
            mean(&|r| r.latency.max as f64),
            abnormal_frac,
            mean(&|r| r.detours as f64),
            mean(&|r| r.reachable.fraction()),
            mean(&|r| r.vc[0].mean),
            mean(&|r| r.vc[1].mean),
            mean(&|r| r.vc[2].mean),
            mean(&|r| r.vc[3].mean),
        ));
    }

    out.push_str("\nmodel,pattern,vc,bucket_floor,cycles\n");
    for cell in &result.cells {
        for vc in 0..4 {
            let buckets = cell
                .reports
                .iter()
                .map(|r| r.vc[vc].histogram.len())
                .max()
                .unwrap_or(0);
            for b in 0..buckets {
                let count: u64 = cell
                    .reports
                    .iter()
                    .map(|r| r.vc[vc].histogram.get(b).copied().unwrap_or(0))
                    .sum();
                out.push_str(&format!(
                    "{},{},{},{},{}\n",
                    cell.model,
                    cell.pattern,
                    vc,
                    VcOccupancy::bucket_floor(b),
                    count
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TrafficScenario {
        TrafficScenario {
            mesh_size: 16,
            faults: 6,
            messages: 400,
            trials: 2,
            injection_rate: 8,
            reachable_sample: 100,
            ..TrafficScenario::quick()
        }
    }

    #[test]
    fn sweep_covers_every_model_pattern_cell() {
        let registry = mocp_core::standard_registry();
        let result = run_traffic(&registry, &tiny()).unwrap();
        assert_eq!(result.cells.len(), 6); // 2 models x 3 patterns
        for cell in &result.cells {
            assert_eq!(cell.reports.len(), 2);
            for r in &cell.reports {
                assert_eq!(r.offered, 400);
                assert_eq!(
                    r.injected,
                    r.delivered + r.unreachable + r.stranded,
                    "{}/{} accounting",
                    cell.model,
                    cell.pattern
                );
            }
        }
    }

    #[test]
    fn unknown_names_fail_before_any_simulation() {
        let registry = mocp_core::standard_registry();
        let mut s = tiny();
        s.models.push("NOPE".to_string());
        assert_eq!(run_traffic(&registry, &s).unwrap_err().requested, "NOPE");
        let mut s = tiny();
        s.patterns.push("nope".to_string());
        assert_eq!(
            run_traffic(&registry, &s).unwrap_err().requested,
            "pattern:nope"
        );
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let registry = mocp_core::standard_registry();
        let scenario = tiny();
        let a = render_traffic_csv(&run_traffic(&registry, &scenario).unwrap());
        let b = render_traffic_csv(&run_traffic(&registry, &scenario).unwrap());
        assert_eq!(a, b);
        assert!(a.starts_with("mesh,faults,model,pattern,"));
        assert!(a.contains("\nmodel,pattern,vc,bucket_floor,cycles\n"));
        // One summary row per cell plus the two headers.
        let summary_rows = a.split("\n\n").next().unwrap().lines().count();
        assert_eq!(summary_rows, 1 + 6);
    }
}
