//! Deterministic synthetic workload for the multi-tenant monitoring
//! service ([`mocp_serve`]).
//!
//! The paper evaluates one mesh; the service's design point is
//! *thousands* of them. This module generates that load reproducibly:
//! **N tenants × M events × K queries**, all derived from one seed, with
//! inject/repair churn per tenant. Every tenant's event stream and query
//! stream is a pure function of `(seed, tenant)`, so
//!
//! * [`run_serve_workload`] can drive any number of ingest threads and
//!   the resulting engine states are *identical* to a sequential replay
//!   ([`replay_tenant`]) — the property the sequential-equivalence test
//!   pins at 1 and 4 threads; and
//! * the `serve_ingest_1k_tenants` perf workload measures the same event
//!   stream on every run.
//!
//! Streams are generated with the workspace's seeded [`rand`] shim and a
//! per-tenant [`FaultInjector`], so the fault *placement* follows the
//! paper's distributions while the inject/repair mix is controlled by
//! [`ServeWorkloadConfig::repair_fraction`].

use faultgen::{FaultDistribution, FaultInjector};
use mesh2d::{Coord, FaultEvent, Mesh2D};
use mocp_incremental::IncrementalEngine;
use mocp_serve::{MonitorService, ServeConfig, ServiceStatsSnapshot, TenantId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of one synthetic service workload. All streams derive from
/// `seed`; two equal configs generate byte-identical workloads.
#[derive(Clone, Copy, Debug)]
pub struct ServeWorkloadConfig {
    /// Number of tenant meshes (N).
    pub tenants: usize,
    /// Side of each tenant's square mesh.
    pub mesh_size: u32,
    /// Events per tenant (M): injects and repairs, interleaved.
    pub events_per_tenant: usize,
    /// Point queries per tenant (K), issued concurrently with ingestion.
    pub queries_per_tenant: usize,
    /// Events per submitted batch.
    pub batch_size: usize,
    /// Probability that the next event repairs a currently-alive fault
    /// instead of injecting a fresh one (churn knob, `0.0..=1.0`).
    pub repair_fraction: f64,
    /// Fault placement distribution (the paper's random or clustered).
    pub distribution: FaultDistribution,
    /// Master seed; tenant `t`'s streams depend only on this and `t`.
    pub seed: u64,
    /// Threads submitting batches (tenants are partitioned across them).
    pub ingest_threads: usize,
    /// After the final quiesce, replay every tenant sequentially and
    /// compare polygons and counters (slow; used by tests and `--verify`).
    pub verify: bool,
}

impl Default for ServeWorkloadConfig {
    /// The issue's acceptance shape: 1000 tenants × 100 events = 100k
    /// events total, with concurrent queries.
    fn default() -> Self {
        ServeWorkloadConfig {
            tenants: 1000,
            mesh_size: 16,
            events_per_tenant: 100,
            queries_per_tenant: 20,
            batch_size: 8,
            repair_fraction: 0.3,
            distribution: FaultDistribution::Clustered,
            seed: 0x5EED_0001,
            ingest_threads: 4,
            verify: false,
        }
    }
}

impl ServeWorkloadConfig {
    /// A CI-sized workload: finishes in well under a second.
    pub fn quick() -> Self {
        ServeWorkloadConfig {
            tenants: 48,
            events_per_tenant: 40,
            queries_per_tenant: 8,
            ingest_threads: 2,
            ..ServeWorkloadConfig::default()
        }
    }

    /// Sets the tenant count.
    pub fn with_tenants(mut self, tenants: usize) -> Self {
        self.tenants = tenants;
        self
    }

    /// Sets the per-tenant event count.
    pub fn with_events_per_tenant(mut self, events: usize) -> Self {
        self.events_per_tenant = events;
        self
    }

    /// Sets the per-tenant query count.
    pub fn with_queries_per_tenant(mut self, queries: usize) -> Self {
        self.queries_per_tenant = queries;
        self
    }

    /// Sets the ingest-thread count.
    pub fn with_ingest_threads(mut self, threads: usize) -> Self {
        self.ingest_threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables post-run sequential verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Total events the workload submits.
    pub fn total_events(&self) -> usize {
        // Saturated meshes can truncate a tenant's stream, but the
        // default shapes never get near saturation; report the nominal
        // size (tests assert the generated size matches).
        self.tenants * self.events_per_tenant
    }
}

/// Domain-separation salts so the churn, query and placement streams of
/// one tenant are independent.
const CHURN_SALT: u64 = 0xC0A1_E5CE_D00D_F00D;
const QUERY_SALT: u64 = 0x2545_F491_4F6C_DD1D;

fn tenant_seed(cfg: &ServeWorkloadConfig, tenant: TenantId) -> u64 {
    cfg.seed ^ (tenant.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Tenant `t`'s full event stream: deterministic inject/repair churn. A
/// repair always targets a currently-faulty node (uniformly chosen), so
/// the stream is valid to apply in order from a fault-free mesh.
pub fn tenant_events(cfg: &ServeWorkloadConfig, tenant: TenantId) -> Vec<FaultEvent> {
    let seed = tenant_seed(cfg, tenant);
    let mut injector = FaultInjector::new(Mesh2D::square(cfg.mesh_size), cfg.distribution, seed);
    let mut churn = StdRng::seed_from_u64(seed ^ CHURN_SALT);
    let mut alive: Vec<Coord> = Vec::new();
    let mut repaired: Vec<Coord> = Vec::new();
    let mut events = Vec::with_capacity(cfg.events_per_tenant);
    while events.len() < cfg.events_per_tenant {
        let repair = !alive.is_empty() && churn.gen_bool(cfg.repair_fraction);
        if repair {
            let victim = churn.gen_range(0..alive.len());
            let c = alive.swap_remove(victim);
            repaired.push(c);
            events.push(FaultEvent::Repair(c));
        } else if let Some(c) = injector.inject_one() {
            alive.push(c);
            events.push(FaultEvent::Inject(c));
        } else if !repaired.is_empty() {
            // The injector only places *fresh* faults; once the mesh's
            // supply is exhausted, churn re-injects repaired nodes.
            let i = churn.gen_range(0..repaired.len());
            let c = repaired.swap_remove(i);
            alive.push(c);
            events.push(FaultEvent::Inject(c));
        } else if let Some(&c) = alive.first() {
            // Fully-faulty mesh and nothing ever repaired: force one.
            alive.swap_remove(0);
            repaired.push(c);
            events.push(FaultEvent::Repair(c));
        } else {
            break; // 0×0 mesh: nothing to do
        }
    }
    events
}

/// Tenant `t`'s query points: deterministic uniform coordinates.
pub fn tenant_queries(cfg: &ServeWorkloadConfig, tenant: TenantId) -> Vec<Coord> {
    let mut rng = StdRng::seed_from_u64(tenant_seed(cfg, tenant) ^ QUERY_SALT);
    let side = cfg.mesh_size.max(1) as i32;
    (0..cfg.queries_per_tenant)
        .map(|_| Coord::new(rng.gen_range(0..side), rng.gen_range(0..side)))
        .collect()
}

/// Sequential ground truth: a fresh engine fed tenant `t`'s stream in
/// order, no service in between.
pub fn replay_tenant(cfg: &ServeWorkloadConfig, tenant: TenantId) -> IncrementalEngine {
    let mut engine = IncrementalEngine::new(Mesh2D::square(cfg.mesh_size));
    for event in tenant_events(cfg, tenant) {
        engine.apply(event);
    }
    engine
}

/// What one workload run did.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadOutcome {
    /// Tenants created.
    pub tenants: usize,
    /// Events submitted (and, after the quiesce, applied).
    pub events_submitted: u64,
    /// Point queries issued concurrently with ingestion.
    pub queries_issued: u64,
    /// The service's own counters at the end of the run.
    pub stats: ServiceStatsSnapshot,
    /// Tenants whose final state diverged from sequential replay. Only
    /// populated with [`ServeWorkloadConfig::verify`]; always empty on a
    /// correct build.
    pub mismatched_tenants: usize,
}

/// Runs the workload against a freshly started service: creates the N
/// tenants, partitions them over the ingest threads (tenant `t` goes to
/// thread `t % ingest_threads`), submits each tenant's events in
/// batches with the tenant's queries interleaved between batches, then
/// quiesces. With `verify`, every tenant is then compared against
/// [`replay_tenant`].
///
/// Each tenant is submitted to by exactly one thread, so per-tenant
/// arrival order equals stream order and the final state is the
/// sequential replay's — regardless of `ingest_threads` or the
/// service's worker count.
pub fn run_serve_workload(cfg: &ServeWorkloadConfig, serve: ServeConfig) -> WorkloadOutcome {
    let service = MonitorService::start(serve);
    for t in 0..cfg.tenants {
        service.create_tenant(t as TenantId, Mesh2D::square(cfg.mesh_size));
    }
    let threads = cfg.ingest_threads.max(1);
    let per_thread: Vec<(u64, u64)> = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|slot| {
                let service = &service;
                s.spawn(move |_| ingest_slot(cfg, service, slot, threads))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest thread panicked"))
            .collect()
    })
    .expect("scope itself cannot fail");
    service.quiesce();

    let (events_submitted, queries_issued) = per_thread
        .iter()
        .fold((0, 0), |(e, q), &(te, tq)| (e + te, q + tq));
    let mismatched_tenants = if cfg.verify {
        (0..cfg.tenants)
            .filter(|&t| !tenant_matches_replay(cfg, &service, t as TenantId))
            .count()
    } else {
        0
    };
    let outcome = WorkloadOutcome {
        tenants: cfg.tenants,
        events_submitted,
        queries_issued,
        stats: service.stats(),
        mismatched_tenants,
    };
    service.shutdown();
    outcome
}

/// One ingest thread's share of the workload. Queries rotate across the
/// three point-query kinds so all of them run concurrently with
/// ingestion.
fn ingest_slot(
    cfg: &ServeWorkloadConfig,
    service: &MonitorService,
    slot: usize,
    threads: usize,
) -> (u64, u64) {
    let mut events = 0u64;
    let mut queries = 0u64;
    for t in (slot..cfg.tenants).step_by(threads) {
        let tenant = t as TenantId;
        let stream = tenant_events(cfg, tenant);
        let points = tenant_queries(cfg, tenant);
        let mut next_query = points.iter();
        for batch in stream.chunks(cfg.batch_size.max(1)) {
            events += batch.len() as u64;
            service
                .submit(tenant, batch.to_vec())
                .expect("tenants exist and the service is running");
            if let Some(&c) = next_query.next() {
                queries += issue_query(service, tenant, c, queries);
            }
        }
        // Whatever K didn't fit between batches still races the queues.
        for &c in next_query {
            queries += issue_query(service, tenant, c, queries);
        }
    }
    (events, queries)
}

fn issue_query(service: &MonitorService, tenant: TenantId, c: Coord, rotation: u64) -> u64 {
    match rotation % 3 {
        0 => {
            let _ = service.node_status(tenant, c);
        }
        1 => {
            let _ = service.region_of(tenant, c);
        }
        _ => {
            let _ = service.counts(tenant);
        }
    }
    1
}

/// Compares one tenant's served state against sequential replay.
pub(crate) fn tenant_matches_replay(
    cfg: &ServeWorkloadConfig,
    service: &MonitorService,
    tenant: TenantId,
) -> bool {
    let reference = replay_tenant(cfg, tenant);
    let counts = match service.counts(tenant) {
        Some(c) => c,
        None => return false,
    };
    counts.faulty == reference.faulty_count()
        && counts.disabled_nonfaulty == reference.disabled_nonfaulty()
        && counts.components == reference.component_count()
        && service.polygons(tenant) == Some(reference.polygons())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeWorkloadConfig {
        ServeWorkloadConfig::quick()
            .with_tenants(12)
            .with_events_per_tenant(30)
            .with_queries_per_tenant(5)
    }

    #[test]
    fn streams_are_deterministic_and_tenant_independent() {
        let cfg = tiny();
        assert_eq!(tenant_events(&cfg, 3), tenant_events(&cfg, 3));
        assert_ne!(tenant_events(&cfg, 3), tenant_events(&cfg, 4));
        assert_eq!(tenant_queries(&cfg, 3), tenant_queries(&cfg, 3));
        let reseeded = cfg.with_seed(cfg.seed + 1);
        assert_ne!(tenant_events(&cfg, 3), tenant_events(&reseeded, 3));
    }

    #[test]
    fn streams_are_valid_and_full_length() {
        let cfg = tiny();
        for t in 0..cfg.tenants as TenantId {
            let events = tenant_events(&cfg, t);
            assert_eq!(events.len(), cfg.events_per_tenant);
            // Valid to apply in order: repairs only hit live faults.
            let mut alive = std::collections::HashSet::new();
            let mut repairs = 0;
            for event in &events {
                match *event {
                    FaultEvent::Inject(c) => assert!(alive.insert(c), "re-inject of live fault"),
                    FaultEvent::Repair(c) => {
                        assert!(alive.remove(&c), "repair of non-faulty node");
                        repairs += 1;
                    }
                }
            }
            assert!(repairs > 0, "churn produces some repairs (tenant {t})");
        }
    }

    #[test]
    fn saturated_mesh_still_yields_full_streams() {
        // 2×2 mesh, long stream: injects exhaust the mesh fast and the
        // generator must keep making progress with repairs.
        let cfg = ServeWorkloadConfig {
            mesh_size: 2,
            events_per_tenant: 64,
            repair_fraction: 0.1,
            ..ServeWorkloadConfig::quick()
        };
        let events = tenant_events(&cfg, 0);
        assert_eq!(events.len(), 64);
        let mut engine = IncrementalEngine::new(Mesh2D::square(2));
        for &event in &events {
            engine.apply(event); // panics on an invalid stream
        }
    }

    #[test]
    fn queries_stay_inside_the_mesh() {
        let cfg = tiny();
        let mesh = Mesh2D::square(cfg.mesh_size);
        for t in 0..4 {
            let points = tenant_queries(&cfg, t);
            assert_eq!(points.len(), cfg.queries_per_tenant);
            assert!(points.iter().all(|&c| mesh.contains(c)));
        }
    }

    #[test]
    fn workload_runs_and_verifies_against_replay() {
        let cfg = tiny().with_verify(true);
        let outcome = run_serve_workload(&cfg, ServeConfig::default().with_workers(3));
        assert_eq!(outcome.tenants, cfg.tenants);
        assert_eq!(outcome.events_submitted, cfg.total_events() as u64);
        assert_eq!(outcome.stats.events, outcome.events_submitted);
        assert_eq!(
            outcome.queries_issued,
            (cfg.tenants * cfg.queries_per_tenant) as u64
        );
        assert_eq!(outcome.mismatched_tenants, 0);
    }
}
