//! Drives the heavy-traffic network simulation from the command line.
//!
//! ```text
//! cargo run --release -p experiments --bin traffic_sim
//! cargo run --release -p experiments --bin traffic_sim -- --quick
//! cargo run --release -p experiments --bin traffic_sim -- \
//!     --mesh 512 --faults 250 --messages 1000000 --models FB,CMFP \
//!     --pattern uniform,transpose,hotspot --threads 8
//! cargo run --release -p experiments --bin traffic_sim -- --metrics  # with --features obs
//! ```
//!
//! The default shape is the acceptance workload: one million messages per
//! (model × pattern) cell on a 512×512 mesh with 250 random faults, FB vs
//! CMFP under all three patterns. The CSV goes to stdout, a human summary
//! to stderr. Output is byte-identical at any `--threads` value.

use std::time::Instant;

use experiments::{render_traffic_csv, run_traffic, TrafficScenario};
use faultgen::FaultDistribution;

fn usage() -> ! {
    eprintln!(
        "usage: traffic_sim [--quick] [--mesh SIDE] [--faults N] [--messages M] [--trials T] \
         [--models A,B,..] [--pattern P,Q,..] [--distribution random|clustered] [--rate R] \
         [--vc-capacity C] [--max-cycles N] [--seed S] [--threads N] [--csv-only] [--metrics]\n\
         Simulates cycle-driven traffic over the fault regions of each model and\n\
         prints the per-cell CSV (stdout) plus a summary (stderr).\n\
         --quick shrinks the run to CI size; --pattern/--models take comma lists\n\
         (patterns: uniform, transpose, hotspot); --rate is injected messages per\n\
         cycle; --threads pins the worker-pool size (output is identical at any\n\
         value); --csv-only suppresses the stderr summary;\n\
         --metrics dumps the mocp_obs registry (build with --features obs)."
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn list(value: Option<String>) -> Vec<String> {
    let list: Vec<String> = value
        .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
        .unwrap_or_default();
    if list.is_empty() || list.iter().any(String::is_empty) {
        usage();
    }
    list
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // --quick picks the small base shape; every other flag then overrides
    // it, regardless of flag order.
    let mut scenario = if raw.iter().any(|a| a == "--quick") {
        TrafficScenario::quick()
    } else {
        TrafficScenario::full()
    };
    let mut threads: Option<usize> = None;
    let mut show_metrics = false;
    let mut csv_only = false;

    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {}
            "--mesh" => scenario.mesh_size = parse(args.next()),
            "--faults" => scenario.faults = parse(args.next()),
            "--messages" => scenario.messages = parse(args.next()),
            "--trials" => scenario.trials = parse(args.next()),
            "--models" => scenario.models = list(args.next()),
            "--pattern" => scenario.patterns = list(args.next()),
            "--distribution" => {
                let label: String = parse(args.next());
                scenario.distribution =
                    FaultDistribution::from_label(&label).unwrap_or_else(|| usage());
            }
            "--rate" => scenario.injection_rate = parse(args.next()),
            "--vc-capacity" => scenario.vc_capacity = parse(args.next()),
            "--max-cycles" => scenario.max_cycles = parse(args.next()),
            "--seed" => scenario.base_seed = parse(args.next()),
            "--threads" => {
                threads = Some(parse(args.next()));
                if threads == Some(0) {
                    usage();
                }
            }
            "--csv-only" => csv_only = true,
            "--metrics" => show_metrics = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if show_metrics && !mocp_obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature; --metrics emits empty output \
             (rebuild with `--features obs`)"
        );
    }

    // Pin the global pool before any parallel work, overriding the
    // RAYON_NUM_THREADS environment variable.
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("--threads must be set before the pool is used");
    }

    if !csv_only {
        eprintln!(
            "traffic_sim: {}x{} mesh, {} {} faults, {} msgs x {} trials per cell, \
             models [{}], patterns [{}], rate {}/cycle, seed {:#x}",
            scenario.mesh_size,
            scenario.mesh_size,
            scenario.faults,
            scenario.distribution.label(),
            scenario.messages,
            scenario.trials,
            scenario.models.join(","),
            scenario.patterns.join(","),
            scenario.injection_rate,
            scenario.base_seed,
        );
    }

    let start = Instant::now();
    let result = run_traffic(&mocp_core::standard_registry(), &scenario).unwrap_or_else(|err| {
        eprintln!("error: {err}");
        std::process::exit(2);
    });
    let elapsed = start.elapsed();

    print!("{}", render_traffic_csv(&result));

    if !csv_only {
        let mut routed: u64 = 0;
        for cell in &result.cells {
            for r in &cell.reports {
                routed += r.delivered as u64;
            }
            let n = cell.reports.len().max(1) as f64;
            let mean = |f: &dyn Fn(&mocp_traffic::TrafficReport) -> f64| {
                cell.reports.iter().map(f).sum::<f64>() / n
            };
            eprintln!(
                "  {:<5} {:<9} delivered {:>5.1}%  throughput {:>8.2} msg/cyc  \
                 latency p50/p99 {:>6.0}/{:>6.0}  stretch {:.4}  reachable {:.4}",
                cell.model,
                cell.pattern,
                100.0 * mean(&|r| r.delivered_fraction()),
                mean(&|r| r.throughput()),
                mean(&|r| r.latency.p50 as f64),
                mean(&|r| r.latency.p99 as f64),
                mean(&|r| r.avg_stretch),
                mean(&|r| r.reachable.fraction()),
            );
        }
        eprintln!(
            "delivered {} messages across {} cells in {:.3}s",
            routed,
            result.cells.len(),
            elapsed.as_secs_f64(),
        );
    }
    if show_metrics {
        eprintln!("metrics:");
        eprint!("{}", mocp_obs::render_table(&mocp_obs::snapshot()));
    }
}
