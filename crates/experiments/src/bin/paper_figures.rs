//! Regenerates the paper's figures as plain-text tables.
//!
//! ```text
//! cargo run --release -p experiments --bin paper_figures -- all
//! cargo run --release -p experiments --bin paper_figures -- fig9a fig11b
//! cargo run --release -p experiments --bin paper_figures -- --quick all
//! cargo run --release -p experiments --bin paper_figures -- --dim 3 --csv all
//! cargo run --release -p experiments --bin paper_figures -- --models FB,CMFP fig9a
//! cargo run --release -p experiments --bin paper_figures -- --distribution clustered all
//! cargo run --release -p experiments --bin paper_figures -- --list-models
//! ```
//!
//! `--quick` runs a small sweep (useful as a smoke test); the default
//! reproduces the paper's 100×100 mesh with 100..800 faults. Every figure in
//! every dimension is produced by the *same* scenario runner: `--dim 3`
//! swaps the 2-D registry for the 3-D one (FB-3D vs MFP-3D on a 32×32×32
//! mesh) and nothing else, model names (`--models`) and distribution labels
//! (`--distribution`) are spelled identically across dimensions, and
//! `--list-models` prints both registries.

use experiments::fig10::figure10;
use experiments::fig11::figure11;
use experiments::fig9::{figure9, figure9_raw};
use experiments::scenario::Scenario;
use experiments::{
    render_table, run_scenario, run_scenario_streaming, Metric, ScenarioResult, SweepConfig,
};
use faultgen::FaultDistribution;

fn usage() -> ! {
    eprintln!(
        "usage: paper_figures [--dim 2|3] [--quick] [--trials N] [--threads N] [--csv] \
         [--streaming] [--models A,B,..] [--distribution random|clustered] [--list-models] \
         [--metrics] [--trace FILE] \
         <fig9a|fig9b|fig10a|fig10b|fig11a|fig11b|all>...\n\
         --metrics dumps the mocp_obs registry after the sweeps (stderr);\n\
         --trace FILE writes a Chrome trace of the sweep spans. Both need\n\
         a build with `--features obs` to produce non-empty output.\n\
         --threads pins the worker-pool size (overriding RAYON_NUM_THREADS);\n\
         1 disables the pool entirely. Output is identical at any thread count.\n\
         figures suffixed 'a' use the random distribution, 'b' the clustered one;\n\
         --distribution restricts the run to one distribution regardless of suffix.\n\
         --dim 3 runs the 3-D extension sweep (FB-3D vs MFP-3D on a 32x32x32 mesh)\n\
         through the same scenario runner and emits the Figure 9/10 analogues\n\
         (fig11 has no 3-D figure and is skipped).\n\
         --models overrides the model list; the output is then the generic\n\
         per-metric series instead of the paper-shaped figures.\n\
         --streaming runs the incremental-engine sweep (one pass per injection\n\
         sequence) and emits its Figure 9/10 MFP series; for equal seeds the\n\
         numbers match the batch MFP column exactly, so the two outputs can be\n\
         diffed (2-D only; fig11 is skipped)."
    );
    std::process::exit(2);
}

/// Emits the end-of-run observability output: the trace file (when
/// `--trace` was given) and the metric table (when `--metrics` was).
fn finish_obs(show_metrics: bool, trace_path: Option<&str>) {
    if let Some(path) = trace_path {
        match mocp_obs::trace::write_chrome_trace(path) {
            Ok(events) => eprintln!("wrote {path} ({events} trace events)"),
            Err(e) => {
                eprintln!("error: cannot write trace {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if show_metrics {
        eprintln!("metrics:");
        eprint!("{}", mocp_obs::render_table(&mocp_obs::snapshot()));
    }
}

fn main() {
    let mut quick = false;
    let mut csv = false;
    let mut streaming = false;
    let mut dim: u32 = 2;
    let mut trials: Option<u32> = None;
    let mut threads: Option<usize> = None;
    let mut models: Option<Vec<String>> = None;
    let mut only_distribution: Option<FaultDistribution> = None;
    let mut show_metrics = false;
    let mut trace_path: Option<String> = None;
    let mut figures: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--streaming" => streaming = true,
            "--dim" => {
                let d = args.next().unwrap_or_else(|| usage());
                dim = d.parse().unwrap_or_else(|_| usage());
                if dim != 2 && dim != 3 {
                    usage();
                }
            }
            "--trials" => {
                let n = args.next().unwrap_or_else(|| usage());
                trials = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                threads = Some(n.parse().unwrap_or_else(|_| usage()));
                if threads == Some(0) {
                    usage();
                }
            }
            "--models" => {
                let list = args.next().unwrap_or_else(|| usage());
                models = Some(list.split(',').map(|m| m.trim().to_string()).collect());
            }
            "--distribution" => {
                let label = args.next().unwrap_or_else(|| usage());
                only_distribution =
                    Some(FaultDistribution::from_label(&label).unwrap_or_else(|| usage()));
            }
            "--metrics" => show_metrics = true,
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--list-models" => {
                println!("registered fault models (mocp_core::standard_registry):");
                for (name, description) in mocp_core::standard_registry().descriptions() {
                    println!("  {name:<6} {description}");
                }
                println!("registered 3-D fault models (mocp_3d::standard_registry_3d):");
                for (name, description) in mocp_3d::standard_registry_3d().descriptions() {
                    println!("  {name:<6} {description}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }

    if (show_metrics || trace_path.is_some()) && !mocp_obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature; --metrics/--trace emit empty output \
             (rebuild with `--features obs`)"
        );
    }
    if trace_path.is_some() {
        mocp_obs::trace::start_capture();
    }

    // Pin the global pool before any parallel work, overriding the
    // RAYON_NUM_THREADS environment variable.
    if let Some(n) = threads {
        rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build_global()
            .expect("--threads must be set before the pool is used");
    }

    let mut config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    if let Some(t) = trials {
        config.trials = t;
    }

    let wants = |name: &str| figures.iter().any(|f| f == name || f == "all");
    let allowed = |dist: FaultDistribution| only_distribution.is_none_or(|only| only == dist);
    let emit = |series: &experiments::Series| {
        if csv {
            print!("{}", experiments::render_csv(series));
        } else {
            println!("{}", render_table(series));
        }
    };

    // Builds the scenario for one distribution in the selected dimension,
    // applying the --trials and --models overrides.
    let scenario = |dist: FaultDistribution| {
        let mut s = match (dim, quick) {
            (3, true) => Scenario::quick_3d(dist),
            (3, false) => Scenario::paper_figures_3d(dist),
            _ => Scenario::paper_figures(&config, dist),
        };
        if let Some(t) = trials {
            s.trials = t;
        }
        if let Some(m) = &models {
            s.models = m.clone();
        }
        s
    };

    // A figure whose suffix names the filtered-out distribution (including
    // via the default "all") would otherwise vanish silently; say so once.
    if let Some(only) = only_distribution {
        let (other, other_figures): (_, [&str; 3]) = match only {
            FaultDistribution::Random => {
                (FaultDistribution::Clustered, ["fig9b", "fig10b", "fig11b"])
            }
            FaultDistribution::Clustered => {
                (FaultDistribution::Random, ["fig9a", "fig10a", "fig11a"])
            }
        };
        if other_figures.iter().any(|f| wants(f)) {
            eprintln!(
                "note: --distribution {} suppresses the {} figures ({})",
                only.label(),
                other.label(),
                other_figures.join(", ")
            );
        }
    }

    if streaming {
        if dim != 2 {
            eprintln!("error: --streaming is a 2-D execution mode (the incremental engine)");
            std::process::exit(2);
        }
        if models.is_some() {
            eprintln!(
                "error: --models has no effect with --streaming (the incremental \
                 engine always maintains the minimum-polygon model)"
            );
            std::process::exit(2);
        }
        if wants("fig11a") || wants("fig11b") {
            eprintln!("note: fig11 (rounds) has no streaming formulation; skipped");
        }
        let run = |dist: FaultDistribution| {
            run_scenario_streaming(&Scenario::paper_figures(&config, dist))
        };
        // Only figures 9/10 exist in streaming form; a fig11-only request
        // must not pay for a sweep whose output would be discarded.
        let stream_random =
            (wants("fig9a") || wants("fig10a")) && allowed(FaultDistribution::Random);
        let stream_clustered =
            (wants("fig9b") || wants("fig10b")) && allowed(FaultDistribution::Clustered);
        // The two distributions are independent sweeps; run them concurrently.
        let (random, clustered) = rayon::join(
            || stream_random.then(|| run(FaultDistribution::Random)),
            || stream_clustered.then(|| run(FaultDistribution::Clustered)),
        );
        for (result, fig9_wanted, fig10_wanted) in [
            (&random, wants("fig9a"), wants("fig10a")),
            (&clustered, wants("fig9b"), wants("fig10b")),
        ] {
            if let Some(r) = result {
                if fig9_wanted {
                    emit(&r.fig9_series());
                }
                if fig10_wanted {
                    emit(&r.fig10_series());
                }
            }
        }
        finish_obs(show_metrics, trace_path.as_deref());
        return;
    }

    // In 3-D (or with a custom --models list) the output is the generic
    // per-metric series; fig11 only exists as a 2-D paper figure.
    let generic_series = dim == 3 || models.is_some();
    let fig11_possible = dim == 2;
    let need = |fig9_name: &str, fig10_name: &str, fig11_name: &str, dist: FaultDistribution| {
        allowed(dist)
            && (wants(fig9_name) || wants(fig10_name) || (fig11_possible && wants(fig11_name)))
    };
    let need_random = need("fig9a", "fig10a", "fig11a", FaultDistribution::Random);
    let need_clustered = need("fig9b", "fig10b", "fig11b", FaultDistribution::Clustered);
    if dim == 3 && (wants("fig11a") || wants("fig11b")) && !figures.iter().any(|f| f == "all") {
        eprintln!("note: fig11 (rounds) has no 3-D figure; skipped");
    }

    // One runner for both dimensions; only the registry differs. The two
    // distributions are independent sweeps; run them concurrently.
    let run = |dist: FaultDistribution| -> ScenarioResult {
        let s = scenario(dist);
        if dim == 3 {
            run_scenario(&mocp_3d::standard_registry_3d(), &s)
        } else {
            run_scenario(&mocp_core::standard_registry(), &s)
        }
        .unwrap_or_else(|err| {
            eprintln!("error: {err}");
            std::process::exit(2);
        })
    };
    let (random, clustered) = rayon::join(
        || need_random.then(|| run(FaultDistribution::Random)),
        || need_clustered.then(|| run(FaultDistribution::Clustered)),
    );

    let print_for =
        |result: &ScenarioResult, fig9_wanted: bool, fig10_wanted: bool, fig11_wanted: bool| {
            if generic_series {
                if fig9_wanted {
                    emit(&result.series(Metric::DisabledNonfaulty));
                }
                if fig10_wanted {
                    emit(&result.series(Metric::AvgRegionSize));
                }
                if fig11_wanted && fig11_possible {
                    emit(&result.series(Metric::Rounds));
                }
            } else {
                if fig9_wanted {
                    emit(&figure9(result));
                    emit(&figure9_raw(result));
                }
                if fig10_wanted {
                    emit(&figure10(result));
                }
                if fig11_wanted {
                    emit(&figure11(result));
                }
            }
        };

    if let Some(r) = &random {
        print_for(r, wants("fig9a"), wants("fig10a"), wants("fig11a"));
    }
    if let Some(c) = &clustered {
        print_for(c, wants("fig9b"), wants("fig10b"), wants("fig11b"));
    }
    finish_obs(show_metrics, trace_path.as_deref());
}
