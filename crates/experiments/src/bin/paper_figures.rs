//! Regenerates the paper's figures as plain-text tables.
//!
//! ```text
//! cargo run --release -p experiments --bin paper_figures -- all
//! cargo run --release -p experiments --bin paper_figures -- fig9a fig11b
//! cargo run --release -p experiments --bin paper_figures -- --quick all
//! cargo run --release -p experiments --bin paper_figures -- --trials 3 fig10a
//! cargo run --release -p experiments --bin paper_figures -- --list-models
//! ```
//!
//! `--quick` runs a small 30×30 sweep (useful as a smoke test); the default
//! reproduces the paper's 100×100 mesh with 100..800 faults. Every figure is
//! produced by the same scenario runner: the models are resolved by name
//! through the standard model registry (`--list-models` prints it), and the
//! random and clustered sweeps run concurrently.

use experiments::fig10::figure10;
use experiments::fig11::figure11;
use experiments::fig9::{figure9, figure9_raw};
use experiments::scenario::Scenario;
use experiments::three_d::Scenario3;
use experiments::{
    render_table, run_scenario_3d, run_scenario_streaming, run_sweep, SweepConfig, SweepResult,
};
use faultgen::FaultDistribution;

fn usage() -> ! {
    eprintln!(
        "usage: paper_figures [--quick] [--trials N] [--csv] [--streaming] [--three-d] \
         [--list-models] <fig9a|fig9b|fig10a|fig10b|fig11a|fig11b|all>...\n\
         --streaming runs the incremental-engine sweep (one pass per injection\n\
         sequence) and emits its Figure 9/10 MFP series; for equal seeds the\n\
         numbers match the batch MFP column exactly, so the two outputs can be\n\
         diffed (fig11 has no streaming formulation and is skipped).\n\
         --three-d runs the 3-D extension sweep instead (FB-3D vs MFP-3D on a\n\
         32x32x32 mesh under both distributions) and emits the Figure 9/10\n\
         analogues; figure names are ignored in this mode."
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut csv = false;
    let mut streaming = false;
    let mut three_d = false;
    let mut trials: Option<u32> = None;
    let mut figures: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--csv" => csv = true,
            "--streaming" => streaming = true,
            "--three-d" => three_d = true,
            "--trials" => {
                let n = args.next().unwrap_or_else(|| usage());
                trials = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--list-models" => {
                println!("registered fault models (mocp_core::standard_registry):");
                for (name, description) in mocp_core::standard_registry().descriptions() {
                    println!("  {name:<6} {description}");
                }
                println!("registered 3-D fault models (mocp_3d::standard_registry_3d):");
                for (name, description) in mocp_3d::standard_registry_3d().descriptions() {
                    println!("  {name:<6} {description}");
                }
                return;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() {
        figures.push("all".to_string());
    }

    let mut config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    if let Some(t) = trials {
        config.trials = t;
    }

    if three_d {
        let scenario = |dist: FaultDistribution| {
            let mut s = if quick {
                Scenario3::quick(dist)
            } else {
                Scenario3::paper_figures(dist)
            };
            if let Some(t) = trials {
                s.trials = t;
            }
            s
        };
        let registry = mocp_3d::standard_registry_3d();
        // The two distributions are independent sweeps; run them concurrently.
        let (random, clustered) = rayon::join(
            || run_scenario_3d(&registry, &scenario(FaultDistribution::Random)),
            || run_scenario_3d(&registry, &scenario(FaultDistribution::Clustered)),
        );
        for result in [random, clustered] {
            let r = result.expect("the 3-D paper models are registered");
            for series in [r.fig9_series(), r.fig10_series()] {
                if csv {
                    print!("{}", experiments::render_csv(&series));
                } else {
                    println!("{}", render_table(&series));
                }
            }
        }
        return;
    }

    let wants = |name: &str| figures.iter().any(|f| f == name || f == "all");
    let need_random = ["fig9a", "fig10a", "fig11a"].iter().any(|f| wants(f));
    let need_clustered = ["fig9b", "fig10b", "fig11b"].iter().any(|f| wants(f));

    if streaming {
        if wants("fig11a") || wants("fig11b") {
            eprintln!("note: fig11 (rounds) has no streaming formulation; skipped");
        }
        let emit = |series: &experiments::Series| {
            if csv {
                print!("{}", experiments::render_csv(series));
            } else {
                println!("{}", render_table(series));
            }
        };
        let run = |dist: FaultDistribution| {
            run_scenario_streaming(&Scenario::paper_figures(&config, dist))
        };
        // Only figures 9/10 exist in streaming form; a fig11-only request
        // must not pay for a sweep whose output would be discarded.
        let stream_random = wants("fig9a") || wants("fig10a");
        let stream_clustered = wants("fig9b") || wants("fig10b");
        // The two distributions are independent sweeps; run them concurrently.
        let (random, clustered) = rayon::join(
            || stream_random.then(|| run(FaultDistribution::Random)),
            || stream_clustered.then(|| run(FaultDistribution::Clustered)),
        );
        for (result, fig9_wanted, fig10_wanted) in [
            (&random, wants("fig9a"), wants("fig10a")),
            (&clustered, wants("fig9b"), wants("fig10b")),
        ] {
            if let Some(r) = result {
                if fig9_wanted {
                    emit(&r.fig9_series());
                }
                if fig10_wanted {
                    emit(&r.fig10_series());
                }
            }
        }
        return;
    }

    // The two distributions are independent sweeps; run them concurrently.
    let (random, clustered) = rayon::join(
        || need_random.then(|| run_sweep(&config, FaultDistribution::Random)),
        || need_clustered.then(|| run_sweep(&config, FaultDistribution::Clustered)),
    );

    let emit = |series: &experiments::Series| {
        if csv {
            print!("{}", experiments::render_csv(series));
        } else {
            println!("{}", render_table(series));
        }
    };

    let print_for =
        |result: &SweepResult, fig9_wanted: bool, fig10_wanted: bool, fig11_wanted: bool| {
            if fig9_wanted {
                emit(&figure9(result));
                emit(&figure9_raw(result));
            }
            if fig10_wanted {
                emit(&figure10(result));
            }
            if fig11_wanted {
                emit(&figure11(result));
            }
        };

    if let Some(r) = &random {
        print_for(r, wants("fig9a"), wants("fig10a"), wants("fig11a"));
    }
    if let Some(c) = &clustered {
        print_for(c, wants("fig9b"), wants("fig10b"), wants("fig11b"));
    }
}
