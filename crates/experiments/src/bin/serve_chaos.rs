//! Drives the seeded chaos harness over the fault-tolerant service.
//!
//! ```text
//! cargo run --release -p experiments --bin serve_chaos
//! cargo run --release -p experiments --bin serve_chaos -- --quick --verify
//! cargo run --release -p experiments --bin serve_chaos -- \
//!     --tenants 96 --events 64 --kills 4 --subscribers 8 --workers 4 --seed 7
//! cargo run --release -p experiments --bin serve_chaos -- --metrics  # with --features obs
//! ```
//!
//! Every run ingests the seeded tenant streams while the derived fault
//! plan kills workers (cleanly and mid-apply) underneath, with lossy
//! live-reroute subscribers attached. `--verify` (implied by the harness,
//! the flag exists for CI symmetry with `serve_workload`) exits non-zero
//! unless every tenant converged back to the sequential-replay oracle and
//! every subscriber's route index matches from-scratch routing.

use std::time::Instant;

use experiments::{run_chaos_workload, ChaosWorkloadConfig};
use mocp_serve::chaos::install_quiet_panic_hook;
use mocp_serve::ServeConfig;

fn usage() -> ! {
    eprintln!(
        "usage: serve_chaos [--quick] [--verify] [--tenants N] [--events M] [--kills K] \
         [--mid-fraction F] [--subscribers S] [--capacity C] [--pairs P] [--batch B] \
         [--mesh SIDE] [--seed S] [--ingest-threads N] [--workers N] [--metrics]\n\
         Runs the seeded workload against a service armed with a derived fault\n\
         plan: workers are killed at reproducible points, batches are replayed\n\
         from the WAL, and gap-recovering subscribers resync through drops.\n\
         The run exits non-zero on any divergence from the sequential oracle.\n\
         --quick shrinks everything to CI size; --metrics dumps the mocp_obs\n\
         registry (build with --features obs)."
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    install_quiet_panic_hook();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = if raw.iter().any(|a| a == "--quick") {
        ChaosWorkloadConfig::quick()
    } else {
        ChaosWorkloadConfig::default()
    };
    let mut workers: Option<usize> = None;
    let mut show_metrics = false;

    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {}
            // The harness always verifies; accepted for CLI symmetry.
            "--verify" => cfg.workload.verify = true,
            "--tenants" => cfg.workload.tenants = parse(args.next()),
            "--events" => cfg.workload.events_per_tenant = parse(args.next()),
            "--kills" => cfg.kills = parse(args.next()),
            "--mid-fraction" => cfg.mid_fraction = parse(args.next()),
            "--subscribers" => cfg.subscribers = parse(args.next()),
            "--capacity" => cfg.subscriber_capacity = parse(args.next()),
            "--pairs" => cfg.route_pairs = parse(args.next()),
            "--batch" => cfg.workload.batch_size = parse(args.next()),
            "--mesh" => cfg.workload.mesh_size = parse(args.next()),
            "--seed" => cfg.workload.seed = parse(args.next()),
            "--ingest-threads" => cfg.workload.ingest_threads = parse(args.next()),
            "--workers" => workers = Some(parse(args.next())),
            "--metrics" => show_metrics = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if show_metrics && !mocp_obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature; --metrics emits empty output \
             (rebuild with `--features obs`)"
        );
    }

    let mut serve = ServeConfig::default();
    if let Some(w) = workers {
        serve = serve.with_workers(w);
    }

    let plan = cfg.plan();
    println!(
        "serve_chaos: {} tenants x {} events (batch {}), {} kills planned, \
         {} subscribers (capacity {}, {} pairs) [{} ingest threads -> {} workers, seed {:#x}]",
        cfg.workload.tenants,
        cfg.workload.events_per_tenant,
        cfg.workload.batch_size,
        plan.kills.len(),
        cfg.subscribers,
        cfg.subscriber_capacity,
        cfg.route_pairs,
        cfg.workload.ingest_threads,
        serve.workers,
        cfg.workload.seed,
    );
    let start = Instant::now();
    let outcome = run_chaos_workload(&cfg, serve);
    let elapsed = start.elapsed();

    println!(
        "applied {} events across {} tenants in {:.3}s through {} worker kills \
         ({} restarts, {} WAL events replayed)",
        outcome.events_submitted,
        outcome.tenants,
        elapsed.as_secs_f64(),
        outcome.kills_fired,
        outcome.restarts,
        outcome.replayed_events,
    );
    println!(
        "subscribers: {} gaps detected, {} snapshot resyncs; service counters: \
         batches={} events={} updates_sent={} updates_dropped={}",
        outcome.subscriber_gaps,
        outcome.subscriber_resyncs,
        outcome.stats.batches,
        outcome.stats.events,
        outcome.stats.updates_sent,
        outcome.stats.updates_dropped,
    );
    if outcome.converged() {
        println!(
            "verify: all {} tenants match sequential replay, all subscribers match \
             from-scratch routing",
            outcome.tenants
        );
    } else {
        eprintln!(
            "verify FAILED: {} unhealthy tenants, {} tenants diverged from replay, \
             {} subscribers diverged from the routing oracle",
            outcome.unhealthy_tenants, outcome.mismatched_tenants, outcome.mismatched_subscribers
        );
        std::process::exit(1);
    }
    if show_metrics {
        eprintln!("metrics:");
        eprint!("{}", mocp_obs::render_table(&mocp_obs::snapshot()));
    }
}
