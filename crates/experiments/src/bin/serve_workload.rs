//! Drives the deterministic multi-tenant service workload.
//!
//! ```text
//! cargo run --release -p experiments --bin serve_workload
//! cargo run --release -p experiments --bin serve_workload -- --quick --verify
//! cargo run --release -p experiments --bin serve_workload -- \
//!     --tenants 1000 --events 100 --queries 20 --ingest-threads 4 --workers 8
//! cargo run --release -p experiments --bin serve_workload -- --metrics   # with --features obs
//! ```
//!
//! The default shape is the acceptance workload: 1000 tenants × 100
//! events (100k events total) with 20 concurrent point queries per
//! tenant. `--verify` replays every tenant sequentially afterwards and
//! fails the run on any divergence — the sequential-equivalence property
//! checked from the command line.

use std::time::Instant;

use experiments::{run_serve_workload, ServeWorkloadConfig};
use mocp_serve::ServeConfig;

fn usage() -> ! {
    eprintln!(
        "usage: serve_workload [--quick] [--verify] [--tenants N] [--events M] [--queries K] \
         [--mesh SIDE] [--batch B] [--seed S] [--ingest-threads N] [--workers N] [--metrics]\n\
         Runs the seeded N-tenants x M-events x K-queries workload against a\n\
         MonitorService and prints throughput plus the service counters.\n\
         --quick shrinks the workload to CI size; --verify replays every tenant\n\
         sequentially afterwards and exits non-zero on any divergence;\n\
         --metrics dumps the mocp_obs registry (build with --features obs)."
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<String>) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // --quick picks the small base shape; every other flag then
    // overrides it, regardless of flag order.
    let mut cfg = if raw.iter().any(|a| a == "--quick") {
        ServeWorkloadConfig::quick()
    } else {
        ServeWorkloadConfig::default()
    };
    let mut workers: Option<usize> = None;
    let mut show_metrics = false;

    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => {}
            "--verify" => cfg.verify = true,
            "--tenants" => cfg.tenants = parse(args.next()),
            "--events" => cfg.events_per_tenant = parse(args.next()),
            "--queries" => cfg.queries_per_tenant = parse(args.next()),
            "--mesh" => cfg.mesh_size = parse(args.next()),
            "--batch" => cfg.batch_size = parse(args.next()),
            "--seed" => cfg.seed = parse(args.next()),
            "--ingest-threads" => cfg.ingest_threads = parse(args.next()),
            "--workers" => workers = Some(parse(args.next())),
            "--metrics" => show_metrics = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if show_metrics && !mocp_obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature; --metrics emits empty output \
             (rebuild with `--features obs`)"
        );
    }

    let mut serve = ServeConfig::default();
    if let Some(w) = workers {
        serve = serve.with_workers(w);
    }

    println!(
        "serve_workload: {} tenants x {} events (batch {}) x {} queries, mesh {}x{} \
         [{} ingest threads -> {} workers, seed {:#x}]",
        cfg.tenants,
        cfg.events_per_tenant,
        cfg.batch_size,
        cfg.queries_per_tenant,
        cfg.mesh_size,
        cfg.mesh_size,
        cfg.ingest_threads,
        serve.workers,
        cfg.seed,
    );
    let start = Instant::now();
    let outcome = run_serve_workload(&cfg, serve);
    let elapsed = start.elapsed();

    let events_per_sec = outcome.events_submitted as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "applied {} events across {} tenants in {:.3}s  ({:.0} events/s, {} queries answered)",
        outcome.events_submitted,
        outcome.tenants,
        elapsed.as_secs_f64(),
        events_per_sec,
        outcome.queries_issued,
    );
    println!(
        "service counters: batches={} events={} queries={} updates_sent={} updates_dropped={}",
        outcome.stats.batches,
        outcome.stats.events,
        outcome.stats.queries,
        outcome.stats.updates_sent,
        outcome.stats.updates_dropped,
    );
    if cfg.verify {
        if outcome.mismatched_tenants == 0 {
            println!(
                "verify: all {} tenants match sequential replay",
                outcome.tenants
            );
        } else {
            eprintln!(
                "verify FAILED: {} of {} tenants diverged from sequential replay",
                outcome.mismatched_tenants, outcome.tenants
            );
            std::process::exit(1);
        }
    }
    if show_metrics {
        eprintln!("metrics:");
        eprint!("{}", mocp_obs::render_table(&mocp_obs::snapshot()));
    }
}
