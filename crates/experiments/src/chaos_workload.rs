//! Seeded chaos harness over the full fault-tolerant stack.
//!
//! Reuses the deterministic tenant streams of [`serve_workload`] but runs
//! them against a [`MonitorService`] armed with a seeded
//! [`ChaosPlan`](mocp_serve::ChaosPlan): workers are killed (cleanly and
//! mid-apply) at reproducible dequeue counts while a subset of tenants is
//! tracked by gap-recovering [`LiveReroute`] subscribers over deliberately
//! tiny buffers — so every run exercises WAL replay, supervision,
//! quarantine-and-rebuild, *and* subscriber gap resynchronization at once.
//!
//! The harness then asserts the whole story end to end:
//!
//! * every tenant returns to [`TenantHealth::Live`];
//! * every tenant's served state equals a **sequential replay** of its
//!   stream ([`replay_tenant`]) — the same ground truth the fault-free
//!   workload pins, now across injected worker deaths;
//! * every live route index equals **from-scratch routing** over the
//!   tenant's final status map, despite dropped updates and recovery
//!   rewinds.
//!
//! [`run_chaos_workload`] powers the `serve_chaos` binary, the CI smoke
//! run, and the root property test that sweeps random fault plans.

use std::time::{Duration, Instant};

use mesh2d::Mesh2D;
use meshroute::PairSample;
use mocp_serve::{
    ChaosPlan, MonitorService, ServeConfig, ServiceStatsSnapshot, TenantHealth, TenantId,
};
use mocp_traffic::LiveReroute;

use crate::serve_workload::{tenant_events, tenant_matches_replay, ServeWorkloadConfig};

/// Shape of one chaos run: a base workload plus a seeded fault plan and a
/// population of lossy live subscribers.
#[derive(Clone, Copy, Debug)]
pub struct ChaosWorkloadConfig {
    /// The tenant streams to ingest (its `seed` also seeds the fault
    /// plan; `verify` is implied — a chaos run always verifies).
    pub workload: ServeWorkloadConfig,
    /// Worker kills to schedule.
    pub kills: usize,
    /// Probability that a kill strikes mid-apply (vs cleanly).
    pub mid_fraction: f64,
    /// The first `subscribers` tenants get a [`LiveReroute`] subscriber.
    pub subscribers: usize,
    /// Per-subscriber update buffer; small values guarantee drops.
    pub subscriber_capacity: usize,
    /// Routed pairs per subscriber.
    pub route_pairs: usize,
}

impl Default for ChaosWorkloadConfig {
    /// A thorough shape: enough batches for every kill to land, enough
    /// subscribers for gaps to be certain.
    fn default() -> Self {
        ChaosWorkloadConfig {
            workload: ServeWorkloadConfig {
                tenants: 96,
                events_per_tenant: 64,
                queries_per_tenant: 6,
                ingest_threads: 3,
                verify: true,
                ..ServeWorkloadConfig::default()
            },
            kills: 4,
            mid_fraction: 0.5,
            subscribers: 8,
            subscriber_capacity: 2,
            route_pairs: 40,
        }
    }
}

impl ChaosWorkloadConfig {
    /// A CI-sized run: a couple of kills, a handful of subscribers.
    pub fn quick() -> Self {
        ChaosWorkloadConfig {
            workload: ServeWorkloadConfig {
                tenants: 24,
                events_per_tenant: 32,
                queries_per_tenant: 4,
                ingest_threads: 2,
                verify: true,
                ..ServeWorkloadConfig::default()
            },
            kills: 2,
            subscribers: 4,
            route_pairs: 24,
            ..ChaosWorkloadConfig::default()
        }
    }

    /// Sets the master seed (streams *and* fault plan).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.workload.seed = seed;
        self
    }

    /// Sets the scheduled kill count.
    pub fn with_kills(mut self, kills: usize) -> Self {
        self.kills = kills;
        self
    }

    /// The fault plan this config derives: kills spread over the first
    /// half of the run's batches, so every kill fires and every recovery
    /// has live traffic behind it.
    pub fn plan(&self) -> ChaosPlan {
        let w = &self.workload;
        let batches_per_tenant = w.events_per_tenant.div_ceil(w.batch_size.max(1));
        let total_batches = (w.tenants * batches_per_tenant) as u64;
        ChaosPlan::seeded(
            w.seed ^ PLAN_SALT,
            self.kills,
            (total_batches / 2).max(1),
            self.mid_fraction,
        )
    }
}

/// Domain-separation salt: the fault plan must not correlate with the
/// tenant streams derived from the same master seed.
const PLAN_SALT: u64 = 0x00FA_170F_F417_0FF4;

/// What one chaos run did, and every way it could have failed.
#[derive(Clone, Copy, Debug)]
pub struct ChaosOutcome {
    /// Tenants created.
    pub tenants: usize,
    /// Events submitted (all of them applied — the run quiesces).
    pub events_submitted: u64,
    /// Worker kills that actually fired.
    pub kills_fired: u64,
    /// Workers that died panicking, per the shutdown report.
    pub panicked_workers: u64,
    /// Supervisor respawns.
    pub restarts: u64,
    /// Events re-applied from the WAL during recovery.
    pub replayed_events: u64,
    /// `seq` gaps detected across all live subscribers.
    pub subscriber_gaps: u64,
    /// Snapshot resynchronizations across all live subscribers.
    pub subscriber_resyncs: u64,
    /// Tenants not back to `Live` within the convergence deadline.
    pub unhealthy_tenants: usize,
    /// Tenants whose served state diverged from sequential replay.
    pub mismatched_tenants: usize,
    /// Subscribers whose route index diverged from from-scratch routing
    /// over the tenant's final state.
    pub mismatched_subscribers: usize,
    /// The service's counters at the end of the run.
    pub stats: ServiceStatsSnapshot,
}

impl ChaosOutcome {
    /// True when the run converged: everything live, everything equal to
    /// its oracle.
    pub fn converged(&self) -> bool {
        self.unhealthy_tenants == 0
            && self.mismatched_tenants == 0
            && self.mismatched_subscribers == 0
    }
}

/// Runs the chaos workload: starts a service armed with
/// [`ChaosWorkloadConfig::plan`], attaches the lossy subscribers,
/// ingests every tenant stream (partitioned over the ingest threads,
/// per-tenant order preserved) while the plan kills workers underneath,
/// quiesces, waits for every tenant to report `Live`, then verifies
/// tenants against sequential replay and subscribers against from-scratch
/// routing.
///
/// Subscribers deliberately do **not** pump during ingestion: with tiny
/// buffers this makes dropped updates — and therefore gap recovery — a
/// certainty rather than a race.
pub fn run_chaos_workload(cfg: &ChaosWorkloadConfig, serve: ServeConfig) -> ChaosOutcome {
    let w = cfg.workload;
    let mesh = Mesh2D::square(w.mesh_size);
    let service = MonitorService::start_with_chaos(serve, cfg.plan());
    for t in 0..w.tenants {
        service.create_tenant(t as TenantId, mesh);
    }
    let mut subscribers: Vec<LiveReroute> = (0..cfg.subscribers.min(w.tenants))
        .map(|t| {
            let sample = PairSample::random(&mesh, cfg.route_pairs, w.seed ^ t as u64);
            LiveReroute::attach(
                &service,
                t as TenantId,
                &mesh,
                &sample,
                cfg.subscriber_capacity,
            )
            .expect("tenant was just created")
        })
        .collect();

    let threads = w.ingest_threads.max(1);
    let events_submitted: u64 = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|slot| {
                let service = &service;
                s.spawn(move |_| {
                    let mut events = 0u64;
                    for t in (slot..w.tenants).step_by(threads) {
                        let tenant = t as TenantId;
                        for batch in tenant_events(&w, tenant).chunks(w.batch_size.max(1)) {
                            events += batch.len() as u64;
                            service
                                .submit(tenant, batch.to_vec())
                                .expect("service survives its own kills");
                        }
                    }
                    events
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest thread panicked"))
            .sum()
    })
    .expect("scope itself cannot fail");
    service.quiesce();

    // Quiesce means "every event applied"; the supervisor's Degraded →
    // Live flip for lag-free tenants can trail it by a beat.
    let deadline = Instant::now() + Duration::from_secs(30);
    let all_live = |service: &MonitorService| {
        (0..w.tenants).all(|t| service.health(t as TenantId) == Some(TenantHealth::Live))
    };
    while !all_live(&service) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_micros(500));
    }
    let unhealthy_tenants = (0..w.tenants)
        .filter(|&t| service.health(t as TenantId) != Some(TenantHealth::Live))
        .count();

    let mismatched_tenants = (0..w.tenants)
        .filter(|&t| !tenant_matches_replay(&w, &service, t as TenantId))
        .count();
    let mut subscriber_gaps = 0;
    let mut subscriber_resyncs = 0;
    let mut mismatched_subscribers = 0;
    for live in &mut subscribers {
        live.sync(&service);
        subscriber_gaps += live.gaps();
        subscriber_resyncs += live.resyncs();
        let snap = service.status_snapshot(live.tenant());
        let matches = snap.is_some_and(|s| *live.index().status() == s.status)
            && live.index().matches_from_scratch();
        if !matches {
            mismatched_subscribers += 1;
        }
    }

    let kills_fired = service.chaos().kills_fired();
    let stats = service.stats();
    let report = service.shutdown();
    ChaosOutcome {
        tenants: w.tenants,
        events_submitted,
        kills_fired,
        panicked_workers: report.panicked_workers,
        restarts: report.supervisor_restarts,
        replayed_events: report.replayed_events,
        subscriber_gaps,
        subscriber_resyncs,
        unhealthy_tenants,
        mismatched_tenants,
        mismatched_subscribers,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocp_serve::chaos::install_quiet_panic_hook;

    #[test]
    fn quick_chaos_run_converges() {
        install_quiet_panic_hook();
        let cfg = ChaosWorkloadConfig::quick().with_seed(0xC0FF_EE01);
        let outcome = run_chaos_workload(&cfg, ServeConfig::default().with_workers(3));
        assert!(outcome.converged(), "diverged: {outcome:?}");
        assert_eq!(outcome.events_submitted, cfg.workload.total_events() as u64);
        assert!(outcome.kills_fired >= 1, "the plan fired");
        assert_eq!(outcome.panicked_workers, outcome.kills_fired);
        assert!(
            outcome.subscriber_gaps + outcome.subscriber_resyncs >= 1,
            "tiny buffers forced at least one repair: {outcome:?}"
        );
    }

    #[test]
    fn plans_are_reproducible_per_seed() {
        let cfg = ChaosWorkloadConfig::quick().with_seed(42);
        let (a, b) = (cfg.plan(), cfg.plan());
        assert_eq!(a.kills.len(), b.kills.len());
        for (x, y) in a.kills.iter().zip(&b.kills) {
            assert_eq!((x.after_batches, x.mode), (y.after_batches, y.mode));
        }
    }
}
