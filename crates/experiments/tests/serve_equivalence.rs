//! Sequential-equivalence of the multi-tenant service: no matter how
//! many ingest threads submit concurrently (racing each other, the
//! service's workers, and interleaved point queries), every tenant's
//! final engine state must be *identical* to feeding that tenant's
//! event stream to a fresh engine sequentially.
//!
//! This holds because (a) each tenant is submitted to by exactly one
//! ingest thread, so per-tenant arrival order equals stream order, and
//! (b) exactly one service worker owns each tenant, so batches are
//! applied in arrival order. CI runs this at `RAYON_NUM_THREADS=1` and
//! `=4`; the service does not use rayon, so the test also varies its own
//! ingest/worker thread counts explicitly.

use experiments::{replay_tenant, run_serve_workload, tenant_queries, ServeWorkloadConfig};
use mocp_serve::{MonitorService, ServeConfig, TenantId};

fn workload(ingest_threads: usize) -> ServeWorkloadConfig {
    ServeWorkloadConfig::quick()
        .with_tenants(40)
        .with_events_per_tenant(60)
        .with_queries_per_tenant(10)
        .with_ingest_threads(ingest_threads)
        .with_seed(0xE0_1234)
        .with_verify(true)
}

/// One ingest thread: trivially sequential, pins the baseline.
#[test]
fn one_ingest_thread_matches_sequential_replay() {
    let outcome = run_serve_workload(&workload(1), ServeConfig::default().with_workers(1));
    assert_eq!(outcome.mismatched_tenants, 0);
    assert_eq!(outcome.events_submitted, outcome.stats.events);
}

/// Several ingest threads × several workers: the service's claimed
/// sweet spot. `run_serve_workload` with `verify` compares every
/// tenant's polygons and counters against [`replay_tenant`].
#[test]
fn four_ingest_threads_match_sequential_replay() {
    let outcome = run_serve_workload(&workload(4), ServeConfig::default().with_workers(4));
    assert_eq!(outcome.mismatched_tenants, 0);
    assert_eq!(outcome.events_submitted, outcome.stats.events);
}

/// More ingest threads than workers and vice versa: ownership hashing
/// must keep per-tenant order either way.
#[test]
fn skewed_thread_to_worker_ratios_still_match() {
    for (ingest, workers) in [(8, 2), (2, 8), (3, 5)] {
        let outcome = run_serve_workload(
            &workload(ingest).with_tenants(24).with_events_per_tenant(40),
            ServeConfig::default().with_workers(workers).with_shards(4),
        );
        assert_eq!(
            outcome.mismatched_tenants, 0,
            "{ingest} ingest threads x {workers} workers"
        );
    }
}

/// Full-state equivalence beyond what the workload's verify checks:
/// every node's status and covering region, compared point by point
/// while *another* round of traffic hammers unrelated tenants.
#[test]
fn per_node_state_matches_replay_under_concurrent_noise() {
    let cfg = workload(4).with_tenants(12).with_verify(false);
    let service = MonitorService::start(ServeConfig::default().with_workers(4).with_shards(4));
    for t in 0..cfg.tenants {
        service.create_tenant(t as TenantId, mesh2d::Mesh2D::square(cfg.mesh_size));
    }
    crossbeam::scope(|s| {
        // Ingest threads for all tenants.
        for slot in 0..cfg.ingest_threads {
            let service = &service;
            let cfg = &cfg;
            s.spawn(move |_| {
                for t in (slot..cfg.tenants).step_by(cfg.ingest_threads) {
                    let events = experiments::tenant_events(cfg, t as TenantId);
                    for batch in events.chunks(cfg.batch_size) {
                        service.submit(t as TenantId, batch.to_vec()).unwrap();
                    }
                }
            });
        }
        // A reader thread issuing queries against every tenant while
        // ingestion is in flight; answers are internally consistent but
        // transient, so only absence of panics/deadlocks is asserted.
        let service = &service;
        let cfg = &cfg;
        s.spawn(move |_| {
            for t in 0..cfg.tenants as TenantId {
                for c in tenant_queries(cfg, t) {
                    let _ = service.node_status(t, c);
                    let _ = service.region_of(t, c);
                }
                let _ = service.counts(t);
            }
        });
    })
    .unwrap();
    service.quiesce();

    for t in 0..cfg.tenants as TenantId {
        let reference = replay_tenant(&cfg, t);
        assert_eq!(
            service.polygons(t),
            Some(reference.polygons()),
            "tenant {t} polygons"
        );
        let counts = service.counts(t).unwrap();
        assert_eq!(counts.faulty, reference.faulty_count(), "tenant {t}");
        assert_eq!(
            counts.disabled_nonfaulty,
            reference.disabled_nonfaulty(),
            "tenant {t}"
        );
        for x in 0..cfg.mesh_size as i32 {
            for y in 0..cfg.mesh_size as i32 {
                let c = mesh2d::Coord::new(x, y);
                assert_eq!(
                    service.node_status(t, c),
                    reference.status().get(c),
                    "tenant {t} node {c:?}"
                );
                assert_eq!(
                    service.region_of(t, c),
                    reference.region_of(c),
                    "tenant {t} node {c:?}"
                );
            }
        }
    }
    service.shutdown();
}

/// The same workload always lands in the same final state (determinism
/// of the generator end to end, not just of one engine).
#[test]
fn repeated_runs_are_identical() {
    let cfg = workload(3).with_tenants(16).with_verify(false);
    let run = || {
        let service = MonitorService::start(ServeConfig::default().with_workers(3));
        for t in 0..cfg.tenants {
            service.create_tenant(t as TenantId, mesh2d::Mesh2D::square(cfg.mesh_size));
        }
        crossbeam::scope(|s| {
            for slot in 0..cfg.ingest_threads {
                let service = &service;
                let cfg = &cfg;
                s.spawn(move |_| {
                    for t in (slot..cfg.tenants).step_by(cfg.ingest_threads) {
                        let events = experiments::tenant_events(cfg, t as TenantId);
                        for batch in events.chunks(cfg.batch_size) {
                            service.submit(t as TenantId, batch.to_vec()).unwrap();
                        }
                    }
                });
            }
        })
        .unwrap();
        service.quiesce();
        let snapshot: Vec<_> = (0..cfg.tenants as TenantId)
            .map(|t| (service.polygons(t).unwrap(), service.counts(t).unwrap()))
            .collect();
        service.shutdown();
        snapshot
    };
    assert_eq!(run(), run());
}
