//! The event-driven maintenance engine.

use mesh2d::{
    BitGrid, Connectivity, Coord, FaultEvent, FaultSet, Grid, Mesh2D, NodeStatus, Rect, Region,
    StatusDelta, StatusMap,
};
use mocp_core::construction::{construct_cells_with, ConstructionScratch};
use mocp_core::CentralizedSolution;
use serde::{Deserialize, Serialize};

/// Size cap under which the localized re-flood re-verifies against the
/// scalar `Region::components` oracle in debug builds.
const ORACLE_NODE_CAP: usize = 1024;

/// Sentinel component id for healthy nodes.
const NO_COMPONENT: u32 = u32::MAX;

/// One live faulty component with its cached construction results.
#[derive(Clone, Debug)]
struct Component {
    /// The component's faulty nodes.
    cells: Region,
    /// The virtual faulty block (bounding box) the merge process maintains.
    bbox: Rect,
    /// Cached minimum orthogonal convex polygon of `cells`, word-packed:
    /// O(1) membership for the cache-hit shortcut, word-speed iteration
    /// for the cover-count install/retire, and an allocation reused
    /// across recomputes (`reset_frame`).
    polygon: BitGrid,
}

/// Counters describing how much work the engine actually did — the evidence
/// that maintenance is incremental rather than a hidden batch recompute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Events consumed (including out-of-mesh / duplicate no-ops).
    pub events: u64,
    /// Injections that changed the fault set.
    pub injects: u64,
    /// Repairs that changed the fault set.
    pub repairs: u64,
    /// Components absorbed into a neighbor by a merging injection.
    pub merges: u64,
    /// Repairs that split a component into several pieces.
    pub splits: u64,
    /// Per-component polygon constructions actually executed.
    pub recomputes: u64,
    /// Injections absorbed by a cached polygon without any recomputation.
    pub cache_hits: u64,
}

/// An incremental minimum-faulty-polygon maintenance engine.
///
/// See the [crate docs](crate) for the merge / dirty strategy. All public
/// accessors are O(1) or proportional to the answer, never to the mesh.
#[derive(Clone, Debug)]
pub struct IncrementalEngine {
    mesh: Mesh2D,
    solution: CentralizedSolution,
    faults: FaultSet,
    /// Component id per node; `NO_COMPONENT` for healthy nodes.
    comp_id: Grid<u32>,
    /// Component slab; freed slots are recycled through `free`.
    components: Vec<Option<Component>>,
    free: Vec<u32>,
    /// Number of live polygons covering each node.
    cover: Grid<u32>,
    /// Maintained status of every node.
    status: StatusMap,
    /// Non-faulty disabled (gray) nodes — the Figure 9 metric.
    disabled: usize,
    /// Sum of live polygon sizes — numerator of the Figure 10 metric.
    polygon_total: usize,
    /// Live component count — denominator of the Figure 10 metric.
    live: usize,
    stats: EngineStats,
    /// Reusable construction / flood buffers: the hull fixpoint and the
    /// localized re-flood run allocation-free once these reach the
    /// working-set size.
    scratch: ConstructionScratch,
    /// Reusable per-event buffer of nodes whose derived status must be
    /// refreshed (duplicates allowed — `refresh` is idempotent).
    touched: Vec<Coord>,
    /// Polygon grid retired by the last merge/repair, handed back to the
    /// next recompute of a component that has no buffer of its own yet —
    /// so merges and splits recycle instead of reallocating.
    spare_polygon: BitGrid,
    /// Per-engine recorder for the `engine.delta_fanout` histogram:
    /// buffered without atomics on the event path, merged into the
    /// global registry on flush/drop. Cloning an engine starts an empty
    /// recorder (buffered samples stay with the original).
    delta_fanout: mocp_obs::LocalHistogram,
}

impl IncrementalEngine {
    /// An engine over a fault-free mesh, using the concave-section
    /// construction (centralized solution 2) for dirty components.
    pub fn new(mesh: Mesh2D) -> Self {
        Self::with_solution(mesh, CentralizedSolution::ConcaveSections)
    }

    /// An engine using the given centralized formulation for dirty
    /// components. Both formulations produce identical polygons; they only
    /// differ in construction cost.
    pub fn with_solution(mesh: Mesh2D, solution: CentralizedSolution) -> Self {
        IncrementalEngine {
            mesh,
            solution,
            faults: FaultSet::new(mesh),
            comp_id: Grid::for_mesh(&mesh, NO_COMPONENT),
            components: Vec::new(),
            free: Vec::new(),
            cover: Grid::for_mesh(&mesh, 0u32),
            status: StatusMap::all_enabled(&mesh),
            disabled: 0,
            polygon_total: 0,
            live: 0,
            stats: EngineStats::default(),
            scratch: ConstructionScratch::new(),
            touched: Vec::new(),
            spare_polygon: BitGrid::empty(),
            delta_fanout: mocp_obs::LocalHistogram::new(mocp_obs::histogram!(
                "engine.delta_fanout"
            )),
        }
    }

    /// An engine pre-loaded with an existing fault set (one inject event per
    /// fault, in insertion order).
    pub fn from_faults(mesh: Mesh2D, faults: &FaultSet) -> Self {
        let mut engine = Self::new(mesh);
        for &c in faults.in_insertion_order() {
            engine.apply(FaultEvent::Inject(c));
        }
        engine
    }

    /// The mesh being monitored.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// The surviving faults.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The maintained per-node status map.
    pub fn status(&self) -> &StatusMap {
        &self.status
    }

    /// Work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// How many times the reusable construction/flood buffers had to grow.
    /// Constant across events ⇔ the engine's hull fixpoint and localized
    /// re-flood run allocation-free (the steady-state no-alloc property
    /// the tests pin).
    pub fn scratch_grows(&self) -> u64 {
        self.scratch.grows()
    }

    /// Number of live faulty components.
    pub fn component_count(&self) -> usize {
        self.live
    }

    /// The maintained status of node `c` — a point query answered from
    /// engine state in O(1), no reconstruction. Equivalent to
    /// `self.status().status(c)` and shares its contract.
    ///
    /// # Panics
    /// Panics if `c` is outside the mesh (use
    /// [`status()`](Self::status)`.get(c)` for a total lookup).
    #[inline]
    pub fn node_status(&self, c: Coord) -> NodeStatus {
        self.status.status(c)
    }

    /// Number of faulty (black) nodes — the counterpart of
    /// [`disabled_nonfaulty`](Self::disabled_nonfaulty), O(1) from the
    /// maintained fault set.
    #[inline]
    pub fn faulty_count(&self) -> usize {
        self.faults.len()
    }

    /// The cached minimum polygon containing node `c`, if any — the
    /// region-membership point query.
    ///
    /// A faulty node returns the polygon of the component that *owns*
    /// it: one comp-id grid lookup plus copying the cached polygon out
    /// (O(answer)) — even when another component's larger hull happens
    /// to overlap it. For a non-faulty node the maintained cover count
    /// answers *whether* `c` lies in a polygon in O(1); when it does,
    /// the live components are scanned (bounding-box pre-filter, then
    /// the word-packed polygon bitmap) and overlaps resolve to the first
    /// covering polygon in [`polygons`](Self::polygons) order. The
    /// result is always an element of that snapshot. Out-of-mesh and
    /// enabled nodes return `None`. Nothing is reconstructed: every
    /// lookup reads maintained state only.
    pub fn region_of(&self, c: Coord) -> Option<Region> {
        if self.faults.is_faulty(c) {
            let id = *self.comp_id.get(c).expect("faults lie inside the mesh");
            debug_assert_ne!(id, NO_COMPONENT);
            let comp = self.components[id as usize]
                .as_ref()
                .expect("faulty nodes map to live components");
            return Some(comp.polygon.to_region());
        }
        if self.cover.get(c).copied().unwrap_or(0) == 0 {
            return None;
        }
        // Covered by at least one polygon: pick the covering component
        // with the smallest first cell — the same key polygons() sorts
        // by — so overlaps resolve deterministically.
        self.components
            .iter()
            .flatten()
            .filter(|comp| comp.bbox.contains(c) && comp.polygon.contains(c))
            .min_by_key(|comp| {
                comp.cells
                    .iter()
                    .next()
                    .expect("components are never empty")
            })
            .map(|comp| comp.polygon.to_region())
    }

    /// Number of non-faulty nodes currently disabled (Figure 9 metric).
    pub fn disabled_nonfaulty(&self) -> usize {
        self.disabled
    }

    /// Average polygon size in nodes, faults included (Figure 10 metric).
    /// Zero when no fault is present.
    pub fn average_region_size(&self) -> f64 {
        if self.live == 0 {
            0.0
        } else {
            self.polygon_total as f64 / self.live as f64
        }
    }

    /// The cached minimum polygons, ordered by their component's smallest
    /// cell — the same deterministic order the batch construction
    /// ([`mocp_core::merge_components`]) produces.
    pub fn polygons(&self) -> Vec<Region> {
        let mut with_key: Vec<(Coord, &BitGrid)> = self
            .components
            .iter()
            .flatten()
            .map(|comp| {
                let key = comp
                    .cells
                    .iter()
                    .next()
                    .expect("components are never empty");
                (key, &comp.polygon)
            })
            .collect();
        with_key.sort_by_key(|&(key, _)| key);
        with_key.into_iter().map(|(_, p)| p.to_region()).collect()
    }

    /// The maintained virtual faulty blocks (per-component bounding boxes),
    /// in the same order as [`polygons`](Self::polygons) — the rectangular
    /// FB view of the fault population, available without any construction.
    pub fn virtual_blocks(&self) -> Vec<Rect> {
        let mut with_key: Vec<(Coord, Rect)> = self
            .components
            .iter()
            .flatten()
            .map(|comp| {
                let key = comp
                    .cells
                    .iter()
                    .next()
                    .expect("components are never empty");
                (key, comp.bbox)
            })
            .collect();
        with_key.sort_by_key(|&(key, _)| key);
        with_key.into_iter().map(|(_, b)| b).collect()
    }

    /// Applies one event and returns the nodes whose status changed.
    /// Injecting an already-faulty (or out-of-mesh) node and repairing a
    /// healthy node are no-ops that return an empty delta.
    pub fn apply(&mut self, event: FaultEvent) -> StatusDelta {
        self.stats.events += 1;
        mocp_obs::counter!("engine.events").inc();
        let delta = match event {
            FaultEvent::Inject(c) => self.inject(c),
            FaultEvent::Repair(c) => self.repair(c),
        };
        self.delta_fanout.record(delta.len() as u64);
        mocp_obs::gauge!("engine.components").set(self.live as i64);
        mocp_obs::gauge!("engine.disabled_nonfaulty").set(self.disabled as i64);
        delta
    }

    /// Applies a whole event stream, concatenating the per-event deltas.
    pub fn apply_all(&mut self, events: impl IntoIterator<Item = FaultEvent>) -> StatusDelta {
        let mut delta = StatusDelta::new();
        for event in events {
            delta.extend(self.apply(event));
        }
        delta
    }

    /// Applies a whole event stream and returns the **coalesced** delta:
    /// one `(first old, last new)` entry per net-changed node, with
    /// self-cancelling churn dropped. This is exactly the batch shape
    /// `mocp_serve` fans out to subscribers and the `mocp_traffic` reroute
    /// index consumes.
    pub fn delta_batch(&mut self, events: impl IntoIterator<Item = FaultEvent>) -> StatusDelta {
        self.apply_all(events).coalesced()
    }

    /// Ids of the live components, ascending. An id is stable while its
    /// component survives; merges retire the absorbed ids and splits mint
    /// fresh ones, so treat ids as valid only until the next event.
    pub fn component_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.components
            .iter()
            .enumerate()
            .filter(|(_, comp)| comp.is_some())
            .map(|(id, _)| id as u32)
    }

    /// The id of the component owning faulty node `c`; `None` for
    /// non-faulty or out-of-mesh nodes. (Non-faulty covered nodes belong
    /// to a *polygon*, not a component — use [`region_of`](Self::region_of)
    /// for that query.)
    pub fn component_at(&self, c: Coord) -> Option<u32> {
        if !self.faults.is_faulty(c) {
            return None;
        }
        let id = *self.comp_id.get(c).expect("faults lie inside the mesh");
        debug_assert_ne!(id, NO_COMPONENT);
        Some(id)
    }

    /// Borrowed faulty cells of live component `id`; `None` for retired or
    /// out-of-range ids.
    pub fn component_cells(&self, id: u32) -> Option<&Region> {
        self.components
            .get(id as usize)
            .and_then(|comp| comp.as_ref())
            .map(|comp| &comp.cells)
    }

    /// Borrowed word-packed minimum polygon of live component `id` — the
    /// no-clone alternative to [`polygons`](Self::polygons) for readers
    /// (like the reroute index) that only need to iterate or test
    /// membership.
    pub fn component_polygon(&self, id: u32) -> Option<&BitGrid> {
        self.components
            .get(id as usize)
            .and_then(|comp| comp.as_ref())
            .map(|comp| &comp.polygon)
    }

    fn inject(&mut self, c: Coord) -> StatusDelta {
        let mut delta = StatusDelta::new();
        if !self.mesh.contains(c) || self.faults.is_faulty(c) {
            return delta;
        }
        self.stats.injects += 1;
        mocp_obs::counter!("engine.injects").inc();
        self.faults.insert(c);

        // Distinct components adjacent to the new fault. Adjacency is the
        // geometric 8-neighborhood of Definition 2 (components never join
        // across a torus wrap, matching the batch merge process).
        let mut adjacent: Vec<u32> = Vec::new();
        for n in c.neighbors8() {
            if let Some(&id) = self.comp_id.get(n) {
                if id != NO_COMPONENT && !adjacent.contains(&id) {
                    adjacent.push(id);
                }
            }
        }

        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        touched.push(c);

        if let [only] = adjacent[..] {
            let comp = self.components[only as usize]
                .as_mut()
                .expect("adjacent ids are live");
            // The bounding box is the O(1) pre-filter: a fault outside the
            // virtual block cannot be inside the polygon.
            if comp.bbox.contains(c) && comp.polygon.contains(c) {
                // Pure cache hit: the hull is a closure operator, so a fault
                // inside the cached polygon cannot change it.
                comp.cells.insert(c);
                self.comp_id.set(c, only);
                self.stats.cache_hits += 1;
                mocp_obs::counter!("engine.cache_hits").inc();
                self.refresh(c, &mut delta);
                self.touched = touched;
                return delta;
            }
        }

        let keep = if adjacent.is_empty() {
            let id = self.alloc(Component {
                cells: Region::from_coords([c]),
                bbox: Rect::single(c),
                polygon: BitGrid::empty(),
            });
            self.live += 1;
            id
        } else {
            // Merge small-into-large: the component with the most cells
            // survives, every other adjacent component is relabelled into it.
            let keep = *adjacent
                .iter()
                .max_by_key(|&&id| self.cells_len(id))
                .expect("adjacent is non-empty");
            for &other in adjacent.iter().filter(|&&id| id != keep) {
                self.stats.merges += 1;
                mocp_obs::counter!("engine.merges").inc();
                let absorbed = self.components[other as usize]
                    .take()
                    .expect("adjacent ids are live");
                self.free.push(other);
                self.live -= 1;
                self.retire_polygon(&absorbed.polygon, &mut touched);
                // Only the absorbed (smaller) component's cells are
                // relabelled — the small-into-large bound.
                for cell in absorbed.cells.iter() {
                    self.comp_id.set(cell, keep);
                }
                let comp = self.components[keep as usize]
                    .as_mut()
                    .expect("keep is live");
                for cell in absorbed.cells.iter() {
                    comp.cells.insert(cell);
                }
                comp.bbox = comp
                    .bbox
                    .expanded_to(absorbed.bbox.min())
                    .expanded_to(absorbed.bbox.max());
            }
            // Retire the surviving component's own stale polygon (taken
            // out wholesale; recompute installs the replacement).
            let old = std::mem::take(
                &mut self.components[keep as usize]
                    .as_mut()
                    .expect("keep is live")
                    .polygon,
            );
            self.retire_polygon(&old, &mut touched);
            self.spare_polygon = old;
            let comp = self.components[keep as usize]
                .as_mut()
                .expect("keep is live");
            comp.cells.insert(c);
            comp.bbox = comp.bbox.expanded_to(c);
            keep
        };
        self.comp_id.set(c, keep);

        self.recompute(keep, &mut touched);
        for &t in &touched {
            self.refresh(t, &mut delta);
        }
        self.touched = touched;
        delta
    }

    fn repair(&mut self, c: Coord) -> StatusDelta {
        let mut delta = StatusDelta::new();
        if !self.faults.is_faulty(c) {
            return delta;
        }
        self.stats.repairs += 1;
        mocp_obs::counter!("engine.repairs").inc();
        self.faults.remove(c);

        let id = *self.comp_id.get(c).expect("faults lie inside the mesh");
        debug_assert_ne!(id, NO_COMPONENT);
        self.comp_id.set(c, NO_COMPONENT);

        let mut comp = self.components[id as usize]
            .take()
            .expect("faulty nodes map to live components");
        comp.cells.remove(c);

        let mut touched = std::mem::take(&mut self.touched);
        touched.clear();
        touched.push(c);
        self.retire_polygon(&comp.polygon, &mut touched);
        self.spare_polygon = std::mem::take(&mut comp.polygon);

        if comp.cells.is_empty() {
            self.free.push(id);
            self.live -= 1;
        } else {
            // Localized re-flood: only this component's surviving cells are
            // visited, as a word-scan flood over the component's bounding
            // box (the scalar decomposition remains the debug oracle). The
            // largest piece keeps the id (and so most labels).
            mocp_obs::counter!("engine.refloods").inc();
            let piece_grids = self.scratch.flood_components(&comp.cells, comp.bbox);
            let mut pieces: Vec<Region> = piece_grids.iter().map(BitGrid::to_region).collect();
            debug_assert!(
                comp.cells.len() > ORACLE_NODE_CAP
                    || pieces == comp.cells.components(Connectivity::Eight),
                "word-flood repair re-flood diverged from the scalar oracle"
            );
            if pieces.len() > 1 {
                self.stats.splits += 1;
                mocp_obs::counter!("engine.splits").inc();
            }
            let largest = pieces
                .iter()
                .enumerate()
                .max_by_key(|(_, p)| p.len())
                .map(|(i, _)| i)
                .expect("a non-empty region has pieces");
            // Process the largest piece first so it reclaims `id`.
            pieces.swap(0, largest);
            for (i, cells) in pieces.into_iter().enumerate() {
                let bbox = cells.bounding_rect().expect("pieces are non-empty");
                let piece = Component {
                    cells,
                    bbox,
                    polygon: BitGrid::empty(),
                };
                let piece_id = if i == 0 {
                    // The largest piece reclaims the old id; its cells are
                    // already labelled with it.
                    self.components[id as usize] = Some(piece);
                    id
                } else {
                    let pid = self.alloc(piece);
                    self.live += 1;
                    for cell in self.components[pid as usize]
                        .as_ref()
                        .expect("just inserted")
                        .cells
                        .clone()
                        .iter()
                    {
                        self.comp_id.set(cell, pid);
                    }
                    pid
                };
                self.recompute(piece_id, &mut touched);
            }
        }

        for &t in &touched {
            self.refresh(t, &mut delta);
        }
        self.touched = touched;
        delta
    }

    /// Re-runs the per-component construction for one dirty component and
    /// installs the new polygon's coverage.
    fn recompute(&mut self, id: u32, touched: &mut Vec<Coord>) {
        self.stats.recomputes += 1;
        mocp_obs::counter!("engine.recomputes").inc();
        let comp = self.components[id as usize]
            .as_mut()
            .expect("dirty ids are live");
        // Reuse the component's own polygon grid: re-frame it over the
        // maintained bounding box, seed the live cells, and run the hull
        // fixpoint in place — no per-event region or buffer allocation.
        // Components without a buffer yet (fresh, post-merge, split
        // pieces) recycle the grid the last merge/repair retired.
        let mut polygon = std::mem::take(&mut comp.polygon);
        if polygon.is_empty() {
            // No bits ⇒ this component has no buffer yet (fresh singleton,
            // post-merge survivor, or split piece — live polygons always
            // hold bits): recycle the last retired grid's allocation.
            polygon = std::mem::take(&mut self.spare_polygon);
        }
        match self.solution {
            CentralizedSolution::ConcaveSections => {
                polygon.reset_frame(comp.bbox.min(), comp.bbox.max());
                for cell in comp.cells.iter() {
                    polygon.set(cell);
                }
                polygon.hull_fixpoint(self.scratch.flood_scratch());
                debug_assert!(
                    comp.cells.len() > ORACLE_NODE_CAP
                        || polygon.to_region()
                            == construct_cells_with(
                                &self.mesh,
                                &comp.cells,
                                comp.bbox,
                                self.solution,
                                &mut ConstructionScratch::new(),
                            )
                            .polygon,
                    "in-place hull diverged from the construction entry point"
                );
            }
            CentralizedSolution::VirtualBlock => {
                let sol = construct_cells_with(
                    &self.mesh,
                    &comp.cells,
                    comp.bbox,
                    self.solution,
                    &mut self.scratch,
                );
                polygon = BitGrid::from_region(&sol.polygon);
            }
        }
        let mut size = 0usize;
        for n in polygon.iter() {
            size += 1;
            let w = self
                .cover
                .get_mut(n)
                .expect("polygons stay inside the mesh");
            *w += 1;
            if *w == 1 {
                touched.push(n);
            }
        }
        self.polygon_total += size;
        self.components[id as usize]
            .as_mut()
            .expect("dirty ids are live")
            .polygon = polygon;
    }

    /// Removes one polygon's contribution to the cover counts.
    fn retire_polygon(&mut self, polygon: &BitGrid, touched: &mut Vec<Coord>) {
        let mut size = 0usize;
        for n in polygon.iter() {
            size += 1;
            let w = self
                .cover
                .get_mut(n)
                .expect("polygons stay inside the mesh");
            debug_assert!(*w > 0);
            *w -= 1;
            if *w == 0 {
                touched.push(n);
            }
        }
        self.polygon_total -= size;
    }

    /// Recomputes the derived status of one node, recording any change.
    fn refresh(&mut self, c: Coord, delta: &mut StatusDelta) {
        let old = self.status.status(c);
        let new = if self.faults.is_faulty(c) {
            NodeStatus::Faulty
        } else if self.cover.get(c).copied().unwrap_or(0) > 0 {
            NodeStatus::Disabled
        } else {
            NodeStatus::Enabled
        };
        if old != new {
            if old == NodeStatus::Disabled {
                self.disabled -= 1;
            }
            if new == NodeStatus::Disabled {
                self.disabled += 1;
            }
            self.status.set(c, new);
            delta.record(c, old, new);
        }
    }

    fn cells_len(&self, id: u32) -> usize {
        self.components[id as usize]
            .as_ref()
            .map_or(0, |c| c.cells.len())
    }

    fn alloc(&mut self, component: Component) -> u32 {
        if let Some(id) = self.free.pop() {
            self.components[id as usize] = Some(component);
            id
        } else {
            self.components.push(Some(component));
            (self.components.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fblock::FaultModel;
    use mocp_core::CentralizedMfpModel;

    fn batch(mesh: &Mesh2D, faults: &FaultSet) -> fblock::ModelOutcome {
        CentralizedMfpModel::concave_sections().construct(mesh, faults)
    }

    /// Engine state must equal a from-scratch batch construction.
    fn assert_matches_batch(engine: &IncrementalEngine) {
        let outcome = batch(engine.mesh(), engine.faults());
        assert_eq!(engine.status(), &outcome.status);
        assert_eq!(engine.polygons(), outcome.regions);
        assert_eq!(engine.disabled_nonfaulty(), outcome.disabled_nonfaulty());
        let avg = outcome.average_region_size();
        assert!((engine.average_region_size() - avg).abs() < 1e-12);
        // The maintained bounding boxes equal the batch merge process's
        // virtual faulty blocks, in the same component order.
        let blocks: Vec<Rect> = mocp_core::merge_components(engine.faults())
            .iter()
            .map(|c| c.virtual_block())
            .collect();
        assert_eq!(engine.virtual_blocks(), blocks);
    }

    #[test]
    fn empty_engine_matches_empty_batch() {
        let engine = IncrementalEngine::new(Mesh2D::square(6));
        assert_matches_batch(&engine);
        assert_eq!(engine.component_count(), 0);
        assert_eq!(engine.average_region_size(), 0.0);
    }

    #[test]
    fn singleton_and_duplicate_injection() {
        let mesh = Mesh2D::square(6);
        let mut engine = IncrementalEngine::new(mesh);
        let delta = engine.apply(FaultEvent::Inject(Coord::new(2, 2)));
        assert_eq!(delta.len(), 1);
        assert_eq!(
            delta.newly_excluded().collect::<Vec<_>>(),
            vec![Coord::new(2, 2)]
        );
        let delta = engine.apply(FaultEvent::Inject(Coord::new(2, 2)));
        assert!(delta.is_empty(), "duplicate injection is a no-op");
        let delta = engine.apply(FaultEvent::Inject(Coord::new(9, 9)));
        assert!(delta.is_empty(), "out-of-mesh injection is a no-op");
        assert_matches_batch(&engine);
    }

    #[test]
    fn growing_merging_and_notch_filling() {
        let mesh = Mesh2D::square(10);
        let mut engine = IncrementalEngine::new(mesh);
        // Two arms of a U, still separate components.
        for (x, y) in [(2, 2), (2, 3), (2, 4), (4, 2), (4, 3), (4, 4)] {
            engine.apply(FaultEvent::Inject(Coord::new(x, y)));
            assert_matches_batch(&engine);
        }
        assert_eq!(engine.component_count(), 2);
        // The bridge merges them and forces the notch nodes.
        let delta = engine.apply(FaultEvent::Inject(Coord::new(3, 2)));
        assert_eq!(engine.component_count(), 1);
        assert!(engine.stats().merges >= 1);
        assert_eq!(engine.disabled_nonfaulty(), 2);
        assert!(delta.newly_excluded().any(|c| c == Coord::new(3, 3)));
        assert_matches_batch(&engine);
    }

    #[test]
    fn injection_inside_cached_polygon_is_a_cache_hit() {
        let mesh = Mesh2D::square(10);
        let mut engine = IncrementalEngine::new(mesh);
        for (x, y) in [
            (2, 2),
            (3, 2),
            (4, 2),
            (2, 3),
            (4, 3),
            (2, 4),
            (4, 4),
            (3, 4),
        ] {
            engine.apply(FaultEvent::Inject(Coord::new(x, y)));
        }
        // (3,3) is the filled notch: inside the polygon, adjacent to the ring.
        let recomputes = engine.stats().recomputes;
        let hits = engine.stats().cache_hits;
        let delta = engine.apply(FaultEvent::Inject(Coord::new(3, 3)));
        assert_eq!(engine.stats().recomputes, recomputes, "no recompute");
        assert_eq!(engine.stats().cache_hits, hits + 1);
        // The node flips gray -> black; nothing else changes.
        assert_eq!(delta.changes().len(), 1);
        assert_matches_batch(&engine);
    }

    #[test]
    fn repair_shrinks_splits_and_frees_components() {
        let mesh = Mesh2D::square(10);
        let mut engine = IncrementalEngine::new(mesh);
        // A horizontal bar; repairing the middle splits it.
        for x in 2..=6 {
            engine.apply(FaultEvent::Inject(Coord::new(x, 5)));
        }
        assert_eq!(engine.component_count(), 1);
        let delta = engine.apply(FaultEvent::Repair(Coord::new(4, 5)));
        assert_eq!(engine.component_count(), 2);
        assert_eq!(engine.stats().splits, 1);
        assert!(delta.newly_enabled().any(|c| c == Coord::new(4, 5)));
        assert_matches_batch(&engine);
        // Repairing everything frees all components.
        for x in [2, 3, 5, 6] {
            engine.apply(FaultEvent::Repair(Coord::new(x, 5)));
            assert_matches_batch(&engine);
        }
        assert_eq!(engine.component_count(), 0);
        assert_eq!(engine.disabled_nonfaulty(), 0);
        let delta = engine.apply(FaultEvent::Repair(Coord::new(2, 5)));
        assert!(delta.is_empty(), "repairing a healthy node is a no-op");
    }

    #[test]
    fn overlapping_polygons_need_cover_counting() {
        let mesh = Mesh2D::square(12);
        let mut engine = IncrementalEngine::new(mesh);
        // A wide U whose hull swallows (4,4); then a separate fault there.
        for (x, y) in [
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 2),
            (6, 2),
            (2, 3),
            (6, 3),
            (2, 4),
            (6, 4),
        ] {
            engine.apply(FaultEvent::Inject(Coord::new(x, y)));
        }
        let c = Coord::new(4, 4);
        assert_eq!(engine.status().status(c), NodeStatus::Disabled);
        engine.apply(FaultEvent::Inject(c));
        assert_eq!(
            engine.component_count(),
            2,
            "inner fault is its own component"
        );
        assert_matches_batch(&engine);
        // Repair the inner fault: still covered by the U's polygon.
        engine.apply(FaultEvent::Repair(c));
        assert_eq!(engine.status().status(c), NodeStatus::Disabled);
        assert_matches_batch(&engine);
    }

    #[test]
    fn from_faults_replays_a_fault_set() {
        let mesh = Mesh2D::square(12);
        let faults = FaultSet::from_coords(
            mesh,
            [(1, 1), (2, 2), (3, 1), (8, 8), (9, 9)].map(|(x, y)| Coord::new(x, y)),
        );
        let engine = IncrementalEngine::from_faults(mesh, &faults);
        assert_eq!(engine.faults().len(), 5);
        assert_matches_batch(&engine);
    }

    #[test]
    fn deltas_replay_into_the_same_status_map() {
        let mesh = Mesh2D::square(10);
        let mut engine = IncrementalEngine::new(mesh);
        let mut replayed = StatusMap::all_enabled(&mesh);
        let events = [
            FaultEvent::Inject(Coord::new(2, 2)),
            FaultEvent::Inject(Coord::new(4, 4)),
            FaultEvent::Inject(Coord::new(3, 3)),
            FaultEvent::Inject(Coord::new(2, 4)),
            FaultEvent::Repair(Coord::new(3, 3)),
            FaultEvent::Repair(Coord::new(2, 2)),
        ];
        for e in events {
            engine.apply(e).apply_to(&mut replayed);
            assert_eq!(&replayed, engine.status(), "after {e:?}");
        }
    }

    #[test]
    fn apply_all_concatenates_deltas() {
        let mesh = Mesh2D::square(8);
        let mut engine = IncrementalEngine::new(mesh);
        let delta = engine.apply_all([
            FaultEvent::Inject(Coord::new(1, 1)),
            FaultEvent::Inject(Coord::new(2, 2)),
            FaultEvent::Repair(Coord::new(1, 1)),
        ]);
        assert_eq!(delta.changes().len(), 3);
        let mut replayed = StatusMap::all_enabled(&mesh);
        delta.apply_to(&mut replayed);
        assert_eq!(&replayed, engine.status());
    }

    #[test]
    fn both_solutions_maintain_identical_state() {
        let mesh = Mesh2D::square(10);
        let mut concave = IncrementalEngine::new(mesh);
        let mut virtual_block =
            IncrementalEngine::with_solution(mesh, CentralizedSolution::VirtualBlock);
        for (x, y) in [(2, 2), (3, 3), (4, 2), (2, 4), (7, 7), (8, 8), (3, 2)] {
            let e = FaultEvent::Inject(Coord::new(x, y));
            concave.apply(e);
            virtual_block.apply(e);
        }
        assert_eq!(concave.status(), virtual_block.status());
        assert_eq!(concave.polygons(), virtual_block.polygons());
    }

    /// The point queries must agree with the full `status()` /
    /// `polygons()` snapshots at every node: faulty nodes resolve to
    /// their owning component's polygon (recomputed here from the fault
    /// set's 8-connected decomposition), disabled nodes to the first
    /// covering polygon in `polygons()` order, enabled nodes to `None`.
    fn assert_point_queries_match_snapshots(engine: &IncrementalEngine) {
        let polygons = engine.polygons();
        let comps = engine.faults().region().components(Connectivity::Eight);
        let mut keys: Vec<Coord> = comps
            .iter()
            .map(|r| r.iter().next().expect("components are non-empty"))
            .collect();
        keys.sort();
        for y in 0..engine.mesh().height() {
            for x in 0..engine.mesh().width() {
                let c = Coord::new(x, y);
                assert_eq!(engine.node_status(c), engine.status().status(c));
                let expect = match engine.status().status(c) {
                    NodeStatus::Faulty => {
                        let own = comps
                            .iter()
                            .find(|r| r.contains(c))
                            .expect("faulty nodes lie in a component");
                        let key = own.iter().next().expect("components are non-empty");
                        let idx = keys.iter().position(|&k| k == key).expect("key is known");
                        Some(polygons[idx].clone())
                    }
                    NodeStatus::Disabled => polygons.iter().find(|p| p.contains(c)).cloned(),
                    NodeStatus::Enabled => None,
                };
                assert_eq!(engine.region_of(c), expect, "region_of({c:?})");
            }
        }
    }

    #[test]
    fn point_queries_pin_to_status_and_polygons() {
        let mesh = Mesh2D::square(12);
        let mut engine = IncrementalEngine::new(mesh);
        // A wide U whose hull swallows interior nodes, a separate fault
        // inside it (overlapping polygons), and an isolated singleton.
        for (x, y) in [
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 2),
            (6, 2),
            (2, 3),
            (6, 3),
            (2, 4),
            (6, 4),
            (4, 4),
            (9, 9),
        ] {
            engine.apply(FaultEvent::Inject(Coord::new(x, y)));
        }
        assert_point_queries_match_snapshots(&engine);
        assert_eq!(engine.faulty_count(), engine.faults().len());
        // Repair churn keeps the queries pinned.
        engine.apply(FaultEvent::Repair(Coord::new(4, 4)));
        engine.apply(FaultEvent::Repair(Coord::new(4, 2)));
        assert_point_queries_match_snapshots(&engine);
    }

    #[test]
    fn point_queries_on_an_empty_engine() {
        let engine = IncrementalEngine::new(Mesh2D::square(5));
        assert_eq!(engine.node_status(Coord::new(2, 2)), NodeStatus::Enabled);
        assert_eq!(engine.region_of(Coord::new(2, 2)), None);
        assert_eq!(engine.region_of(Coord::new(50, 50)), None, "out of mesh");
        assert_eq!(engine.faulty_count(), 0);
    }

    #[test]
    fn stats_count_event_kinds() {
        let mesh = Mesh2D::square(8);
        let mut engine = IncrementalEngine::new(mesh);
        engine.apply(FaultEvent::Inject(Coord::new(1, 1)));
        engine.apply(FaultEvent::Inject(Coord::new(1, 1))); // duplicate
        engine.apply(FaultEvent::Repair(Coord::new(1, 1)));
        engine.apply(FaultEvent::Repair(Coord::new(1, 1))); // healthy
        let s = engine.stats();
        assert_eq!(s.events, 4);
        assert_eq!(s.injects, 1);
        assert_eq!(s.repairs, 1);
    }

    #[test]
    fn delta_batch_equals_coalesced_apply_all() {
        let mesh = Mesh2D::square(8);
        let events = vec![
            FaultEvent::Inject(Coord::new(2, 2)),
            FaultEvent::Inject(Coord::new(3, 3)),
            FaultEvent::Inject(Coord::new(2, 3)),
            FaultEvent::Repair(Coord::new(3, 3)),
        ];
        let mut a = IncrementalEngine::new(mesh);
        let mut b = IncrementalEngine::new(mesh);
        let batched = a.delta_batch(events.clone());
        let concatenated = b.apply_all(events);
        assert_eq!(batched.changes(), concatenated.coalesced().changes());
        // Self-cancelling churn ((3,3) injected then repaired with no net
        // polygon effect on itself) never names the node twice.
        let named: Vec<Coord> = batched.changes().iter().map(|&(c, _, _)| c).collect();
        let mut deduped = named.clone();
        deduped.dedup();
        assert_eq!(named, deduped);
    }

    #[test]
    fn component_accessors_borrow_live_state() {
        let mesh = Mesh2D::square(9);
        let mut engine = IncrementalEngine::new(mesh);
        engine.apply_all(
            [(1, 1), (2, 2), (6, 6), (6, 7)].map(|(x, y)| FaultEvent::Inject(Coord::new(x, y))),
        );
        let ids: Vec<u32> = engine.component_ids().collect();
        assert_eq!(ids.len(), engine.component_count());
        // Every faulty node maps to a live id whose cells contain it, and
        // the borrowed polygons equal the cloning accessor's output.
        for c in [(1, 1), (2, 2), (6, 6), (6, 7)].map(|(x, y)| Coord::new(x, y)) {
            let id = engine.component_at(c).expect("faulty node has an id");
            assert!(ids.contains(&id));
            assert!(engine.component_cells(id).unwrap().contains(c));
        }
        let mut borrowed: Vec<Region> = ids
            .iter()
            .map(|&id| engine.component_polygon(id).unwrap().to_region())
            .collect();
        borrowed.sort_by_key(|r| r.iter().next().unwrap());
        assert_eq!(borrowed, engine.polygons());
        // Healthy nodes and retired ids answer None.
        assert_eq!(engine.component_at(Coord::new(0, 0)), None);
        assert!(engine.component_cells(u32::MAX - 1).is_none());
        assert!(engine.component_polygon(9999).is_none());
    }
}
