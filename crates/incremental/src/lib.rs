//! # mocp-incremental — streaming maintenance of minimum faulty polygons
//!
//! The paper's evaluation (Section 4) injects up to 800 faults
//! *sequentially* into a 100×100 mesh — yet a batch reproduction recomputes
//! the component decomposition, every virtual faulty block and every concave
//! section from the full mesh at each fault count. This crate turns the
//! construction into an online fault-monitoring engine: an
//! [`IncrementalEngine`] consumes a stream of
//! [`FaultEvent`]s (`Inject` / `Repair`) and maintains,
//! per 8-connected faulty component, a cached minimum orthogonal convex
//! polygon and the network-wide status map, touching only the part of the
//! state the event actually changed.
//!
//! ## The merge / dirty strategy
//!
//! The engine keeps a union-find-flavoured component index: a dense grid
//! maps every faulty node to its component id, and each live component
//! stores its cell set, its bounding box (the paper's *virtual faulty
//! block*) and its cached polygon. Events update this index in sub-mesh
//! time:
//!
//! * **Inject into empty surroundings** — the fault starts a fresh
//!   singleton component.
//! * **Inject next to one component** — the component absorbs the fault. If
//!   the fault already lies *inside* the cached polygon the polygon is
//!   provably unchanged (the orthogonal convex hull is a closure operator:
//!   `hull(S ∪ {c}) = hull(S)` whenever `c ∈ hull(S)`), so the engine takes
//!   a pure cache hit and recomputes nothing.
//! * **Inject between several components** — they merge. The union is
//!   performed small-into-large (every absorbed cell is relabelled to the
//!   surviving id), which bounds total relabelling work at
//!   O(n log n) over any injection sequence.
//! * **Repair** — the fault leaves its component. The remaining cells are
//!   re-flooded *locally* (only that component's cells are visited); if the
//!   component fell apart, the largest piece keeps the id and the other
//!   pieces become new components.
//!
//! Only components touched by one of these transitions are marked **dirty**
//! and re-run the per-component construction entry point of `mocp_core`
//! ([`mocp_core::construction`]); every other cached polygon is served
//! as-is. Because distinct components' polygons may geometrically overlap
//! (a separate fault can sit inside another component's hull), disabled
//! status is maintained as a per-node *cover count* — the number of live
//! polygons containing the node — rather than a boolean, so retiring one
//! polygon never un-disables a node another polygon still covers.
//!
//! Every event returns a [`StatusDelta`] — the nodes
//! that changed status — so downstream consumers (routing tables, sweep
//! statistics) update instead of rescanning the mesh.
//!
//! ## Equivalence
//!
//! After any event sequence the engine's status map and polygon set equal a
//! from-scratch batch construction
//! ([`CentralizedMfpModel`](mocp_core::CentralizedMfpModel)) over the same
//! surviving fault set — property-tested over random inject/repair
//! sequences, and relied on by `experiments`' streaming scenario mode,
//! which reproduces the paper's Figure 9/10 curves from one pass over one
//! injection sequence.
//!
//! ```
//! use mesh2d::{Coord, FaultEvent, Mesh2D};
//! use mocp_incremental::IncrementalEngine;
//!
//! let mesh = Mesh2D::square(8);
//! let mut engine = IncrementalEngine::new(mesh);
//! // A U-shaped component, one fault at a time. The notch (3,3) is already
//! // forced into the polygon by the two arms.
//! for (x, y) in [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4)] {
//!     engine.apply(FaultEvent::Inject(Coord::new(x, y)));
//! }
//! assert_eq!(engine.disabled_nonfaulty(), 1);
//! // Closing the U additionally forces (3,4).
//! let delta = engine.apply(FaultEvent::Inject(Coord::new(4, 4)));
//! assert_eq!(delta.newly_excluded().count(), 2); // (4,4) itself + (3,4)
//! assert_eq!(engine.disabled_nonfaulty(), 2);
//! // Repairing the corner re-enables it and releases (3,4) again.
//! let delta = engine.apply(FaultEvent::Repair(Coord::new(4, 4)));
//! assert_eq!(delta.newly_enabled().count(), 2);
//! assert_eq!(engine.disabled_nonfaulty(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;

pub use engine::{EngineStats, IncrementalEngine};
pub use mesh2d::{FaultEvent, StatusDelta};
