//! The message-passing engine: explicit messages delivered one hop per round.
//!
//! The distributed minimum-polygon construction of Section 3.2 is not a pure
//! neighborhood rule — the boundary-ring initiation message and the concave
//! section notifications travel hop by hop around a component, carrying a
//! payload (the initiator id and the boundary array `V`). [`MessageEngine`]
//! models exactly that: in each round, every node processes the messages
//! delivered to it in the previous round, may update its local state, and may
//! emit messages to adjacent nodes, which arrive in the next round.

use crate::RoundStats;
use mesh2d::{Coord, Mesh2D};
use std::collections::BTreeMap;

/// A message in flight: destination and payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// The node the message is addressed to. Must be an in-mesh coordinate
    /// adjacent (8-neighborhood) to the sender; the engine enforces mesh
    /// membership and debug-asserts adjacency so protocols cannot cheat with
    /// long-distance hops.
    pub to: Coord,
    /// Protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Convenience constructor.
    pub fn new(to: Coord, payload: M) -> Self {
        Envelope { to, payload }
    }
}

/// A distributed protocol expressed as per-node reactions to delivered
/// messages.
pub trait MessageAutomaton {
    /// Per-node protocol state.
    type State: Clone;
    /// Message payload type.
    type Msg: Clone;

    /// Initial state of node `c`, plus any messages it spontaneously sends in
    /// round 1 (used by protocol initiators).
    fn init(&self, c: Coord) -> (Self::State, Vec<Envelope<Self::Msg>>);

    /// Processes the inbox delivered to node `c` this round. `inbox` is
    /// sorted by sender coordinate for determinism. Returns the messages to
    /// send; they will be delivered next round.
    fn on_deliver(
        &self,
        c: Coord,
        state: &mut Self::State,
        inbox: &[(Coord, Self::Msg)],
    ) -> Vec<Envelope<Self::Msg>>;
}

/// Executes a [`MessageAutomaton`] until quiescence (no messages in flight).
pub struct MessageEngine<'m, A: MessageAutomaton> {
    mesh: &'m Mesh2D,
    automaton: A,
    states: BTreeMap<Coord, A::State>,
    /// Messages to be delivered in the next round, keyed by destination; the
    /// inner vector keeps (sender, payload) pairs.
    in_flight: BTreeMap<Coord, Vec<(Coord, A::Msg)>>,
    stats: RoundStats,
}

impl<'m, A: MessageAutomaton> MessageEngine<'m, A> {
    /// Initialises every node and collects the initiators' first messages.
    pub fn new(mesh: &'m Mesh2D, automaton: A) -> Self {
        let mut states = BTreeMap::new();
        let mut in_flight: BTreeMap<Coord, Vec<(Coord, A::Msg)>> = BTreeMap::new();
        for c in mesh.nodes() {
            let (state, outgoing) = automaton.init(c);
            states.insert(c, state);
            for env in outgoing {
                debug_assert!(
                    c.is_adjacent8(env.to) || c == env.to,
                    "initial message from {c} to non-adjacent {}",
                    env.to
                );
                if mesh.contains(env.to) {
                    in_flight.entry(env.to).or_default().push((c, env.payload));
                }
            }
        }
        MessageEngine {
            mesh,
            automaton,
            states,
            in_flight,
            stats: RoundStats::quiescent(),
        }
    }

    /// Executes one round: deliver all in-flight messages, collect new ones.
    /// Returns `false` when the system was already quiescent.
    pub fn step(&mut self) -> bool {
        if self.in_flight.is_empty() {
            return false;
        }
        let deliveries = std::mem::take(&mut self.in_flight);
        self.stats.rounds += 1;
        for (dest, mut inbox) in deliveries {
            inbox.sort_by_key(|(sender, _)| *sender);
            self.stats.events += inbox.len() as u64;
            let state = self
                .states
                .get_mut(&dest)
                .expect("message delivered to node outside the mesh");
            let outgoing = self.automaton.on_deliver(dest, state, &inbox);
            for env in outgoing {
                debug_assert!(
                    dest.is_adjacent8(env.to) || dest == env.to,
                    "message from {dest} to non-adjacent {}",
                    env.to
                );
                if self.mesh.contains(env.to) {
                    self.in_flight
                        .entry(env.to)
                        .or_default()
                        .push((dest, env.payload));
                }
            }
        }
        true
    }

    /// Runs rounds until quiescence or until `max_rounds` is hit.
    pub fn run(&mut self, max_rounds: u32) -> RoundStats {
        while self.stats.rounds < max_rounds {
            if !self.step() {
                self.stats.converged = true;
                crate::stats::export_message(&self.stats);
                return self.stats;
            }
        }
        self.stats.converged = self.in_flight.is_empty();
        crate::stats::export_message(&self.stats);
        self.stats
    }

    /// The final (or current) state of node `c`.
    pub fn state(&self, c: Coord) -> &A::State {
        &self.states[&c]
    }

    /// Iterates over all node states.
    pub fn states(&self) -> impl Iterator<Item = (Coord, &A::State)> + '_ {
        self.states.iter().map(|(c, s)| (*c, s))
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> RoundStats {
        self.stats
    }

    /// The mesh the protocol runs on.
    pub fn mesh(&self) -> &Mesh2D {
        self.mesh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token that travels east from (0, 0) to the end of the row, counting
    /// hops in each node it visits.
    struct EastToken;

    #[derive(Clone, Default)]
    struct Visit {
        visited_at_round: Option<u32>,
    }

    impl MessageAutomaton for EastToken {
        type State = Visit;
        type Msg = u32; // hop count

        fn init(&self, c: Coord) -> (Visit, Vec<Envelope<u32>>) {
            if c == Coord::new(0, 0) {
                (
                    Visit {
                        visited_at_round: Some(0),
                    },
                    vec![Envelope::new(Coord::new(1, 0), 1)],
                )
            } else {
                (Visit::default(), vec![])
            }
        }

        fn on_deliver(
            &self,
            c: Coord,
            state: &mut Visit,
            inbox: &[(Coord, u32)],
        ) -> Vec<Envelope<u32>> {
            let &(_, hops) = inbox.first().expect("delivered with empty inbox");
            state.visited_at_round = Some(hops);
            vec![Envelope::new(c.offset(1, 0), hops + 1)]
        }
    }

    #[test]
    fn token_crosses_row_in_width_minus_one_rounds() {
        let mesh = Mesh2D::mesh(6, 2);
        let mut engine = MessageEngine::new(&mesh, EastToken);
        let stats = engine.run(100);
        assert!(stats.converged);
        // 5 hops to reach (5, 0); the 6th round delivers to (6,0) which is
        // outside the mesh and therefore dropped at send time, so rounds = 5.
        assert_eq!(stats.rounds, 5);
        for x in 0..6 {
            assert_eq!(
                engine.state(Coord::new(x, 0)).visited_at_round,
                Some(x as u32),
                "node ({x},0)"
            );
        }
        assert_eq!(engine.state(Coord::new(3, 1)).visited_at_round, None);
    }

    #[test]
    fn quiescent_protocol_runs_zero_rounds() {
        struct Silent;
        impl MessageAutomaton for Silent {
            type State = ();
            type Msg = ();
            fn init(&self, _c: Coord) -> ((), Vec<Envelope<()>>) {
                ((), vec![])
            }
            fn on_deliver(&self, _c: Coord, _s: &mut (), _i: &[(Coord, ())]) -> Vec<Envelope<()>> {
                vec![]
            }
        }
        let mesh = Mesh2D::square(4);
        let mut engine = MessageEngine::new(&mesh, Silent);
        let stats = engine.run(10);
        assert_eq!(stats.rounds, 0);
        assert!(stats.converged);
    }

    #[test]
    fn round_limit_stops_execution() {
        let mesh = Mesh2D::mesh(10, 1);
        let mut engine = MessageEngine::new(&mesh, EastToken);
        let stats = engine.run(3);
        assert_eq!(stats.rounds, 3);
        assert!(!stats.converged);
    }

    #[test]
    fn events_count_deliveries() {
        let mesh = Mesh2D::mesh(4, 1);
        let mut engine = MessageEngine::new(&mesh, EastToken);
        let stats = engine.run(100);
        // deliveries at (1,0), (2,0), (3,0)
        assert_eq!(stats.events, 3);
    }
}
