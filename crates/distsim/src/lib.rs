//! # distsim — synchronous round-based distributed simulation
//!
//! Every construction in the paper is evaluated by "the number of rounds of
//! information exchanges and updates between neighbors" (Figure 11). This
//! crate provides the substrate on which those rounds are executed and
//! counted:
//!
//! * [`LocalRuleAutomaton`] + [`run_local_rule`] — the *neighborhood rule*
//!   model: in each round every node reads its neighbors' current states and
//!   computes its next state. Labelling scheme 1 (faulty-block growing) and
//!   labelling scheme 2 (polygon shrinking) are local rules.
//! * [`MessageAutomaton`] + [`MessageEngine`] — the *message passing* model:
//!   nodes hold state and exchange explicit messages delivered one hop per
//!   round. The distributed boundary-ring construction and the concave
//!   section notification of Section 3.2 are message protocols.
//! * [`RoundStats`] — round / message / state-change accounting shared by
//!   both engines.
//! * [`parallel`] — optional crossbeam-based parallel stepping of local
//!   rules, used by the ablation benchmarks.
//!
//! Both engines are deterministic: node updates are applied synchronously and
//! message inboxes are sorted, so a given protocol and fault pattern always
//! produces the same result and the same round count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod message;
pub mod parallel;
pub mod stats;

pub use engine::{run_local_rule, run_local_rule_with_limit, LocalRuleAutomaton};
pub use message::{Envelope, MessageAutomaton, MessageEngine};
pub use stats::RoundStats;
