//! Parallel stepping of local rules with crossbeam scoped threads.
//!
//! The synchronous semantics of [`run_local_rule`](crate::run_local_rule)
//! make each round embarrassingly parallel: every node's next state depends
//! only on the *previous* round's states. This module computes each round's
//! next states by splitting the node index space across worker threads. The
//! results are bit-for-bit identical to the sequential engine (verified by
//! tests and by the `ablation_parallel` benchmark), only faster on large
//! meshes.

use crate::{LocalRuleAutomaton, RoundStats};
use mesh2d::{Coord, Grid, Mesh2D};

/// Runs `automaton` to a fixpoint like [`crate::run_local_rule`], but
/// computes each round with `threads` worker threads.
///
/// `threads == 0` or `threads == 1` falls back to the sequential engine.
pub fn run_local_rule_parallel<A>(
    mesh: &Mesh2D,
    automaton: &A,
    threads: usize,
) -> (Grid<A::State>, RoundStats)
where
    A: LocalRuleAutomaton + Sync,
    A::State: Send + Sync,
{
    if threads <= 1 {
        return crate::run_local_rule(mesh, automaton);
    }

    let width = mesh.width() as u32;
    let height = mesh.height() as u32;
    let mut states = Grid::from_fn(width, height, |c| automaton.init(c));
    let mut stats = RoundStats::quiescent();
    let node_count = mesh.node_count();

    loop {
        // Compute all next states in parallel over row bands.
        let next: Vec<Option<A::State>> = {
            let states_ref = &states;
            let mut results: Vec<Option<A::State>> = vec![None; node_count];
            let chunk = node_count.div_ceil(threads);
            let chunks: Vec<&mut [Option<A::State>]> = results.chunks_mut(chunk).collect();
            crossbeam::scope(|scope| {
                for (band, out) in chunks.into_iter().enumerate() {
                    let start = band * chunk;
                    scope.spawn(move |_| {
                        for (offset, slot) in out.iter_mut().enumerate() {
                            let index = start + offset;
                            let c = mesh.coord_of(index);
                            let neighbors: Vec<(Coord, &A::State)> =
                                mesh.neighbors4(c).map(|n| (n, &states_ref[n])).collect();
                            let next = automaton.step(c, &states_ref[c], &neighbors);
                            if next != states_ref[c] {
                                *slot = Some(next);
                            }
                        }
                    });
                }
            })
            .expect("parallel round worker panicked");
            results
        };

        let mut changed = 0u64;
        for (index, slot) in next.into_iter().enumerate() {
            if let Some(state) = slot {
                states[mesh.coord_of(index)] = state;
                changed += 1;
            }
        }
        if changed == 0 {
            break;
        }
        stats.rounds += 1;
        stats.events += changed;
    }
    (states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_local_rule;

    struct Flood {
        source: Coord,
    }

    impl LocalRuleAutomaton for Flood {
        type State = bool;
        fn init(&self, c: Coord) -> bool {
            c == self.source
        }
        fn step(&self, _c: Coord, current: &bool, neighbors: &[(Coord, &bool)]) -> bool {
            *current || neighbors.iter().any(|(_, &s)| s)
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mesh = Mesh2D::square(17);
        let rule = Flood {
            source: Coord::new(4, 9),
        };
        let (seq_states, seq_stats) = run_local_rule(&mesh, &rule);
        for threads in [2, 3, 4, 8] {
            let (par_states, par_stats) = run_local_rule_parallel(&mesh, &rule, threads);
            assert_eq!(par_states, seq_states, "threads={threads}");
            assert_eq!(par_stats.rounds, seq_stats.rounds, "threads={threads}");
            assert_eq!(par_stats.events, seq_stats.events, "threads={threads}");
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let mesh = Mesh2D::square(5);
        let rule = Flood {
            source: Coord::new(0, 0),
        };
        let (a, sa) = run_local_rule_parallel(&mesh, &rule, 1);
        let (b, sb) = run_local_rule(&mesh, &rule);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let mesh = Mesh2D::square(2);
        let rule = Flood {
            source: Coord::new(0, 0),
        };
        let (states, stats) = run_local_rule_parallel(&mesh, &rule, 64);
        assert!(stats.converged || stats.rounds > 0);
        assert!(mesh.nodes().all(|c| states[c]));
    }
}
