//! Round and message accounting.
//!
//! [`RoundStats`] is the *per-execution* result value (it is what the
//! sweeps serialize and what Figure 11 plots), so it stays. What this
//! module no longer does is keep its own process-wide totals: those now
//! live in the shared [`mocp_obs`] registry, exported by the engines
//! through the crate-private `export_local_rule` / `export_message`
//! helpers below under the
//! `distsim.local_rule.*` and `distsim.message.*` names. The engines'
//! public accessors (`MessageEngine::stats`, the returned `RoundStats`)
//! are thin wrappers over that same accounting.

use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Statistics produced by one protocol execution.
///
/// `rounds` is the quantity plotted in Figure 11 of the paper: how many
/// synchronous rounds of neighbor information exchange were needed before the
/// construction stabilised.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct RoundStats {
    /// Number of synchronous rounds executed (excluding the final quiescent
    /// round in which nothing changed).
    pub rounds: u32,
    /// Total number of point-to-point messages delivered (message engine) or
    /// node state changes applied (local-rule engine).
    pub events: u64,
    /// True when the execution stopped because it reached a fixpoint /
    /// quiescence rather than a round limit.
    pub converged: bool,
}

impl RoundStats {
    /// A converged zero-round execution (nothing to do).
    pub fn quiescent() -> Self {
        RoundStats {
            rounds: 0,
            events: 0,
            converged: true,
        }
    }

    /// Sequential composition of two protocol phases: rounds and events add,
    /// convergence requires both phases to have converged.
    pub fn then(self, later: RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds + later.rounds,
            events: self.events + later.events,
            converged: self.converged && later.converged,
        }
    }

    /// Parallel composition of independent executions (e.g. one per faulty
    /// component running simultaneously in disjoint parts of the mesh): the
    /// network-wide round count is the maximum, events add.
    pub fn in_parallel_with(self, other: RoundStats) -> RoundStats {
        RoundStats {
            rounds: self.rounds.max(other.rounds),
            events: self.events + other.events,
            converged: self.converged && other.converged,
        }
    }
}

/// Exports one local-rule engine execution into the global metric
/// registry (`distsim.local_rule.*`).
pub(crate) fn export_local_rule(stats: &RoundStats) {
    mocp_obs::counter!("distsim.local_rule.runs").inc();
    mocp_obs::counter!("distsim.local_rule.rounds").add(stats.rounds as u64);
    mocp_obs::counter!("distsim.local_rule.events").add(stats.events);
    mocp_obs::histogram!("distsim.local_rule.rounds_per_run").record(stats.rounds as u64);
    if !stats.converged {
        mocp_obs::counter!("distsim.local_rule.round_limit_hits").inc();
    }
}

/// Exports one message-engine execution into the global metric registry
/// (`distsim.message.*`).
pub(crate) fn export_message(stats: &RoundStats) {
    mocp_obs::counter!("distsim.message.runs").inc();
    mocp_obs::counter!("distsim.message.rounds").add(stats.rounds as u64);
    mocp_obs::counter!("distsim.message.events").add(stats.events);
    mocp_obs::histogram!("distsim.message.rounds_per_run").record(stats.rounds as u64);
    if !stats.converged {
        mocp_obs::counter!("distsim.message.round_limit_hits").inc();
    }
}

impl Add for RoundStats {
    type Output = RoundStats;
    fn add(self, rhs: RoundStats) -> RoundStats {
        self.then(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_is_identity_for_then() {
        let s = RoundStats {
            rounds: 5,
            events: 17,
            converged: true,
        };
        assert_eq!(RoundStats::quiescent().then(s), s);
        assert_eq!(s.then(RoundStats::quiescent()), s);
    }

    #[test]
    fn sequential_composition_adds_rounds() {
        let a = RoundStats {
            rounds: 3,
            events: 10,
            converged: true,
        };
        let b = RoundStats {
            rounds: 4,
            events: 5,
            converged: false,
        };
        let c = a.then(b);
        assert_eq!(c.rounds, 7);
        assert_eq!(c.events, 15);
        assert!(!c.converged);
        assert_eq!(a + b, c);
    }

    #[test]
    fn parallel_composition_takes_max_rounds() {
        let a = RoundStats {
            rounds: 3,
            events: 10,
            converged: true,
        };
        let b = RoundStats {
            rounds: 9,
            events: 1,
            converged: true,
        };
        let c = a.in_parallel_with(b);
        assert_eq!(c.rounds, 9);
        assert_eq!(c.events, 11);
        assert!(c.converged);
    }
}
