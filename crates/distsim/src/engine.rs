//! The local-rule engine: synchronous neighborhood updates to a fixpoint.
//!
//! A *local rule* computes a node's next state from its own state and the
//! current states of its mesh (4-)neighbors. All nodes update synchronously;
//! one sweep over the network is one **round**, matching the paper's
//! "rounds of information exchanges and updates between neighbors". Both
//! labelling schemes of Section 2.3 are local rules and are executed on this
//! engine (see the `fblock` crate).

use crate::RoundStats;
use mesh2d::{Coord, Grid, Mesh2D};

/// A protocol in which every node repeatedly recomputes its state from its
/// 4-neighborhood.
pub trait LocalRuleAutomaton {
    /// Per-node protocol state.
    type State: Clone + PartialEq;

    /// The initial state of node `c`.
    fn init(&self, c: Coord) -> Self::State;

    /// Computes the next state of node `c` given its current state and the
    /// current states of its in-mesh 4-neighbors.
    fn step(
        &self,
        c: Coord,
        current: &Self::State,
        neighbors: &[(Coord, &Self::State)],
    ) -> Self::State;
}

/// Runs `automaton` on `mesh` until a fixpoint is reached.
///
/// Returns the final per-node states and the round statistics. The fixpoint
/// is guaranteed to be reached for monotone rules (both labelling schemes are
/// monotone), but callers that are unsure can use
/// [`run_local_rule_with_limit`].
pub fn run_local_rule<A: LocalRuleAutomaton>(
    mesh: &Mesh2D,
    automaton: &A,
) -> (Grid<A::State>, RoundStats) {
    run_local_rule_with_limit(mesh, automaton, u32::MAX)
}

/// Runs `automaton` on `mesh` until a fixpoint is reached or `max_rounds`
/// rounds have been executed.
pub fn run_local_rule_with_limit<A: LocalRuleAutomaton>(
    mesh: &Mesh2D,
    automaton: &A,
    max_rounds: u32,
) -> (Grid<A::State>, RoundStats) {
    let mut states = Grid::from_fn(mesh.width() as u32, mesh.height() as u32, |c| {
        automaton.init(c)
    });
    let mut stats = RoundStats::quiescent();

    let mut neighbor_buf: Vec<(Coord, A::State)> = Vec::with_capacity(4);
    loop {
        if stats.rounds >= max_rounds {
            stats.converged = false;
            break;
        }
        let mut changes: Vec<(Coord, A::State)> = Vec::new();
        for c in mesh.nodes() {
            neighbor_buf.clear();
            for n in mesh.neighbors4(c) {
                neighbor_buf.push((n, states[n].clone()));
            }
            let borrowed: Vec<(Coord, &A::State)> =
                neighbor_buf.iter().map(|(n, s)| (*n, s)).collect();
            let next = automaton.step(c, &states[c], &borrowed);
            if next != states[c] {
                changes.push((c, next));
            }
        }
        if changes.is_empty() {
            break;
        }
        stats.rounds += 1;
        stats.events += changes.len() as u64;
        for (c, s) in changes {
            states[c] = s;
        }
    }
    crate::stats::export_local_rule(&stats);
    (states, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy rule: a node becomes "hot" when any neighbor is hot. Starting
    /// from a single hot node this floods the mesh, one Manhattan-distance
    /// ring per round — an easy way to validate round counting.
    struct Flood {
        source: Coord,
    }

    impl LocalRuleAutomaton for Flood {
        type State = bool;
        fn init(&self, c: Coord) -> bool {
            c == self.source
        }
        fn step(&self, _c: Coord, current: &bool, neighbors: &[(Coord, &bool)]) -> bool {
            *current || neighbors.iter().any(|(_, &s)| s)
        }
    }

    #[test]
    fn flood_round_count_equals_eccentricity() {
        let mesh = Mesh2D::square(6);
        let (states, stats) = run_local_rule(
            &mesh,
            &Flood {
                source: Coord::new(0, 0),
            },
        );
        assert!(stats.converged);
        // the farthest node is at Manhattan distance 10
        assert_eq!(stats.rounds, 10);
        assert!(mesh.nodes().all(|c| states[c]));
    }

    #[test]
    fn flood_from_center_is_faster() {
        let mesh = Mesh2D::square(7);
        let (_, corner) = run_local_rule(
            &mesh,
            &Flood {
                source: Coord::new(0, 0),
            },
        );
        let (_, center) = run_local_rule(
            &mesh,
            &Flood {
                source: Coord::new(3, 3),
            },
        );
        assert!(center.rounds < corner.rounds);
        assert_eq!(center.rounds, 6);
    }

    #[test]
    fn already_stable_rule_takes_zero_rounds() {
        struct Constant;
        impl LocalRuleAutomaton for Constant {
            type State = u8;
            fn init(&self, _c: Coord) -> u8 {
                42
            }
            fn step(&self, _c: Coord, current: &u8, _n: &[(Coord, &u8)]) -> u8 {
                *current
            }
        }
        let mesh = Mesh2D::square(4);
        let (states, stats) = run_local_rule(&mesh, &Constant);
        assert_eq!(stats.rounds, 0);
        assert!(stats.converged);
        assert_eq!(stats.events, 0);
        assert!(mesh.nodes().all(|c| states[c] == 42));
    }

    #[test]
    fn round_limit_reports_non_convergence() {
        let mesh = Mesh2D::square(8);
        let (_, stats) = run_local_rule_with_limit(
            &mesh,
            &Flood {
                source: Coord::new(0, 0),
            },
            3,
        );
        assert_eq!(stats.rounds, 3);
        assert!(!stats.converged);
    }

    #[test]
    fn events_count_state_changes() {
        let mesh = Mesh2D::square(3);
        let (_, stats) = run_local_rule(
            &mesh,
            &Flood {
                source: Coord::new(1, 1),
            },
        );
        // every node except the source changes exactly once
        assert_eq!(stats.events, (mesh.node_count() - 1) as u64);
    }

    #[test]
    fn torus_flood_wraps_around() {
        let mesh = Mesh2D::torus(6, 6);
        let (_, stats) = run_local_rule(
            &mesh,
            &Flood {
                source: Coord::new(0, 0),
            },
        );
        // torus diameter is 6 for a 6x6 torus
        assert_eq!(stats.rounds, 6);
    }
}
