//! Fault sets: which nodes of a mesh have failed.
//!
//! A [`FaultSet`] keeps both a dense membership grid (for O(1) queries inside
//! the labelling fixpoints) and the insertion order (the paper's simulation
//! adds faults sequentially, and the clustered fault model depends on that
//! order). [`FaultEvent`] is the vocabulary of *changes* to a fault set —
//! the unit consumed by streaming fault-monitoring engines.

use crate::{Coord, Grid, Mesh2D, Region};
use serde::{Deserialize, Serialize};

/// One change to the fault population of a mesh.
///
/// The paper's evaluation only ever adds faults ("all faults are
/// sequentially added to the network"); streaming consumers also understand
/// the reverse transition, which models node recovery (repair) and lets an
/// injection sequence be rewound for bisection debugging.
///
/// The node address type is generic so the same event vocabulary serves
/// every mesh dimension (the generic fault injector in `faultgen` emits
/// `FaultEvent<T::Coord>`); it defaults to the 2-D [`Coord`], so 2-D code
/// reads `FaultEvent` unchanged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FaultEvent<C = Coord> {
    /// Node `.0` fails.
    Inject(C),
    /// Node `.0` recovers.
    Repair(C),
}

impl<C: Copy> FaultEvent<C> {
    /// The node the event concerns.
    #[inline]
    pub fn node(self) -> C {
        match self {
            FaultEvent::Inject(c) | FaultEvent::Repair(c) => c,
        }
    }

    /// The event undoing this one (inject ⟷ repair of the same node).
    #[inline]
    pub fn inverse(self) -> FaultEvent<C> {
        match self {
            FaultEvent::Inject(c) => FaultEvent::Repair(c),
            FaultEvent::Repair(c) => FaultEvent::Inject(c),
        }
    }
}

/// The set of faulty nodes of a particular mesh.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FaultSet {
    mesh: Mesh2D,
    faulty: Grid<bool>,
    order: Vec<Coord>,
}

impl FaultSet {
    /// An empty fault set for `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        FaultSet {
            mesh,
            faulty: Grid::for_mesh(&mesh, false),
            order: Vec::new(),
        }
    }

    /// Builds a fault set from a list of coordinates (duplicates and
    /// out-of-mesh coordinates are ignored).
    pub fn from_coords(mesh: Mesh2D, coords: impl IntoIterator<Item = Coord>) -> Self {
        let mut fs = Self::new(mesh);
        for c in coords {
            fs.insert(c);
        }
        fs
    }

    /// The mesh the faults live in.
    pub fn mesh(&self) -> &Mesh2D {
        &self.mesh
    }

    /// Marks `c` faulty. Returns `true` when the node was newly marked,
    /// `false` for duplicates or coordinates outside the mesh.
    pub fn insert(&mut self, c: Coord) -> bool {
        if !self.mesh.contains(c) || self.faulty[c] {
            return false;
        }
        self.faulty[c] = true;
        self.order.push(c);
        true
    }

    /// Clears the fault at `c`, modelling node recovery. Returns `true` when
    /// the node was faulty. O(1) when `c` is the most recently inserted fault
    /// (the common case when rewinding a sequence), O(n) otherwise.
    pub fn remove(&mut self, c: Coord) -> bool {
        if !self.is_faulty(c) {
            return false;
        }
        self.faulty[c] = false;
        if self.order.last() == Some(&c) {
            self.order.pop();
        } else {
            let pos = self
                .order
                .iter()
                .rposition(|&o| o == c)
                .expect("membership grid and insertion order agree");
            self.order.remove(pos);
        }
        true
    }

    /// Applies one event: inserts for [`FaultEvent::Inject`], removes for
    /// [`FaultEvent::Repair`]. Returns `true` when the set changed.
    pub fn apply(&mut self, event: FaultEvent) -> bool {
        match event {
            FaultEvent::Inject(c) => self.insert(c),
            FaultEvent::Repair(c) => self.remove(c),
        }
    }

    /// True when node `c` is faulty. Out-of-mesh coordinates are healthy.
    #[inline]
    pub fn is_faulty(&self, c: Coord) -> bool {
        self.faulty.get(c).copied().unwrap_or(false)
    }

    /// Number of faulty nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Faulty nodes in insertion order.
    pub fn in_insertion_order(&self) -> &[Coord] {
        &self.order
    }

    /// The faulty nodes as a [`Region`].
    pub fn region(&self) -> Region {
        Region::from_coords(self.order.iter().copied())
    }

    /// Fraction of the mesh that has failed.
    pub fn fault_rate(&self) -> f64 {
        self.len() as f64 / self.mesh.node_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mesh = Mesh2D::square(5);
        let mut fs = FaultSet::new(mesh);
        assert!(fs.is_empty());
        assert!(fs.insert(Coord::new(2, 2)));
        assert!(!fs.insert(Coord::new(2, 2)), "duplicate insert rejected");
        assert!(!fs.insert(Coord::new(9, 9)), "out-of-mesh insert rejected");
        assert!(fs.is_faulty(Coord::new(2, 2)));
        assert!(!fs.is_faulty(Coord::new(0, 0)));
        assert!(!fs.is_faulty(Coord::new(-3, 0)));
        assert_eq!(fs.len(), 1);
    }

    #[test]
    fn insertion_order_preserved() {
        let mesh = Mesh2D::square(5);
        let coords = [Coord::new(4, 4), Coord::new(0, 0), Coord::new(2, 3)];
        let fs = FaultSet::from_coords(mesh, coords);
        assert_eq!(fs.in_insertion_order(), &coords);
        assert_eq!(fs.region().len(), 3);
    }

    #[test]
    fn remove_clears_grid_and_order() {
        let mesh = Mesh2D::square(5);
        let mut fs = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
        assert!(fs.remove(Coord::new(2, 2)), "last fault is O(1) to remove");
        assert!(!fs.is_faulty(Coord::new(2, 2)));
        assert_eq!(fs.in_insertion_order(), &[Coord::new(1, 1)]);
        assert!(!fs.remove(Coord::new(2, 2)), "double remove rejected");
        assert!(fs.insert(Coord::new(2, 2)), "removed nodes can fail again");
    }

    #[test]
    fn remove_from_middle_preserves_order() {
        let mesh = Mesh2D::square(5);
        let coords = [Coord::new(0, 0), Coord::new(1, 1), Coord::new(2, 2)];
        let mut fs = FaultSet::from_coords(mesh, coords);
        assert!(fs.remove(Coord::new(1, 1)));
        assert_eq!(
            fs.in_insertion_order(),
            &[Coord::new(0, 0), Coord::new(2, 2)]
        );
    }

    #[test]
    fn events_round_trip() {
        let mesh = Mesh2D::square(5);
        let mut fs = FaultSet::new(mesh);
        let inject = FaultEvent::Inject(Coord::new(3, 3));
        assert_eq!(inject.node(), Coord::new(3, 3));
        assert!(fs.apply(inject));
        assert!(fs.is_faulty(Coord::new(3, 3)));
        assert!(fs.apply(inject.inverse()));
        assert!(fs.is_empty());
        assert_eq!(inject.inverse().inverse(), inject);
    }

    #[test]
    fn fault_rate() {
        let mesh = Mesh2D::square(10);
        let fs = FaultSet::from_coords(mesh, (0..5).map(|i| Coord::new(i, 0)));
        assert!((fs.fault_rate() - 0.05).abs() < 1e-12);
    }
}
