//! # mesh2d — 2-D mesh / torus substrate
//!
//! This crate provides the interconnection-network substrate used throughout
//! the reproduction of *Wu & Jiang, "On Constructing the Minimum Orthogonal
//! Convex Polygon in 2-D Faulty Meshes" (IPDPS 2004)*:
//!
//! * [`Coord`] — node addresses `(x, y)` in a 2-D mesh,
//! * [`Mesh2D`] — the topology itself (mesh or torus), neighborhood queries,
//!   distances and diameter,
//! * [`Grid`] — dense per-node storage,
//! * [`Rect`] — axis-aligned rectangles (faulty blocks, bounding boxes),
//! * [`Region`] — arbitrary node sets with connectivity and orthogonal
//!   convexity queries,
//! * [`NodeStatus`] and the labelling vocabulary (`Health`, `Safety`,
//!   `Activation`) from the paper's labelling schemes,
//! * [`render`] — ASCII rendering used by the examples.
//!
//! The crate is dependency-light by design: every algorithm in the upper
//! layers (`fblock`, `mocp-core`, `meshroute`) operates purely on these
//! types.
//!
//! ## Quick example
//!
//! ```
//! use mesh2d::{Coord, Mesh2D, Region};
//!
//! let mesh = Mesh2D::mesh(8, 8);
//! let faults = Region::from_coords([Coord::new(2, 4), Coord::new(3, 4), Coord::new(4, 3)]);
//! assert!(faults.is_orthogonally_convex());
//! assert_eq!(mesh.neighbors4(Coord::new(0, 0)).count(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitgrid;
pub mod coord;
pub mod direction;
pub mod fault;
pub mod grid;
pub mod rect;
pub mod region;
pub mod render;
pub mod status;
pub mod topology;

pub use bitgrid::{BitGrid, BitScratch};
pub use coord::Coord;
pub use direction::{Direction, Turn};
pub use fault::{FaultEvent, FaultSet};
pub use grid::Grid;
pub use rect::Rect;
pub use region::{Connectivity, Region};
pub use status::{Activation, Health, NodeStatus, Safety, StatusDelta, StatusMap};
pub use topology::{Mesh2D, Topology};
