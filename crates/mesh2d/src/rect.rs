//! Axis-aligned rectangles on the mesh.
//!
//! Rectangles appear in two roles in the paper: the *rectangular faulty
//! blocks* of the classical fault model, and the *virtual faulty blocks*
//! (per-component bounding boxes) used by the centralized minimum-polygon
//! construction. A rectangle is represented by two opposite corners
//! `[(min_x, min_y), (max_x, max_y)]`, both inclusive, exactly as in the
//! paper.

use crate::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An inclusive axis-aligned rectangle `[(min_x, min_y), (max_x, max_y)]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    min: Coord,
    max: Coord,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (in any order).
    pub fn new(a: Coord, b: Coord) -> Self {
        Rect {
            min: Coord::new(a.x.min(b.x), a.y.min(b.y)),
            max: Coord::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A 1×1 rectangle containing a single node.
    pub fn single(c: Coord) -> Self {
        Rect { min: c, max: c }
    }

    /// The bounding box of a non-empty set of coordinates, or `None` when the
    /// iterator is empty.
    pub fn bounding(coords: impl IntoIterator<Item = Coord>) -> Option<Self> {
        let mut it = coords.into_iter();
        let first = it.next()?;
        let mut r = Rect::single(first);
        for c in it {
            r = r.expanded_to(c);
        }
        Some(r)
    }

    /// The smallest rectangle containing both `self` and `c`.
    pub fn expanded_to(self, c: Coord) -> Self {
        Rect {
            min: Coord::new(self.min.x.min(c.x), self.min.y.min(c.y)),
            max: Coord::new(self.max.x.max(c.x), self.max.y.max(c.y)),
        }
    }

    /// South-west corner `(min_x, min_y)`.
    #[inline]
    pub fn min(&self) -> Coord {
        self.min
    }

    /// North-east corner `(max_x, max_y)`.
    #[inline]
    pub fn max(&self) -> Coord {
        self.max
    }

    /// The four corners `(min_x,min_y)`, `(min_x,max_y)`, `(max_x,min_y)`,
    /// `(max_x,max_y)` — the corner set named explicitly for virtual faulty
    /// blocks in the paper.
    pub fn corners(&self) -> [Coord; 4] {
        [
            Coord::new(self.min.x, self.min.y),
            Coord::new(self.min.x, self.max.y),
            Coord::new(self.max.x, self.min.y),
            Coord::new(self.max.x, self.max.y),
        ]
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> u32 {
        (self.max.x - self.min.x + 1) as u32
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> u32 {
        (self.max.y - self.min.y + 1) as u32
    }

    /// Number of nodes inside the rectangle.
    #[inline]
    pub fn area(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// True when `c` lies inside the rectangle (inclusive).
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// True when the other rectangle lies entirely within this one.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// True when the two rectangles share at least one node.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Coord::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Coord::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Iterates over every node in the rectangle, row-major.
    pub fn nodes(&self) -> impl Iterator<Item = Coord> {
        let (minx, maxx, miny, maxy) = (self.min.x, self.max.x, self.min.y, self.max.y);
        (miny..=maxy).flat_map(move |y| (minx..=maxx).map(move |x| Coord::new(x, y)))
    }

    /// True when `c` lies on the rectangle's border (its boundary ring).
    pub fn on_boundary(&self, c: Coord) -> bool {
        self.contains(c)
            && (c.x == self.min.x || c.x == self.max.x || c.y == self.min.y || c.y == self.max.y)
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}; {:?}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalised() {
        let r = Rect::new(Coord::new(5, 1), Coord::new(2, 4));
        assert_eq!(r.min(), Coord::new(2, 1));
        assert_eq!(r.max(), Coord::new(5, 4));
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 4);
        assert_eq!(r.area(), 16);
    }

    #[test]
    fn single_node_rect() {
        let r = Rect::single(Coord::new(3, 3));
        assert_eq!(r.area(), 1);
        assert!(r.contains(Coord::new(3, 3)));
        assert!(!r.contains(Coord::new(3, 4)));
        assert_eq!(r.nodes().count(), 1);
    }

    #[test]
    fn bounding_box_of_points() {
        let r = Rect::bounding([Coord::new(2, 4), Coord::new(3, 4), Coord::new(4, 3)]).unwrap();
        assert_eq!(r.min(), Coord::new(2, 3));
        assert_eq!(r.max(), Coord::new(4, 4));
        assert!(Rect::bounding(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_and_intersects() {
        let a = Rect::new(Coord::new(0, 0), Coord::new(3, 3));
        let b = Rect::new(Coord::new(3, 3), Coord::new(5, 5));
        let c = Rect::new(Coord::new(4, 0), Coord::new(5, 2));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(a.contains_rect(&Rect::new(Coord::new(1, 1), Coord::new(2, 2))));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(Coord::new(0, 0), Coord::new(1, 1));
        let b = Rect::new(Coord::new(4, 5), Coord::new(6, 6));
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u.area(), 7 * 7);
    }

    #[test]
    fn nodes_enumeration_and_boundary() {
        let r = Rect::new(Coord::new(1, 1), Coord::new(3, 2));
        let all: Vec<Coord> = r.nodes().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], Coord::new(1, 1));
        assert_eq!(all[5], Coord::new(3, 2));
        // every node of a 3x2 rectangle is on its boundary
        assert!(all.iter().all(|&c| r.on_boundary(c)));
        let big = Rect::new(Coord::new(0, 0), Coord::new(4, 4));
        assert!(!big.on_boundary(Coord::new(2, 2)));
        assert!(big.on_boundary(Coord::new(0, 3)));
    }

    #[test]
    fn four_corners_match_paper_order() {
        let r = Rect::new(Coord::new(1, 2), Coord::new(4, 6));
        assert_eq!(
            r.corners(),
            [
                Coord::new(1, 2),
                Coord::new(1, 6),
                Coord::new(4, 2),
                Coord::new(4, 6)
            ]
        );
    }

    #[test]
    fn expanded_to_grows_monotonically() {
        let mut r = Rect::single(Coord::new(2, 2));
        r = r.expanded_to(Coord::new(0, 5));
        r = r.expanded_to(Coord::new(4, 1));
        assert_eq!(r.min(), Coord::new(0, 1));
        assert_eq!(r.max(), Coord::new(4, 5));
    }
}
