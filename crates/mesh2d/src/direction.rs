//! Cardinal directions and turns on the 2-D mesh.
//!
//! The routing layer (extended e-cube, Section 2.2 of the paper) and the
//! distributed boundary-ring construction (Section 3.2) both reason about
//! clockwise / counterclockwise traversal around fault regions, which this
//! module makes explicit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four cardinal directions on the mesh.
///
/// `East` increases `x`, `North` increases `y` — i.e. the mesh is drawn with
/// the origin at the south-west corner, matching the figures in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Towards larger `x`.
    East,
    /// Towards smaller `x`.
    West,
    /// Towards larger `y`.
    North,
    /// Towards smaller `y`.
    South,
}

/// A relative turn used when walking around a fault-region boundary.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Turn {
    /// Rotate 90° clockwise.
    Clockwise,
    /// Rotate 90° counterclockwise.
    CounterClockwise,
}

impl Direction {
    /// All four directions, in the order East, North, West, South.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
    ];

    /// The unit offset `(dx, dy)` of this direction.
    #[inline]
    pub const fn delta(self) -> (i32, i32) {
        match self {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        }
    }

    /// The opposite direction.
    #[inline]
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// The direction obtained by applying `turn`.
    #[inline]
    pub const fn turned(self, turn: Turn) -> Direction {
        match (self, turn) {
            (Direction::East, Turn::Clockwise) => Direction::South,
            (Direction::South, Turn::Clockwise) => Direction::West,
            (Direction::West, Turn::Clockwise) => Direction::North,
            (Direction::North, Turn::Clockwise) => Direction::East,
            (Direction::East, Turn::CounterClockwise) => Direction::North,
            (Direction::North, Turn::CounterClockwise) => Direction::West,
            (Direction::West, Turn::CounterClockwise) => Direction::South,
            (Direction::South, Turn::CounterClockwise) => Direction::East,
        }
    }

    /// True when the direction changes the X dimension.
    #[inline]
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// True when the direction changes the Y dimension.
    #[inline]
    pub const fn is_vertical(self) -> bool {
        matches!(self, Direction::North | Direction::South)
    }
}

impl Turn {
    /// The opposite rotation sense.
    #[inline]
    pub const fn opposite(self) -> Turn {
        match self {
            Turn::Clockwise => Turn::CounterClockwise,
            Turn::CounterClockwise => Turn::Clockwise,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::East => "E",
            Direction::West => "W",
            Direction::North => "N",
            Direction::South => "S",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposites() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn four_clockwise_turns_identity() {
        for d in Direction::ALL {
            let mut cur = d;
            for _ in 0..4 {
                cur = cur.turned(Turn::Clockwise);
            }
            assert_eq!(cur, d);
        }
    }

    #[test]
    fn clockwise_then_counterclockwise_identity() {
        for d in Direction::ALL {
            assert_eq!(d.turned(Turn::Clockwise).turned(Turn::CounterClockwise), d);
        }
    }

    #[test]
    fn deltas_are_unit_vectors() {
        for d in Direction::ALL {
            let (dx, dy) = d.delta();
            assert_eq!(dx.abs() + dy.abs(), 1);
        }
        assert_eq!(Direction::East.delta(), (1, 0));
        assert_eq!(Direction::North.delta(), (0, 1));
    }

    #[test]
    fn horizontal_vertical_partition() {
        for d in Direction::ALL {
            assert_ne!(d.is_horizontal(), d.is_vertical());
        }
    }

    #[test]
    fn display_single_letters() {
        assert_eq!(Direction::East.to_string(), "E");
        assert_eq!(Direction::South.to_string(), "S");
    }
}
