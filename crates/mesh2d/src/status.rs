//! The labelling vocabulary of the paper's fault models.
//!
//! The paper works with three orthogonal node attributes:
//!
//! * [`Health`] — whether the node is physically faulty (faults "just cease
//!   to work"),
//! * [`Safety`] — the label produced by **labelling scheme 1** (safe /
//!   unsafe); connected unsafe nodes form rectangular faulty blocks,
//! * [`Activation`] — the label produced by **labelling scheme 2** (enabled /
//!   disabled); disabled nodes are the ones inside a faulty polygon and are
//!   excluded from routing.
//!
//! A faulty node is always unsafe and disabled. A non-faulty node is in one
//! of three states: safe+enabled, unsafe+enabled, or unsafe+disabled
//! (Section 2.3). The combined [`NodeStatus`] plus the [`StatusMap`] helper
//! capture that final, per-node outcome, together with the *superseding rule*
//! used when piling per-component diagrams (faulty ⟶ gray ⟶ white).

use crate::{Coord, Grid, Mesh2D, Region};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical node health.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Health {
    /// The node operates normally.
    Healthy,
    /// The node has failed (fail-stop).
    Faulty,
}

/// The label assigned by labelling scheme 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Safety {
    /// The node does not cause routing difficulties.
    Safe,
    /// The node is faulty or would trap messages (belongs to a faulty block).
    Unsafe,
}

/// The label assigned by labelling scheme 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Activation {
    /// The node participates in routing.
    Enabled,
    /// The node is excluded from routing (inside a faulty polygon).
    Disabled,
}

/// The final status of a node after a fault-model construction, using the
/// paper's figure color-coding: black (faulty), gray (non-faulty but
/// disabled) and white (non-faulty, enabled, possibly after having been part
/// of a faulty block).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum NodeStatus {
    /// A faulty node ("black").
    Faulty,
    /// A non-faulty node that the fault model disables ("gray").
    Disabled,
    /// A non-faulty node that keeps routing ("white" / not shown).
    #[default]
    Enabled,
}

impl NodeStatus {
    /// Rank used by the superseding rule: black nodes overwrite gray and
    /// white nodes, and gray nodes overwrite white nodes.
    #[inline]
    pub fn precedence(self) -> u8 {
        match self {
            NodeStatus::Faulty => 2,
            NodeStatus::Disabled => 1,
            NodeStatus::Enabled => 0,
        }
    }

    /// Applies the superseding rule to two candidate statuses for the same
    /// node, returning the one that survives.
    #[inline]
    pub fn supersede(self, other: NodeStatus) -> NodeStatus {
        if self.precedence() >= other.precedence() {
            self
        } else {
            other
        }
    }

    /// True for black or gray nodes — i.e. nodes removed from the routing
    /// fabric.
    #[inline]
    pub fn is_excluded(self) -> bool {
        !matches!(self, NodeStatus::Enabled)
    }
}

impl fmt::Display for NodeStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeStatus::Faulty => "faulty",
            NodeStatus::Disabled => "disabled",
            NodeStatus::Enabled => "enabled",
        };
        f.write_str(s)
    }
}

/// The outcome of a fault-model construction: one [`NodeStatus`] per node.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StatusMap {
    grid: Grid<NodeStatus>,
    /// Maintained count of non-faulty disabled (gray) nodes, so the
    /// Figure 9 metric is O(1) instead of a whole-grid rescan.
    disabled: usize,
    /// Maintained count of faulty (black) nodes.
    faulty: usize,
}

impl StatusMap {
    /// An all-enabled map for `mesh`.
    pub fn all_enabled(mesh: &Mesh2D) -> Self {
        StatusMap {
            grid: Grid::for_mesh(mesh, NodeStatus::Enabled),
            disabled: 0,
            faulty: 0,
        }
    }

    /// A map where exactly the nodes of `faults` are faulty and everything
    /// else is enabled.
    pub fn from_faults(mesh: &Mesh2D, faults: &Region) -> Self {
        let mut map = Self::all_enabled(mesh);
        for f in faults.iter() {
            map.set(f, NodeStatus::Faulty);
        }
        map
    }

    /// The status of node `c`.
    ///
    /// # Panics
    /// Panics if `c` is outside the mesh the map was built for.
    pub fn status(&self, c: Coord) -> NodeStatus {
        self.grid[c]
    }

    /// The status of node `c`, or `None` when outside the map.
    pub fn get(&self, c: Coord) -> Option<NodeStatus> {
        self.grid.get(c).copied()
    }

    /// Sets the status of node `c` unconditionally.
    pub fn set(&mut self, c: Coord, status: NodeStatus) {
        if let Some(cell) = self.grid.get_mut(c) {
            match *cell {
                NodeStatus::Disabled => self.disabled -= 1,
                NodeStatus::Faulty => self.faulty -= 1,
                NodeStatus::Enabled => {}
            }
            *cell = status;
            match status {
                NodeStatus::Disabled => self.disabled += 1,
                NodeStatus::Faulty => self.faulty += 1,
                NodeStatus::Enabled => {}
            }
        }
    }

    /// Applies the superseding rule: the stored status only changes when the
    /// new status has strictly higher precedence.
    pub fn supersede(&mut self, c: Coord, status: NodeStatus) {
        if let Some(current) = self.grid.get(c) {
            let next = current.supersede(status);
            if next != *current {
                self.set(c, next);
            }
        }
    }

    /// Merges a whole map into this one using the superseding rule.
    pub fn supersede_all(&mut self, other: &StatusMap) {
        for (c, &s) in other.grid.iter() {
            self.supersede(c, s);
        }
    }

    /// All faulty (black) nodes.
    pub fn faulty_region(&self) -> Region {
        Region::from_coords(self.grid.coords_where(|&s| s == NodeStatus::Faulty))
    }

    /// All non-faulty but disabled (gray) nodes.
    pub fn disabled_region(&self) -> Region {
        Region::from_coords(self.grid.coords_where(|&s| s == NodeStatus::Disabled))
    }

    /// All excluded nodes (faulty or disabled) — the union of the faulty
    /// polygons.
    pub fn excluded_region(&self) -> Region {
        Region::from_coords(self.grid.coords_where(|s| s.is_excluded()))
    }

    /// Number of non-faulty nodes the model disables (the paper's headline
    /// metric, Figure 9).
    pub fn disabled_count(&self) -> usize {
        debug_assert_eq!(
            self.disabled,
            self.grid.count_where(|&s| s == NodeStatus::Disabled)
        );
        self.disabled
    }

    /// Number of faulty nodes.
    pub fn faulty_count(&self) -> usize {
        debug_assert_eq!(
            self.faulty,
            self.grid.count_where(|&s| s == NodeStatus::Faulty)
        );
        self.faulty
    }

    /// Width of the underlying grid.
    pub fn width(&self) -> i32 {
        self.grid.width()
    }

    /// Height of the underlying grid.
    pub fn height(&self) -> i32 {
        self.grid.height()
    }

    /// Access to the raw grid, mainly for rendering.
    pub fn grid(&self) -> &Grid<NodeStatus> {
        &self.grid
    }
}

/// A batch of per-node status transitions, as produced by one step of an
/// incremental (streaming) fault-model maintenance engine.
///
/// Downstream consumers — routing tables, sweep statistics, renderers — can
/// apply a delta instead of rescanning the whole mesh: each entry records the
/// node, the status it had before the step and the status it has after.
/// Entries with `old == new` are never recorded.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusDelta {
    changes: Vec<(Coord, NodeStatus, NodeStatus)>,
}

impl StatusDelta {
    /// An empty delta (no node changed).
    pub fn new() -> Self {
        StatusDelta::default()
    }

    /// Records one transition. A no-op when `old == new`.
    pub fn record(&mut self, node: Coord, old: NodeStatus, new: NodeStatus) {
        if old != new {
            self.changes.push((node, old, new));
        }
    }

    /// The recorded transitions `(node, old, new)`, in recording order.
    pub fn changes(&self) -> &[(Coord, NodeStatus, NodeStatus)] {
        &self.changes
    }

    /// Number of nodes whose status changed.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when no node changed status.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Nodes that left the routing fabric in this step (enabled before,
    /// faulty or disabled after).
    pub fn newly_excluded(&self) -> impl Iterator<Item = Coord> + '_ {
        self.changes
            .iter()
            .filter(|(_, old, new)| !old.is_excluded() && new.is_excluded())
            .map(|&(c, _, _)| c)
    }

    /// Nodes that rejoined the routing fabric in this step (faulty or
    /// disabled before, enabled after).
    pub fn newly_enabled(&self) -> impl Iterator<Item = Coord> + '_ {
        self.changes
            .iter()
            .filter(|(_, old, new)| old.is_excluded() && !new.is_excluded())
            .map(|&(c, _, _)| c)
    }

    /// Appends the transitions of `later` to this delta. Transitions are not
    /// coalesced: a node changed by both deltas appears twice, in order, so
    /// replaying the concatenation still reproduces the final state.
    pub fn extend(&mut self, later: StatusDelta) {
        self.changes.extend(later.changes);
    }

    /// Writes the new statuses into `map` (last write wins per node).
    pub fn apply_to(&self, map: &mut StatusMap) {
        for &(c, _, new) in &self.changes {
            map.set(c, new);
        }
    }

    /// The minimal delta turning `old` into `new`: one transition per
    /// node whose status differs, in row-major order. Both maps must
    /// cover the same mesh. This is the resynchronization primitive for
    /// subscribers that missed deltas (a `seq` gap): diff the stale
    /// mirror against a fresh snapshot and apply the result.
    ///
    /// # Panics
    /// Panics if the two maps have different dimensions.
    pub fn between(old: &StatusMap, new: &StatusMap) -> StatusDelta {
        assert_eq!(
            (old.width(), old.height()),
            (new.width(), new.height()),
            "StatusDelta::between requires same-sized maps"
        );
        let mut delta = StatusDelta::new();
        for (c, &s) in new.grid.iter() {
            delta.record(c, old.status(c), s);
        }
        delta
    }

    /// Collapses the delta to at most one transition per node: the first
    /// recorded `old` paired with the last recorded `new`, in the order
    /// nodes first appeared. Nodes whose status returned to its starting
    /// value drop out entirely, so a burst of events that cancels itself
    /// coalesces to an empty delta. Replaying the coalesced delta
    /// produces the same final map as replaying the original — the form
    /// fan-out to subscribers should use.
    pub fn coalesced(&self) -> StatusDelta {
        let mut index: std::collections::HashMap<Coord, usize> =
            std::collections::HashMap::with_capacity(self.changes.len());
        let mut changes: Vec<(Coord, NodeStatus, NodeStatus)> = Vec::new();
        for &(c, old, new) in &self.changes {
            match index.entry(c) {
                std::collections::hash_map::Entry::Occupied(slot) => {
                    changes[*slot.get()].2 = new;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(changes.len());
                    changes.push((c, old, new));
                }
            }
        }
        changes.retain(|&(_, old, new)| old != new);
        StatusDelta { changes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superseding_rule_orders_black_gray_white() {
        use NodeStatus::*;
        assert_eq!(Faulty.supersede(Disabled), Faulty);
        assert_eq!(Disabled.supersede(Faulty), Faulty);
        assert_eq!(Disabled.supersede(Enabled), Disabled);
        assert_eq!(Enabled.supersede(Disabled), Disabled);
        assert_eq!(Enabled.supersede(Enabled), Enabled);
        assert!(Faulty.precedence() > Disabled.precedence());
        assert!(Disabled.precedence() > Enabled.precedence());
    }

    #[test]
    fn excluded_means_not_enabled() {
        assert!(NodeStatus::Faulty.is_excluded());
        assert!(NodeStatus::Disabled.is_excluded());
        assert!(!NodeStatus::Enabled.is_excluded());
    }

    #[test]
    fn from_faults_marks_only_faults() {
        let mesh = Mesh2D::square(6);
        let faults = Region::from_coords([Coord::new(1, 1), Coord::new(4, 2)]);
        let map = StatusMap::from_faults(&mesh, &faults);
        assert_eq!(map.faulty_count(), 2);
        assert_eq!(map.disabled_count(), 0);
        assert_eq!(map.status(Coord::new(1, 1)), NodeStatus::Faulty);
        assert_eq!(map.status(Coord::new(0, 0)), NodeStatus::Enabled);
        assert_eq!(map.faulty_region(), faults);
    }

    #[test]
    fn supersede_map_merging() {
        let mesh = Mesh2D::square(4);
        let mut a = StatusMap::all_enabled(&mesh);
        a.set(Coord::new(1, 1), NodeStatus::Disabled);
        a.set(Coord::new(2, 2), NodeStatus::Faulty);

        let mut b = StatusMap::all_enabled(&mesh);
        b.set(Coord::new(1, 1), NodeStatus::Faulty);
        b.set(Coord::new(2, 2), NodeStatus::Disabled);
        b.set(Coord::new(3, 3), NodeStatus::Disabled);

        a.supersede_all(&b);
        assert_eq!(a.status(Coord::new(1, 1)), NodeStatus::Faulty);
        assert_eq!(a.status(Coord::new(2, 2)), NodeStatus::Faulty);
        assert_eq!(a.status(Coord::new(3, 3)), NodeStatus::Disabled);
        assert_eq!(a.disabled_count(), 1);
        assert_eq!(a.faulty_count(), 2);
    }

    #[test]
    fn excluded_region_is_union() {
        let mesh = Mesh2D::square(4);
        let mut m = StatusMap::all_enabled(&mesh);
        m.set(Coord::new(0, 0), NodeStatus::Faulty);
        m.set(Coord::new(0, 1), NodeStatus::Disabled);
        let ex = m.excluded_region();
        assert_eq!(ex.len(), 2);
        assert!(ex.contains(Coord::new(0, 0)));
        assert!(ex.contains(Coord::new(0, 1)));
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let mesh = Mesh2D::square(3);
        let m = StatusMap::all_enabled(&mesh);
        assert_eq!(m.get(Coord::new(3, 0)), None);
        assert_eq!(m.get(Coord::new(2, 2)), Some(NodeStatus::Enabled));
    }

    #[test]
    fn delta_records_classifies_and_applies() {
        let mesh = Mesh2D::square(4);
        let mut delta = StatusDelta::new();
        delta.record(Coord::new(0, 0), NodeStatus::Enabled, NodeStatus::Faulty);
        delta.record(Coord::new(1, 0), NodeStatus::Enabled, NodeStatus::Disabled);
        delta.record(Coord::new(2, 0), NodeStatus::Disabled, NodeStatus::Enabled);
        delta.record(Coord::new(3, 0), NodeStatus::Faulty, NodeStatus::Disabled);
        delta.record(Coord::new(3, 3), NodeStatus::Enabled, NodeStatus::Enabled);
        assert_eq!(delta.len(), 4, "old == new is not recorded");

        let excluded: Vec<_> = delta.newly_excluded().collect();
        assert_eq!(excluded, vec![Coord::new(0, 0), Coord::new(1, 0)]);
        let enabled: Vec<_> = delta.newly_enabled().collect();
        assert_eq!(enabled, vec![Coord::new(2, 0)]);

        let mut map = StatusMap::all_enabled(&mesh);
        map.set(Coord::new(2, 0), NodeStatus::Disabled);
        map.set(Coord::new(3, 0), NodeStatus::Faulty);
        delta.apply_to(&mut map);
        assert_eq!(map.status(Coord::new(0, 0)), NodeStatus::Faulty);
        assert_eq!(map.status(Coord::new(1, 0)), NodeStatus::Disabled);
        assert_eq!(map.status(Coord::new(2, 0)), NodeStatus::Enabled);
        assert_eq!(map.status(Coord::new(3, 0)), NodeStatus::Disabled);
    }

    #[test]
    fn delta_extend_replays_in_order() {
        let mesh = Mesh2D::square(3);
        let mut first = StatusDelta::new();
        first.record(Coord::new(1, 1), NodeStatus::Enabled, NodeStatus::Disabled);
        let mut second = StatusDelta::new();
        second.record(Coord::new(1, 1), NodeStatus::Disabled, NodeStatus::Faulty);
        first.extend(second);
        assert_eq!(first.len(), 2);
        let mut map = StatusMap::all_enabled(&mesh);
        first.apply_to(&mut map);
        assert_eq!(map.status(Coord::new(1, 1)), NodeStatus::Faulty);
        assert!(!first.is_empty());
    }

    #[test]
    fn coalesced_keeps_first_old_and_last_new_per_node() {
        let mesh = Mesh2D::square(4);
        let mut delta = StatusDelta::new();
        // (1,1): Enabled -> Disabled -> Faulty  ⇒ one Enabled -> Faulty entry.
        delta.record(Coord::new(1, 1), NodeStatus::Enabled, NodeStatus::Disabled);
        delta.record(Coord::new(0, 0), NodeStatus::Enabled, NodeStatus::Faulty);
        delta.record(Coord::new(1, 1), NodeStatus::Disabled, NodeStatus::Faulty);
        // (2,2): Enabled -> Disabled -> Enabled  ⇒ cancels out.
        delta.record(Coord::new(2, 2), NodeStatus::Enabled, NodeStatus::Disabled);
        delta.record(Coord::new(2, 2), NodeStatus::Disabled, NodeStatus::Enabled);
        let coalesced = delta.coalesced();
        assert_eq!(
            coalesced.changes(),
            &[
                (Coord::new(1, 1), NodeStatus::Enabled, NodeStatus::Faulty),
                (Coord::new(0, 0), NodeStatus::Enabled, NodeStatus::Faulty),
            ],
            "first-appearance order, self-cancelling node dropped"
        );
        // Replaying either form yields the same final map.
        let mut a = StatusMap::all_enabled(&mesh);
        let mut b = StatusMap::all_enabled(&mesh);
        delta.apply_to(&mut a);
        coalesced.apply_to(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn coalescing_an_empty_delta_is_empty() {
        assert!(StatusDelta::new().coalesced().is_empty());
    }

    #[test]
    fn between_diffs_two_maps_and_applying_converges() {
        let mesh = Mesh2D::square(5);
        let mut old = StatusMap::all_enabled(&mesh);
        old.set(Coord::new(1, 1), NodeStatus::Faulty);
        old.set(Coord::new(2, 2), NodeStatus::Disabled);
        let mut new = StatusMap::all_enabled(&mesh);
        new.set(Coord::new(2, 2), NodeStatus::Faulty);
        new.set(Coord::new(4, 0), NodeStatus::Disabled);

        let delta = StatusDelta::between(&old, &new);
        // (1,1) reverts to Enabled, (2,2) escalates, (4,0) appears.
        assert_eq!(delta.len(), 3);
        for &(c, o, n) in delta.changes() {
            assert_eq!(o, old.status(c));
            assert_eq!(n, new.status(c));
        }
        delta.apply_to(&mut old);
        assert_eq!(old, new);
        assert!(StatusDelta::between(&new, &new).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(NodeStatus::Faulty.to_string(), "faulty");
        assert_eq!(NodeStatus::Disabled.to_string(), "disabled");
        assert_eq!(NodeStatus::Enabled.to_string(), "enabled");
    }
}
