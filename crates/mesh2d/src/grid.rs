//! Dense per-node storage.
//!
//! Nearly every algorithm in the reproduction keeps one value per mesh node
//! (a health flag, a label, a distance, a protocol state). [`Grid`] is a
//! cache-friendly row-major `Vec` indexed by [`Coord`], avoiding hash-map
//! overhead on the hot fixpoint loops of the labelling schemes.

use crate::{Coord, Mesh2D};
use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense `width × height` array of `T`, indexed by node coordinate.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Grid<T> {
    width: i32,
    height: i32,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid filled with clones of `value`.
    pub fn filled(width: u32, height: u32, value: T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        Grid {
            width: width as i32,
            height: height as i32,
            data: vec![value; (width as usize) * (height as usize)],
        }
    }

    /// Creates a grid sized for `mesh`, filled with clones of `value`.
    pub fn for_mesh(mesh: &Mesh2D, value: T) -> Self {
        Self::filled(mesh.width() as u32, mesh.height() as u32, value)
    }

    /// Overwrites every cell with clones of `value`, keeping the allocation.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl<T> Grid<T> {
    /// Builds a grid by evaluating `f` at every coordinate (row-major order).
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(Coord) -> T) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        let (w, h) = (width as i32, height as i32);
        let mut data = Vec::with_capacity((width as usize) * (height as usize));
        for y in 0..h {
            for x in 0..w {
                data.push(f(Coord::new(x, y)));
            }
        }
        Grid {
            width: w,
            height: h,
            data,
        }
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Number of rows.
    #[inline]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid holds no cells. The public constructors assert
    /// non-zero dimensions, so this is false for every grid they build —
    /// but the answer comes from the data, not from that assumption.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True when `c` indexes a cell of this grid.
    #[inline]
    pub fn in_bounds(&self, c: Coord) -> bool {
        c.x >= 0 && c.y >= 0 && c.x < self.width && c.y < self.height
    }

    #[inline]
    fn idx(&self, c: Coord) -> usize {
        debug_assert!(
            self.in_bounds(c),
            "{c} out of bounds for {}x{} grid",
            self.width,
            self.height
        );
        (c.y as usize) * (self.width as usize) + (c.x as usize)
    }

    /// Returns the cell at `c`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, c: Coord) -> Option<&T> {
        if self.in_bounds(c) {
            Some(&self.data[self.idx(c)])
        } else {
            None
        }
    }

    /// Returns the cell at `c` mutably, or `None` when out of bounds.
    #[inline]
    pub fn get_mut(&mut self, c: Coord) -> Option<&mut T> {
        if self.in_bounds(c) {
            let i = self.idx(c);
            Some(&mut self.data[i])
        } else {
            None
        }
    }

    /// Sets the cell at `c`. Out-of-bounds writes are ignored and reported by
    /// returning `false`.
    #[inline]
    pub fn set(&mut self, c: Coord, value: T) -> bool {
        if let Some(cell) = self.get_mut(c) {
            *cell = value;
            true
        } else {
            false
        }
    }

    /// Iterates over `(coordinate, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, &T)> + '_ {
        let w = self.width;
        self.data.iter().enumerate().map(move |(i, v)| {
            let i = i as i32;
            (Coord::new(i % w, i / w), v)
        })
    }

    /// Iterates over coordinates whose value satisfies `pred`.
    pub fn coords_where<'a>(
        &'a self,
        mut pred: impl FnMut(&T) -> bool + 'a,
    ) -> impl Iterator<Item = Coord> + 'a {
        self.iter().filter_map(move |(c, v)| pred(v).then_some(c))
    }

    /// Counts cells whose value satisfies `pred`.
    pub fn count_where(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.data.iter().filter(|v| pred(v)).count()
    }

    /// Maps every cell through `f`, producing a new grid of the same shape.
    pub fn map<U>(&self, mut f: impl FnMut(Coord, &T) -> U) -> Grid<U> {
        let w = self.width;
        Grid {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    let i = i as i32;
                    f(Coord::new(i % w, i / w), v)
                })
                .collect(),
        }
    }

    /// Raw row-major access to the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> Index<Coord> for Grid<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: Coord) -> &T {
        &self.data[self.idx(c)]
    }
}

impl<T> IndexMut<Coord> for Grid<T> {
    #[inline]
    fn index_mut(&mut self, c: Coord) -> &mut T {
        let i = self.idx(c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_fill() {
        let mut g = Grid::filled(3, 2, 7u32);
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert_eq!(g[Coord::new(2, 1)], 7);
        g.fill(0);
        assert_eq!(g.count_where(|&v| v == 0), 6);
    }

    #[test]
    fn from_fn_row_major() {
        let g = Grid::from_fn(4, 3, |c| c.x + 10 * c.y);
        assert_eq!(g[Coord::new(0, 0)], 0);
        assert_eq!(g[Coord::new(3, 2)], 23);
        assert_eq!(g.as_slice()[0..4], [0, 1, 2, 3]);
    }

    #[test]
    fn bounds_checking() {
        let mut g = Grid::filled(3, 3, 0u8);
        assert!(g.in_bounds(Coord::new(2, 2)));
        assert!(!g.in_bounds(Coord::new(3, 0)));
        assert!(!g.in_bounds(Coord::new(0, -1)));
        assert_eq!(g.get(Coord::new(5, 5)), None);
        assert!(!g.set(Coord::new(-1, 0), 9));
        assert!(g.set(Coord::new(1, 1), 9));
        assert_eq!(g[Coord::new(1, 1)], 9);
    }

    #[test]
    fn iter_and_queries() {
        let g = Grid::from_fn(3, 3, |c| c.x == c.y);
        let diag: Vec<Coord> = g.coords_where(|&v| v).collect();
        assert_eq!(
            diag,
            vec![Coord::new(0, 0), Coord::new(1, 1), Coord::new(2, 2)]
        );
        assert_eq!(g.count_where(|&v| v), 3);
        assert_eq!(g.iter().count(), 9);
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid::from_fn(2, 2, |c| c.x);
        let h = g.map(|c, &v| v + c.y);
        assert_eq!(h[Coord::new(1, 1)], 2);
        assert_eq!(h.width(), 2);
        assert_eq!(h.height(), 2);
    }

    #[test]
    fn for_mesh_matches_dimensions() {
        let mesh = Mesh2D::mesh(5, 4);
        let g = Grid::for_mesh(&mesh, 0u8);
        assert_eq!(g.width(), 5);
        assert_eq!(g.height(), 4);
        assert_eq!(g.len(), mesh.node_count());
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_index_panics() {
        let g = Grid::filled(2, 2, 0u8);
        let _ = g[Coord::new(2, 0)];
    }
}
