//! Node addresses in a 2-D mesh.
//!
//! Following the paper (Section 2.1), each node `u` has an address
//! `(u_x, u_y)` with `u_x, u_y ∈ {0, 1, ..., n-1}`. Coordinates are stored as
//! `i32` so that neighbor arithmetic (including the diagonal adjacency of
//! Definition 2) never underflows; the topology layer decides which
//! coordinates are actually inside the network.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node address `(x, y)` in a 2-D mesh or torus.
///
/// `x` selects the column, `y` selects the row, matching the paper's
/// convention where routing "along the row" changes `x` first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (dimension X).
    pub x: i32,
    /// Row index (dimension Y).
    pub y: i32,
}

impl Coord {
    /// Creates a coordinate from column `x` and row `y`.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Coord { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Coord = Coord { x: 0, y: 0 };

    /// Returns the coordinate translated by `(dx, dy)`.
    #[inline]
    pub const fn offset(self, dx: i32, dy: i32) -> Self {
        Coord {
            x: self.x + dx,
            y: self.y + dy,
        }
    }

    /// Manhattan (L1) distance to `other`, ignoring any torus wraparound.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// Chebyshev (L∞) distance to `other`.
    ///
    /// Two distinct nodes are *adjacent* in the sense of the paper's
    /// Definition 2 (the 8-neighborhood used by the component merge process)
    /// exactly when their Chebyshev distance is 1.
    #[inline]
    pub fn chebyshev(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }

    /// True when `other` is one of the four mesh neighbors (N, S, E, W).
    #[inline]
    pub fn is_neighbor4(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// True when `other` is adjacent per Definition 2 of the paper: one of
    /// the eight surrounding nodes (including diagonals).
    #[inline]
    pub fn is_adjacent8(self, other: Coord) -> bool {
        self != other && self.chebyshev(other) == 1
    }

    /// The four mesh neighbors in the fixed order West, East, South, North.
    ///
    /// The result may contain coordinates outside the network; callers that
    /// need in-network neighbors should go through
    /// [`Mesh2D::neighbors4`](crate::Mesh2D::neighbors4).
    #[inline]
    pub fn neighbors4(self) -> [Coord; 4] {
        [
            self.offset(-1, 0),
            self.offset(1, 0),
            self.offset(0, -1),
            self.offset(0, 1),
        ]
    }

    /// The eight adjacent nodes of Definition 2, row-major order.
    #[inline]
    pub fn neighbors8(self) -> [Coord; 8] {
        [
            self.offset(-1, -1),
            self.offset(0, -1),
            self.offset(1, -1),
            self.offset(-1, 0),
            self.offset(1, 0),
            self.offset(-1, 1),
            self.offset(0, 1),
            self.offset(1, 1),
        ]
    }

    /// Lexicographic key ordered by `x` first, then `y`.
    ///
    /// This is exactly the priority used by the paper's overwriting rule for
    /// competing initiators: "the one with a smaller x value in initiator ID
    /// overwrites the rest and, then, the one with a smaller y value".
    #[inline]
    pub fn initiator_priority(self) -> (i32, i32) {
        (self.x, self.y)
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new(x, y)
    }
}

impl From<Coord> for (i32, i32) {
    fn from(c: Coord) -> Self {
        (c.x, c.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_and_origin() {
        assert_eq!(Coord::ORIGIN.offset(3, -2), Coord::new(3, -2));
        assert_eq!(Coord::new(1, 1).offset(0, 0), Coord::new(1, 1));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(1, 3).manhattan(Coord::new(6, 4)), 6);
        assert_eq!(Coord::new(2, 2).manhattan(Coord::new(2, 2)), 0);
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(Coord::new(0, 0).chebyshev(Coord::new(3, 1)), 3);
        assert_eq!(Coord::new(5, 5).chebyshev(Coord::new(4, 4)), 1);
    }

    #[test]
    fn neighbor4_relation() {
        let c = Coord::new(4, 4);
        assert!(c.is_neighbor4(Coord::new(3, 4)));
        assert!(c.is_neighbor4(Coord::new(4, 5)));
        assert!(!c.is_neighbor4(Coord::new(3, 3)));
        assert!(!c.is_neighbor4(c));
    }

    #[test]
    fn adjacency8_matches_definition_2() {
        // Definition 2: adjacent nodes of (x, y) are the 8 surrounding nodes.
        let c = Coord::new(2, 2);
        let adj = c.neighbors8();
        assert_eq!(adj.len(), 8);
        for a in adj {
            assert!(c.is_adjacent8(a), "{a} should be adjacent to {c}");
        }
        assert!(!c.is_adjacent8(c));
        assert!(!c.is_adjacent8(Coord::new(4, 2)));
    }

    #[test]
    fn neighbors4_are_subset_of_neighbors8() {
        let c = Coord::new(7, 9);
        let n8 = c.neighbors8();
        for n in c.neighbors4() {
            assert!(n8.contains(&n));
        }
    }

    #[test]
    fn initiator_priority_orders_west_most_first() {
        // The west-most south-west corner should dominate: smaller x wins,
        // ties broken by smaller y.
        let mut corners = [Coord::new(3, 1), Coord::new(1, 5), Coord::new(1, 2)];
        corners.sort_by_key(|c| c.initiator_priority());
        assert_eq!(corners[0], Coord::new(1, 2));
        assert_eq!(corners[1], Coord::new(1, 5));
        assert_eq!(corners[2], Coord::new(3, 1));
    }

    #[test]
    fn conversions() {
        let c: Coord = (3, 4).into();
        assert_eq!(c, Coord::new(3, 4));
        let t: (i32, i32) = c.into();
        assert_eq!(t, (3, 4));
        assert_eq!(format!("{c}"), "(3, 4)");
        assert_eq!(format!("{c:?}"), "(3, 4)");
    }
}
