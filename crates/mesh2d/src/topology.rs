//! The 2-D mesh / torus topology.
//!
//! The paper treats meshes and tori uniformly ("we use meshes to represent
//! both meshes and tori"); [`Mesh2D`] captures both through [`Topology`].
//! A `width × height` mesh has nodes `(x, y)` with `0 ≤ x < width` and
//! `0 ≤ y < height`; nodes are connected when their addresses differ by one
//! in exactly one dimension, with wraparound links added in a torus.

use crate::{Coord, Direction};
use serde::{Deserialize, Serialize};

/// Whether wraparound links are present.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Topology {
    /// A plain 2-D mesh: boundary nodes have degree 2 or 3.
    Mesh,
    /// A 2-D torus: every node has degree 4 thanks to wraparound links.
    Torus,
}

/// A `width × height` 2-D mesh or torus.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mesh2D {
    width: i32,
    height: i32,
    topology: Topology,
}

impl Mesh2D {
    /// Creates a `width × height` mesh (no wraparound links).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn mesh(width: u32, height: u32) -> Self {
        Self::new(width, height, Topology::Mesh)
    }

    /// Creates a `width × height` torus (wraparound links in both dimensions).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn torus(width: u32, height: u32) -> Self {
        Self::new(width, height, Topology::Torus)
    }

    /// Creates a mesh or torus with the given dimensions.
    ///
    /// # Panics
    /// Panics if either dimension is zero or exceeds `i32::MAX`.
    pub fn new(width: u32, height: u32, topology: Topology) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let width = i32::try_from(width).expect("mesh width too large");
        let height = i32::try_from(height).expect("mesh height too large");
        Mesh2D {
            width,
            height,
            topology,
        }
    }

    /// A square `n × n` mesh, the configuration used throughout the paper.
    pub fn square(n: u32) -> Self {
        Self::mesh(n, n)
    }

    /// Number of columns (extent of dimension X).
    #[inline]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Number of rows (extent of dimension Y).
    #[inline]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The topology kind (mesh or torus).
    #[inline]
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Total number of nodes, `width × height`.
    #[inline]
    pub fn node_count(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Network diameter.
    ///
    /// For an `n × n` mesh this is `2(n - 1)` as stated in Section 2.1; for a
    /// torus the wraparound halves each dimension's contribution.
    pub fn diameter(&self) -> u32 {
        match self.topology {
            Topology::Mesh => (self.width as u32 - 1) + (self.height as u32 - 1),
            Topology::Torus => (self.width as u32 / 2) + (self.height as u32 / 2),
        }
    }

    /// True when `c` addresses a node of this network.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= 0 && c.y >= 0 && c.x < self.width && c.y < self.height
    }

    /// Wraps a coordinate onto the torus surface. For a plain mesh the
    /// coordinate is returned unchanged (it may be outside the network).
    #[inline]
    pub fn wrap(&self, c: Coord) -> Coord {
        match self.topology {
            Topology::Mesh => c,
            Topology::Torus => Coord::new(c.x.rem_euclid(self.width), c.y.rem_euclid(self.height)),
        }
    }

    /// The neighbor of `c` in direction `dir`, if it exists.
    ///
    /// In a torus the neighbor always exists (wraparound); in a mesh it is
    /// `None` when the step would leave the network.
    #[inline]
    pub fn step(&self, c: Coord, dir: Direction) -> Option<Coord> {
        debug_assert!(self.contains(c), "stepping from {c} outside the mesh");
        let (dx, dy) = dir.delta();
        let next = c.offset(dx, dy);
        match self.topology {
            Topology::Mesh => self.contains(next).then_some(next),
            Topology::Torus => Some(self.wrap(next)),
        }
    }

    /// The in-network 4-neighborhood (mesh links) of `c`.
    pub fn neighbors4(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        Direction::ALL
            .into_iter()
            .filter_map(move |d| self.step(c, d))
    }

    /// The in-network 8-neighborhood of `c` (Definition 2 adjacency), used by
    /// the component merge process.
    pub fn neighbors8(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        c.neighbors8()
            .into_iter()
            .filter_map(move |n| match self.topology {
                Topology::Mesh => self.contains(n).then_some(n),
                Topology::Torus => Some(self.wrap(n)),
            })
    }

    /// Interior node degree is 4; border nodes of a mesh have fewer links.
    pub fn degree(&self, c: Coord) -> usize {
        self.neighbors4(c).count()
    }

    /// Distance between two nodes along the network links (no faults).
    pub fn distance(&self, a: Coord, b: Coord) -> u32 {
        match self.topology {
            Topology::Mesh => a.manhattan(b),
            Topology::Torus => {
                let dx = a.x.abs_diff(b.x);
                let dy = a.y.abs_diff(b.y);
                dx.min(self.width as u32 - dx) + dy.min(self.height as u32 - dy)
            }
        }
    }

    /// Converts a coordinate to a dense row-major index.
    ///
    /// # Panics
    /// Panics (in debug builds) if `c` is outside the network.
    #[inline]
    pub fn index_of(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c), "{c} outside {self:?}");
        (c.y as usize) * (self.width as usize) + (c.x as usize)
    }

    /// Converts a dense row-major index back to a coordinate.
    #[inline]
    pub fn coord_of(&self, index: usize) -> Coord {
        let w = self.width as usize;
        Coord::new((index % w) as i32, (index / w) as i32)
    }

    /// Iterates over every node address in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        let h = self.height;
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// True when the node lies on the outer border of a mesh. For a torus
    /// there is no border and this always returns `false`.
    pub fn on_border(&self, c: Coord) -> bool {
        match self.topology {
            Topology::Torus => false,
            Topology::Mesh => {
                c.x == 0 || c.y == 0 || c.x == self.width - 1 || c.y == self.height - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_mesh_basic_properties() {
        let m = Mesh2D::square(8);
        assert_eq!(m.width(), 8);
        assert_eq!(m.height(), 8);
        assert_eq!(m.node_count(), 64);
        assert_eq!(m.diameter(), 14); // 2(n-1)
        assert_eq!(m.topology(), Topology::Mesh);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = Mesh2D::mesh(0, 4);
    }

    #[test]
    fn contains_and_border() {
        let m = Mesh2D::mesh(4, 3);
        assert!(m.contains(Coord::new(0, 0)));
        assert!(m.contains(Coord::new(3, 2)));
        assert!(!m.contains(Coord::new(4, 0)));
        assert!(!m.contains(Coord::new(-1, 1)));
        assert!(m.on_border(Coord::new(0, 1)));
        assert!(!m.on_border(Coord::new(1, 1)));
    }

    #[test]
    fn mesh_corner_degree_is_two() {
        let m = Mesh2D::square(5);
        assert_eq!(m.degree(Coord::new(0, 0)), 2);
        assert_eq!(m.degree(Coord::new(4, 0)), 2);
        assert_eq!(m.degree(Coord::new(2, 0)), 3);
        assert_eq!(m.degree(Coord::new(2, 2)), 4);
    }

    #[test]
    fn torus_every_node_degree_four() {
        let t = Mesh2D::torus(5, 5);
        for c in t.nodes() {
            assert_eq!(t.degree(c), 4, "node {c}");
        }
        assert!(!t.on_border(Coord::new(0, 0)));
    }

    #[test]
    fn torus_wraparound_step() {
        let t = Mesh2D::torus(4, 4);
        assert_eq!(
            t.step(Coord::new(0, 0), Direction::West),
            Some(Coord::new(3, 0))
        );
        assert_eq!(
            t.step(Coord::new(3, 3), Direction::North),
            Some(Coord::new(3, 0))
        );
        let m = Mesh2D::mesh(4, 4);
        assert_eq!(m.step(Coord::new(0, 0), Direction::West), None);
        assert_eq!(
            m.step(Coord::new(0, 0), Direction::East),
            Some(Coord::new(1, 0))
        );
    }

    #[test]
    fn distance_mesh_vs_torus() {
        let m = Mesh2D::mesh(10, 10);
        let t = Mesh2D::torus(10, 10);
        let a = Coord::new(0, 0);
        let b = Coord::new(9, 9);
        assert_eq!(m.distance(a, b), 18);
        assert_eq!(t.distance(a, b), 2);
        assert_eq!(t.diameter(), 10);
    }

    #[test]
    fn index_roundtrip() {
        let m = Mesh2D::mesh(7, 5);
        for (i, c) in m.nodes().enumerate() {
            assert_eq!(m.index_of(c), i);
            assert_eq!(m.coord_of(i), c);
        }
        assert_eq!(m.nodes().count(), m.node_count());
    }

    #[test]
    fn neighbors8_counts() {
        let m = Mesh2D::square(6);
        assert_eq!(m.neighbors8(Coord::new(0, 0)).count(), 3);
        assert_eq!(m.neighbors8(Coord::new(3, 0)).count(), 5);
        assert_eq!(m.neighbors8(Coord::new(3, 3)).count(), 8);
        let t = Mesh2D::torus(6, 6);
        assert_eq!(t.neighbors8(Coord::new(0, 0)).count(), 8);
    }
}
