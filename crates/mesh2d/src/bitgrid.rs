//! Word-packed occupancy bitmaps: 64 nodes per `u64`, one bit per node.
//!
//! Every hot kernel of the fault-model stack is a boolean pass over mesh
//! nodes — flood fills, gap fills, dilations, subset tests. [`BitGrid`]
//! packs one bit per node into row-major `u64` words so those passes
//! become shift-and-OR word operations processing 64 nodes at a time:
//!
//! * **component labelling** — find-first-set seeds plus whole-word
//!   frontier expansion ([`BitGrid::components`]);
//! * **the minimum-polygon hull fixpoint** — per-row occupied spans from
//!   leading/trailing-zero counts and word-parallel column fills
//!   ([`BitGrid::hull_fixpoint`]);
//! * **neighborhood dilation** — the clustered-distribution boost mask
//!   and the flood frontier as shifted-word ORs ([`BitGrid::dilate8`]);
//! * **subset / intersection tests** — the safety predicates of the
//!   generic `Outcome` as whole-word AND/OR scans
//!   ([`BitGrid::is_subset_of`], [`BitGrid::intersects`]).
//!
//! A grid covers a rectangular *frame* chosen at construction. The frame's
//! x-origin is always rounded down to a multiple of 64, so any two grids
//! share the same bit phase: binary operations between frames are pure
//! word-at-a-time loops (a word-index offset, never a bit shift).
//!
//! The scalar [`Region`] implementations of the same queries remain the
//! specification; the property tests pin every kernel here to them.

use crate::{Connectivity, Coord, Mesh2D, Rect, Region};

/// Rounds `x` down to a multiple of 64 (the word phase anchor).
#[inline]
fn word_align(x: i32) -> i32 {
    x.div_euclid(64) * 64
}

/// `dst = src | (src << 1) | (src >> 1)` across word boundaries: the
/// horizontal (x ± 1) spread of one packed row. The slices must have equal
/// length.
#[inline]
pub fn spread_row(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    for j in 0..n {
        let left_carry = if j > 0 { src[j - 1] >> 63 } else { 0 };
        let right_carry = if j + 1 < n { src[j + 1] << 63 } else { 0 };
        dst[j] = src[j] | (src[j] << 1) | left_carry | (src[j] >> 1) | right_carry;
    }
}

/// `dst = (src << 1)` across word boundaries: bit `x` of the result is bit
/// `x - 1` of the source (the *west neighbor* mask).
#[inline]
pub fn shift_west_neighbor(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut carry = 0u64;
    for j in 0..src.len() {
        dst[j] = (src[j] << 1) | carry;
        carry = src[j] >> 63;
    }
}

/// `dst = (src >> 1)` across word boundaries: bit `x` of the result is bit
/// `x + 1` of the source (the *east neighbor* mask).
#[inline]
pub fn shift_east_neighbor(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut carry = 0u64;
    for j in (0..src.len()).rev() {
        dst[j] = (src[j] >> 1) | carry;
        carry = src[j] << 63;
    }
}

/// `dst = (src << 1) | (src >> 1)` across word boundaries: the strict
/// horizontal neighbors (west | east), *without* the source itself.
#[inline]
fn spread_row_strict(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    for j in 0..n {
        let left_carry = if j > 0 { src[j - 1] >> 63 } else { 0 };
        let right_carry = if j + 1 < n { src[j + 1] << 63 } else { 0 };
        dst[j] = (src[j] << 1) | left_carry | (src[j] >> 1) | right_carry;
    }
}

/// The span mask of one packed row: every bit from the row's first set bit
/// through its last set bit (inclusive), or all zeros for an empty row.
/// Writes into `dst` and returns `true` when the row is non-empty.
#[inline]
pub fn row_span_mask(src: &[u64], dst: &mut [u64]) -> bool {
    let Some(first) = src.iter().position(|&w| w != 0) else {
        dst.fill(0);
        return false;
    };
    let last = src.iter().rposition(|&w| w != 0).expect("non-empty");
    dst[..first].fill(0);
    dst[last + 1..].fill(0);
    let lo_mask = !0u64 << src[first].trailing_zeros();
    let hi_mask = !0u64 >> src[last].leading_zeros();
    if first == last {
        dst[first] = lo_mask & hi_mask;
    } else {
        dst[first] = lo_mask;
        dst[first + 1..last].fill(!0);
        dst[last] = hi_mask;
    }
    true
}

/// Reusable buffers for the flood / hull kernels, so steady-state callers
/// (the incremental engine, the batch construction loop) allocate nothing
/// once the buffers have grown to the working-set size.
#[derive(Clone, Debug, Default)]
pub struct BitScratch {
    a: Vec<u64>,
    b: Vec<u64>,
    c: Vec<u64>,
    d: Vec<u64>,
    e: Vec<u64>,
    /// Permanently all-zero row: out-of-range neighbor rows borrow this
    /// slice so the flood's inner word loop stays branch-free.
    zeros: Vec<u64>,
    /// Number of times any buffer had to grow — the observable for the
    /// no-allocation-in-steady-state assertions.
    grows: u64,
}

impl BitScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        BitScratch::default()
    }

    /// How many times a buffer needed to grow since construction. Constant
    /// across calls ⇔ the kernels ran allocation-free.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Ensures every buffer holds at least `words` zeroed words.
    fn prepare(&mut self, words: usize) {
        for buf in [
            &mut self.a,
            &mut self.b,
            &mut self.c,
            &mut self.d,
            &mut self.e,
        ] {
            if buf.len() < words {
                buf.resize(words, 0);
                self.grows += 1;
            } else {
                buf[..words].fill(0);
            }
        }
        if self.zeros.len() < words {
            self.zeros.resize(words, 0);
            self.grows += 1;
        }
    }
}

/// A word-packed occupancy bitmap over a rectangular frame of the 2-D
/// coordinate plane (one bit per node, row-major `u64` words).
#[derive(Clone, Debug)]
pub struct BitGrid {
    /// West edge of the frame; always a multiple of 64.
    origin_x: i32,
    /// North edge of the frame (smallest covered `y`).
    origin_y: i32,
    /// Words per row.
    width_words: usize,
    /// Number of rows.
    height: usize,
    /// Row-major packed occupancy, `height * width_words` words.
    words: Vec<u64>,
}

impl Default for BitGrid {
    fn default() -> Self {
        BitGrid::empty()
    }
}

impl BitGrid {
    /// A grid with an empty frame (contains nothing, accepts growth).
    pub fn empty() -> Self {
        BitGrid {
            origin_x: 0,
            origin_y: 0,
            width_words: 0,
            height: 0,
            words: Vec::new(),
        }
    }

    /// An all-clear grid whose frame covers `min..=max` (inclusive). The
    /// frame's x-origin is rounded down to a multiple of 64 so all grids
    /// share one bit phase.
    pub fn with_bounds(min: Coord, max: Coord) -> Self {
        assert!(min.x <= max.x && min.y <= max.y, "invalid bounds");
        let origin_x = word_align(min.x);
        let width_words = ((max.x - origin_x) as usize) / 64 + 1;
        let height = (max.y - min.y + 1) as usize;
        BitGrid {
            origin_x,
            origin_y: min.y,
            width_words,
            height,
            words: vec![0; width_words * height],
        }
    }

    /// An all-clear grid covering every node of `mesh`.
    pub fn for_mesh(mesh: &Mesh2D) -> Self {
        BitGrid::with_bounds(
            Coord::ORIGIN,
            Coord::new(mesh.width() - 1, mesh.height() - 1),
        )
    }

    /// Builds a grid from coordinates, framed by their bounding box.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord>) -> Self {
        let coords: Vec<Coord> = coords.into_iter().collect();
        let Some(&first) = coords.first() else {
            return BitGrid::empty();
        };
        let (mut lo, mut hi) = (first, first);
        for &c in &coords[1..] {
            lo = Coord::new(lo.x.min(c.x), lo.y.min(c.y));
            hi = Coord::new(hi.x.max(c.x), hi.y.max(c.y));
        }
        let mut grid = BitGrid::with_bounds(lo, hi);
        for c in coords {
            grid.set(c);
        }
        grid
    }

    /// Builds a grid from a scalar [`Region`].
    pub fn from_region(region: &Region) -> Self {
        BitGrid::from_coords(region.iter())
    }

    /// Converts back to a scalar [`Region`].
    pub fn to_region(&self) -> Region {
        Region::from_coords(self.iter())
    }

    /// True when the frame covers `c` (regardless of the bit value).
    #[inline]
    pub fn in_frame(&self, c: Coord) -> bool {
        c.y >= self.origin_y
            && c.y < self.origin_y + self.height as i32
            && c.x >= self.origin_x
            && ((c.x - self.origin_x) as usize) < self.width_words * 64
    }

    #[inline]
    fn pos(&self, c: Coord) -> (usize, u64) {
        debug_assert!(self.in_frame(c));
        let dx = (c.x - self.origin_x) as usize;
        let row = (c.y - self.origin_y) as usize;
        (row * self.width_words + dx / 64, 1u64 << (dx % 64))
    }

    /// Membership test; coordinates outside the frame are absent.
    #[inline]
    pub fn contains(&self, c: Coord) -> bool {
        if !self.in_frame(c) {
            return false;
        }
        let (i, bit) = self.pos(c);
        self.words[i] & bit != 0
    }

    /// Sets the bit at `c`, which must lie inside the frame. Returns `true`
    /// when newly set.
    #[inline]
    pub fn set(&mut self, c: Coord) -> bool {
        let (i, bit) = self.pos(c);
        let newly = self.words[i] & bit == 0;
        self.words[i] |= bit;
        newly
    }

    /// Inserts `c`, growing the frame when necessary. Returns `true` when
    /// newly set. Growth reallocates; hot loops should size the frame up
    /// front via [`with_bounds`](Self::with_bounds).
    pub fn insert(&mut self, c: Coord) -> bool {
        if self.words.is_empty() {
            *self = BitGrid::with_bounds(c, c);
            return self.set(c);
        }
        if !self.in_frame(c) {
            let (lo, hi) = self.frame_bounds();
            self.regrow(
                Coord::new(lo.x.min(c.x), lo.y.min(c.y)),
                Coord::new(hi.x.max(c.x), hi.y.max(c.y)),
            );
        }
        self.set(c)
    }

    /// Clears the bit at `c`. Returns `true` when it was set.
    #[inline]
    pub fn remove(&mut self, c: Coord) -> bool {
        if !self.in_frame(c) {
            return false;
        }
        let (i, bit) = self.pos(c);
        let was = self.words[i] & bit != 0;
        self.words[i] &= !bit;
        was
    }

    /// Clears every bit, keeping the frame and allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-frames the grid to cover `min..=max` with every bit clear,
    /// reusing the existing allocation when its capacity suffices.
    /// Returns `true` when the backing storage had to grow — the signal
    /// steady-state callers track for their no-allocation assertions.
    pub fn reset_frame(&mut self, min: Coord, max: Coord) -> bool {
        assert!(min.x <= max.x && min.y <= max.y, "invalid bounds");
        let origin_x = word_align(min.x);
        let width_words = ((max.x - origin_x) as usize) / 64 + 1;
        let height = (max.y - min.y + 1) as usize;
        let needed = width_words * height;
        let grew = needed > self.words.capacity();
        self.words.clear();
        self.words.resize(needed, 0);
        self.origin_x = origin_x;
        self.origin_y = min.y;
        self.width_words = width_words;
        self.height = height;
        grew
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The frame's covered coordinate range `(min, max)`, inclusive. The
    /// frame of an [`empty`](Self::empty) grid is degenerate.
    fn frame_bounds(&self) -> (Coord, Coord) {
        (
            Coord::new(self.origin_x, self.origin_y),
            Coord::new(
                self.origin_x + (self.width_words * 64) as i32 - 1,
                self.origin_y + self.height as i32 - 1,
            ),
        )
    }

    /// Reallocates to a frame covering `min..=max` (which must contain the
    /// current frame's set bits), copying whole words (frames share the
    /// 64-aligned x phase).
    fn regrow(&mut self, min: Coord, max: Coord) {
        let mut grown = BitGrid::with_bounds(min, max);
        let dw = ((self.origin_x - grown.origin_x) / 64) as usize;
        for row in 0..self.height {
            let y = self.origin_y + row as i32;
            let grow_row = (y - grown.origin_y) as usize;
            let src = &self.words[row * self.width_words..(row + 1) * self.width_words];
            let dst_start = grow_row * grown.width_words + dw;
            grown.words[dst_start..dst_start + self.width_words].copy_from_slice(src);
        }
        *self = grown;
    }

    /// Iterates set bits in row-major order (by `y`, then `x`).
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.height).flat_map(move |row| {
            let y = self.origin_y + row as i32;
            (0..self.width_words).flat_map(move |j| {
                let mut w = self.words[row * self.width_words + j];
                let base_x = self.origin_x + (j * 64) as i32;
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(Coord::new(base_x + b as i32, y))
                })
            })
        })
    }

    /// The smallest set coordinate in the **x-major** order of [`Coord`]'s
    /// `Ord` (smallest `x`, then smallest `y`) — the key [`Region`]
    /// components are sorted by.
    pub fn min_coord_x_major(&self) -> Option<Coord> {
        let mut best: Option<Coord> = None;
        'cols: for j in 0..self.width_words {
            let mut column_or = 0u64;
            for row in 0..self.height {
                column_or |= self.words[row * self.width_words + j];
            }
            if column_or == 0 {
                continue;
            }
            let x_bit = column_or.trailing_zeros();
            let bit = 1u64 << x_bit;
            for row in 0..self.height {
                if self.words[row * self.width_words + j] & bit != 0 {
                    best = Some(Coord::new(
                        self.origin_x + (j * 64) as i32 + x_bit as i32,
                        self.origin_y + row as i32,
                    ));
                    break 'cols;
                }
            }
        }
        // The found bit is the first set bit of the leftmost non-empty
        // word column, but a smaller x may hide in the same word column's
        // other bits only if this word column is the leftmost with bits —
        // which it is; and within it, `trailing_zeros` of the OR of all
        // rows is the smallest x. `best` is therefore exact.
        best
    }

    /// The tight bounding rectangle of the set bits, or `None` when empty.
    pub fn bounding_rect(&self) -> Option<Rect> {
        let mut min_y = None;
        let mut max_y = 0usize;
        let mut col_or = vec![0u64; self.width_words];
        for row in 0..self.height {
            let slice = &self.words[row * self.width_words..(row + 1) * self.width_words];
            let mut any = false;
            for (acc, &w) in col_or.iter_mut().zip(slice) {
                *acc |= w;
                any |= w != 0;
            }
            if any {
                min_y.get_or_insert(row);
                max_y = row;
            }
        }
        let min_y = min_y?;
        let first = col_or.iter().position(|&w| w != 0).expect("non-empty");
        let last = col_or.iter().rposition(|&w| w != 0).expect("non-empty");
        let min_x = self.origin_x + (first * 64) as i32 + col_or[first].trailing_zeros() as i32;
        let max_x = self.origin_x + (last * 64) as i32 + 63 - col_or[last].leading_zeros() as i32;
        Some(Rect::new(
            Coord::new(min_x, self.origin_y + min_y as i32),
            Coord::new(max_x, self.origin_y + max_y as i32),
        ))
    }

    /// Calls `f(self_word, other_word)` for every word position of `self`,
    /// with `other`'s word at the same coordinate position (0 where the
    /// frames do not overlap).
    #[inline]
    fn zip_words(&self, other: &BitGrid, mut f: impl FnMut(u64, u64)) {
        let dw = (self.origin_x - other.origin_x) / 64;
        for row in 0..self.height {
            let y = self.origin_y + row as i32;
            let other_row = y - other.origin_y;
            for j in 0..self.width_words {
                let ow = if (0..other.height as i32).contains(&other_row) {
                    let oj = j as i64 + dw as i64;
                    if oj >= 0 && (oj as usize) < other.width_words {
                        other.words[other_row as usize * other.width_words + oj as usize]
                    } else {
                        0
                    }
                } else {
                    0
                };
                f(self.words[row * self.width_words + j], ow);
            }
        }
    }

    /// Like [`zip_words`](Self::zip_words) but writes `f`'s result back
    /// into `self`'s word.
    #[inline]
    fn zip_words_mut(&mut self, other: &BitGrid, mut f: impl FnMut(u64, u64) -> u64) {
        let dw = (self.origin_x - other.origin_x) / 64;
        for row in 0..self.height {
            let y = self.origin_y + row as i32;
            let other_row = y - other.origin_y;
            for j in 0..self.width_words {
                let ow = if (0..other.height as i32).contains(&other_row) {
                    let oj = j as i64 + dw as i64;
                    if oj >= 0 && (oj as usize) < other.width_words {
                        other.words[other_row as usize * other.width_words + oj as usize]
                    } else {
                        0
                    }
                } else {
                    0
                };
                let w = &mut self.words[row * self.width_words + j];
                *w = f(*w, ow);
            }
        }
    }

    /// True when the two grids share at least one set bit — a whole-word
    /// AND scan over the frame overlap.
    pub fn intersects(&self, other: &BitGrid) -> bool {
        let mut hit = false;
        self.zip_words(other, |a, b| hit |= a & b != 0);
        hit
    }

    /// True when every set bit of `self` is set in `other` — a whole-word
    /// AND-NOT scan.
    pub fn is_subset_of(&self, other: &BitGrid) -> bool {
        let mut ok = true;
        self.zip_words(other, |a, b| ok &= a & !b == 0);
        ok
    }

    /// `self |= other`, growing the frame to cover `other`'s set bits when
    /// necessary.
    pub fn union_with(&mut self, other: &BitGrid) {
        if let Some(rect) = other.bounding_rect() {
            if self.words.is_empty() {
                *self = BitGrid::with_bounds(rect.min(), rect.max());
            } else if !(self.in_frame(rect.min()) && self.in_frame(rect.max())) {
                let (lo, hi) = self.frame_bounds();
                self.regrow(
                    Coord::new(lo.x.min(rect.min().x), lo.y.min(rect.min().y)),
                    Coord::new(hi.x.max(rect.max().x), hi.y.max(rect.max().y)),
                );
            }
            self.zip_words_mut(other, |a, b| a | b);
        }
    }

    /// `self &= !other` — a whole-word AND-NOT over the frame overlap.
    pub fn subtract(&mut self, other: &BitGrid) {
        self.zip_words_mut(other, |a, b| a & !b);
    }

    /// The 8-neighborhood dilation (Definition 2 adjacency): every set bit
    /// plus its eight neighbors, as shifted-word ORs. The result's frame
    /// grows by one node in every direction so border bits are kept.
    pub fn dilate8(&self) -> BitGrid {
        let Some(rect) = self.bounding_rect() else {
            return BitGrid::empty();
        };
        let mut out = BitGrid::with_bounds(
            Coord::new(rect.min().x - 1, rect.min().y - 1),
            Coord::new(rect.max().x + 1, rect.max().y + 1),
        );
        let ww = out.width_words;
        // Word offset of this frame's word 0 inside the output frame. The
        // output frame tightly wraps the *content*, so it can start to the
        // right of (or end before) this frame — clamp the copy window.
        let dw = ((self.origin_x - out.origin_x) / 64) as i64;
        // Spread each source row horizontally into the output frame, then
        // OR it into the three output rows it reaches.
        let mut src = vec![0u64; ww];
        let mut spread = vec![0u64; ww];
        for row in 0..self.height {
            let words = &self.words[row * self.width_words..(row + 1) * self.width_words];
            if words.iter().all(|&w| w == 0) {
                continue;
            }
            let y = self.origin_y + row as i32;
            src.fill(0);
            for (j, &w) in words.iter().enumerate() {
                let oj = j as i64 + dw;
                if (0..ww as i64).contains(&oj) {
                    // Words outside the output frame hold no set bits (the
                    // frame covers the content bounding box plus margin).
                    src[oj as usize] = w;
                }
            }
            spread_row(&src, &mut spread);
            for out_y in (y - 1)..=(y + 1) {
                let out_row = (out_y - out.origin_y) as usize;
                if out_row < out.height {
                    let dst = &mut out.words[out_row * ww..(out_row + 1) * ww];
                    for (d, &s) in dst.iter_mut().zip(&spread) {
                        *d |= s;
                    }
                }
            }
        }
        out
    }

    /// Decomposes the set bits into connected components under `adjacency`
    /// — the word-scan flood: each component starts from a find-first-set
    /// seed and expands a whole-word frontier (horizontal spread plus row
    /// ORs) until it stops growing.
    ///
    /// Components are returned in the same deterministic order as
    /// [`Region::components`]: sorted by their smallest node in `Coord`'s
    /// x-major order. Each component's grid is framed by its own bounding
    /// box.
    pub fn components(&self, adjacency: Connectivity) -> Vec<BitGrid> {
        let mut scratch = BitScratch::new();
        self.components_with(adjacency, &mut scratch)
    }

    /// [`components`](Self::components) with caller-provided scratch
    /// buffers, for allocation-free steady-state use.
    pub fn components_with(
        &self,
        adjacency: Connectivity,
        scratch: &mut BitScratch,
    ) -> Vec<BitGrid> {
        let mut out = Vec::new();
        self.for_each_component_with(adjacency, scratch, |view| out.push(view.to_grid()));
        out.sort_by_key(|g| g.min_coord_x_major().expect("components are non-empty"));
        out
    }

    /// Visits every connected component **in place**: each component is
    /// flooded into a shared scratch buffer and handed to `f` as a
    /// [`ComponentRows`] view, with no per-component grid allocated. The
    /// view may mutate the component's bits inside its bounding box (the
    /// fused construction runs the hull fixpoint right there) before
    /// extracting whatever it needs.
    ///
    /// Components are visited in **discovery order** (row-major by first
    /// cell); callers needing the x-major component order of
    /// [`Region::components`] sort by
    /// [`ComponentRows::min_coord_x_major`].
    pub fn for_each_component_with(
        &self,
        adjacency: Connectivity,
        scratch: &mut BitScratch,
        mut f: impl FnMut(&mut ComponentRows<'_>),
    ) {
        let ww = self.width_words;
        let total = self.words.len();
        if total == 0 {
            return;
        }
        scratch.prepare(total);
        let BitScratch {
            a: visited,
            b: comp,
            c: frontier,
            d: spread,
            e: next,
            zeros,
            ..
        } = scratch;
        let zeros = &zeros[..ww];

        for seed_word in 0..total {
            loop {
                let avail = self.words[seed_word] & !visited[seed_word];
                if avail == 0 {
                    break;
                }
                let seed_bit = 1u64 << avail.trailing_zeros();
                let seed_row = seed_word / ww;

                // Singleton fast path: a seed with an empty 3×3
                // neighborhood is its own component under either adjacency
                // — skip the flood loop. (Word-edge bits take the general
                // path; their neighborhood spans words.)
                if seed_bit & (1 | 1 << 63) == 0 {
                    let mask3 = (seed_bit << 1) | seed_bit | (seed_bit >> 1);
                    let j = seed_word % ww;
                    let mut nb = self.words[seed_word] & mask3 & !seed_bit;
                    if seed_row > 0 {
                        nb |= self.words[(seed_row - 1) * ww + j] & mask3;
                    }
                    if seed_row + 1 < self.height {
                        nb |= self.words[(seed_row + 1) * ww + j] & mask3;
                    }
                    if nb == 0 {
                        visited[seed_word] |= seed_bit;
                        comp[seed_word] = seed_bit;
                        let mut view = ComponentRows {
                            comp,
                            fill: spread,
                            aux: next,
                            ww,
                            origin_x: self.origin_x,
                            origin_y: self.origin_y,
                            row_lo: seed_row,
                            row_hi: seed_row,
                        };
                        f(&mut view);
                        let row = seed_row * ww;
                        comp[row..row + ww].fill(0);
                        spread[row..row + ww].fill(0);
                        next[row..row + ww].fill(0);
                        continue;
                    }
                }
                comp[seed_word] = seed_bit;
                frontier[seed_word] = seed_bit;
                // Frontier row range and overall component row range.
                let (mut lo, mut hi) = (seed_row, seed_row);
                let (mut comp_lo, mut comp_hi) = (seed_row, seed_row);
                loop {
                    // Horizontal spread of the frontier rows: for
                    // 8-adjacency the {x-1, x, x+1} OR (serves the same
                    // row *and* the diagonal reach of the rows above and
                    // below); for 4-adjacency only the strict west/east
                    // shifts (the vertical reach is the frontier itself).
                    for y in lo..=hi {
                        let row = y * ww;
                        match adjacency {
                            Connectivity::Eight => {
                                spread_row(&frontier[row..row + ww], &mut spread[row..row + ww]);
                            }
                            Connectivity::Four => {
                                spread_row_strict(
                                    &frontier[row..row + ww],
                                    &mut spread[row..row + ww],
                                );
                            }
                        }
                    }
                    let scan_lo = lo.saturating_sub(1);
                    let scan_hi = (hi + 1).min(self.height - 1);
                    let mut any = false;
                    let (mut next_lo, mut next_hi) = (usize::MAX, 0usize);
                    let _ = zeros;
                    // Vertical neighbor source: the spread rows under
                    // 8-adjacency (diagonals included), the raw frontier
                    // rows under 4-adjacency.
                    for y in scan_lo..=scan_hi {
                        let in_frontier = |row: usize| row >= lo && row <= hi;
                        for j in 0..ww {
                            let mut nb = 0u64;
                            if y >= 1 && in_frontier(y - 1) {
                                nb |= match adjacency {
                                    Connectivity::Eight => spread[(y - 1) * ww + j],
                                    Connectivity::Four => frontier[(y - 1) * ww + j],
                                };
                            }
                            if in_frontier(y + 1) {
                                nb |= match adjacency {
                                    Connectivity::Eight => spread[(y + 1) * ww + j],
                                    Connectivity::Four => frontier[(y + 1) * ww + j],
                                };
                            }
                            if in_frontier(y) {
                                // The 8-spread includes the frontier
                                // itself; `& !comp` filters it. The
                                // 4-spread is the strict west/east mask.
                                nb |= spread[y * ww + j];
                            }
                            let grow = nb & self.words[y * ww + j] & !comp[y * ww + j];
                            next[y * ww + j] = grow;
                            if grow != 0 {
                                comp[y * ww + j] |= grow;
                                any = true;
                                next_lo = next_lo.min(y);
                                next_hi = next_hi.max(y);
                            }
                        }
                    }
                    if !any {
                        break;
                    }
                    // The fresh grow masks become the frontier; the old
                    // frontier's rows are zeroed so the (now spare) buffer
                    // holds no stale bits for the following round.
                    std::mem::swap(frontier, next);
                    for y in lo..=hi {
                        next[y * ww..(y + 1) * ww].fill(0);
                    }
                    (lo, hi) = (next_lo, next_hi);
                    comp_lo = comp_lo.min(lo);
                    comp_hi = comp_hi.max(hi);
                }

                // Mark visited before the visitor runs (the visitor may
                // grow `comp` inside the bounding box, e.g. hull filling,
                // and such fill nodes must not seed new components — they
                // are not occupancy bits of `self`, so `avail` cannot see
                // them anyway).
                for y in comp_lo..=comp_hi {
                    for j in 0..ww {
                        visited[y * ww + j] |= comp[y * ww + j];
                    }
                }

                let mut view = ComponentRows {
                    comp,
                    fill: spread,
                    aux: next,
                    ww,
                    origin_x: self.origin_x,
                    origin_y: self.origin_y,
                    row_lo: comp_lo,
                    row_hi: comp_hi,
                };
                f(&mut view);

                // Reset the touched rows of every buffer.
                let scan_lo = comp_lo.saturating_sub(1);
                let scan_hi = (comp_hi + 1).min(self.height - 1);
                for y in scan_lo..=scan_hi {
                    let row = y * ww;
                    comp[row..row + ww].fill(0);
                    frontier[row..row + ww].fill(0);
                    spread[row..row + ww].fill(0);
                    next[row..row + ww].fill(0);
                }
            }
        }
    }

    /// One snapshot round of the concave-section fill: computes the row-gap
    /// and column-gap fills **both with respect to the current state** (the
    /// semantics of Definition 3's scan-then-fill iteration), then applies
    /// them. Returns the number of bits added.
    fn fill_gaps_round(&mut self, scratch: &mut BitScratch) -> u64 {
        let ww = self.width_words;
        let total = self.words.len();
        scratch.prepare(total);
        let BitScratch {
            a: row_fill,
            b: col_fill,
            c: prefix,
            d: span,
            ..
        } = scratch;

        // Row gaps: span mask (trailing/leading-zero counts) minus the row.
        for y in 0..self.height {
            let row = &self.words[y * ww..(y + 1) * ww];
            if row_span_mask(row, &mut span[..ww]) {
                for j in 0..ww {
                    row_fill[y * ww + j] = span[j] & !row[j];
                }
            } else {
                row_fill[y * ww..(y + 1) * ww].fill(0);
            }
        }

        // Column gaps, word-parallel across all 64 columns of each word:
        // prefix[y] = OR of rows 0..=y, then a downward suffix sweep gives
        // fill[y] = prefix[y] & suffix[y] & !row[y].
        for j in 0..ww {
            let mut acc = 0u64;
            for y in 0..self.height {
                acc |= self.words[y * ww + j];
                prefix[y * ww + j] = acc;
            }
            let mut suffix = 0u64;
            for y in (0..self.height).rev() {
                let row = self.words[y * ww + j];
                suffix |= row;
                col_fill[y * ww + j] = prefix[y * ww + j] & suffix & !row;
            }
        }

        let mut added = 0u64;
        for i in 0..total {
            let fill = row_fill[i] | col_fill[i];
            added += (fill & !self.words[i]).count_ones() as u64;
            self.words[i] |= fill;
        }
        added
    }

    /// Fills the grid to its minimum orthogonal convex superset in place —
    /// the bit-parallel hull fixpoint. Returns `(iterations, added)` where
    /// `iterations` counts the scan-then-fill rounds that inserted at least
    /// one node (the concave-section solver's iteration count) and `added`
    /// the total number of inserted nodes.
    ///
    /// The fill never leaves the bounding box of the input, so the frame
    /// never grows.
    pub fn hull_fixpoint(&mut self, scratch: &mut BitScratch) -> (u32, u64) {
        let mut iterations = 0;
        let mut added = 0;
        loop {
            let grown = self.fill_gaps_round(scratch);
            if grown == 0 {
                break;
            }
            iterations += 1;
            added += grown;
        }
        (iterations, added)
    }

    /// The orthogonal-convexity test of Definition 1, word-parallel: every
    /// row's bits form one contiguous run (span mask equals the row) and
    /// every column's bits form one contiguous run (no bit reappears after
    /// its column run has ended).
    pub fn is_orthogonally_convex(&self) -> bool {
        let ww = self.width_words;
        let mut span = vec![0u64; ww];
        for y in 0..self.height {
            let row = &self.words[y * ww..(y + 1) * ww];
            if row_span_mask(row, &mut span) && span.iter().zip(row).any(|(&s, &r)| s != r) {
                return false;
            }
        }
        let mut started = vec![0u64; ww];
        let mut ended = vec![0u64; ww];
        for y in 0..self.height {
            for j in 0..ww {
                let row = self.words[y * ww + j];
                if row & ended[j] != 0 {
                    return false;
                }
                ended[j] |= started[j] & !row;
                started[j] |= row;
            }
        }
        true
    }
}

/// One connected component, viewed in place inside the shared flood
/// buffer of [`BitGrid::for_each_component_with`]: the component's bits
/// live in `comp` within rows `row_lo..=row_hi` of the parent grid's
/// frame, and `fill`/`aux` are working buffers for the in-place hull.
pub struct ComponentRows<'a> {
    comp: &'a mut [u64],
    fill: &'a mut [u64],
    aux: &'a mut [u64],
    ww: usize,
    origin_x: i32,
    origin_y: i32,
    row_lo: usize,
    row_hi: usize,
}

impl ComponentRows<'_> {
    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.comp[self.row_lo * self.ww..(self.row_hi + 1) * self.ww]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Components are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates the set bits in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        (self.row_lo..=self.row_hi).flat_map(move |row| {
            let y = self.origin_y + row as i32;
            (0..self.ww).flat_map(move |j| {
                let mut w = self.comp[row * self.ww + j];
                let base_x = self.origin_x + (j * 64) as i32;
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(Coord::new(base_x + b as i32, y))
                })
            })
        })
    }

    /// The component as a scalar [`Region`].
    pub fn to_region(&self) -> Region {
        // Small sets build cheaper by direct insertion (one tree node, no
        // intermediate vector); larger ones go through the bulk path.
        if self.len() <= 16 {
            let mut region = Region::new();
            for c in self.iter() {
                region.insert(c);
            }
            region
        } else {
            Region::from_coords(self.iter())
        }
    }

    /// The smallest set coordinate in `Coord`'s x-major order — the key
    /// that reproduces [`Region::components`]'s deterministic ordering.
    pub fn min_coord_x_major(&self) -> Coord {
        for j in 0..self.ww {
            let mut column_or = 0u64;
            for row in self.row_lo..=self.row_hi {
                column_or |= self.comp[row * self.ww + j];
            }
            if column_or == 0 {
                continue;
            }
            let bit = 1u64 << column_or.trailing_zeros();
            for row in self.row_lo..=self.row_hi {
                if self.comp[row * self.ww + j] & bit != 0 {
                    return Coord::new(
                        self.origin_x + (j * 64) as i32 + bit.trailing_zeros() as i32,
                        self.origin_y + row as i32,
                    );
                }
            }
        }
        unreachable!("components are never empty")
    }

    /// Extracts the component into its own tightly-framed [`BitGrid`].
    pub fn to_grid(&self) -> BitGrid {
        let ww = self.ww;
        let mut col_or = vec![0u64; ww];
        let (mut min_row, mut max_row) = (usize::MAX, 0usize);
        for y in self.row_lo..=self.row_hi {
            let mut any = false;
            for (j, acc) in col_or.iter_mut().enumerate() {
                let w = self.comp[y * ww + j];
                *acc |= w;
                any |= w != 0;
            }
            if any {
                min_row = min_row.min(y);
                max_row = max_row.max(y);
            }
        }
        assert!(min_row != usize::MAX, "components are never empty");
        let first = col_or.iter().position(|&w| w != 0).expect("non-empty");
        let last = col_or.iter().rposition(|&w| w != 0).expect("non-empty");
        let min_x = self.origin_x + (first * 64) as i32 + col_or[first].trailing_zeros() as i32;
        let max_x = self.origin_x + (last * 64) as i32 + 63 - col_or[last].leading_zeros() as i32;
        let mut out = BitGrid::with_bounds(
            Coord::new(min_x, self.origin_y + min_row as i32),
            Coord::new(max_x, self.origin_y + max_row as i32),
        );
        let dw = ((out.origin_x - self.origin_x) / 64) as usize;
        for y in min_row..=max_row {
            let dst_row = y - min_row;
            let dst = &mut out.words[dst_row * out.width_words..(dst_row + 1) * out.width_words];
            dst.copy_from_slice(&self.comp[y * ww + dw..y * ww + dw + dst.len()]);
        }
        out
    }

    /// The in-place hull fixpoint: fills the component to its minimum
    /// orthogonal convex superset inside the shared buffer (never leaving
    /// the component's bounding box) and returns `(iterations, added)`
    /// with the concave-section solver's scan-then-fill round semantics.
    pub fn hull_fixpoint(&mut self) -> (u32, u64) {
        let ww = self.ww;
        let (lo, hi) = (self.row_lo, self.row_hi);
        let mut iterations = 0u32;
        let mut added = 0u64;
        loop {
            // Row spans (assignment pass — overwrites any stale content).
            for y in lo..=hi {
                let row_at = y * ww;
                let (comp_row, fill_row) = (
                    &self.comp[row_at..row_at + ww],
                    &mut self.fill[row_at..row_at + ww],
                );
                row_span_mask(comp_row, fill_row);
                for j in 0..ww {
                    fill_row[j] &= !comp_row[j];
                }
            }
            // Column fills w.r.t. the same snapshot, word-parallel:
            // prefix into `aux`, then a reverse suffix sweep.
            for j in 0..ww {
                let mut acc = 0u64;
                for y in lo..=hi {
                    let i = y * ww + j;
                    acc |= self.comp[i];
                    self.aux[i] = acc;
                }
                let mut suffix = 0u64;
                for y in (lo..=hi).rev() {
                    let i = y * ww + j;
                    let row = self.comp[i];
                    suffix |= row;
                    self.fill[i] |= self.aux[i] & suffix & !row;
                }
            }
            // Apply.
            let mut grown = 0u64;
            for i in lo * ww..(hi + 1) * ww {
                grown += self.fill[i].count_ones() as u64;
                self.comp[i] |= self.fill[i];
            }
            if grown == 0 {
                break;
            }
            iterations += 1;
            added += grown;
        }
        (iterations, added)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(list: &[(i32, i32)]) -> Vec<Coord> {
        list.iter().map(|&(x, y)| Coord::new(x, y)).collect()
    }

    fn region(list: &[(i32, i32)]) -> Region {
        Region::from_coords(coords(list))
    }

    #[test]
    fn set_get_and_len_round_trip() {
        let mut g = BitGrid::with_bounds(Coord::new(0, 0), Coord::new(70, 5));
        assert!(g.is_empty());
        assert!(g.set(Coord::new(0, 0)));
        assert!(g.set(Coord::new(70, 5)));
        assert!(!g.set(Coord::new(70, 5)), "duplicate set");
        assert!(g.contains(Coord::new(0, 0)));
        assert!(!g.contains(Coord::new(1, 0)));
        assert!(!g.contains(Coord::new(-1, -1)), "outside the frame");
        assert_eq!(g.len(), 2);
        assert!(g.remove(Coord::new(0, 0)));
        assert!(!g.remove(Coord::new(0, 0)));
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn from_region_round_trips_through_to_region() {
        for shape in [
            region(&[(0, 0), (63, 0), (64, 0), (65, 3), (-7, -3)]),
            region(&[(5, 5)]),
            Region::new(),
        ] {
            let g = BitGrid::from_region(&shape);
            assert_eq!(g.to_region(), shape);
            assert_eq!(g.len(), shape.len());
        }
    }

    #[test]
    fn insert_grows_the_frame() {
        let mut g = BitGrid::empty();
        assert!(g.insert(Coord::new(100, 100)));
        assert!(g.insert(Coord::new(-100, -3)));
        assert!(!g.insert(Coord::new(100, 100)));
        assert_eq!(g.len(), 2);
        assert!(g.contains(Coord::new(100, 100)));
        assert!(g.contains(Coord::new(-100, -3)));
    }

    #[test]
    fn iter_is_row_major_and_min_coord_is_x_major() {
        let g = BitGrid::from_coords(coords(&[(5, 2), (1, 7), (63, 2), (64, 2)]));
        let seen: Vec<Coord> = g.iter().collect();
        assert_eq!(seen, coords(&[(5, 2), (63, 2), (64, 2), (1, 7)]));
        assert_eq!(g.min_coord_x_major(), Some(Coord::new(1, 7)));
        assert_eq!(BitGrid::empty().min_coord_x_major(), None);
    }

    #[test]
    fn bounding_rect_is_tight() {
        let g = BitGrid::from_coords(coords(&[(3, 9), (120, 4)]));
        let r = g.bounding_rect().unwrap();
        assert_eq!(r.min(), Coord::new(3, 4));
        assert_eq!(r.max(), Coord::new(120, 9));
        assert_eq!(BitGrid::empty().bounding_rect(), None);
    }

    #[test]
    fn set_algebra_across_offset_frames() {
        let a = BitGrid::from_coords(coords(&[(0, 0), (70, 3), (130, 5)]));
        let b = BitGrid::from_coords(coords(&[(70, 3), (200, 9)]));
        assert!(a.intersects(&b));
        assert!(!a.is_subset_of(&b));
        assert!(BitGrid::from_coords(coords(&[(70, 3)])).is_subset_of(&a));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        assert!(u.contains(Coord::new(200, 9)));

        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(d.to_region(), region(&[(0, 0), (130, 5)]));

        let far = BitGrid::from_coords(coords(&[(500, 500)]));
        assert!(!a.intersects(&far));
    }

    #[test]
    fn dilate8_matches_scalar_neighborhoods() {
        for shape in [
            region(&[(0, 0)]),
            region(&[(63, 2), (64, 2)]),
            region(&[(5, 5), (9, 9), (10, 8)]),
        ] {
            let expected = Region::from_coords(
                shape
                    .iter()
                    .flat_map(|c| c.neighbors8().into_iter().chain([c])),
            );
            let dilated = BitGrid::from_region(&shape).dilate8();
            assert_eq!(dilated.to_region(), expected, "shape {shape:?}");
        }
        assert!(BitGrid::empty().dilate8().is_empty());
    }

    #[test]
    fn dilate8_handles_frames_wider_than_their_content() {
        // A mesh-wide frame with one bit near the origin: the dilated
        // content bbox is *narrower in words* than the source frame, and
        // a bit in the second word makes the word offset negative.
        let mesh = Mesh2D::mesh(128, 4);
        for seed in [Coord::new(0, 0), Coord::new(127, 3), Coord::new(64, 1)] {
            let mut g = BitGrid::for_mesh(&mesh);
            g.set(seed);
            let expected = Region::from_coords(std::iter::once(seed).chain(seed.neighbors8()));
            assert_eq!(g.dilate8().to_region(), expected, "seed {seed}");
        }
    }

    #[test]
    fn components_match_region_components() {
        let shapes = [
            region(&[(0, 0), (1, 1), (3, 3), (63, 0), (64, 0), (64, 1)]),
            region(&[(5, 5), (0, 0), (5, 6), (7, 7)]),
            region(&[(2, 2)]),
            Region::new(),
        ];
        for shape in shapes {
            let g = BitGrid::from_region(&shape);
            for adjacency in [Connectivity::Four, Connectivity::Eight] {
                let expected = shape.components(adjacency);
                let got: Vec<Region> = g
                    .components(adjacency)
                    .iter()
                    .map(BitGrid::to_region)
                    .collect();
                assert_eq!(got, expected, "{adjacency:?} of {shape:?}");
            }
        }
    }

    #[test]
    fn hull_fixpoint_matches_region_hull() {
        let shapes = [
            region(&[(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)]),
            region(&[(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)]),
            region(&[(2, 4), (3, 4), (4, 3)]),
            region(&[(60, 0), (66, 0), (63, 3)]),
        ];
        for shape in shapes {
            let mut g = BitGrid::from_region(&shape);
            let before = g.len();
            let (iters, added) = g.hull_fixpoint(&mut BitScratch::new());
            assert_eq!(g.to_region(), shape.orthogonal_convex_hull(), "{shape:?}");
            assert_eq!(added as usize, g.len() - before);
            if added > 0 {
                assert!(iters >= 1);
            } else {
                assert_eq!(iters, 0);
            }
            assert!(g.is_orthogonally_convex());
        }
    }

    #[test]
    fn convexity_matches_region_test() {
        let shapes = [
            (region(&[(2, 4), (3, 4), (4, 3)]), true),
            (region(&[(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)]), false),
            (region(&[(0, 0), (1, 1), (2, 2), (3, 3)]), true),
            (region(&[(62, 0), (65, 0)]), false),
            (Region::new(), true),
        ];
        for (shape, expected) in shapes {
            assert_eq!(shape.is_orthogonally_convex(), expected);
            assert_eq!(
                BitGrid::from_region(&shape).is_orthogonally_convex(),
                expected,
                "{shape:?}"
            );
        }
    }

    #[test]
    fn scratch_reuse_stops_growing() {
        let mut scratch = BitScratch::new();
        let g = BitGrid::from_coords(coords(&[(0, 0), (1, 1), (40, 40)]));
        g.components_with(Connectivity::Eight, &mut scratch);
        let grows = scratch.grows();
        for _ in 0..5 {
            g.components_with(Connectivity::Eight, &mut scratch);
            let mut h = g.clone();
            h.hull_fixpoint(&mut scratch);
        }
        assert_eq!(scratch.grows(), grows, "steady state allocates nothing");
    }
}
