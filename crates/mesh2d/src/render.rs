//! ASCII rendering of meshes, regions and status maps.
//!
//! The examples and the distributed-protocol traces print small meshes in the
//! style of the paper's figures: `#` for faulty (black) nodes, `o` for
//! non-faulty disabled (gray) nodes, and `.` for enabled nodes. Row `y`
//! increases upwards so that the output matches the paper's orientation
//! (origin at the south-west corner).

use crate::{Coord, Grid, NodeStatus, Region, StatusMap};
use std::fmt::Write as _;

/// Character used for faulty nodes.
pub const FAULTY_CHAR: char = '#';
/// Character used for non-faulty but disabled nodes.
pub const DISABLED_CHAR: char = 'o';
/// Character used for enabled nodes.
pub const ENABLED_CHAR: char = '.';

/// Renders a [`StatusMap`] as ASCII art, north row first.
pub fn render_status(map: &StatusMap) -> String {
    render_grid(map.grid(), |s| match s {
        NodeStatus::Faulty => FAULTY_CHAR,
        NodeStatus::Disabled => DISABLED_CHAR,
        NodeStatus::Enabled => ENABLED_CHAR,
    })
}

/// Renders any grid given a cell-to-character mapping, north row first.
pub fn render_grid<T>(grid: &Grid<T>, mut to_char: impl FnMut(&T) -> char) -> String {
    let mut out = String::with_capacity((grid.width() as usize + 1) * grid.height() as usize);
    for y in (0..grid.height()).rev() {
        for x in 0..grid.width() {
            let c = to_char(&grid[Coord::new(x, y)]);
            out.push(c);
        }
        out.push('\n');
    }
    out
}

/// Renders a set of regions over a `width × height` canvas; each region is
/// drawn with the corresponding character from `symbols` (cycled), enabled
/// background as `.`.
pub fn render_regions(width: u32, height: u32, regions: &[Region], symbols: &[char]) -> String {
    let mut grid = Grid::filled(width, height, ENABLED_CHAR);
    for (i, region) in regions.iter().enumerate() {
        let ch = if symbols.is_empty() {
            DISABLED_CHAR
        } else {
            symbols[i % symbols.len()]
        };
        for c in region.iter() {
            grid.set(c, ch);
        }
    }
    render_grid(&grid, |&c| c)
}

/// Renders a status map together with a y-axis legend, useful in examples.
pub fn render_status_with_axes(map: &StatusMap) -> String {
    let body = render_status(map);
    let mut out = String::new();
    for (i, line) in body.lines().enumerate() {
        let y = map.height() as usize - 1 - i;
        let _ = writeln!(out, "{y:>3} {line}");
    }
    let _ = write!(out, "    ");
    for x in 0..map.width() {
        let _ = write!(out, "{}", x % 10);
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mesh2D, Region};

    #[test]
    fn render_small_status_map() {
        let mesh = Mesh2D::square(3);
        let mut map = StatusMap::all_enabled(&mesh);
        map.set(Coord::new(0, 0), NodeStatus::Faulty);
        map.set(Coord::new(2, 2), NodeStatus::Disabled);
        let art = render_status(&map);
        // north row (y = 2) is printed first
        assert_eq!(art, "..o\n...\n#..\n");
    }

    #[test]
    fn render_regions_cycles_symbols() {
        let a = Region::from_coords([Coord::new(0, 0)]);
        let b = Region::from_coords([Coord::new(1, 0)]);
        let art = render_regions(2, 1, &[a, b], &['A', 'B']);
        assert_eq!(art, "AB\n");
    }

    #[test]
    fn render_with_axes_contains_labels() {
        let mesh = Mesh2D::square(4);
        let map = StatusMap::all_enabled(&mesh);
        let art = render_status_with_axes(&map);
        assert!(art.contains("  3 ...."));
        assert!(art.contains("0123"));
    }

    #[test]
    fn empty_symbol_list_falls_back_to_disabled_char() {
        let a = Region::from_coords([Coord::new(0, 0)]);
        let art = render_regions(1, 1, &[a], &[]);
        assert_eq!(art, "o\n");
    }
}
