//! Arbitrary node sets (regions) with the geometric queries the paper needs.
//!
//! A *region* is any set of mesh nodes. The queries provided here are exactly
//! the ones the algorithms in `fblock` and `mocp-core` are built from:
//!
//! * connectivity decomposition under 4- or 8-adjacency,
//! * the orthogonal-convexity test of Definition 1,
//! * the (iterated) orthogonal convex hull — the minimum orthogonal convex
//!   superset of a region,
//! * bounding boxes and membership tests.

use crate::{Coord, Rect};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Which adjacency relation to use when decomposing a region into connected
/// components.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Connectivity {
    /// 4-adjacency: nodes sharing a mesh link.
    Four,
    /// 8-adjacency (Definition 2): nodes within Chebyshev distance 1. This is
    /// the relation used by the paper's component merge process.
    Eight,
}

/// A set of mesh nodes.
///
/// The set is kept in a `BTreeSet` so iteration order is deterministic, which
/// keeps the distributed protocol simulation and the experiments
/// reproducible.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Region {
    nodes: BTreeSet<Coord>,
}

impl Region {
    /// The empty region.
    pub fn new() -> Self {
        Region::default()
    }

    /// Builds a region from any coordinate collection.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord>) -> Self {
        Region {
            nodes: coords.into_iter().collect(),
        }
    }

    /// Builds a region containing every node of `rect`.
    pub fn from_rect(rect: Rect) -> Self {
        Self::from_coords(rect.nodes())
    }

    /// Number of nodes in the region.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the region contains no node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `c` belongs to the region.
    pub fn contains(&self, c: Coord) -> bool {
        self.nodes.contains(&c)
    }

    /// Inserts a node; returns `true` if it was not present.
    pub fn insert(&mut self, c: Coord) -> bool {
        self.nodes.insert(c)
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, c: Coord) -> bool {
        self.nodes.remove(&c)
    }

    /// Iterates over nodes in deterministic (x-major, then y) order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.nodes.iter().copied()
    }

    /// The union of two regions.
    pub fn union(&self, other: &Region) -> Region {
        Region {
            nodes: self.nodes.union(&other.nodes).copied().collect(),
        }
    }

    /// The set difference `self \ other`.
    pub fn difference(&self, other: &Region) -> Region {
        Region {
            nodes: self.nodes.difference(&other.nodes).copied().collect(),
        }
    }

    /// The intersection of two regions.
    pub fn intersection(&self, other: &Region) -> Region {
        Region {
            nodes: self.nodes.intersection(&other.nodes).copied().collect(),
        }
    }

    /// True when the two regions share no node.
    pub fn is_disjoint(&self, other: &Region) -> bool {
        self.nodes.is_disjoint(&other.nodes)
    }

    /// True when every node of `self` is in `other`.
    pub fn is_subset(&self, other: &Region) -> bool {
        self.nodes.is_subset(&other.nodes)
    }

    /// The bounding box `[(min_x, min_y), (max_x, max_y)]`, or `None` for the
    /// empty region.
    pub fn bounding_rect(&self) -> Option<Rect> {
        Rect::bounding(self.iter())
    }

    /// Decomposes the region into connected components under the given
    /// adjacency. Components are returned in deterministic order (by their
    /// smallest node).
    pub fn components(&self, connectivity: Connectivity) -> Vec<Region> {
        let mut unvisited: BTreeSet<Coord> = self.nodes.clone();
        let mut out = Vec::new();
        while let Some(&start) = unvisited.iter().next() {
            unvisited.remove(&start);
            let mut comp = BTreeSet::new();
            comp.insert(start);
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(c) = queue.pop_front() {
                let neighbors: Vec<Coord> = match connectivity {
                    Connectivity::Four => c.neighbors4().to_vec(),
                    Connectivity::Eight => c.neighbors8().to_vec(),
                };
                for n in neighbors {
                    if unvisited.remove(&n) {
                        comp.insert(n);
                        queue.push_back(n);
                    }
                }
            }
            out.push(Region { nodes: comp });
        }
        out
    }

    /// True when the region is connected under the given adjacency.
    /// The empty region is considered connected.
    pub fn is_connected(&self, connectivity: Connectivity) -> bool {
        self.is_empty() || self.components(connectivity).len() == 1
    }

    /// The orthogonal-convexity test of **Definition 1**: for any horizontal
    /// or vertical line, if two nodes on the line are inside the region then
    /// every node between them is also inside.
    ///
    /// Equivalently, the region's intersection with every row and every
    /// column is a contiguous run.
    pub fn is_orthogonally_convex(&self) -> bool {
        self.rows().values().all(|xs| is_contiguous(xs))
            && self.columns().values().all(|ys| is_contiguous(ys))
    }

    /// Nodes grouped by row: `y -> sorted x coordinates`.
    pub fn rows(&self) -> BTreeMap<i32, Vec<i32>> {
        let mut rows: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
        for c in self.iter() {
            rows.entry(c.y).or_default().push(c.x);
        }
        for xs in rows.values_mut() {
            xs.sort_unstable();
        }
        rows
    }

    /// Nodes grouped by column: `x -> sorted y coordinates`.
    pub fn columns(&self) -> BTreeMap<i32, Vec<i32>> {
        let mut cols: BTreeMap<i32, Vec<i32>> = BTreeMap::new();
        for c in self.iter() {
            cols.entry(c.x).or_default().push(c.y);
        }
        for ys in cols.values_mut() {
            ys.sort_unstable();
        }
        cols
    }

    /// The minimum orthogonal convex superset of this region: repeatedly fill
    /// every gap between two region nodes that share a row or a column until
    /// a fixpoint is reached.
    ///
    /// For an 8-connected region a single fill pass already reaches the
    /// fixpoint, but iterating keeps the result correct for arbitrary input
    /// and makes the convexity of the output self-evident.
    pub fn orthogonal_convex_hull(&self) -> Region {
        let mut hull = self.clone();
        loop {
            let mut added = Vec::new();
            for (&y, xs) in hull.rows().iter() {
                for gap in gaps(xs) {
                    added.push(Coord::new(gap, y));
                }
            }
            for (&x, ys) in hull.columns().iter() {
                for gap in gaps(ys) {
                    added.push(Coord::new(x, gap));
                }
            }
            if added.is_empty() {
                break;
            }
            for c in added {
                hull.insert(c);
            }
        }
        hull
    }

    /// The nodes of `self` that do **not** belong to `other`.
    pub fn minus_count(&self, other: &Region) -> usize {
        self.nodes.iter().filter(|c| !other.contains(**c)).count()
    }

    /// The boundary nodes of the region's complement that are 4-adjacent to
    /// the region — i.e. the non-member nodes hugging the region. Used by the
    /// distributed boundary-ring construction.
    pub fn outer_boundary4(&self) -> Region {
        let mut b = BTreeSet::new();
        for c in self.iter() {
            for n in c.neighbors4() {
                if !self.contains(n) {
                    b.insert(n);
                }
            }
        }
        Region { nodes: b }
    }
}

impl FromIterator<Coord> for Region {
    fn from_iter<T: IntoIterator<Item = Coord>>(iter: T) -> Self {
        Region::from_coords(iter)
    }
}

impl IntoIterator for &Region {
    type Item = Coord;
    type IntoIter = std::vec::IntoIter<Coord>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter().collect::<Vec<_>>().into_iter()
    }
}

/// True when the sorted values form a contiguous integer run.
fn is_contiguous(sorted: &[i32]) -> bool {
    sorted.windows(2).all(|w| w[1] == w[0] + 1)
}

/// Integer values strictly between consecutive entries of a sorted list.
fn gaps(sorted: &[i32]) -> Vec<i32> {
    let mut out = Vec::new();
    for w in sorted.windows(2) {
        for v in (w[0] + 1)..w[1] {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coords(list: &[(i32, i32)]) -> Region {
        Region::from_coords(list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn basic_set_operations() {
        let mut r = Region::new();
        assert!(r.is_empty());
        assert!(r.insert(Coord::new(1, 1)));
        assert!(!r.insert(Coord::new(1, 1)));
        assert_eq!(r.len(), 1);
        assert!(r.contains(Coord::new(1, 1)));
        assert!(r.remove(Coord::new(1, 1)));
        assert!(r.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a = coords(&[(0, 0), (1, 0)]);
        let b = coords(&[(1, 0), (2, 0)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b).len(), 1);
        assert_eq!(a.intersection(&b).len(), 1);
        assert!(!a.is_disjoint(&b));
        assert!(a.difference(&b).is_disjoint(&b));
        assert!(a.intersection(&b).is_subset(&a));
    }

    #[test]
    fn l_shape_from_paper_is_convex() {
        // The paper's Figure 2 example: {(2,4), (3,4), (4,3)} is an L-shape
        // orthogonal convex polygon.
        let l = coords(&[(2, 4), (3, 4), (4, 3)]);
        assert!(l.is_orthogonally_convex());
    }

    #[test]
    fn u_shape_is_not_convex() {
        // U-shape: two vertical arms joined at the bottom — row 1 has nodes
        // at x=0 and x=2 but not x=1.
        let u = coords(&[(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)]);
        assert!(!u.is_orthogonally_convex());
    }

    #[test]
    fn plus_t_shapes_are_convex() {
        let plus = coords(&[(1, 0), (0, 1), (1, 1), (2, 1), (1, 2)]);
        assert!(plus.is_orthogonally_convex());
        let t = coords(&[(0, 1), (1, 1), (2, 1), (1, 0)]);
        assert!(t.is_orthogonally_convex());
    }

    #[test]
    fn h_shape_is_not_convex() {
        let h = coords(&[(0, 0), (0, 1), (0, 2), (2, 0), (2, 1), (2, 2), (1, 1)]);
        // columns are fine but rows 0 and 2 have gaps at x = 1
        assert!(!h.is_orthogonally_convex());
    }

    #[test]
    fn rectangles_are_convex() {
        let r = Region::from_rect(Rect::new(Coord::new(2, 2), Coord::new(5, 4)));
        assert!(r.is_orthogonally_convex());
        assert_eq!(r.len(), 12);
    }

    #[test]
    fn diagonal_staircase_is_convex() {
        // Each row and column holds a single node, so Definition 1 holds
        // vacuously.
        let stairs = coords(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert!(stairs.is_orthogonally_convex());
    }

    #[test]
    fn components_four_vs_eight() {
        // Two diagonal nodes: separate under 4-adjacency, one component under
        // 8-adjacency (Definition 2).
        let r = coords(&[(0, 0), (1, 1)]);
        assert_eq!(r.components(Connectivity::Four).len(), 2);
        assert_eq!(r.components(Connectivity::Eight).len(), 1);
        assert!(!r.is_connected(Connectivity::Four));
        assert!(r.is_connected(Connectivity::Eight));
    }

    #[test]
    fn components_deterministic_order() {
        let r = coords(&[(5, 5), (0, 0), (5, 6)]);
        let comps = r.components(Connectivity::Eight);
        assert_eq!(comps.len(), 2);
        assert!(comps[0].contains(Coord::new(0, 0)));
        assert_eq!(comps[1].len(), 2);
    }

    #[test]
    fn empty_region_is_connected_and_convex() {
        let r = Region::new();
        assert!(r.is_connected(Connectivity::Four));
        assert!(r.is_orthogonally_convex());
        assert!(r.bounding_rect().is_none());
        assert!(r.orthogonal_convex_hull().is_empty());
    }

    #[test]
    fn hull_of_u_shape_fills_the_notch() {
        let u = coords(&[(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)]);
        let hull = u.orthogonal_convex_hull();
        assert!(hull.contains(Coord::new(1, 1)));
        assert_eq!(hull.len(), 6);
        assert!(hull.is_orthogonally_convex());
        assert!(u.is_subset(&hull));
    }

    #[test]
    fn hull_of_v_shape_single_pass_equivalent() {
        // V-shaped 8-connected component; the hull must fill the interior of
        // the V but nothing outside its rows/columns.
        let v = coords(&[(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)]);
        let hull = v.orthogonal_convex_hull();
        assert!(hull.is_orthogonally_convex());
        assert!(hull.contains(Coord::new(2, 1)));
        assert!(hull.contains(Coord::new(2, 2)));
        assert!(!hull.contains(Coord::new(0, 0)));
        assert!(!hull.contains(Coord::new(2, 3)));
    }

    #[test]
    fn hull_is_minimal_for_convex_input() {
        let l = coords(&[(2, 4), (3, 4), (4, 3)]);
        assert_eq!(l.orthogonal_convex_hull(), l);
    }

    #[test]
    fn bounding_rect_matches_extremes() {
        let r = coords(&[(2, 7), (5, 1), (3, 3)]);
        let b = r.bounding_rect().unwrap();
        assert_eq!(b.min(), Coord::new(2, 1));
        assert_eq!(b.max(), Coord::new(5, 7));
    }

    #[test]
    fn outer_boundary_hugs_region() {
        let r = coords(&[(1, 1)]);
        let b = r.outer_boundary4();
        assert_eq!(b.len(), 4);
        assert!(b.contains(Coord::new(0, 1)));
        assert!(b.contains(Coord::new(2, 1)));
        assert!(b.contains(Coord::new(1, 0)));
        assert!(b.contains(Coord::new(1, 2)));
        assert!(b.is_disjoint(&r));
    }

    #[test]
    fn minus_count() {
        let a = coords(&[(0, 0), (1, 0), (2, 0)]);
        let b = coords(&[(1, 0)]);
        assert_eq!(a.minus_count(&b), 2);
        assert_eq!(b.minus_count(&a), 0);
    }
}
