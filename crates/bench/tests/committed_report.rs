//! Pins the committed BENCH_10.json perf report: schema, workload set,
//! and the `--baseline` comparison path.
//!
//! The harness's `--baseline` flag extracts headline numbers from a
//! previous report with [`bench::baseline_min_ms`]; running that same
//! parser against the committed report both validates the file and
//! exercises the comparison exactly as `perf_report --baseline
//! BENCH_10.json` would.

use bench::baseline_min_ms;

const FULL_WORKLOADS: [&str; 7] = [
    "batch_sweep_2d_100x800",
    "incremental_stream_512x20k",
    "paper_figures_2d",
    "paper_figures_3d",
    "serve_ingest_1k_tenants",
    "traffic_512sq",
    "serve_chaos_recovery",
];

fn committed_report() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    std::fs::read_to_string(path).expect("BENCH_10.json is committed at the repo root")
}

#[test]
fn committed_report_uses_the_current_schema() {
    let report = committed_report();
    assert!(
        report.contains("\"schema\": \"mocp-perf-report/3\""),
        "BENCH_10.json must be regenerated with the current harness"
    );
    assert!(
        report.contains("\"mode\": \"full\""),
        "committed reports are full runs"
    );
}

#[test]
fn every_full_workload_is_usable_as_a_baseline() {
    let report = committed_report();
    for name in FULL_WORKLOADS {
        let min = baseline_min_ms(&report, name)
            .unwrap_or_else(|| panic!("workload {name} missing from BENCH_10.json"));
        assert!(
            min.is_finite() && min > 0.0,
            "{name}: headline min must be a positive duration, got {min}"
        );
    }
}

#[test]
fn committed_report_exercised_the_baseline_comparison() {
    // BENCH_10.json was generated with `--baseline BENCH_9.json`, so the
    // pre-existing workloads must carry comparison fields; the chaos
    // workload is new in this report and must not fabricate one.
    let report = committed_report();
    assert!(report.contains("\"baseline_min\""));
    assert!(report.contains("\"speedup\""));
    let chaos_at = report
        .find("\"serve_chaos_recovery\"")
        .expect("chaos workload present");
    assert!(
        !report[chaos_at..].contains("\"speedup\""),
        "the chaos workload had no baseline to compare against"
    );
}

#[test]
fn serve_workload_records_throughput_and_query_latency() {
    let report = committed_report();
    let serve = &report[report
        .find("\"serve_ingest_1k_tenants\"")
        .expect("serve workload present")..];
    assert!(
        serve.contains("events/s"),
        "sustained events/sec belongs in the serve workload's detail"
    );
    assert!(
        serve.contains("\"serve.query.us\""),
        "query-latency histogram (p50/p99) belongs in the serve metrics"
    );
    assert!(serve.contains("\"serve.ingest.events_per_sec\""));
}

#[test]
fn traffic_workload_scales_and_describes_its_cells() {
    let report = committed_report();
    let traffic = &report[report
        .find("\"traffic_512sq\"")
        .expect("traffic workload present")..];
    assert!(
        traffic.contains("512x512"),
        "the traffic workload's detail names the mesh"
    );
    assert!(
        traffic.contains("\"scaling\""),
        "the traffic cells fan out on the measured pool"
    );
}

#[test]
fn chaos_workload_describes_its_fault_plan() {
    let report = committed_report();
    let chaos = &report[report
        .find("\"serve_chaos_recovery\"")
        .expect("chaos workload present")..];
    assert!(
        chaos.contains("worker kills"),
        "the chaos workload's detail names the fault plan"
    );
    assert!(
        chaos.contains("sequential replay"),
        "the chaos workload's detail states the verification oracle"
    );
}
