//! Dense 3-D polyhedron construction versus the specification prototype.
//!
//! Both arms compute the minimum orthogonal convex polyhedra of the *same*
//! clustered fault sets; they differ only in representation:
//!
//! * **prototype** — `mocp_core::extension3d`, per-node `BTreeSet` probes
//!   and full axis-run recomputation (the specification oracle);
//! * **dense** — `mocp_3d`, flat-bitmap floods and the dirty-line hull
//!   that only rescans lines another axis changed.
//!
//! Two clustered workloads: a 20³ mesh at ~7% faults and a 32³ mesh at the
//! sweep's top fault count, where the prototype's log-factor probes hurt
//! most.

use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::FaultDistribution;
use mocp_3d::{generate_faults_3d, Coord3, Mesh3D};
use mocp_core::extension3d;

/// Pre-generates one clustered fault list (setup cost, excluded from
/// timing).
fn clustered_faults(side: u32, count: usize, seed: u64) -> Vec<Coord3> {
    generate_faults_3d(
        Mesh3D::cube(side),
        count,
        FaultDistribution::Clustered,
        seed,
    )
    .in_insertion_order()
    .to_vec()
}

fn dense_polyhedra(faults: &[Coord3]) -> Vec<Vec<Coord3>> {
    mocp_3d::minimum_polyhedra(&mocp_3d::Region3::from_coords(faults.iter().copied()))
        .iter()
        .map(|p| p.iter().collect())
        .collect()
}

fn prototype_polyhedra(faults: &[Coord3]) -> Vec<Vec<Coord3>> {
    extension3d::minimum_polyhedra(&extension3d::Region3::from_coords(faults.iter().copied()))
        .iter()
        .map(|p| p.iter().collect())
        .collect()
}

/// Normalizes polyhedra to sorted coordinate lists for the agreement check.
fn normalize(mut polys: Vec<Vec<Coord3>>) -> Vec<Vec<Coord3>> {
    for p in &mut polys {
        p.sort_unstable();
    }
    polys.sort_unstable();
    polys
}

fn bench_scale(c: &mut Criterion, label: &str, side: u32, count: usize) {
    let faults = clustered_faults(side, count, 2004);

    // The two arms must agree before their cost is worth comparing.
    assert_eq!(
        normalize(dense_polyhedra(&faults)),
        normalize(prototype_polyhedra(&faults)),
        "dense and prototype constructions must produce identical polyhedra"
    );

    let mut group = c.benchmark_group(format!("hull3d_{label}"));
    group.sample_size(10);
    group.bench_function("prototype", |b| {
        b.iter(|| std::hint::black_box(prototype_polyhedra(&faults)))
    });
    group.bench_function("dense", |b| {
        b.iter(|| std::hint::black_box(dense_polyhedra(&faults)))
    });
    group.finish();
}

fn bench_hull3d(c: &mut Criterion) {
    // The ISSUE's acceptance workload: a clustered 20³ mesh.
    bench_scale(c, "20x20x20_600", 20, 600);
    // The sweep's full scale: 32³ at the top fault count.
    bench_scale(c, "32x32x32_800", 32, 800);
}

criterion_group!(benches, bench_hull3d);
criterion_main!(benches);
