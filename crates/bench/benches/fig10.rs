//! Figure 10 benchmark: the average size of a faulty block / polygon under
//! FB, FP and MFP for both fault distribution models.

use bench::figure_config;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig10::figure10;
use experiments::scenario::Scenario;
use experiments::{render_table, run_scenario};
use faultgen::FaultDistribution;

fn bench_fig10(c: &mut Criterion) {
    let config = figure_config();
    let registry = mocp_core::standard_registry();
    let mut group = c.benchmark_group("fig10_region_size");
    group.sample_size(10);
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        let series = figure10(&run_scenario(&registry, &scenario).unwrap());
        eprintln!("{}", render_table(&series));
        group.bench_function(dist.label(), |b| {
            b.iter(|| {
                let result = run_scenario(&registry, &scenario).unwrap();
                std::hint::black_box(figure10(&result))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
