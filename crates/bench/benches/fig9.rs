//! Figure 9 benchmark: the number of non-faulty but disabled nodes under FB,
//! FP and MFP. Running this bench regenerates the Figure 9 series (printed to
//! stderr once per distribution) and measures how long each full sweep takes.

use bench::figure_config;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig9::figure9_raw;
use experiments::scenario::Scenario;
use experiments::{render_table, run_scenario};
use faultgen::FaultDistribution;

fn bench_fig9(c: &mut Criterion) {
    let config = figure_config();
    let registry = mocp_core::standard_registry();
    let mut group = c.benchmark_group("fig9_disabled_nodes");
    group.sample_size(10);
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        // Print the regenerated series once so the bench doubles as a figure
        // reproduction run.
        let series = figure9_raw(&run_scenario(&registry, &scenario).unwrap());
        eprintln!("{}", render_table(&series));
        group.bench_function(dist.label(), |b| {
            b.iter(|| {
                let result = run_scenario(&registry, &scenario).unwrap();
                std::hint::black_box(figure9_raw(&result))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
