//! Ablation: routing quality over FB regions versus MFP regions.
//!
//! The same faults are modelled once as rectangular faulty blocks and once as
//! minimum faulty polygons (both resolved by name from the standard model
//! registry); the extended e-cube router then routes a sample of node pairs
//! over each. MFP keeps more endpoints routable and produces shorter detours
//! — the system-level payoff the paper's introduction argues for.

use bench::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::FaultDistribution;
use meshroute::RoutingExperiment;
use mocp_core::standard_registry;

fn bench_routing(c: &mut Criterion) {
    let registry = standard_registry();
    let (mesh, faults) = workload(FaultDistribution::Clustered, 300, 23);
    let fb = registry
        .construct("FB", &mesh, &faults)
        .expect("registered");
    let mfp = registry
        .construct("CMFP", &mesh, &faults)
        .expect("registered");

    // Report the comparison once: delivery rate and stretch under each model.
    for outcome in [&fb, &mfp] {
        let stats = RoutingExperiment::new(&mesh, &outcome.status, 151).run();
        eprintln!(
            "{}: delivery rate {:.3}, avg stretch {:.3}, avg abnormal hops {:.2}, excluded endpoints {}",
            outcome.model,
            stats.delivery_rate(),
            stats.average_stretch,
            stats.average_abnormal_hops,
            stats.endpoint_excluded,
        );
    }

    let mut group = c.benchmark_group("ablation_routing");
    group.sample_size(10);
    group.bench_function("route_over_fb_regions", |b| {
        b.iter(|| std::hint::black_box(RoutingExperiment::new(&mesh, &fb.status, 307).run()))
    });
    group.bench_function("route_over_mfp_regions", |b| {
        b.iter(|| std::hint::black_box(RoutingExperiment::new(&mesh, &mfp.status, 307).run()))
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
