//! Ablation: routing quality over FB regions versus MFP regions.
//!
//! The same faults are modelled once as rectangular faulty blocks and once as
//! minimum faulty polygons (both resolved by name from the standard model
//! registry); the extended e-cube router then routes a sample of node pairs
//! over each. MFP keeps more endpoints routable and produces shorter detours
//! — the system-level payoff the paper's introduction argues for.

use bench::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::FaultDistribution;
use meshroute::{ExtendedECube, PairSample, RoutingExperiment};
use mocp_core::standard_registry;

fn bench_routing(c: &mut Criterion) {
    let registry = standard_registry();
    let (mesh, faults) = workload(FaultDistribution::Clustered, 300, 23);
    let fb = registry
        .construct("FB", &mesh, &faults)
        .expect("registered");
    let mfp = registry
        .construct("CMFP", &mesh, &faults)
        .expect("registered");

    // Report the comparison once: delivery rate and stretch under each model.
    // One injected pair sample is shared by both models (the same sampler
    // the traffic simulator's reachability probe draws from), so the
    // comparison is paired: identical pairs, different regions.
    let report_sample = PairSample::strided(&mesh, 151);
    for outcome in [&fb, &mfp] {
        let stats =
            RoutingExperiment::with_sample(&mesh, &outcome.status, report_sample.clone()).run();
        eprintln!(
            "{}: delivery rate {:.3}, avg stretch {:.3}, avg abnormal hops {:.2}, excluded endpoints {}",
            outcome.model,
            stats.delivery_rate(),
            stats.average_stretch,
            stats.average_abnormal_hops,
            stats.endpoint_excluded,
        );
    }

    // The timed loops share one sample too, and route through a router
    // whose region labelling is derived once outside the loop — the
    // measured work is the routing itself.
    let bench_sample = PairSample::strided(&mesh, 307);
    let fb_exp = RoutingExperiment::with_sample(&mesh, &fb.status, bench_sample.clone());
    let mfp_exp = RoutingExperiment::with_sample(&mesh, &mfp.status, bench_sample);
    let fb_router = ExtendedECube::new(&mesh, &fb.status);
    let mfp_router = ExtendedECube::new(&mesh, &mfp.status);

    let mut group = c.benchmark_group("ablation_routing");
    group.sample_size(10);
    group.bench_function("route_over_fb_regions", |b| {
        b.iter(|| std::hint::black_box(fb_exp.run_with(&fb_router)))
    });
    group.bench_function("route_over_mfp_regions", |b| {
        b.iter(|| std::hint::black_box(mfp_exp.run_with(&mfp_router)))
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
