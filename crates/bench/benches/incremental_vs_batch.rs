//! Incremental maintenance versus batch recomputation.
//!
//! Both arms consume the *same* pre-generated injection sequence and produce
//! the same Figure 9/10 checkpoint metrics; they differ only in how:
//!
//! * **batch** re-runs the full construction (component merge + per-component
//!   polygons + status piling) from scratch at every checkpoint — exactly
//!   what the batch scenario runner does per fault count;
//! * **incremental** feeds every single fault to the maintenance engine as
//!   an event (so it does `faults` updates, not `checkpoints` recomputes)
//!   and reads the metrics off the engine's caches at the checkpoints.
//!
//! Two scales: the paper's 100×100 mesh with 800 faults, and a 512×512 mesh
//! with 20 000 faults that a per-checkpoint batch recompute can no longer
//! serve interactively.

use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::{FaultDistribution, FaultInjector};
use fblock::FaultModel;
use mesh2d::{Coord, FaultEvent, FaultSet, Mesh2D};
use mocp_core::CentralizedMfpModel;
use mocp_incremental::IncrementalEngine;

/// The checkpointed sweep metrics both arms must produce.
type Checkpoint = (usize, usize, f64);

/// Pre-generates one injection sequence (setup cost, excluded from timing).
fn sequence(mesh: Mesh2D, faults: usize, seed: u64) -> Vec<Coord> {
    let mut injector = FaultInjector::new(mesh, FaultDistribution::Clustered, seed);
    injector.event_stream(faults).map(|e| e.node()).collect()
}

/// Batch arm: rebuild the fault set incrementally but reconstruct all
/// polygons from scratch at every checkpoint.
fn batch_sweep(mesh: &Mesh2D, seq: &[Coord], checkpoints: &[usize]) -> Vec<Checkpoint> {
    let model = CentralizedMfpModel::concave_sections();
    let mut faults = FaultSet::new(*mesh);
    let mut next = seq.iter();
    let mut out = Vec::with_capacity(checkpoints.len());
    for &count in checkpoints {
        while faults.len() < count {
            match next.next() {
                Some(&c) => {
                    faults.insert(c);
                }
                None => break,
            }
        }
        let outcome = model.construct(mesh, &faults);
        out.push((
            count,
            outcome.disabled_nonfaulty(),
            outcome.average_region_size(),
        ));
    }
    out
}

/// Incremental arm: one engine absorbs every fault as an event; checkpoints
/// read the cached metrics.
fn incremental_sweep(mesh: &Mesh2D, seq: &[Coord], checkpoints: &[usize]) -> Vec<Checkpoint> {
    let mut engine = IncrementalEngine::new(*mesh);
    let mut next = seq.iter();
    let mut out = Vec::with_capacity(checkpoints.len());
    for &count in checkpoints {
        while engine.faults().len() < count {
            match next.next() {
                Some(&c) => {
                    engine.apply(FaultEvent::Inject(c));
                }
                None => break,
            }
        }
        out.push((
            count,
            engine.disabled_nonfaulty(),
            engine.average_region_size(),
        ));
    }
    out
}

fn bench_scale(
    c: &mut Criterion,
    label: &str,
    mesh_size: u32,
    faults: usize,
    checkpoints: usize,
    samples: usize,
) {
    let mesh = Mesh2D::square(mesh_size);
    let seq = sequence(mesh, faults, 2004);
    let marks: Vec<usize> = (1..=checkpoints)
        .map(|i| i * faults / checkpoints)
        .collect();

    // The two arms must agree before their cost is worth comparing.
    assert_eq!(
        batch_sweep(&mesh, &seq, &marks),
        incremental_sweep(&mesh, &seq, &marks),
        "batch and incremental sweeps must produce identical checkpoints"
    );

    let mut group = c.benchmark_group(format!("incremental_vs_batch_{label}"));
    group.sample_size(samples);
    group.bench_function("batch", |b| {
        b.iter(|| std::hint::black_box(batch_sweep(&mesh, &seq, &marks)))
    });
    group.bench_function("incremental", |b| {
        b.iter(|| std::hint::black_box(incremental_sweep(&mesh, &seq, &marks)))
    });
    group.finish();
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    // The paper's scale: Figures 9/10 checkpoints every 100 faults.
    bench_scale(c, "100x100_800", 100, 800, 8, 10);
    // Beyond the paper: a scale where batch recomputation stops being viable.
    bench_scale(c, "512x512_20k", 512, 20_000, 8, 3);
}

criterion_group!(benches, bench_incremental_vs_batch);
criterion_main!(benches);
