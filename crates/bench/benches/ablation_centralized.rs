//! Ablation: centralized solution 1 (virtual faulty block + labelling
//! schemes) versus centralized solution 2 (concave row/column sections).
//!
//! Both produce the same minimum polygons; this bench measures the cost
//! difference between emulating the labelling schemes on per-component
//! windows and directly scanning for concave sections.

use bench::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::FaultDistribution;
use fblock::FaultModel;
use mocp_core::CentralizedMfpModel;

fn bench_centralized_solutions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_centralized_solutions");
    group.sample_size(20);
    for &faults in &[200usize, 800] {
        let (mesh, fault_set) = workload(FaultDistribution::Clustered, faults, 17);
        group.bench_function(format!("virtual_block_{faults}"), |b| {
            let model = CentralizedMfpModel::virtual_block();
            b.iter(|| std::hint::black_box(model.construct(&mesh, &fault_set)))
        });
        group.bench_function(format!("concave_sections_{faults}"), |b| {
            let model = CentralizedMfpModel::concave_sections();
            b.iter(|| std::hint::black_box(model.construct(&mesh, &fault_set)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_centralized_solutions);
criterion_main!(benches);
