//! Ablation: centralized solution 1 (virtual faulty block + labelling
//! schemes) versus centralized solution 2 (concave row/column sections).
//!
//! Both produce the same minimum polygons; this bench measures the cost
//! difference between emulating the labelling schemes on per-component
//! windows and directly scanning for concave sections. The two arms are
//! resolved by name from the ablation registry (`CMFP` is solution 1,
//! `CMFP-concave` is solution 2).

use bench::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use faultgen::FaultDistribution;
use mocp_core::ablation_registry;

fn bench_centralized_solutions(c: &mut Criterion) {
    let registry = ablation_registry();
    let mut group = c.benchmark_group("ablation_centralized_solutions");
    group.sample_size(20);
    for &faults in &[200usize, 800] {
        let (mesh, fault_set) = workload(FaultDistribution::Clustered, faults, 17);
        for (name, label) in [
            ("CMFP", "virtual_block"),
            ("CMFP-concave", "concave_sections"),
        ] {
            let model = registry.build(name).expect("ablation registry entry");
            group.bench_function(format!("{label}_{faults}"), |b| {
                b.iter(|| std::hint::black_box(model.construct(&mesh, &fault_set)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_centralized_solutions);
criterion_main!(benches);
