//! Figure 11 benchmark: the average number of rounds of status determination
//! under FB, FP, CMFP and DMFP for both fault distribution models.

use bench::figure_config;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig11::figure11;
use experiments::{render_table, run_sweep};
use faultgen::FaultDistribution;

fn bench_fig11(c: &mut Criterion) {
    let config = figure_config();
    let mut group = c.benchmark_group("fig11_rounds");
    group.sample_size(10);
    for dist in FaultDistribution::ALL {
        let series = figure11(&run_sweep(&config, dist));
        eprintln!("{}", render_table(&series));
        group.bench_function(dist.label(), |b| {
            b.iter(|| {
                let result = run_sweep(&config, dist);
                std::hint::black_box(figure11(&result))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
