//! Figure 11 benchmark: the average number of rounds of status determination
//! under FB, FP, CMFP and DMFP for both fault distribution models.

use bench::figure_config;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::fig11::figure11;
use experiments::scenario::Scenario;
use experiments::{render_table, run_scenario};
use faultgen::FaultDistribution;

fn bench_fig11(c: &mut Criterion) {
    let config = figure_config();
    let registry = mocp_core::standard_registry();
    let mut group = c.benchmark_group("fig11_rounds");
    group.sample_size(10);
    for dist in FaultDistribution::ALL {
        let scenario = Scenario::paper_figures(&config, dist);
        let series = figure11(&run_scenario(&registry, &scenario).unwrap());
        eprintln!("{}", render_table(&series));
        group.bench_function(dist.label(), |b| {
            b.iter(|| {
                let result = run_scenario(&registry, &scenario).unwrap();
                std::hint::black_box(figure11(&result))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
