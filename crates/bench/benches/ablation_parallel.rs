//! Ablation: sequential versus crossbeam-parallel stepping of the labelling
//! scheme 1 fixpoint on the full 100×100 mesh.
//!
//! Both produce identical labels and round counts; the question is whether
//! parallel rounds pay off at this mesh size.

use bench::workload;
use criterion::{criterion_group, criterion_main, Criterion};
use distsim::parallel::run_local_rule_parallel;
use distsim::run_local_rule;
use faultgen::FaultDistribution;
use fblock::scheme1::Scheme1Rule;

fn bench_parallel_rounds(c: &mut Criterion) {
    let (mesh, faults) = workload(FaultDistribution::Clustered, 800, 5);
    let mut group = c.benchmark_group("ablation_parallel_rounds");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let rule = Scheme1Rule::new(&faults);
            std::hint::black_box(run_local_rule(&mesh, &rule))
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(format!("parallel_{threads}_threads"), |b| {
            b.iter(|| {
                let rule = Scheme1Rule::new(&faults);
                std::hint::black_box(run_local_rule_parallel(&mesh, &rule, threads))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_rounds);
criterion_main!(benches);
