//! Persistent performance harness: times the repository's headline
//! workloads and writes a machine-readable JSON report.
//!
//! ```text
//! cargo run --release -p mocp-bench --bin perf_report            # full run
//! cargo run --release -p mocp-bench --bin perf_report -- --quick # CI smoke
//! cargo run --release -p mocp-bench --bin perf_report -- --quick --threads 2
//! cargo run --release -p mocp-bench --bin perf_report -- \
//!     --baseline old.json --out BENCH_6.json                     # with speedups
//! ```
//!
//! Seven workloads are timed, matching the repository's own definitions:
//!
//! * `batch_sweep_2d_100x800` — the batch arm of the
//!   `incremental_vs_batch` bench: CMFP (concave sections) reconstructed
//!   from scratch at checkpoints 100..800 on the paper's 100×100 mesh;
//! * `incremental_stream_512x20k` — the incremental maintenance engine
//!   absorbing a 20 000-fault clustered injection stream on a 512×512 mesh;
//! * `paper_figures_2d` — the full Figure 9/10/11 scenario sweep (both
//!   distributions, one trial) through `run_scenario`;
//! * `paper_figures_3d` — the 3-D Figure 9/10 analogue sweep (32³ mesh,
//!   both distributions);
//! * `serve_ingest_1k_tenants` — the multi-tenant monitoring service
//!   absorbing the deterministic 1000-tenants × 100-events workload with
//!   concurrent point queries (`experiments::run_serve_workload`). The
//!   service spawns its own threads, so this workload is timed once (not
//!   per pool size); sustained events/sec is appended to its `detail`
//!   and, with `--features obs`, the `serve.query.us` histogram
//!   (p50/p90/p99 query latency) lands in its `metrics` section;
//! * `traffic_512sq` — the cycle-driven traffic simulator
//!   (`experiments::run_traffic`) pushing 40 000 messages per
//!   (model × pattern) cell through FB and CMFP regions on a 512×512
//!   mesh with 250 random faults, under all three patterns. The six
//!   cells fan out on the measured pool, so this workload carries a
//!   real scaling table;
//! * `serve_chaos_recovery` — the seeded chaos harness
//!   (`experiments::run_chaos_workload`): the tenant streams ingested
//!   through scheduled worker kills, WAL replay, supervision and lossy
//!   live-reroute subscribers, verified against the sequential oracle —
//!   the price of recovery, measured. Like the serve workload, timed
//!   once (the service owns its threads).
//!
//! In full mode every workload is measured at 1, 2, 4 and 8 pool
//! threads (the per-count timings land in each workload's `scaling`
//! map, the headline `min`/`mean`/`samples` are the 1-thread numbers so
//! reports stay comparable across machines); `--threads N` pins a single
//! count instead, and quick mode measures one count only. The report
//! records `host_parallelism` so scaling numbers can be judged against
//! the cores that were actually available.
//!
//! With `--baseline <file>` (a previous report), every workload also gets
//! `baseline_ms` and `speedup` fields so regressions/improvements are
//! visible from the committed JSON alone.
//!
//! Observability (`--features obs`): the report carries a per-workload
//! `"metrics"` section — the `mocp_obs` registry snapshot taken after
//! that workload's runs (counters reset at workload start) — and the
//! header records provenance (`git_revision`, `thread_counts`, `obs`)
//! so BENCH_*.json files are self-describing. `--metrics` additionally
//! dumps each snapshot as a human-readable table on stderr, and
//! `--trace out.json` writes a Chrome trace of the sweep spans. Both
//! flags work without the feature (empty metrics, empty trace); quick
//! mode measures pool sizes 1 and 2 so the pool counters are exercised
//! (the headline numbers stay the 1-thread entry).

use experiments::scenario::{run_scenario, Scenario};
use experiments::{run_traffic, SweepConfig, TrafficScenario};
use faultgen::{FaultDistribution, FaultInjector};
use fblock::FaultModel;
use mesh2d::{Coord, FaultEvent, FaultSet, Mesh2D};
use mocp_core::CentralizedMfpModel;
use mocp_incremental::IncrementalEngine;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One timed workload: name plus the measured samples in milliseconds,
/// one sample list per measured pool size (in `thread_counts` order; the
/// first entry is the headline measurement).
struct Measurement {
    name: &'static str,
    /// What the workload consists of, for human readers of the JSON.
    detail: String,
    per_thread: Vec<(usize, Vec<f64>)>,
    /// Pre-rendered JSON object with the workload's `mocp_obs` registry
    /// snapshot (totals over every repeat at every pool size); `None`
    /// without the `obs` feature.
    metrics: Option<String>,
}

fn min_of(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn mean_of(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

impl Measurement {
    /// The headline samples: the first measured thread count (1 in a
    /// full run), keeping reports comparable across hosts and with
    /// pre-scaling baselines.
    fn primary(&self) -> &[f64] {
        &self.per_thread[0].1
    }

    fn min_ms(&self) -> f64 {
        min_of(self.primary())
    }

    fn mean_ms(&self) -> f64 {
        mean_of(self.primary())
    }
}

/// Times `work` `repeats` times (after one untimed warm-up when
/// `repeats > 1`), black-boxing the result so the work cannot be elided —
/// once per pool in `pools`, with the workload's parallel operations
/// dispatched to that pool.
fn time_workload<R>(
    name: &'static str,
    detail: String,
    repeats: usize,
    pools: &[(usize, rayon::ThreadPool)],
    show_metrics: bool,
    mut work: impl FnMut() -> R + Send,
) -> Measurement {
    // Scope the metric snapshot to this workload (a no-op without obs).
    mocp_obs::reset_all();
    let mut per_thread = Vec::with_capacity(pools.len());
    for (threads, pool) in pools {
        let samples_ms = pool.install(|| {
            if repeats > 1 {
                black_box(work());
            }
            let mut samples_ms = Vec::with_capacity(repeats);
            for _ in 0..repeats {
                let start = Instant::now();
                black_box(work());
                samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
            }
            samples_ms
        });
        eprintln!(
            "  {name} @ {threads} thread(s): min {:.3} ms over {repeats} run(s)",
            min_of(&samples_ms)
        );
        per_thread.push((*threads, samples_ms));
    }
    let samples = mocp_obs::snapshot();
    if show_metrics {
        eprintln!("  {name} metrics:");
        eprint!("{}", mocp_obs::render_table(&samples));
    }
    let metrics = mocp_obs::enabled().then(|| mocp_obs::render_json(&samples));
    Measurement {
        name,
        detail,
        per_thread,
        metrics,
    }
}

/// Pre-generates one clustered injection sequence (setup, untimed).
fn sequence(mesh: Mesh2D, faults: usize, seed: u64) -> Vec<Coord> {
    let mut injector = FaultInjector::new(mesh, FaultDistribution::Clustered, seed);
    injector.event_stream(faults).map(|e| e.node()).collect()
}

/// The batch arm of `incremental_vs_batch`: full CMFP reconstruction at
/// every checkpoint.
fn batch_sweep(mesh: &Mesh2D, seq: &[Coord], checkpoints: &[usize]) -> Vec<(usize, usize, f64)> {
    let model = CentralizedMfpModel::concave_sections();
    let mut faults = FaultSet::new(*mesh);
    let mut next = seq.iter();
    let mut out = Vec::with_capacity(checkpoints.len());
    for &count in checkpoints {
        while faults.len() < count {
            match next.next() {
                Some(&c) => {
                    faults.insert(c);
                }
                None => break,
            }
        }
        let outcome = model.construct(mesh, &faults);
        out.push((
            count,
            outcome.disabled_nonfaulty(),
            outcome.average_region_size(),
        ));
    }
    out
}

/// The incremental arm: one engine absorbs the whole stream event by event.
fn incremental_stream(mesh: &Mesh2D, seq: &[Coord]) -> (usize, f64) {
    let mut engine = IncrementalEngine::new(*mesh);
    for &c in seq {
        engine.apply(FaultEvent::Inject(c));
    }
    (engine.disabled_nonfaulty(), engine.average_region_size())
}

use bench::baseline_min_ms;

/// The current git revision, for report provenance. Best-effort: reports
/// must still be writable from an exported tree without git.
fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn render_report(
    mode: &str,
    thread_counts: &[usize],
    measurements: &[Measurement],
    baseline: Option<&str>,
) -> String {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mocp-perf-report/3\",\n");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",");
    out.push_str("  \"units\": \"milliseconds\",\n");
    let _ = writeln!(out, "  \"host_parallelism\": {host_parallelism},");
    let _ = writeln!(out, "  \"git_revision\": \"{}\",", git_revision());
    let counts: Vec<String> = thread_counts.iter().map(|n| n.to_string()).collect();
    let _ = writeln!(out, "  \"thread_counts\": [{}],", counts.join(", "));
    let _ = writeln!(out, "  \"obs\": {},", mocp_obs::enabled());
    out.push_str("  \"workloads\": {\n");
    for (i, m) in measurements.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", m.name);
        let _ = writeln!(out, "      \"detail\": \"{}\",", m.detail);
        // `min` stays the first field after `detail`: the baseline parser
        // reads the first `\"min\":` after the workload name, which must
        // be the headline number, not a scaling entry.
        let _ = writeln!(out, "      \"min\": {:.3},", m.min_ms());
        let _ = writeln!(out, "      \"mean\": {:.3},", m.mean_ms());
        let samples: Vec<String> = m.primary().iter().map(|s| format!("{s:.3}")).collect();
        let _ = write!(out, "      \"samples\": [{}]", samples.join(", "));
        let _ = write!(out, ",\n      \"scaling\": {{");
        for (j, (threads, samples)) in m.per_thread.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\": {{\"min\": {:.3}, \"mean\": {:.3}}}",
                if j == 0 { "" } else { ", " },
                threads,
                min_of(samples),
                mean_of(samples)
            );
        }
        let _ = write!(out, "}}");
        if let Some(base_ms) = baseline.and_then(|b| baseline_min_ms(b, m.name)) {
            let _ = write!(
                out,
                ",\n      \"baseline_min\": {:.3},\n      \"speedup\": {:.2}",
                base_ms,
                base_ms / m.min_ms()
            );
        }
        // The metrics object stays the last field: the baseline parser
        // reads the first `"min":` after the workload name, so nothing
        // snapshot-shaped may precede the headline numbers.
        if let Some(metrics) = &m.metrics {
            let _ = write!(out, ",\n      \"metrics\": {metrics}");
        }
        out.push('\n');
        let _ = write!(
            out,
            "    }}{}",
            if i + 1 < measurements.len() {
                ",\n"
            } else {
                "\n"
            }
        );
    }
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let show_metrics = args.iter().any(|a| a == "--metrics");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_9.json".to_string());
    let baseline = flag_value("--baseline").map(|path| {
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"))
    });
    let pinned_threads: Option<usize> = flag_value("--threads").map(|v| {
        let n = v.parse().expect("--threads takes a positive integer");
        assert!(n > 0, "--threads takes a positive integer");
        n
    });
    let trace_path = flag_value("--trace");
    if (show_metrics || trace_path.is_some()) && !mocp_obs::enabled() {
        eprintln!(
            "note: built without the `obs` feature; --metrics/--trace emit empty output \
             (rebuild with `--features obs`)"
        );
    }
    if trace_path.is_some() {
        mocp_obs::trace::start_capture();
    }

    let mode = if quick { "quick" } else { "full" };
    let repeats = if quick { 1 } else { 3 };
    // Full runs sweep the pool size to produce the scaling table;
    // `--threads` pins one count, and quick mode keeps the smoke cheap
    // while still exercising a real 2-worker pool (the headline numbers
    // stay the first — 1-thread — entry).
    let thread_counts: Vec<usize> = match pinned_threads {
        Some(n) => vec![n],
        None if quick => vec![1, 2],
        None => vec![1, 2, 4, 8],
    };
    let pools: Vec<(usize, rayon::ThreadPool)> = thread_counts
        .iter()
        .map(|&n| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .expect("pool construction cannot fail");
            (n, pool)
        })
        .collect();
    eprintln!(
        "perf_report ({mode} mode, {repeats} timed run(s) per workload, pool sizes {thread_counts:?})"
    );

    let mut measurements = Vec::new();

    // Workload 1: the batch construction sweep.
    {
        let (side, checkpoints) = if quick {
            (30u32, vec![20usize, 40, 60])
        } else {
            (100u32, (1..=8).map(|i| i * 100).collect())
        };
        let mesh = Mesh2D::square(side);
        let max = *checkpoints.last().expect("checkpoints are non-empty");
        let seq = sequence(mesh, max, 2004);
        measurements.push(time_workload(
            if quick {
                "batch_sweep_2d_quick"
            } else {
                "batch_sweep_2d_100x800"
            },
            format!("CMFP batch reconstruction at checkpoints {checkpoints:?} on a {side}x{side} mesh (clustered, seed 2004)"),
            repeats.max(3),
            &pools,
            show_metrics,
            || batch_sweep(&mesh, &seq, &checkpoints),
        ));
    }

    // Workload 2: the incremental maintenance stream.
    {
        let (side, faults) = if quick {
            (96u32, 1_500usize)
        } else {
            (512u32, 20_000usize)
        };
        let mesh = Mesh2D::square(side);
        let seq = sequence(mesh, faults, 2004);
        measurements.push(time_workload(
            if quick {
                "incremental_stream_quick"
            } else {
                "incremental_stream_512x20k"
            },
            format!(
                "IncrementalEngine absorbing {faults} clustered injections on a {side}x{side} mesh"
            ),
            repeats,
            &pools,
            show_metrics,
            || incremental_stream(&mesh, &seq),
        ));
    }

    // Workload 3: the 2-D paper-figures sweep through the one generic runner.
    {
        let config = if quick {
            SweepConfig::quick()
        } else {
            SweepConfig {
                mesh_size: 100,
                fault_counts: (1..=8).map(|i| i * 100).collect(),
                trials: 1,
                base_seed: 2004,
            }
        };
        let registry = mocp_core::standard_registry();
        measurements.push(time_workload(
            if quick {
                "paper_figures_2d_quick"
            } else {
                "paper_figures_2d"
            },
            format!(
                "run_scenario FB/FP/CMFP/DMFP, {}x{} mesh, counts {:?}, both distributions",
                config.mesh_size, config.mesh_size, config.fault_counts
            ),
            repeats,
            &pools,
            show_metrics,
            || {
                FaultDistribution::ALL.map(|dist| {
                    run_scenario(&registry, &Scenario::paper_figures(&config, dist))
                        .expect("paper models resolve")
                })
            },
        ));
    }

    // Workload 4: the 3-D analogue sweep.
    {
        let registry = mocp_3d::standard_registry_3d();
        let scenario_for = if quick {
            Scenario::quick_3d
        } else {
            Scenario::paper_figures_3d
        };
        let detail = if quick {
            "run_scenario FB3D/MFP3D on a 12^3 mesh, both distributions"
        } else {
            "run_scenario FB3D/MFP3D on a 32^3 mesh, counts 100..800, 3 trials, both distributions"
        };
        measurements.push(time_workload(
            if quick {
                "paper_figures_3d_quick"
            } else {
                "paper_figures_3d"
            },
            detail.to_string(),
            repeats,
            &pools,
            show_metrics,
            || {
                FaultDistribution::ALL.map(|dist| {
                    run_scenario(&registry, &scenario_for(dist)).expect("3-D models resolve")
                })
            },
        ));
    }

    // Workload 5: the multi-tenant service ingesting the deterministic
    // N x M x K workload. The service owns its worker threads (no rayon),
    // so only the first pool entry is used — the timing is identical at
    // any pool size and repeating it would just burn CI minutes.
    {
        let (cfg, serve) = if quick {
            (
                experiments::ServeWorkloadConfig::quick(),
                mocp_serve::ServeConfig::default().with_workers(2),
            )
        } else {
            (
                experiments::ServeWorkloadConfig::default(),
                mocp_serve::ServeConfig::default().with_workers(4),
            )
        };
        let best_eps = std::sync::atomic::AtomicU64::new(0);
        let mut measurement = time_workload(
            if quick {
                "serve_ingest_quick"
            } else {
                "serve_ingest_1k_tenants"
            },
            format!(
                "MonitorService: {} tenants x {} events (batch {}) x {} queries on {}x{} meshes, \
                 {} ingest threads -> {} workers, seed {:#x}",
                cfg.tenants,
                cfg.events_per_tenant,
                cfg.batch_size,
                cfg.queries_per_tenant,
                cfg.mesh_size,
                cfg.mesh_size,
                cfg.ingest_threads,
                serve.workers,
                cfg.seed
            ),
            repeats,
            &pools[..1],
            show_metrics,
            || {
                let start = Instant::now();
                let outcome = experiments::run_serve_workload(&cfg, serve);
                let eps = outcome.events_submitted as f64 / start.elapsed().as_secs_f64().max(1e-9);
                best_eps.fetch_max(eps as u64, std::sync::atomic::Ordering::Relaxed);
                mocp_obs::gauge!("serve.ingest.events_per_sec").set(eps as i64);
                outcome.events_submitted
            },
        );
        let _ = write!(
            measurement.detail,
            "; sustained {} events/s (best run)",
            best_eps.load(std::sync::atomic::Ordering::Relaxed)
        );
        measurements.push(measurement);
    }

    // Workload 6: the heavy-traffic simulator over live regions. The
    // (model x pattern) cells are independent rayon tasks, so the sweep
    // scales with the measured pool; the cell size is kept below the
    // acceptance run (1M messages) so the full report stays minutes, not
    // hours.
    {
        let scenario = if quick {
            TrafficScenario {
                trials: 1,
                ..TrafficScenario::quick()
            }
        } else {
            TrafficScenario {
                messages: 40_000,
                reachable_sample: 500,
                ..TrafficScenario::full()
            }
        };
        let registry = mocp_core::standard_registry();
        measurements.push(time_workload(
            if quick {
                "traffic_quick"
            } else {
                "traffic_512sq"
            },
            format!(
                "run_traffic FB/CMFP x uniform/transpose/hotspot: {} msgs per cell on a \
                 {}x{} mesh with {} {} faults (rate {}/cycle, seed {:#x})",
                scenario.messages,
                scenario.mesh_size,
                scenario.mesh_size,
                scenario.faults,
                scenario.distribution.label(),
                scenario.injection_rate,
                scenario.base_seed
            ),
            repeats,
            &pools,
            show_metrics,
            || {
                run_traffic(&registry, &scenario)
                    .expect("traffic models and patterns resolve")
                    .cells
                    .len()
            },
        ));
    }

    // Workload 7: the chaos harness — ingestion through seeded worker
    // kills, WAL replay and subscriber gap recovery, verified against
    // sequential replay. The service owns its threads (first pool entry
    // only), and every run must converge or the report aborts.
    {
        mocp_serve::chaos::install_quiet_panic_hook();
        let (cfg, serve) = if quick {
            (
                experiments::ChaosWorkloadConfig::quick(),
                mocp_serve::ServeConfig::default().with_workers(2),
            )
        } else {
            (
                experiments::ChaosWorkloadConfig::default(),
                mocp_serve::ServeConfig::default().with_workers(4),
            )
        };
        let plan = cfg.plan();
        measurements.push(time_workload(
            if quick {
                "serve_chaos_quick"
            } else {
                "serve_chaos_recovery"
            },
            format!(
                "chaos harness: {} tenants x {} events through {} scheduled worker kills, \
                 {} lossy subscribers (capacity {}), verified against sequential replay \
                 [{} ingest threads -> {} workers, seed {:#x}]",
                cfg.workload.tenants,
                cfg.workload.events_per_tenant,
                plan.kills.len(),
                cfg.subscribers,
                cfg.subscriber_capacity,
                cfg.workload.ingest_threads,
                serve.workers,
                cfg.workload.seed
            ),
            repeats,
            &pools[..1],
            show_metrics,
            || {
                let outcome = experiments::run_chaos_workload(&cfg, serve);
                assert!(outcome.converged(), "chaos run diverged: {outcome:?}");
                mocp_obs::gauge!("serve.chaos.replayed_events").set(outcome.replayed_events as i64);
                outcome.events_submitted + outcome.replayed_events
            },
        ));
    }

    if let Some(path) = &trace_path {
        let events = mocp_obs::trace::write_chrome_trace(path)
            .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
        eprintln!("wrote {path} ({events} trace events)");
    }

    let report = render_report(mode, &thread_counts, &measurements, baseline.as_deref());
    std::fs::write(&out_path, &report).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");
    print!("{report}");
}
