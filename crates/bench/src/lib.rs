//! Shared helpers for the Criterion benchmark targets.
//!
//! Each bench in `benches/` regenerates one figure of the paper (or one
//! ablation study) by calling into the same experiment harness the
//! `paper-figures` binary uses, so the benchmarked work is exactly the
//! reported work. The helpers here keep the per-figure configurations in one
//! place:
//!
//! * [`figure_config`] — the 100×100 mesh sweep used by the figure benches,
//!   reduced to one trial and two fault counts so a Criterion run finishes in
//!   minutes while still exercising the full-size construction;
//! * [`workload`] — deterministic fault patterns for the ablation benches.

use experiments::SweepConfig;
use faultgen::{generate_faults, FaultDistribution};
use mesh2d::{FaultSet, Mesh2D};

/// Extracts the headline `"min":<float>` for workload `name` from a
/// perf_report JSON file. The parser only understands files the
/// `perf_report` binary wrote: it relies on `"min"` being the first
/// numeric field after the workload's name. Shared by the binary's
/// `--baseline` comparison and by the test pinning the committed
/// BENCH_*.json reports.
pub fn baseline_min_ms(report: &str, name: &str) -> Option<f64> {
    let at = report.find(&format!("\"{name}\""))?;
    let rest = &report[at..];
    let min_at = rest.find("\"min\":")? + "\"min\":".len();
    let tail = rest[min_at..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// The sweep configuration used by the `fig9` / `fig10` / `fig11` benches:
/// the paper's 100×100 mesh at a light and a heavy fault load, one trial.
pub fn figure_config() -> SweepConfig {
    SweepConfig {
        mesh_size: 100,
        fault_counts: vec![200, 800],
        trials: 1,
        base_seed: 2004,
    }
}

/// A deterministic fault workload on the paper's 100×100 mesh.
pub fn workload(distribution: FaultDistribution, faults: usize, seed: u64) -> (Mesh2D, FaultSet) {
    let mesh = Mesh2D::square(100);
    let fs = generate_faults(mesh, faults, distribution, seed);
    (mesh, fs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_config_targets_the_paper_mesh() {
        let c = figure_config();
        assert_eq!(c.mesh_size, 100);
        assert_eq!(c.trials, 1);
        assert!(c.fault_counts.contains(&800));
    }

    #[test]
    fn baseline_parser_reads_the_headline_min() {
        let report = r#"{
  "workloads": {
    "alpha": {"detail": "d", "min": 1.250, "mean": 2.0,
      "scaling": {"1": {"min": 0.5, "mean": 0.6}}},
    "beta": {"min": -3.5}
  }
}"#;
        assert_eq!(baseline_min_ms(report, "alpha"), Some(1.25));
        assert_eq!(baseline_min_ms(report, "beta"), Some(-3.5));
        assert_eq!(baseline_min_ms(report, "gamma"), None);
    }

    #[test]
    fn workload_is_deterministic() {
        let (_, a) = workload(FaultDistribution::Clustered, 50, 1);
        let (_, b) = workload(FaultDistribution::Clustered, 50, 1);
        assert_eq!(a.in_insertion_order(), b.in_insertion_order());
        assert_eq!(a.len(), 50);
    }
}
