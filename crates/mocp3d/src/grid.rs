//! Dense per-node storage for 3-D meshes.
//!
//! The 3-D analogue of `mesh2d::Grid`: a flat x-major `Vec` indexed by
//! [`Coord3`], so the flood fills and status piles of the 3-D models run
//! over contiguous memory instead of per-node `BTreeSet` probes.

use crate::mesh::Mesh3D;
use mocp_core::extension3d::Coord3;
use std::ops::{Index, IndexMut};

/// A dense `width × height × depth` array of `T`, indexed by [`Coord3`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Grid3<T> {
    mesh: Mesh3D,
    data: Vec<T>,
}

impl<T: Clone> Grid3<T> {
    /// Creates a grid sized for `mesh`, filled with clones of `value`.
    pub fn for_mesh(mesh: &Mesh3D, value: T) -> Self {
        Grid3 {
            mesh: *mesh,
            data: vec![value; mesh.node_count()],
        }
    }

    /// Overwrites every cell with clones of `value`, keeping the allocation.
    pub fn fill(&mut self, value: T) {
        self.data.fill(value);
    }
}

impl<T> Grid3<T> {
    /// The mesh this grid covers.
    #[inline]
    pub fn mesh(&self) -> &Mesh3D {
        &self.mesh
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the grid holds no cells (never, for meshes with non-zero
    /// dimensions — but the answer comes from the data).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the cell at `c`, or `None` when out of bounds.
    #[inline]
    pub fn get(&self, c: Coord3) -> Option<&T> {
        self.mesh
            .contains(c)
            .then(|| &self.data[self.mesh.index(c)])
    }

    /// Returns the cell at `c` mutably, or `None` when out of bounds.
    #[inline]
    pub fn get_mut(&mut self, c: Coord3) -> Option<&mut T> {
        if self.mesh.contains(c) {
            let i = self.mesh.index(c);
            Some(&mut self.data[i])
        } else {
            None
        }
    }

    /// Iterates over `(coordinate, value)` pairs in x-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord3, &T)> + '_ {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| (self.mesh.coord(i), v))
    }

    /// Counts cells whose value satisfies `pred`.
    pub fn count_where(&self, mut pred: impl FnMut(&T) -> bool) -> usize {
        self.data.iter().filter(|v| pred(v)).count()
    }

    /// Raw x-major access to the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T> Index<Coord3> for Grid3<T> {
    type Output = T;
    #[inline]
    fn index(&self, c: Coord3) -> &T {
        &self.data[self.mesh.index(c)]
    }
}

impl<T> IndexMut<Coord3> for Grid3<T> {
    #[inline]
    fn index_mut(&mut self, c: Coord3) -> &mut T {
        let i = self.mesh.index(c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_index_and_queries() {
        let mesh = Mesh3D::new(3, 2, 2);
        let mut g = Grid3::for_mesh(&mesh, 0u32);
        assert_eq!(g.len(), 12);
        assert!(!g.is_empty());
        g[Coord3::new(2, 1, 1)] = 9;
        assert_eq!(g[Coord3::new(2, 1, 1)], 9);
        assert_eq!(g.count_where(|&v| v == 9), 1);
        assert_eq!(g.get(Coord3::new(3, 0, 0)), None);
        *g.get_mut(Coord3::new(0, 0, 0)).unwrap() = 5;
        assert_eq!(g.as_slice()[0], 5);
        g.fill(1);
        assert_eq!(g.count_where(|&v| v == 1), 12);
    }

    #[test]
    fn iter_visits_every_cell_in_x_major_order() {
        let mesh = Mesh3D::new(2, 2, 2);
        let g = Grid3::for_mesh(&mesh, ());
        let coords: Vec<Coord3> = g.iter().map(|(c, _)| c).collect();
        assert_eq!(coords.len(), 8);
        assert_eq!(coords[0], Coord3::new(0, 0, 0));
        assert_eq!(coords[1], Coord3::new(1, 0, 0));
        assert_eq!(coords[2], Coord3::new(0, 1, 0));
        assert_eq!(coords[7], Coord3::new(1, 1, 1));
    }
}
