//! 3-D fault sets and the seeded 3-D fault injector.
//!
//! The injector mirrors `faultgen::FaultInjector` exactly — sequential
//! injection, prefix property, exact undo — and shares its weighted
//! sampling core ([`faultgen::WeightTable`]): the only 3-D-specific part
//! is that *adjacent* means the 26-neighborhood, so the clustered model
//! doubles the failure rate of up to 26 neighbors per fault.

use crate::mesh::Mesh3D;
use crate::region::Region3;
use faultgen::weights::{DrawRecord, WeightTable};
use faultgen::FaultDistribution;
use mocp_core::extension3d::Coord3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The set of faulty nodes of a 3-D mesh: a dense membership bitmap for
/// O(1) queries plus the insertion order the clustered model depends on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSet3 {
    mesh: Mesh3D,
    faulty: Vec<bool>,
    order: Vec<Coord3>,
}

impl FaultSet3 {
    /// An empty fault set for `mesh`.
    pub fn new(mesh: Mesh3D) -> Self {
        FaultSet3 {
            mesh,
            faulty: vec![false; mesh.node_count()],
            order: Vec::new(),
        }
    }

    /// Builds a fault set from coordinates (duplicates and out-of-mesh
    /// coordinates are ignored).
    pub fn from_coords(mesh: Mesh3D, coords: impl IntoIterator<Item = Coord3>) -> Self {
        let mut fs = Self::new(mesh);
        for c in coords {
            fs.insert(c);
        }
        fs
    }

    /// The mesh the faults live in.
    pub fn mesh(&self) -> &Mesh3D {
        &self.mesh
    }

    /// Marks `c` faulty. Returns `true` when newly marked, `false` for
    /// duplicates or coordinates outside the mesh.
    pub fn insert(&mut self, c: Coord3) -> bool {
        if !self.mesh.contains(c) || self.faulty[self.mesh.index(c)] {
            return false;
        }
        self.faulty[self.mesh.index(c)] = true;
        self.order.push(c);
        true
    }

    /// Clears the fault at `c`, modelling node recovery. Returns `true`
    /// when the node was faulty.
    pub fn remove(&mut self, c: Coord3) -> bool {
        if !self.is_faulty(c) {
            return false;
        }
        self.faulty[self.mesh.index(c)] = false;
        if self.order.last() == Some(&c) {
            self.order.pop();
        } else {
            let pos = self
                .order
                .iter()
                .rposition(|&o| o == c)
                .expect("membership bitmap and insertion order agree");
            self.order.remove(pos);
        }
        true
    }

    /// True when node `c` is faulty. Out-of-mesh coordinates are healthy.
    #[inline]
    pub fn is_faulty(&self, c: Coord3) -> bool {
        self.mesh.contains(c) && self.faulty[self.mesh.index(c)]
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The faults in injection order.
    pub fn in_insertion_order(&self) -> &[Coord3] {
        &self.order
    }

    /// The faults as a dense [`Region3`].
    pub fn region(&self) -> Region3 {
        Region3::from_coords(self.order.iter().copied())
    }
}

/// Incremental, seeded 3-D fault injector under the paper's two
/// distribution models.
///
/// Like its 2-D counterpart, faults are added one at a time, so one
/// injector serves a whole fault-count sweep: the first `k` faults of a
/// sequence are exactly the faults the model would have produced for a
/// budget of `k`. The boost/undo weight bookkeeping lives in the shared
/// [`WeightTable`]; nodes are flattened through [`Mesh3D::index`].
#[derive(Clone, Debug)]
pub struct FaultInjector3 {
    mesh: Mesh3D,
    distribution: FaultDistribution,
    rng: StdRng,
    faults: FaultSet3,
    weights: WeightTable,
    log: Vec<DrawRecord>,
}

impl FaultInjector3 {
    /// Creates an injector for `mesh` with the given model and RNG seed.
    pub fn new(mesh: Mesh3D, distribution: FaultDistribution, seed: u64) -> Self {
        FaultInjector3 {
            mesh,
            distribution,
            rng: StdRng::seed_from_u64(seed),
            faults: FaultSet3::new(mesh),
            weights: WeightTable::uniform(mesh.node_count()),
            log: Vec::new(),
        }
    }

    /// The mesh being injected into.
    pub fn mesh(&self) -> &Mesh3D {
        &self.mesh
    }

    /// The distribution model in use.
    pub fn distribution(&self) -> FaultDistribution {
        self.distribution
    }

    /// The faults injected so far.
    pub fn faults(&self) -> &FaultSet3 {
        &self.faults
    }

    /// Number of faults injected so far.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no fault has been injected yet.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Injects one more fault and returns its position, or `None` when
    /// every node has already failed.
    pub fn inject_one(&mut self) -> Option<Coord3> {
        if self.weights.total() == 0 {
            return None;
        }
        let target = self.rng.gen_range(0..self.weights.total());
        let victim = self.mesh.coord(self.weights.locate(target)?);
        let record = if self.distribution == FaultDistribution::Clustered {
            let mesh = self.mesh;
            let neighbors: Vec<usize> = mesh.neighbors26(victim).map(|n| mesh.index(n)).collect();
            self.weights.mark_faulty(mesh.index(victim), neighbors)
        } else {
            self.weights.mark_faulty(self.mesh.index(victim), [])
        };
        self.faults.insert(victim);
        self.log.push(record);
        Some(victim)
    }

    /// Injects faults until `count` faults exist in total. Returns the
    /// number of faults actually present afterwards (saturating at the
    /// mesh size).
    pub fn inject_up_to(&mut self, count: usize) -> usize {
        while self.faults.len() < count {
            if self.inject_one().is_none() {
                break;
            }
        }
        self.faults.len()
    }

    /// Un-injects the most recent fault, restoring the weight bookkeeping
    /// (including the clustered model's neighbor boosts) exactly through
    /// the shared core. Returns the revived node, or `None` when no fault
    /// remains. The RNG is **not** rewound.
    pub fn undo_last(&mut self) -> Option<Coord3> {
        let record = self.log.pop()?;
        let victim = self.mesh.coord(record.victim());
        self.weights.undo(record);
        self.faults.remove(victim);
        Some(victim)
    }
}

/// Convenience wrapper: generates `count` faults in one call.
pub fn generate_faults_3d(
    mesh: Mesh3D,
    count: usize,
    distribution: FaultDistribution,
    seed: u64,
) -> FaultSet3 {
    let mut inj = FaultInjector3::new(mesh, distribution, seed);
    inj.inject_up_to(count);
    inj.faults().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_distinct_faults() {
        let mesh = Mesh3D::cube(8);
        for dist in FaultDistribution::ALL {
            let faults = generate_faults_3d(mesh, 40, dist, 7);
            assert_eq!(faults.len(), 40, "{dist:?}");
            assert!(faults
                .in_insertion_order()
                .iter()
                .all(|&c| mesh.contains(c)));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds_and_prefix_property() {
        let mesh = Mesh3D::cube(6);
        let a = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 42);
        let b = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 42);
        assert_eq!(a.in_insertion_order(), b.in_insertion_order());
        let c = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 43);
        assert_ne!(a.in_insertion_order(), c.in_insertion_order());

        let mut inj = FaultInjector3::new(mesh, FaultDistribution::Clustered, 42);
        inj.inject_up_to(10);
        let first10 = inj.faults().in_insertion_order().to_vec();
        inj.inject_up_to(30);
        assert_eq!(&inj.faults().in_insertion_order()[..10], &first10[..]);
        assert_eq!(inj.faults().in_insertion_order(), a.in_insertion_order());
    }

    #[test]
    fn saturates_when_mesh_is_exhausted() {
        let mesh = Mesh3D::cube(2);
        let mut inj = FaultInjector3::new(mesh, FaultDistribution::Random, 1);
        assert_eq!(inj.inject_up_to(100), 8);
        assert!(inj.inject_one().is_none());
        assert!(!inj.is_empty());
        assert_eq!(inj.len(), 8);
    }

    #[test]
    fn undo_restores_the_shared_weight_core_exactly() {
        let mesh = Mesh3D::cube(5);
        for dist in FaultDistribution::ALL {
            let mut inj = FaultInjector3::new(mesh, dist, 5);
            inj.inject_up_to(10);
            let reference = inj.clone();
            inj.inject_up_to(20);
            for _ in 0..10 {
                assert!(inj.undo_last().is_some());
            }
            assert_eq!(
                inj.faults().in_insertion_order(),
                reference.faults().in_insertion_order()
            );
            assert_eq!(inj.weights, reference.weights, "{dist:?}");
        }
    }

    #[test]
    fn fault_set_remove_and_region_round_trip() {
        let mesh = Mesh3D::cube(4);
        let mut fs = FaultSet3::from_coords(
            mesh,
            [
                Coord3::new(0, 0, 0),
                Coord3::new(1, 1, 1),
                Coord3::new(9, 9, 9), // outside, ignored
                Coord3::new(1, 1, 1), // duplicate, ignored
            ],
        );
        assert_eq!(fs.len(), 2);
        assert!(fs.is_faulty(Coord3::new(1, 1, 1)));
        assert!(!fs.is_faulty(Coord3::new(9, 9, 9)));
        assert_eq!(fs.region().len(), 2);
        assert!(fs.remove(Coord3::new(0, 0, 0)));
        assert!(!fs.remove(Coord3::new(0, 0, 0)));
        assert_eq!(fs.in_insertion_order(), [Coord3::new(1, 1, 1)]);
    }
}
