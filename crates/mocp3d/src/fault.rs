//! 3-D fault sets and the seeded 3-D fault injector.
//!
//! Since the `mocp_topology` redesign the injector *is*
//! `faultgen::FaultInjector` — [`FaultInjector3`] is its `Mesh3D`
//! instantiation, not a re-implementation: one generic draw / boost /
//! undo loop over the shared [`faultgen::WeightTable`] drives both
//! dimensions, and the only 3-D-specific part is [`Mesh3D`]'s cluster
//! neighborhood (the 26-neighborhood the clustered model's rate boost
//! applies to).

use crate::mesh::Mesh3D;
use crate::region::Region3;
use mocp_core::extension3d::Coord3;

/// The set of faulty nodes of a 3-D mesh: a dense membership bitmap for
/// O(1) queries plus the insertion order the clustered model depends on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultSet3 {
    mesh: Mesh3D,
    faulty: Vec<bool>,
    order: Vec<Coord3>,
}

impl FaultSet3 {
    /// An empty fault set for `mesh`.
    pub fn new(mesh: Mesh3D) -> Self {
        FaultSet3 {
            mesh,
            faulty: vec![false; mesh.node_count()],
            order: Vec::new(),
        }
    }

    /// Builds a fault set from coordinates (duplicates and out-of-mesh
    /// coordinates are ignored).
    pub fn from_coords(mesh: Mesh3D, coords: impl IntoIterator<Item = Coord3>) -> Self {
        let mut fs = Self::new(mesh);
        for c in coords {
            fs.insert(c);
        }
        fs
    }

    /// The mesh the faults live in.
    pub fn mesh(&self) -> &Mesh3D {
        &self.mesh
    }

    /// Marks `c` faulty. Returns `true` when newly marked, `false` for
    /// duplicates or coordinates outside the mesh.
    pub fn insert(&mut self, c: Coord3) -> bool {
        if !self.mesh.contains(c) || self.faulty[self.mesh.index(c)] {
            return false;
        }
        self.faulty[self.mesh.index(c)] = true;
        self.order.push(c);
        true
    }

    /// Clears the fault at `c`, modelling node recovery. Returns `true`
    /// when the node was faulty.
    pub fn remove(&mut self, c: Coord3) -> bool {
        if !self.is_faulty(c) {
            return false;
        }
        self.faulty[self.mesh.index(c)] = false;
        if self.order.last() == Some(&c) {
            self.order.pop();
        } else {
            let pos = self
                .order
                .iter()
                .rposition(|&o| o == c)
                .expect("membership bitmap and insertion order agree");
            self.order.remove(pos);
        }
        true
    }

    /// True when node `c` is faulty. Out-of-mesh coordinates are healthy.
    #[inline]
    pub fn is_faulty(&self, c: Coord3) -> bool {
        self.mesh.contains(c) && self.faulty[self.mesh.index(c)]
    }

    /// Number of faults.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no node is faulty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The faults in injection order.
    pub fn in_insertion_order(&self) -> &[Coord3] {
        &self.order
    }

    /// The faults as a dense [`Region3`].
    pub fn region(&self) -> Region3 {
        Region3::from_coords(self.order.iter().copied())
    }
}

/// Incremental, seeded 3-D fault injector under the paper's two
/// distribution models: the `Mesh3D` instantiation of the generic
/// [`faultgen::FaultInjector`].
///
/// Like the 2-D instantiation, faults are added one at a time, so one
/// injector serves a whole fault-count sweep: the first `k` faults of a
/// sequence are exactly the faults the model would have produced for a
/// budget of `k`. The boost/undo weight bookkeeping lives in the shared
/// [`faultgen::WeightTable`]; nodes are flattened through
/// [`Mesh3D::index`], and `undo_last` / `snapshot` / `restore` /
/// `event_stream` all come from the generic implementation.
pub type FaultInjector3 = faultgen::FaultInjector<Mesh3D>;

/// Convenience wrapper: generates `count` faults in one call (delegates
/// to the generic [`faultgen::generate_faults`] at `Mesh3D`).
pub fn generate_faults_3d(
    mesh: Mesh3D,
    count: usize,
    distribution: faultgen::FaultDistribution,
    seed: u64,
) -> FaultSet3 {
    faultgen::generate_faults(mesh, count, distribution, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultgen::FaultDistribution;
    use mesh2d::FaultEvent;

    #[test]
    fn generates_requested_number_of_distinct_faults() {
        let mesh = Mesh3D::cube(8);
        for dist in FaultDistribution::ALL {
            let faults = generate_faults_3d(mesh, 40, dist, 7);
            assert_eq!(faults.len(), 40, "{dist:?}");
            assert!(faults
                .in_insertion_order()
                .iter()
                .all(|&c| mesh.contains(c)));
        }
    }

    #[test]
    fn deterministic_for_equal_seeds_and_prefix_property() {
        let mesh = Mesh3D::cube(6);
        let a = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 42);
        let b = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 42);
        assert_eq!(a.in_insertion_order(), b.in_insertion_order());
        let c = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 43);
        assert_ne!(a.in_insertion_order(), c.in_insertion_order());

        let mut inj = FaultInjector3::new(mesh, FaultDistribution::Clustered, 42);
        inj.inject_up_to(10);
        let first10 = inj.faults().in_insertion_order().to_vec();
        inj.inject_up_to(30);
        assert_eq!(&inj.faults().in_insertion_order()[..10], &first10[..]);
        assert_eq!(inj.faults().in_insertion_order(), a.in_insertion_order());
    }

    #[test]
    fn saturates_when_mesh_is_exhausted() {
        let mesh = Mesh3D::cube(2);
        let mut inj = FaultInjector3::new(mesh, FaultDistribution::Random, 1);
        assert_eq!(inj.inject_up_to(100), 8);
        assert!(inj.inject_one().is_none());
        assert!(!inj.is_empty());
        assert_eq!(inj.len(), 8);
    }

    #[test]
    fn undo_rewinds_the_generic_injector_exactly() {
        let mesh = Mesh3D::cube(5);
        for dist in FaultDistribution::ALL {
            let mut inj = FaultInjector3::new(mesh, dist, 5);
            inj.inject_up_to(10);
            let reference = inj.faults().clone();
            let snap = inj.snapshot();
            inj.inject_up_to(20);
            for _ in 0..10 {
                let event = inj.undo_last().expect("ten faults to rewind");
                assert!(matches!(event, FaultEvent::Repair(_)), "{dist:?}");
            }
            assert_eq!(
                inj.faults().in_insertion_order(),
                reference.in_insertion_order()
            );
            // The snapshot/restore contract holds through the shared core:
            // the continuation replays identically after a restore.
            inj.restore(&snap).expect("history matches the snapshot");
            inj.inject_up_to(20);
            let first: Vec<Coord3> = inj.faults().in_insertion_order().to_vec();
            inj.restore(&snap).expect("history matches the snapshot");
            inj.inject_up_to(20);
            assert_eq!(inj.faults().in_insertion_order(), &first[..], "{dist:?}");
        }
    }

    #[test]
    fn fault_set_remove_and_region_round_trip() {
        let mesh = Mesh3D::cube(4);
        let mut fs = FaultSet3::from_coords(
            mesh,
            [
                Coord3::new(0, 0, 0),
                Coord3::new(1, 1, 1),
                Coord3::new(9, 9, 9), // outside, ignored
                Coord3::new(1, 1, 1), // duplicate, ignored
            ],
        );
        assert_eq!(fs.len(), 2);
        assert!(fs.is_faulty(Coord3::new(1, 1, 1)));
        assert!(!fs.is_faulty(Coord3::new(9, 9, 9)));
        assert_eq!(fs.region().len(), 2);
        assert!(fs.remove(Coord3::new(0, 0, 0)));
        assert!(!fs.remove(Coord3::new(0, 0, 0)));
        assert_eq!(fs.in_insertion_order(), [Coord3::new(1, 1, 1)]);
    }
}
