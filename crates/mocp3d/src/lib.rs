//! # mocp-3d — minimum orthogonal convex polyhedra in 3-D faulty meshes
//!
//! The paper's conclusion names the extension of the minimum orthogonal
//! convex polygon construction to orthogonal convex *polyhedra* in 3-D
//! meshes as its key future work. This crate carries that extension end to
//! end, mirroring the 2-D stack's layering:
//!
//! * [`Mesh3D`] / [`Grid3`] — the 3-D mesh substrate with dense, flat-`Vec`
//!   per-node storage (the analogue of `mesh2d`);
//! * [`Region3`] — bitmap-backed node sets with 26-connected component
//!   labelling and the dirty-line minimum orthogonal convex hull, plus
//!   [`minimum_polyhedra`], the dense equivalent of the specification
//!   prototype `mocp_core::extension3d::minimum_polyhedra` (which remains
//!   the differential test oracle);
//! * [`FaultSet3`] / [`FaultInjector3`] — the paper's random and clustered
//!   fault distributions in 3-D; the injector is the `Mesh3D`
//!   instantiation of `faultgen`'s generic injector, sharing its
//!   weighted-sampling core (the clustered model doubles the rate of the
//!   26-neighborhood);
//! * [`FaultyCuboidModel`] (`"FB3D"`) and [`MinimumPolyhedronModel`]
//!   (`"MFP3D"`) — the cuboid baseline and the minimum-polyhedron
//!   construction, implementing the dimension-generic
//!   `mocp_topology::FaultModel<Mesh3D>` and producing [`Outcome3`], the
//!   `Mesh3D` instantiation of the one generic `Outcome`;
//! * the [`topology`] module — `Mesh3D: MeshTopology` plus the region /
//!   status / fault-store trait impls that plug the whole 3-D stack into
//!   the generic registry, injector and scenario runner.
//!
//! The `experiments` crate sweeps these models over a 32×32×32 mesh
//! (`paper_figures --dim 3`) through the *same* `run_scenario` code path
//! as the 2-D figures, producing the 3-D analogues of the paper's
//! Figures 9 and 10.
//!
//! ```
//! use mocp_3d::{generate_faults_3d, standard_registry_3d, Mesh3D};
//! use faultgen::FaultDistribution;
//!
//! let mesh = Mesh3D::cube(12);
//! let faults = generate_faults_3d(mesh, 30, FaultDistribution::Clustered, 1);
//! let registry = standard_registry_3d();
//! let fb = registry.construct("FB3D", &mesh, &faults).unwrap();
//! let mfp = registry.construct("MFP3D", &mesh, &faults).unwrap();
//! assert!(mfp.disabled_nonfaulty() <= fb.disabled_nonfaulty());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bitgrid;
pub mod fault;
pub mod grid;
pub mod mesh;
pub mod model;
pub mod region;
pub mod registry;
pub mod topology;

pub use bitgrid::BitGrid3;
pub use fault::{generate_faults_3d, FaultInjector3, FaultSet3};
pub use grid::Grid3;
pub use mesh::Mesh3D;
pub use model::{FaultyCuboidModel, MinimumPolyhedronModel, Outcome3};
pub use region::{minimum_polyhedra, Region3};
pub use registry::{standard_registry_3d, BoxedModel3, ModelRegistry3};

// The dimension-generic vocabulary this crate instantiates.
pub use mocp_topology::{FaultModel, MeshTopology, Outcome};

// The node address vocabulary is shared with the specification prototype.
pub use mocp_core::extension3d::Coord3;
