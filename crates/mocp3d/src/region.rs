//! Dense 3-D node sets: bitmap floods, 26-connected labelling and the
//! dirty-line minimum orthogonal convex hull.
//!
//! This is the performance core of the 3-D subsystem. Where the
//! specification prototype (`mocp_core::extension3d`) probes a per-node
//! `BTreeSet` for every membership test, this [`Region3`] keeps a flat
//! occupancy bitmap over the region's bounding box, so component labelling
//! is a stack flood over contiguous memory and the hull construction scans
//! axis lines by stride. The hull additionally tracks *dirty lines*: a line
//! is rescanned only after a fill along another axis inserted a node on it,
//! instead of recomputing every axis run over the whole region per fixpoint
//! iteration.
//!
//! The construction is property-tested equal to the prototype's
//! `minimum_polyhedra` (the differential oracle) in `tests/`.

use mocp_core::extension3d::Coord3;

/// A set of 3-D nodes, stored as an occupancy bitmap over the set's
/// bounding box.
///
/// The dense analogue of `mocp_core::extension3d::Region3`. Equality is
/// set equality (the bounding box is a representation detail).
#[derive(Clone, Debug)]
pub struct Region3 {
    /// Minimum corner of the bounding box. Meaningless when `dims == [0; 3]`.
    origin: Coord3,
    /// Bounding-box extents; `[0, 0, 0]` exactly when the region is empty.
    dims: [usize; 3],
    /// Occupancy, x-major within the bounding box.
    cells: Vec<bool>,
    /// Number of occupied cells.
    len: usize,
}

impl Default for Region3 {
    fn default() -> Self {
        Region3::new()
    }
}

impl Region3 {
    /// The empty region.
    pub fn new() -> Self {
        Region3 {
            origin: Coord3::new(0, 0, 0),
            dims: [0; 3],
            cells: Vec::new(),
            len: 0,
        }
    }

    /// Builds a region from coordinates (duplicates are ignored). The
    /// bitmap is allocated once over the coordinates' bounding box.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord3>) -> Self {
        let coords: Vec<Coord3> = coords.into_iter().collect();
        let Some((lo, hi)) = bounding_box(&coords) else {
            return Region3::new();
        };
        let dims = [
            (hi.x - lo.x + 1) as usize,
            (hi.y - lo.y + 1) as usize,
            (hi.z - lo.z + 1) as usize,
        ];
        let mut region = Region3 {
            origin: lo,
            dims,
            cells: vec![false; dims[0] * dims[1] * dims[2]],
            len: 0,
        };
        for c in coords {
            let i = region
                .cell_index(c)
                .expect("coords are inside their own bounding box");
            if !region.cells[i] {
                region.cells[i] = true;
                region.len += 1;
            }
        }
        region
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The minimum and maximum corners of the bounding box, or `None` when
    /// empty.
    pub fn bounding_box(&self) -> Option<(Coord3, Coord3)> {
        (self.len > 0).then(|| {
            (
                self.origin,
                Coord3::new(
                    self.origin.x + self.dims[0] as i32 - 1,
                    self.origin.y + self.dims[1] as i32 - 1,
                    self.origin.z + self.dims[2] as i32 - 1,
                ),
            )
        })
    }

    /// The bitmap index of `c`, or `None` when `c` lies outside the
    /// bounding box.
    #[inline]
    fn cell_index(&self, c: Coord3) -> Option<usize> {
        let x = c.x.checked_sub(self.origin.x)? as i64;
        let y = c.y.checked_sub(self.origin.y)? as i64;
        let z = c.z.checked_sub(self.origin.z)? as i64;
        let [dx, dy, dz] = self.dims.map(|d| d as i64);
        if (0..dx).contains(&x) && (0..dy).contains(&y) && (0..dz).contains(&z) {
            Some((x + dx * (y + dy * z)) as usize)
        } else {
            None
        }
    }

    /// Inverse of [`cell_index`](Self::cell_index).
    #[inline]
    fn coord_of(&self, index: usize) -> Coord3 {
        let [dx, dy, _] = self.dims;
        Coord3::new(
            self.origin.x + (index % dx) as i32,
            self.origin.y + ((index / dx) % dy) as i32,
            self.origin.z + (index / (dx * dy)) as i32,
        )
    }

    /// Membership test.
    pub fn contains(&self, c: Coord3) -> bool {
        self.cell_index(c).is_some_and(|i| self.cells[i])
    }

    /// Inserts a node, growing the bounding box if needed. Returns `true`
    /// when the node was newly inserted. Growth reallocates the bitmap, so
    /// hot loops should build regions via [`from_coords`](Self::from_coords)
    /// (the hull construction only ever fills *inside* the box).
    pub fn insert(&mut self, c: Coord3) -> bool {
        if self.is_empty() {
            *self = Region3 {
                origin: c,
                dims: [1, 1, 1],
                cells: vec![true],
                len: 1,
            };
            return true;
        }
        if self.cell_index(c).is_none() {
            let mut coords: Vec<Coord3> = self.iter().collect();
            coords.push(c);
            *self = Region3::from_coords(coords);
            return true;
        }
        let i = self.cell_index(c).expect("bounds checked above");
        if self.cells[i] {
            false
        } else {
            self.cells[i] = true;
            self.len += 1;
            true
        }
    }

    /// Iterates the nodes in x-major bounding-box order.
    pub fn iter(&self) -> impl Iterator<Item = Coord3> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|&(_, &occupied)| occupied)
            .map(|(i, _)| self.coord_of(i))
    }

    /// Decomposes into 26-connected components (the 3-D merge process),
    /// via a stack flood over the occupancy bitmap.
    pub fn components26(&self) -> Vec<Region3> {
        let mut visited = vec![false; self.cells.len()];
        let mut out = Vec::new();
        let [dx, dy, dz] = self.dims.map(|d| d as i64);
        for start in 0..self.cells.len() {
            if !self.cells[start] || visited[start] {
                continue;
            }
            visited[start] = true;
            let mut component = vec![start];
            let mut stack = vec![start];
            while let Some(i) = stack.pop() {
                let i = i as i64;
                let (x, y, z) = (i % dx, (i / dx) % dy, i / (dx * dy));
                for nz in (z - 1).max(0)..=(z + 1).min(dz - 1) {
                    for ny in (y - 1).max(0)..=(y + 1).min(dy - 1) {
                        for nx in (x - 1).max(0)..=(x + 1).min(dx - 1) {
                            let n = (nx + dx * (ny + dy * nz)) as usize;
                            if self.cells[n] && !visited[n] {
                                visited[n] = true;
                                component.push(n);
                                stack.push(n);
                            }
                        }
                    }
                }
            }
            out.push(Region3::from_coords(
                component.into_iter().map(|i| self.coord_of(i)),
            ));
        }
        out
    }

    /// The 3-D orthogonal convexity test: along every axis-parallel line
    /// the region's nodes form one contiguous run.
    pub fn is_orthogonally_convex(&self) -> bool {
        for axis in 0..3 {
            let lines = self.line_count(axis);
            for line in 0..lines {
                let (base, stride, count) = self.line_geometry(axis, line);
                let mut first = None;
                let mut last = 0;
                for k in 0..count {
                    if self.cells[base + k * stride] {
                        first.get_or_insert(k);
                        last = k;
                    }
                }
                if let Some(first) = first {
                    for k in first..=last {
                        if !self.cells[base + k * stride] {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Number of axis-parallel lines of `axis` crossing the bounding box.
    #[inline]
    fn line_count(&self, axis: usize) -> usize {
        let [dx, dy, dz] = self.dims;
        match axis {
            0 => dy * dz,
            1 => dx * dz,
            _ => dx * dy,
        }
    }

    /// `(base index, stride, cell count)` of line `line` along `axis`.
    #[inline]
    fn line_geometry(&self, axis: usize, line: usize) -> (usize, usize, usize) {
        let [dx, dy, dz] = self.dims;
        match axis {
            // Line (y, z): cells x + dx*(y + dy*z), x = 0..dx.
            0 => (dx * line, 1, dx),
            // Line (x, z): cells x + dx*(y + dy*z), y = 0..dy.
            1 => {
                let (x, z) = (line % dx, line / dx);
                (x + dx * dy * z, dx, dy)
            }
            // Line (x, y): cells x + dx*(y + dy*z), z = 0..dz.
            _ => (line, dx * dy, dz),
        }
    }

    /// The line (of `axis`) passing through cell `index`.
    #[inline]
    fn line_of(&self, axis: usize, index: usize) -> usize {
        let [dx, dy, _] = self.dims;
        match axis {
            0 => index / dx,
            1 => (index % dx) + dx * (index / (dx * dy)),
            _ => index % (dx * dy),
        }
    }

    /// The minimum orthogonal convex polyhedron containing the region:
    /// iterated gap filling along the three axes, rescanning only *dirty*
    /// lines.
    ///
    /// Filling a line makes it contiguous, and only a fill along a
    /// different axis can re-open it (by inserting a node beyond the old
    /// run). So every line starts dirty, is cleaned by its scan, and is
    /// re-marked only when a fill on another axis lands on it. Every filled
    /// node lies between two region nodes on an axis line — it is forced
    /// into any orthogonally convex superset — so the fixpoint is the
    /// unique minimum hull regardless of scan order, and matches the
    /// specification prototype exactly.
    ///
    /// Fills never leave the bounding box, so the bitmap is allocated once.
    pub fn orthogonal_convex_hull(&self) -> Region3 {
        let mut hull = self.clone();
        if hull.len <= 1 {
            return hull;
        }
        let mut dirty: [Vec<bool>; 3] = [0, 1, 2].map(|axis| vec![true; hull.line_count(axis)]);
        let mut pending = true;
        while pending {
            for axis in 0..3 {
                for line in 0..dirty[axis].len() {
                    if !dirty[axis][line] {
                        continue;
                    }
                    dirty[axis][line] = false;
                    let (base, stride, count) = hull.line_geometry(axis, line);
                    let mut first = None;
                    let mut last = 0;
                    for k in 0..count {
                        if hull.cells[base + k * stride] {
                            first.get_or_insert(k);
                            last = k;
                        }
                    }
                    let Some(first) = first else { continue };
                    for k in first + 1..last {
                        let i = base + k * stride;
                        if !hull.cells[i] {
                            hull.cells[i] = true;
                            hull.len += 1;
                            for (other, lines) in dirty.iter_mut().enumerate() {
                                if other != axis {
                                    lines[hull.line_of(other, i)] = true;
                                }
                            }
                        }
                    }
                }
            }
            // Lines dirtied for an axis already passed this round need one
            // more round; a full pass with no remaining dirty line ends it.
            pending = dirty.iter().any(|lines| lines.contains(&true));
        }
        hull
    }
}

impl PartialEq for Region3 {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|c| other.contains(c))
    }
}

impl Eq for Region3 {}

fn bounding_box(coords: &[Coord3]) -> Option<(Coord3, Coord3)> {
    let first = *coords.first()?;
    let (mut lo, mut hi) = (first, first);
    for &c in &coords[1..] {
        lo = Coord3::new(lo.x.min(c.x), lo.y.min(c.y), lo.z.min(c.z));
        hi = Coord3::new(hi.x.max(c.x), hi.y.max(c.y), hi.z.max(c.z));
    }
    Some((lo, hi))
}

/// The 3-D analogue of the paper's construction: merge the faults into
/// 26-adjacent components and return each component's minimum orthogonal
/// convex polyhedron. The dense, bitmap-backed equivalent of the
/// specification prototype `mocp_core::extension3d::minimum_polyhedra`.
pub fn minimum_polyhedra(faults: &Region3) -> Vec<Region3> {
    faults
        .components26()
        .into_iter()
        .map(|c| c.orthogonal_convex_hull())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(list: &[(i32, i32, i32)]) -> Region3 {
        Region3::from_coords(list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)))
    }

    #[test]
    fn set_semantics() {
        let mut r = region(&[(0, 0, 0), (2, 1, 0)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(Coord3::new(0, 0, 0)));
        assert!(!r.contains(Coord3::new(1, 0, 0)));
        assert!(!r.contains(Coord3::new(-5, 0, 0)));
        assert!(r.insert(Coord3::new(1, 0, 0)));
        assert!(!r.insert(Coord3::new(1, 0, 0)), "duplicate insert");
        assert_eq!(r.len(), 3);
        // Equality ignores bounding boxes.
        assert_eq!(r, region(&[(0, 0, 0), (1, 0, 0), (2, 1, 0)]));
        assert_ne!(r, region(&[(0, 0, 0)]));
    }

    #[test]
    fn insert_grows_the_bounding_box() {
        let mut r = Region3::new();
        assert!(r.is_empty());
        assert!(r.insert(Coord3::new(5, 5, 5)));
        assert!(r.insert(Coord3::new(-2, 7, 5)), "outside the current box");
        assert_eq!(r.len(), 2);
        assert!(r.contains(Coord3::new(-2, 7, 5)));
        let (lo, hi) = r.bounding_box().unwrap();
        assert_eq!(lo, Coord3::new(-2, 5, 5));
        assert_eq!(hi, Coord3::new(5, 7, 5));
    }

    #[test]
    fn components_match_26_adjacency() {
        // A diagonal chain is one component; a detached node is another.
        let r = region(&[(0, 0, 0), (1, 1, 1), (2, 2, 2), (5, 0, 0)]);
        let comps = r.components26();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(Region3::len).sum::<usize>(), 4);
    }

    #[test]
    fn u_shape_is_filled_and_detected() {
        let u = region(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0), (2, 1, 0)]);
        assert!(!u.is_orthogonally_convex());
        let hull = u.orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 0)));
        assert_eq!(hull.len(), 6);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn hollow_cube_shell_fills_center() {
        let mut nodes = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    if (x, y, z) != (1, 1, 1) {
                        nodes.push((x, y, z));
                    }
                }
            }
        }
        let hull = region(&nodes).orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 1)));
        assert_eq!(hull.len(), 27);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn minimum_polyhedra_hulls_per_component() {
        // An L-chain (0,0)-(1,1)-(2,0): the y=0 line has a gap at (1,0)
        // that the hull must fill. The far node is its own component.
        let r = region(&[(0, 0, 0), (1, 1, 0), (2, 0, 0), (6, 6, 6)]);
        let polys = minimum_polyhedra(&r);
        assert_eq!(polys.len(), 2);
        let total: usize = polys.iter().map(Region3::len).sum();
        assert_eq!(total, 5, "the 1-D gap is filled, the singleton is kept");
        assert!(polys[0].contains(Coord3::new(1, 0, 0)));
    }

    #[test]
    fn hull_is_idempotent() {
        let r = region(&[(0, 0, 0), (2, 0, 0), (1, 1, 0), (0, 0, 2)]);
        let h1 = r.orthogonal_convex_hull();
        let h2 = h1.orthogonal_convex_hull();
        assert_eq!(h1, h2);
        assert!(h1.is_orthogonally_convex());
    }

    #[test]
    fn empty_and_singleton_hulls() {
        assert!(Region3::new().orthogonal_convex_hull().is_empty());
        assert!(Region3::new().is_orthogonally_convex());
        assert_eq!(Region3::new().bounding_box(), None);
        let s = region(&[(3, 3, 3)]);
        assert_eq!(s.orthogonal_convex_hull(), s);
    }
}
