//! Dense 3-D node sets: word-packed bitmap floods, 26-connected labelling
//! and the bit-parallel minimum orthogonal convex hull.
//!
//! This is the performance core of the 3-D subsystem. Where the
//! specification prototype (`mocp_core::extension3d`) probes a per-node
//! `BTreeSet` for every membership test, this [`Region3`] keeps a
//! word-packed occupancy bitmap ([`BitGrid3`]) over the region's bounding
//! box — 64 nodes per `u64` along the x axis — so component labelling is
//! a find-first-set seed plus whole-word frontier expansion, and the hull
//! construction fills per-axis occupied spans with leading/trailing-zero
//! counts (x) and word-parallel prefix/suffix sweeps (y, z) instead of
//! cell loops.
//!
//! The construction is `debug_assert`ed and property-tested equal to the
//! prototype's `minimum_polyhedra` (the differential oracle) in `tests/`.

use crate::bitgrid::BitGrid3;
use mocp_core::extension3d::{self, Coord3};

/// Size cap under which the hull re-verifies against the scalar prototype
/// in debug builds (larger instances are pinned by the property tests).
const ORACLE_NODE_CAP: usize = 512;

/// A set of 3-D nodes, stored as a word-packed occupancy bitmap over the
/// set's bounding box.
///
/// The dense analogue of `mocp_core::extension3d::Region3`. Equality is
/// set equality (the bounding box is a representation detail).
#[derive(Clone, Debug, Default)]
pub struct Region3 {
    bits: BitGrid3,
}

impl Region3 {
    /// The empty region.
    pub fn new() -> Self {
        Region3 {
            bits: BitGrid3::empty(),
        }
    }

    /// Builds a region from coordinates (duplicates are ignored). The
    /// bitmap is allocated once over the coordinates' bounding box.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord3>) -> Self {
        Region3 {
            bits: BitGrid3::from_coords(coords),
        }
    }

    /// Wraps an existing bitmap.
    pub(crate) fn from_bits(bits: BitGrid3) -> Self {
        Region3 { bits }
    }

    /// The region's word-packed bitmap.
    pub fn bits(&self) -> &BitGrid3 {
        &self.bits
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The minimum and maximum corners of the bounding box, or `None` when
    /// empty.
    pub fn bounding_box(&self) -> Option<(Coord3, Coord3)> {
        self.bits.bounding_box()
    }

    /// Membership test.
    pub fn contains(&self, c: Coord3) -> bool {
        self.bits.contains(c)
    }

    /// Inserts a node, growing the bounding box if needed. Returns `true`
    /// when the node was newly inserted. Growth reallocates the bitmap, so
    /// hot loops should build regions via [`from_coords`](Self::from_coords)
    /// (the hull construction only ever fills *inside* the box).
    pub fn insert(&mut self, c: Coord3) -> bool {
        self.bits.insert(c)
    }

    /// `self ∪= other` as whole-word ORs — the merge-process accumulator,
    /// replacing per-node re-insertion.
    pub fn union_in_place(&mut self, other: &Region3) {
        self.bits.union_with(&other.bits);
    }

    /// Iterates the nodes in x-major bounding-box order.
    pub fn iter(&self) -> impl Iterator<Item = Coord3> + '_ {
        self.bits.iter()
    }

    /// Decomposes into 26-connected components (the 3-D merge process)
    /// via the word-scan flood: find-first-set seeds plus whole-word
    /// frontier expansion over the 3×3 neighboring lines.
    pub fn components26(&self) -> Vec<Region3> {
        self.bits
            .components26()
            .into_iter()
            .map(Region3::from_bits)
            .collect()
    }

    /// The 3-D orthogonal convexity test: along every axis-parallel line
    /// the region's nodes form one contiguous run — word-parallel span and
    /// run scans on the packed bitmap.
    pub fn is_orthogonally_convex(&self) -> bool {
        self.bits.is_orthogonally_convex()
    }

    /// The minimum orthogonal convex polyhedron containing the region:
    /// the bit-parallel hull fixpoint — per-axis occupied spans from
    /// leading/trailing-zero counts (x) and word-parallel prefix/suffix
    /// sweeps (y, z), iterated to the fixpoint. Every filled node lies
    /// between two region nodes on an axis line — forced into any
    /// orthogonally convex superset — so the fixpoint is the unique
    /// minimum hull and matches the specification prototype exactly
    /// (`debug_assert`ed on small inputs, property-tested beyond).
    ///
    /// Fills never leave the bounding box, so the bitmap is allocated once.
    pub fn orthogonal_convex_hull(&self) -> Region3 {
        let mut hull = self.bits.clone();
        hull.hull_fixpoint();
        let hull = Region3 { bits: hull };
        debug_assert!(
            self.len() > ORACLE_NODE_CAP || {
                let oracle =
                    extension3d::Region3::from_coords(self.iter()).orthogonal_convex_hull();
                oracle.len() == hull.len() && hull.iter().all(|c| oracle.contains(c))
            },
            "bit-parallel 3-D hull diverged from the extension3d prototype"
        );
        hull
    }
}

impl PartialEq for Region3 {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().all(|c| other.contains(c))
    }
}

impl Eq for Region3 {}

/// The 3-D analogue of the paper's construction: merge the faults into
/// 26-adjacent components and return each component's minimum orthogonal
/// convex polyhedron. The dense, bitmap-backed equivalent of the
/// specification prototype `mocp_core::extension3d::minimum_polyhedra`.
pub fn minimum_polyhedra(faults: &Region3) -> Vec<Region3> {
    faults
        .components26()
        .into_iter()
        .map(|c| c.orthogonal_convex_hull())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(list: &[(i32, i32, i32)]) -> Region3 {
        Region3::from_coords(list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)))
    }

    #[test]
    fn set_semantics() {
        let mut r = region(&[(0, 0, 0), (2, 1, 0)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(Coord3::new(0, 0, 0)));
        assert!(!r.contains(Coord3::new(1, 0, 0)));
        assert!(!r.contains(Coord3::new(-5, 0, 0)));
        assert!(r.insert(Coord3::new(1, 0, 0)));
        assert!(!r.insert(Coord3::new(1, 0, 0)), "duplicate insert");
        assert_eq!(r.len(), 3);
        // Equality ignores bounding boxes.
        assert_eq!(r, region(&[(0, 0, 0), (1, 0, 0), (2, 1, 0)]));
        assert_ne!(r, region(&[(0, 0, 0)]));
    }

    #[test]
    fn insert_grows_the_bounding_box() {
        let mut r = Region3::new();
        assert!(r.is_empty());
        assert!(r.insert(Coord3::new(5, 5, 5)));
        assert!(r.insert(Coord3::new(-2, 7, 5)), "outside the current box");
        assert_eq!(r.len(), 2);
        assert!(r.contains(Coord3::new(-2, 7, 5)));
        let (lo, hi) = r.bounding_box().unwrap();
        assert_eq!(lo, Coord3::new(-2, 5, 5));
        assert_eq!(hi, Coord3::new(5, 7, 5));
    }

    #[test]
    fn union_in_place_merges_sets() {
        let mut a = region(&[(0, 0, 0), (1, 1, 1)]);
        let b = region(&[(1, 1, 1), (70, 3, 2)]);
        a.union_in_place(&b);
        assert_eq!(a.len(), 3);
        assert!(a.contains(Coord3::new(70, 3, 2)));
    }

    #[test]
    fn components_match_26_adjacency() {
        // A diagonal chain is one component; a detached node is another.
        let r = region(&[(0, 0, 0), (1, 1, 1), (2, 2, 2), (5, 0, 0)]);
        let comps = r.components26();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(Region3::len).sum::<usize>(), 4);
    }

    #[test]
    fn u_shape_is_filled_and_detected() {
        let u = region(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0), (2, 1, 0)]);
        assert!(!u.is_orthogonally_convex());
        let hull = u.orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 0)));
        assert_eq!(hull.len(), 6);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn hollow_cube_shell_fills_center() {
        let mut nodes = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    if (x, y, z) != (1, 1, 1) {
                        nodes.push((x, y, z));
                    }
                }
            }
        }
        let hull = region(&nodes).orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 1)));
        assert_eq!(hull.len(), 27);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn minimum_polyhedra_hulls_per_component() {
        // An L-chain (0,0)-(1,1)-(2,0): the y=0 line has a gap at (1,0)
        // that the hull must fill. The far node is its own component.
        let r = region(&[(0, 0, 0), (1, 1, 0), (2, 0, 0), (6, 6, 6)]);
        let polys = minimum_polyhedra(&r);
        assert_eq!(polys.len(), 2);
        let total: usize = polys.iter().map(Region3::len).sum();
        assert_eq!(total, 5, "the 1-D gap is filled, the singleton is kept");
        assert!(polys[0].contains(Coord3::new(1, 0, 0)));
    }

    #[test]
    fn hull_is_idempotent() {
        let r = region(&[(0, 0, 0), (2, 0, 0), (1, 1, 0), (0, 0, 2)]);
        let h1 = r.orthogonal_convex_hull();
        let h2 = h1.orthogonal_convex_hull();
        assert_eq!(h1, h2);
        assert!(h1.is_orthogonally_convex());
    }

    #[test]
    fn empty_and_singleton_hulls() {
        assert!(Region3::new().orthogonal_convex_hull().is_empty());
        assert!(Region3::new().is_orthogonally_convex());
        assert_eq!(Region3::new().bounding_box(), None);
        let s = region(&[(3, 3, 3)]);
        assert_eq!(s.orthogonal_convex_hull(), s);
    }
}
