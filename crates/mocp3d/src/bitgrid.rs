//! The 3-D word-packed occupancy bitmap: 64 nodes per `u64` along the x
//! axis, one packed *x-line* per `(y, z)` pair.
//!
//! [`BitGrid3`] is the 3-D counterpart of `mesh2d::BitGrid` and the
//! storage behind [`Region3`](crate::Region3): 26-connected component
//! labelling runs as a find-first-set seed plus whole-word frontier
//! expansion over the 3×3 line neighborhood, the minimum-polyhedron hull
//! fixpoint fills per-axis occupied spans with leading/trailing-zero
//! counts (x) and word-parallel prefix/suffix sweeps (y, z), and the
//! safety predicates are whole-word subset/intersection scans.
//!
//! Frames anchor their x-origin to a multiple of 64, so any two grids
//! share one bit phase and binary operations are pure word loops. The
//! scalar prototype in `mocp_core::extension3d` remains the specification
//! the kernels here are property-tested against.

use mesh2d::bitgrid::{row_span_mask, spread_row};
use mocp_core::extension3d::Coord3;

/// Rounds `x` down to a multiple of 64.
#[inline]
fn word_align(x: i32) -> i32 {
    x.div_euclid(64) * 64
}

/// A word-packed occupancy bitmap over a box-shaped frame of the 3-D
/// coordinate space.
#[derive(Clone, Debug, Default)]
pub struct BitGrid3 {
    /// West edge of the frame; always a multiple of 64.
    origin_x: i32,
    origin_y: i32,
    origin_z: i32,
    /// Words per x-line.
    width_words: usize,
    dim_y: usize,
    dim_z: usize,
    /// `(z * dim_y + y) * width_words + x/64`, x-major.
    words: Vec<u64>,
}

impl BitGrid3 {
    /// A grid with an empty frame (contains nothing, accepts growth).
    pub fn empty() -> Self {
        BitGrid3::default()
    }

    /// An all-clear grid whose frame covers `lo..=hi` (inclusive).
    pub fn with_bounds(lo: Coord3, hi: Coord3) -> Self {
        assert!(
            lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z,
            "invalid bounds"
        );
        let origin_x = word_align(lo.x);
        let width_words = ((hi.x - origin_x) as usize) / 64 + 1;
        let dim_y = (hi.y - lo.y + 1) as usize;
        let dim_z = (hi.z - lo.z + 1) as usize;
        BitGrid3 {
            origin_x,
            origin_y: lo.y,
            origin_z: lo.z,
            width_words,
            dim_y,
            dim_z,
            words: vec![0; width_words * dim_y * dim_z],
        }
    }

    /// Builds a grid from coordinates, framed by their bounding box.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord3>) -> Self {
        let coords: Vec<Coord3> = coords.into_iter().collect();
        let Some(&first) = coords.first() else {
            return BitGrid3::empty();
        };
        let (mut lo, mut hi) = (first, first);
        for &c in &coords[1..] {
            lo = Coord3::new(lo.x.min(c.x), lo.y.min(c.y), lo.z.min(c.z));
            hi = Coord3::new(hi.x.max(c.x), hi.y.max(c.y), hi.z.max(c.z));
        }
        let mut grid = BitGrid3::with_bounds(lo, hi);
        for c in coords {
            grid.set(c);
        }
        grid
    }

    /// Number of lines (one per `(y, z)` pair).
    #[inline]
    fn lines(&self) -> usize {
        self.dim_y * self.dim_z
    }

    /// True when the frame covers `c`.
    #[inline]
    pub fn in_frame(&self, c: Coord3) -> bool {
        c.x >= self.origin_x
            && ((c.x - self.origin_x) as usize) < self.width_words * 64
            && c.y >= self.origin_y
            && ((c.y - self.origin_y) as usize) < self.dim_y
            && c.z >= self.origin_z
            && ((c.z - self.origin_z) as usize) < self.dim_z
    }

    #[inline]
    fn pos(&self, c: Coord3) -> (usize, u64) {
        debug_assert!(self.in_frame(c));
        let dx = (c.x - self.origin_x) as usize;
        let line = (c.z - self.origin_z) as usize * self.dim_y + (c.y - self.origin_y) as usize;
        (line * self.width_words + dx / 64, 1u64 << (dx % 64))
    }

    /// Membership test; coordinates outside the frame are absent.
    #[inline]
    pub fn contains(&self, c: Coord3) -> bool {
        if !self.in_frame(c) {
            return false;
        }
        let (i, bit) = self.pos(c);
        self.words[i] & bit != 0
    }

    /// Sets the bit at `c` (must be inside the frame). Returns `true` when
    /// newly set.
    #[inline]
    pub fn set(&mut self, c: Coord3) -> bool {
        let (i, bit) = self.pos(c);
        let newly = self.words[i] & bit == 0;
        self.words[i] |= bit;
        newly
    }

    /// Inserts `c`, growing the frame when necessary.
    pub fn insert(&mut self, c: Coord3) -> bool {
        if self.words.is_empty() {
            *self = BitGrid3::with_bounds(c, c);
            return self.set(c);
        }
        if !self.in_frame(c) {
            let (lo, hi) = self.frame_bounds();
            self.regrow(
                Coord3::new(lo.x.min(c.x), lo.y.min(c.y), lo.z.min(c.z)),
                Coord3::new(hi.x.max(c.x), hi.y.max(c.y), hi.z.max(c.z)),
            );
        }
        self.set(c)
    }

    /// Clears the bit at `c`. Returns `true` when it was set.
    pub fn remove(&mut self, c: Coord3) -> bool {
        if !self.in_frame(c) {
            return false;
        }
        let (i, bit) = self.pos(c);
        let was = self.words[i] & bit != 0;
        self.words[i] &= !bit;
        was
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn frame_bounds(&self) -> (Coord3, Coord3) {
        (
            Coord3::new(self.origin_x, self.origin_y, self.origin_z),
            Coord3::new(
                self.origin_x + (self.width_words * 64) as i32 - 1,
                self.origin_y + self.dim_y as i32 - 1,
                self.origin_z + self.dim_z as i32 - 1,
            ),
        )
    }

    /// Reallocates to a frame covering `lo..=hi`, word-copying the content.
    fn regrow(&mut self, lo: Coord3, hi: Coord3) {
        let mut grown = BitGrid3::with_bounds(lo, hi);
        let dw = ((self.origin_x - grown.origin_x) / 64) as usize;
        for z in 0..self.dim_z {
            for y in 0..self.dim_y {
                let src_line = z * self.dim_y + y;
                let dst_line = (z as i32 + self.origin_z - grown.origin_z) as usize * grown.dim_y
                    + (y as i32 + self.origin_y - grown.origin_y) as usize;
                let src =
                    &self.words[src_line * self.width_words..(src_line + 1) * self.width_words];
                let dst_start = dst_line * grown.width_words + dw;
                grown.words[dst_start..dst_start + self.width_words].copy_from_slice(src);
            }
        }
        *self = grown;
    }

    /// Iterates set bits in x-major order (z slowest, then y, then x) —
    /// the same order the dense index enumeration uses.
    pub fn iter(&self) -> impl Iterator<Item = Coord3> + '_ {
        let ww = self.width_words;
        (0..self.lines()).flat_map(move |line| {
            let y = self.origin_y + (line % self.dim_y) as i32;
            let z = self.origin_z + (line / self.dim_y) as i32;
            (0..ww).flat_map(move |j| {
                let mut w = self.words[line * ww + j];
                let base_x = self.origin_x + (j * 64) as i32;
                std::iter::from_fn(move || {
                    if w == 0 {
                        return None;
                    }
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(Coord3::new(base_x + b as i32, y, z))
                })
            })
        })
    }

    /// The tight bounding box of the set bits, or `None` when empty.
    pub fn bounding_box(&self) -> Option<(Coord3, Coord3)> {
        let ww = self.width_words;
        let mut col_or = vec![0u64; ww];
        let (mut min_y, mut max_y) = (i32::MAX, i32::MIN);
        let (mut min_z, mut max_z) = (i32::MAX, i32::MIN);
        for line in 0..self.lines() {
            let mut any = false;
            for (j, acc) in col_or.iter_mut().enumerate() {
                let w = self.words[line * ww + j];
                *acc |= w;
                any |= w != 0;
            }
            if any {
                let y = self.origin_y + (line % self.dim_y) as i32;
                let z = self.origin_z + (line / self.dim_y) as i32;
                min_y = min_y.min(y);
                max_y = max_y.max(y);
                min_z = min_z.min(z);
                max_z = max_z.max(z);
            }
        }
        let first = col_or.iter().position(|&w| w != 0)?;
        let last = col_or.iter().rposition(|&w| w != 0).expect("non-empty");
        Some((
            Coord3::new(
                self.origin_x + (first * 64) as i32 + col_or[first].trailing_zeros() as i32,
                min_y,
                min_z,
            ),
            Coord3::new(
                self.origin_x + (last * 64) as i32 + 63 - col_or[last].leading_zeros() as i32,
                max_y,
                max_z,
            ),
        ))
    }

    /// Calls `f(self_word, other_word)` over `self`'s frame with `other`'s
    /// word at the same spatial position (0 outside `other`'s frame).
    #[inline]
    fn zip_words(&self, other: &BitGrid3, mut f: impl FnMut(u64, u64)) {
        let dw = (self.origin_x - other.origin_x) / 64;
        for line in 0..self.lines() {
            let y = self.origin_y + (line % self.dim_y) as i32;
            let z = self.origin_z + (line / self.dim_y) as i32;
            let oy = y - other.origin_y;
            let oz = z - other.origin_z;
            let in_other =
                (0..other.dim_y as i32).contains(&oy) && (0..other.dim_z as i32).contains(&oz);
            for j in 0..self.width_words {
                let ow = if in_other {
                    let oj = j as i64 + dw as i64;
                    if oj >= 0 && (oj as usize) < other.width_words {
                        let oline = oz as usize * other.dim_y + oy as usize;
                        other.words[oline * other.width_words + oj as usize]
                    } else {
                        0
                    }
                } else {
                    0
                };
                f(self.words[line * self.width_words + j], ow);
            }
        }
    }

    /// Like [`zip_words`](Self::zip_words) but writes back into `self`.
    #[inline]
    fn zip_words_mut(&mut self, other: &BitGrid3, mut f: impl FnMut(u64, u64) -> u64) {
        let dw = (self.origin_x - other.origin_x) / 64;
        for line in 0..self.lines() {
            let y = self.origin_y + (line % self.dim_y) as i32;
            let z = self.origin_z + (line / self.dim_y) as i32;
            let oy = y - other.origin_y;
            let oz = z - other.origin_z;
            let in_other =
                (0..other.dim_y as i32).contains(&oy) && (0..other.dim_z as i32).contains(&oz);
            for j in 0..self.width_words {
                let ow = if in_other {
                    let oj = j as i64 + dw as i64;
                    if oj >= 0 && (oj as usize) < other.width_words {
                        let oline = oz as usize * other.dim_y + oy as usize;
                        other.words[oline * other.width_words + oj as usize]
                    } else {
                        0
                    }
                } else {
                    0
                };
                let w = &mut self.words[line * self.width_words + j];
                *w = f(*w, ow);
            }
        }
    }

    /// Whole-word intersection test.
    pub fn intersects(&self, other: &BitGrid3) -> bool {
        let mut hit = false;
        self.zip_words(other, |a, b| hit |= a & b != 0);
        hit
    }

    /// Whole-word subset test.
    pub fn is_subset_of(&self, other: &BitGrid3) -> bool {
        let mut ok = true;
        self.zip_words(other, |a, b| ok &= a & !b == 0);
        ok
    }

    /// `self |= other`, growing the frame when needed.
    pub fn union_with(&mut self, other: &BitGrid3) {
        if let Some((lo, hi)) = other.bounding_box() {
            if self.words.is_empty() {
                *self = BitGrid3::with_bounds(lo, hi);
            } else if !(self.in_frame(lo) && self.in_frame(hi)) {
                let (slo, shi) = self.frame_bounds();
                self.regrow(
                    Coord3::new(slo.x.min(lo.x), slo.y.min(lo.y), slo.z.min(lo.z)),
                    Coord3::new(shi.x.max(hi.x), shi.y.max(hi.y), shi.z.max(hi.z)),
                );
            }
            self.zip_words_mut(other, |a, b| a | b);
        }
    }

    /// `self &= !other`.
    pub fn subtract(&mut self, other: &BitGrid3) {
        self.zip_words_mut(other, |a, b| a & !b);
    }

    /// The 26-neighborhood dilation as shifted-word ORs: each line is
    /// spread horizontally and ORed into the 3×3 block of neighboring
    /// lines. The frame grows by one node in every direction.
    pub fn dilate26(&self) -> BitGrid3 {
        let Some((lo, hi)) = self.bounding_box() else {
            return BitGrid3::empty();
        };
        let mut out = BitGrid3::with_bounds(
            Coord3::new(lo.x - 1, lo.y - 1, lo.z - 1),
            Coord3::new(hi.x + 1, hi.y + 1, hi.z + 1),
        );
        let ww = out.width_words;
        // The output frame tightly wraps the *content* and can start right
        // of (or end before) this frame — clamp the word copy window.
        let dw = ((self.origin_x - out.origin_x) / 64) as i64;
        let mut src = vec![0u64; ww];
        let mut spread = vec![0u64; ww];
        for line in 0..self.lines() {
            let words = &self.words[line * self.width_words..(line + 1) * self.width_words];
            if words.iter().all(|&w| w == 0) {
                continue;
            }
            let y = self.origin_y + (line % self.dim_y) as i32;
            let z = self.origin_z + (line / self.dim_y) as i32;
            src.fill(0);
            for (j, &w) in words.iter().enumerate() {
                let oj = j as i64 + dw;
                if (0..ww as i64).contains(&oj) {
                    src[oj as usize] = w;
                }
            }
            spread_row(&src, &mut spread);
            for oz in (z - 1)..=(z + 1) {
                for oy in (y - 1)..=(y + 1) {
                    let ly = (oy - out.origin_y) as usize;
                    let lz = (oz - out.origin_z) as usize;
                    if ly < out.dim_y && lz < out.dim_z {
                        let oline = lz * out.dim_y + ly;
                        let dst = &mut out.words[oline * ww..(oline + 1) * ww];
                        for (d, &s) in dst.iter_mut().zip(&spread) {
                            *d |= s;
                        }
                    }
                }
            }
        }
        out
    }

    /// Decomposes into 26-connected components by word-scan flood:
    /// find-first-set seeds, whole-word frontier expansion over the 3×3
    /// neighboring lines. Components come out in first-seen (x-major
    /// storage) order, each framed by its own bounding box — the same
    /// order the scalar index-scan flood produces.
    ///
    /// With an active thread pool and enough z-extent, the grid is cut
    /// into contiguous z-slabs flooded in parallel and stitched back
    /// together (`components26_parallel`);
    /// the result order is identical because both paths order components
    /// by their lexicographically minimal `(z, y, x)` cell — which is
    /// exactly the first-seen storage order of the sequential scan.
    pub fn components26(&self) -> Vec<BitGrid3> {
        let threads = rayon::current_num_threads();
        if threads > 1 && self.dim_z >= 4 {
            // One slab per thread, but keep slabs at least 2 rows thick
            // so the flood does real work between the stitch boundaries.
            let slabs = threads.min(self.dim_z / 2);
            if slabs > 1 {
                let parallel = self.components26_parallel(slabs);
                #[cfg(debug_assertions)]
                if self.words.len() <= 4096 {
                    let sequential: Vec<BitGrid3> = self
                        .components26_range(0, self.dim_z)
                        .into_iter()
                        .map(|(grid, _)| grid)
                        .collect();
                    debug_assert_eq!(parallel.len(), sequential.len());
                    for (p, s) in parallel.iter().zip(&sequential) {
                        debug_assert!(
                            p.len() == s.len() && p.is_subset_of(s),
                            "slab-parallel components diverged from the sequential flood"
                        );
                    }
                }
                return parallel;
            }
        }
        self.components26_range(0, self.dim_z)
            .into_iter()
            .map(|(grid, _)| grid)
            .collect()
    }

    /// The flood of [`components26`](Self::components26) restricted to
    /// grid-relative z rows `band_lo..band_hi`: connectivity never
    /// crosses the band boundary, so each band can run independently.
    /// Returns each in-band component piece with its lexicographically
    /// minimal `(z, y, x)` cell (= its seed, since the seed scan walks
    /// storage order).
    fn components26_range(&self, band_lo: usize, band_hi: usize) -> Vec<(BitGrid3, Coord3)> {
        let ww = self.width_words;
        let total = self.words.len();
        let mut out = Vec::new();
        if total == 0 || band_lo >= band_hi {
            return out;
        }
        let mut visited = vec![0u64; total];
        let mut comp = vec![0u64; total];
        let mut frontier = vec![0u64; total];
        let mut next = vec![0u64; total];
        let mut spread = vec![0u64; total];
        let line_of = |word: usize| word / ww;
        let yz = |line: usize| (line % self.dim_y, line / self.dim_y);

        for seed_word in band_lo * self.dim_y * ww..band_hi * self.dim_y * ww {
            loop {
                let avail = self.words[seed_word] & !visited[seed_word];
                if avail == 0 {
                    break;
                }
                let seed_bit_index = avail.trailing_zeros();
                let seed_bit = 1u64 << seed_bit_index;
                let seed_line = line_of(seed_word);
                let (sy, sz) = yz(seed_line);
                let min_cell = Coord3::new(
                    self.origin_x + ((seed_word % ww) * 64) as i32 + seed_bit_index as i32,
                    self.origin_y + sy as i32,
                    self.origin_z + sz as i32,
                );
                comp[seed_word] = seed_bit;
                frontier[seed_word] = seed_bit;
                // Frontier (y, z) ranges and overall component ranges.
                let (mut ylo, mut yhi, mut zlo, mut zhi) = (sy, sy, sz, sz);
                let (mut cylo, mut cyhi, mut czlo, mut czhi) = (sy, sy, sz, sz);
                loop {
                    for z in zlo..=zhi {
                        for y in ylo..=yhi {
                            let l = (z * self.dim_y + y) * ww;
                            spread_row(&frontier[l..l + ww], &mut spread[l..l + ww]);
                        }
                    }
                    let sylo = ylo.saturating_sub(1);
                    let syhi = (yhi + 1).min(self.dim_y - 1);
                    let szlo = zlo.saturating_sub(1).max(band_lo);
                    let szhi = (zhi + 1).min(band_hi - 1);
                    let mut any = false;
                    let (mut nylo, mut nyhi, mut nzlo, mut nzhi) =
                        (usize::MAX, 0usize, usize::MAX, 0usize);
                    for z in szlo..=szhi {
                        for y in sylo..=syhi {
                            let l = z * self.dim_y + y;
                            for j in 0..ww {
                                let mut nb = 0u64;
                                for dz in -1i32..=1 {
                                    let fz = z as i32 + dz;
                                    if fz < zlo as i32 || fz > zhi as i32 {
                                        continue;
                                    }
                                    for dy in -1i32..=1 {
                                        let fy = y as i32 + dy;
                                        if fy < ylo as i32 || fy > yhi as i32 {
                                            continue;
                                        }
                                        nb |= spread
                                            [(fz as usize * self.dim_y + fy as usize) * ww + j];
                                    }
                                }
                                let grow = nb & self.words[l * ww + j] & !comp[l * ww + j];
                                next[l * ww + j] = grow;
                                if grow != 0 {
                                    comp[l * ww + j] |= grow;
                                    any = true;
                                    nylo = nylo.min(y);
                                    nyhi = nyhi.max(y);
                                    nzlo = nzlo.min(z);
                                    nzhi = nzhi.max(z);
                                }
                            }
                        }
                    }
                    if !any {
                        break;
                    }
                    std::mem::swap(&mut frontier, &mut next);
                    for z in zlo..=zhi {
                        for y in ylo..=yhi {
                            let l = (z * self.dim_y + y) * ww;
                            next[l..l + ww].fill(0);
                        }
                    }
                    (ylo, yhi, zlo, zhi) = (nylo, nyhi, nzlo, nzhi);
                    cylo = cylo.min(ylo);
                    cyhi = cyhi.max(yhi);
                    czlo = czlo.min(zlo);
                    czhi = czhi.max(zhi);
                }

                out.push((self.extract_lines(&comp, cylo, cyhi, czlo, czhi), min_cell));

                let sylo = cylo.saturating_sub(1);
                let syhi = (cyhi + 1).min(self.dim_y - 1);
                let szlo = czlo.saturating_sub(1).max(band_lo);
                let szhi = (czhi + 1).min(band_hi - 1);
                for z in szlo..=szhi {
                    for y in sylo..=syhi {
                        let l = (z * self.dim_y + y) * ww;
                        for j in 0..ww {
                            visited[l + j] |= comp[l + j];
                            comp[l + j] = 0;
                            frontier[l + j] = 0;
                            spread[l + j] = 0;
                            next[l + j] = 0;
                        }
                    }
                }
            }
        }
        out
    }

    /// Slab decomposition of [`components26`](Self::components26): cut
    /// the z rows into `slabs` contiguous bands, flood each band on the
    /// pool, then stitch pieces that touch across a band boundary with a
    /// union-find (26-connectivity means a component's z-extent is
    /// contiguous, so only pieces in *adjacent* bands can belong to the
    /// same component). The stitched components are sorted by their
    /// minimal `(z, y, x)` cell, reproducing the sequential flood's
    /// first-seen order bit for bit.
    ///
    /// `pub(crate)` so the test suite can drive specific slab counts
    /// directly, independent of the ambient pool size.
    pub(crate) fn components26_parallel(&self, slabs: usize) -> Vec<BitGrid3> {
        use rayon::prelude::*;

        let slabs = slabs.clamp(1, self.dim_z.max(1));
        // Contiguous band boundaries: band `b` covers rows
        // `bounds[b]..bounds[b + 1]`.
        let bounds: Vec<usize> = (0..=slabs).map(|b| b * self.dim_z / slabs).collect();
        let band_pieces: Vec<Vec<(BitGrid3, Coord3)>> = (0..slabs)
            .into_par_iter()
            .map(|b| self.components26_range(bounds[b], bounds[b + 1]))
            .collect();

        // Flatten, remembering each piece's band and bounding box.
        struct Piece {
            grid: BitGrid3,
            min_cell: Coord3,
            band: usize,
            bbox: (Coord3, Coord3),
        }
        let mut pieces: Vec<Piece> = Vec::new();
        for (band, list) in band_pieces.into_iter().enumerate() {
            for (grid, min_cell) in list {
                let bbox = grid.bounding_box().expect("components are non-empty");
                pieces.push(Piece {
                    grid,
                    min_cell,
                    band,
                    bbox,
                });
            }
        }

        // Union-find over pieces, stitching across each band boundary.
        let mut parent: Vec<usize> = (0..pieces.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for a in 0..pieces.len() {
            let boundary_z = self.origin_z + bounds[pieces[a].band + 1] as i32 - 1;
            if pieces[a].bbox.1.z != boundary_z {
                continue; // does not reach its band's top row
            }
            // Lazily dilate the boundary-touching piece once.
            let mut dilated: Option<BitGrid3> = None;
            for b in 0..pieces.len() {
                if pieces[b].band != pieces[a].band + 1 || pieces[b].bbox.0.z != boundary_z + 1 {
                    continue;
                }
                // Cheap proximity filter on the x/y boxes (±1 halo).
                let (alo, ahi) = pieces[a].bbox;
                let (blo, bhi) = pieces[b].bbox;
                if alo.x > bhi.x + 1 || blo.x > ahi.x + 1 || alo.y > bhi.y + 1 || blo.y > ahi.y + 1
                {
                    continue;
                }
                let dilated = dilated.get_or_insert_with(|| pieces[a].grid.dilate26());
                if dilated.intersects(&pieces[b].grid) {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }

        // Merge each union-find class into one grid, keyed by the class's
        // minimal cell. `union_with` may leave a word-aligned (wider)
        // frame than the sequential tight extraction; frames are not
        // observable through Region3's content-based API.
        let mut merged: Vec<Option<(Coord3, BitGrid3)>> = (0..pieces.len()).map(|_| None).collect();
        for (i, piece) in pieces.into_iter().enumerate() {
            let root = find(&mut parent, i);
            match &mut merged[root] {
                slot @ None => *slot = Some((piece.min_cell, piece.grid)),
                Some((min_cell, grid)) => {
                    let (a, b) = (*min_cell, piece.min_cell);
                    if (b.z, b.y, b.x) < (a.z, a.y, a.x) {
                        *min_cell = b;
                    }
                    grid.union_with(&piece.grid);
                }
            }
        }
        let mut components: Vec<(Coord3, BitGrid3)> = merged.into_iter().flatten().collect();
        components.sort_by_key(|(c, _)| (c.z, c.y, c.x));
        components.into_iter().map(|(_, grid)| grid).collect()
    }

    /// Copies the set bits of `bits` within the given `(y, z)` line ranges
    /// into a new tightly-framed grid.
    fn extract_lines(
        &self,
        bits: &[u64],
        ylo: usize,
        yhi: usize,
        zlo: usize,
        zhi: usize,
    ) -> BitGrid3 {
        let ww = self.width_words;
        let mut col_or = vec![0u64; ww];
        let (mut min_y, mut max_y) = (usize::MAX, 0usize);
        let (mut min_z, mut max_z) = (usize::MAX, 0usize);
        for z in zlo..=zhi {
            for y in ylo..=yhi {
                let l = (z * self.dim_y + y) * ww;
                let mut any = false;
                for j in 0..ww {
                    col_or[j] |= bits[l + j];
                    any |= bits[l + j] != 0;
                }
                if any {
                    min_y = min_y.min(y);
                    max_y = max_y.max(y);
                    min_z = min_z.min(z);
                    max_z = max_z.max(z);
                }
            }
        }
        assert!(min_y != usize::MAX, "extract_lines on an empty component");
        let first = col_or.iter().position(|&w| w != 0).expect("non-empty");
        let last = col_or.iter().rposition(|&w| w != 0).expect("non-empty");
        let min_x = self.origin_x + (first * 64) as i32 + col_or[first].trailing_zeros() as i32;
        let max_x = self.origin_x + (last * 64) as i32 + 63 - col_or[last].leading_zeros() as i32;
        let mut out = BitGrid3::with_bounds(
            Coord3::new(
                min_x,
                self.origin_y + min_y as i32,
                self.origin_z + min_z as i32,
            ),
            Coord3::new(
                max_x,
                self.origin_y + max_y as i32,
                self.origin_z + max_z as i32,
            ),
        );
        let dw = ((out.origin_x - self.origin_x) / 64) as usize;
        for z in min_z..=max_z {
            for y in min_y..=max_y {
                let src_l = (z * self.dim_y + y) * ww;
                let dst_l = ((z - min_z) * out.dim_y + (y - min_y)) * out.width_words;
                out.words[dst_l..dst_l + out.width_words]
                    .copy_from_slice(&bits[src_l + dw..src_l + dw + out.width_words]);
            }
        }
        out
    }

    /// One snapshot round of per-axis gap filling: the x-span fills (span
    /// masks from trailing/leading-zero counts) plus the y and z fills
    /// (word-parallel prefix/suffix sweeps), all with respect to the
    /// current state, then applied together. Returns the bits added.
    fn fill_gaps_round(&mut self, fill: &mut [u64], aux: &mut [u64]) -> u64 {
        let ww = self.width_words;
        fill.fill(0);

        // X spans per line.
        let mut span = vec![0u64; ww];
        for line in 0..self.lines() {
            let row = &self.words[line * ww..(line + 1) * ww];
            if row_span_mask(row, &mut span) {
                for j in 0..ww {
                    fill[line * ww + j] |= span[j] & !row[j];
                }
            }
        }

        // Y fills: prefix over y into aux, then a downward suffix sweep.
        for z in 0..self.dim_z {
            for j in 0..ww {
                let mut acc = 0u64;
                for y in 0..self.dim_y {
                    let i = (z * self.dim_y + y) * ww + j;
                    acc |= self.words[i];
                    aux[i] = acc;
                }
                let mut suffix = 0u64;
                for y in (0..self.dim_y).rev() {
                    let i = (z * self.dim_y + y) * ww + j;
                    let row = self.words[i];
                    suffix |= row;
                    fill[i] |= aux[i] & suffix & !row;
                }
            }
        }

        // Z fills: prefix over z, then the suffix sweep.
        for y in 0..self.dim_y {
            for j in 0..ww {
                let mut acc = 0u64;
                for z in 0..self.dim_z {
                    let i = (z * self.dim_y + y) * ww + j;
                    acc |= self.words[i];
                    aux[i] = acc;
                }
                let mut suffix = 0u64;
                for z in (0..self.dim_z).rev() {
                    let i = (z * self.dim_y + y) * ww + j;
                    let row = self.words[i];
                    suffix |= row;
                    fill[i] |= aux[i] & suffix & !row;
                }
            }
        }

        let mut added = 0u64;
        for (w, &f) in self.words.iter_mut().zip(fill.iter()) {
            added += (f & !*w).count_ones() as u64;
            *w |= f;
        }
        added
    }

    /// Fills to the minimum orthogonal convex superset in place (the 3-D
    /// hull fixpoint). Returns the number of nodes added. The fill never
    /// leaves the bounding box, so the frame never grows.
    pub fn hull_fixpoint(&mut self) -> u64 {
        let total = self.words.len();
        let mut fill = vec![0u64; total];
        let mut aux = vec![0u64; total];
        let mut added = 0;
        let mut rounds = 0u64;
        loop {
            let grown = self.fill_gaps_round(&mut fill, &mut aux);
            if grown == 0 {
                break;
            }
            added += grown;
            rounds += 1;
        }
        // Each round rescans every dirty line of all three axes; the
        // quiescent final pass is not counted (matching RoundStats).
        mocp_obs::counter!("hull3d.hulls").inc();
        mocp_obs::counter!("hull3d.fixpoint_rounds").add(rounds);
        mocp_obs::counter!("hull3d.line_rescans").add(rounds * self.lines() as u64 * 3);
        mocp_obs::counter!("hull3d.nodes_added").add(added);
        mocp_obs::histogram!("hull3d.rounds_per_hull").record(rounds);
        added
    }

    /// The 3-D orthogonal-convexity test, word-parallel: contiguous runs
    /// along every x line (span mask equality) and along every y and z
    /// line (no bit reappears after its run ended).
    pub fn is_orthogonally_convex(&self) -> bool {
        let ww = self.width_words;
        let mut span = vec![0u64; ww];
        for line in 0..self.lines() {
            let row = &self.words[line * ww..(line + 1) * ww];
            if row_span_mask(row, &mut span) && span.iter().zip(row).any(|(&s, &r)| s != r) {
                return false;
            }
        }
        // Runs along y (per z) and along z (per y).
        for z in 0..self.dim_z {
            for j in 0..ww {
                let (mut started, mut ended) = (0u64, 0u64);
                for y in 0..self.dim_y {
                    let w = self.words[(z * self.dim_y + y) * ww + j];
                    if w & ended != 0 {
                        return false;
                    }
                    ended |= started & !w;
                    started |= w;
                }
            }
        }
        for y in 0..self.dim_y {
            for j in 0..ww {
                let (mut started, mut ended) = (0u64, 0u64);
                for z in 0..self.dim_z {
                    let w = self.words[(z * self.dim_y + y) * ww + j];
                    if w & ended != 0 {
                        return false;
                    }
                    ended |= started & !w;
                    started |= w;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(list: &[(i32, i32, i32)]) -> BitGrid3 {
        BitGrid3::from_coords(list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)))
    }

    #[test]
    fn set_contains_iter_round_trip() {
        let g = grid(&[(0, 0, 0), (63, 1, 2), (64, 1, 2), (-3, -3, -3)]);
        assert_eq!(g.len(), 4);
        assert!(g.contains(Coord3::new(64, 1, 2)));
        assert!(!g.contains(Coord3::new(1, 0, 0)));
        assert!(!g.contains(Coord3::new(500, 0, 0)));
        let collected: Vec<Coord3> = g.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[0], Coord3::new(-3, -3, -3));
    }

    #[test]
    fn insert_grows_and_bounding_box_is_tight() {
        let mut g = BitGrid3::empty();
        assert!(g.insert(Coord3::new(5, 5, 5)));
        assert!(g.insert(Coord3::new(-2, 7, 5)));
        assert!(!g.insert(Coord3::new(5, 5, 5)));
        let (lo, hi) = g.bounding_box().unwrap();
        assert_eq!(lo, Coord3::new(-2, 5, 5));
        assert_eq!(hi, Coord3::new(5, 7, 5));
        assert!(g.remove(Coord3::new(5, 5, 5)));
        assert_eq!(g.len(), 1);
        assert_eq!(BitGrid3::empty().bounding_box(), None);
    }

    #[test]
    fn set_algebra_whole_word() {
        let a = grid(&[(0, 0, 0), (70, 1, 1)]);
        let b = grid(&[(70, 1, 1), (100, 2, 2)]);
        assert!(a.intersects(&b));
        assert!(!a.is_subset_of(&b));
        assert!(grid(&[(70, 1, 1)]).is_subset_of(&a));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        let mut d = u.clone();
        d.subtract(&a);
        assert_eq!(d.len(), 1);
        assert!(d.contains(Coord3::new(100, 2, 2)));
    }

    #[test]
    fn dilate26_matches_scalar_neighborhood() {
        let g = grid(&[(1, 1, 1), (63, 0, 0)]);
        let dilated = g.dilate26();
        let mut expected = std::collections::BTreeSet::new();
        for c in g.iter() {
            for dz in -1..=1 {
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        expected.insert((c.x + dx, c.y + dy, c.z + dz));
                    }
                }
            }
        }
        let got: std::collections::BTreeSet<(i32, i32, i32)> =
            dilated.iter().map(|c| (c.x, c.y, c.z)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn dilate26_handles_frames_wider_than_their_content() {
        // Frame spans two words; content sits in the second word, so the
        // output frame starts right of the source frame.
        let mut g = BitGrid3::with_bounds(Coord3::new(0, 0, 0), Coord3::new(127, 2, 2));
        g.set(Coord3::new(100, 1, 1));
        let dilated = g.dilate26();
        assert_eq!(dilated.len(), 27);
        assert!(dilated.contains(Coord3::new(99, 0, 0)));
        assert!(dilated.contains(Coord3::new(101, 2, 2)));
    }

    #[test]
    fn components_and_hull_basics() {
        // A diagonal chain is one 26-component; a detached node is another.
        let g = grid(&[(0, 0, 0), (1, 1, 1), (2, 2, 2), (9, 0, 0)]);
        let comps = g.components26();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(BitGrid3::len).sum::<usize>(), 4);

        // U-shape in the z=0 plane: the hull fills the notch.
        let mut u = grid(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0), (2, 1, 0)]);
        assert!(!u.is_orthogonally_convex());
        let added = u.hull_fixpoint();
        assert_eq!(added, 1);
        assert!(u.contains(Coord3::new(1, 1, 0)));
        assert!(u.is_orthogonally_convex());
    }

    /// Content-and-order equality between two component lists (frames
    /// may differ: the slab merge leaves word-padded frames).
    fn assert_same_components(parallel: &[BitGrid3], sequential: &[BitGrid3]) {
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(sequential) {
            assert_eq!(p.len(), s.len());
            assert!(p.is_subset_of(s), "component content or order diverged");
        }
    }

    /// Every slab count must reproduce the sequential flood exactly —
    /// including components that snake across several slab boundaries.
    #[test]
    fn slab_parallel_components_match_sequential_at_any_slab_count() {
        // A z-spanning diagonal chain (crosses every boundary), a flat
        // plate confined to one slab, two singletons in the same word,
        // and a second chain that merges with the plate mid-grid.
        let mut cells = Vec::new();
        for z in 0..16 {
            cells.push((z, z, z)); // diagonal chain through all z
        }
        for x in 30..34 {
            for y in 0..3 {
                cells.push((x, y, 7)); // plate inside one slab
            }
        }
        cells.push((30, 3, 8)); // touches the plate across z=7/8
        cells.push((60, 0, 0));
        cells.push((62, 0, 0)); // same word, separate components
        let g = grid(&cells);

        let sequential = g.components26_parallel(1);
        assert_same_components(&g.components26(), &sequential);
        for slabs in 2..=8 {
            assert_same_components(&g.components26_parallel(slabs), &sequential);
        }
    }

    /// The stitched order is the sequential first-seen order: ascending
    /// minimal (z, y, x) cell.
    #[test]
    fn slab_parallel_component_order_is_min_cell_order() {
        let g = grid(&[
            (5, 5, 9), // late in storage order
            (0, 0, 4),
            (1, 0, 4), // middle component
            (7, 7, 0), // first in storage order
        ]);
        for slabs in [1, 2, 3, 5] {
            let comps = g.components26_parallel(slabs);
            assert_eq!(comps.len(), 3);
            assert!(comps[0].contains(Coord3::new(7, 7, 0)));
            assert!(comps[1].contains(Coord3::new(0, 0, 4)));
            assert!(comps[2].contains(Coord3::new(5, 5, 9)));
        }
    }
}
