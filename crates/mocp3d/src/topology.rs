//! The 3-D instantiation of the dimension-generic `mocp_topology` API.
//!
//! [`Mesh3D`] implements [`MeshTopology`] with [`Region3`] /
//! [`Grid3<NodeStatus>`](Grid3) / [`FaultSet3`] as its associated types,
//! which is what lets the generic fault models, the generic injector and
//! the single scenario runner drive the 3-D stack through exactly the
//! same code paths as the 2-D one.

use crate::bitgrid::BitGrid3;
use crate::fault::FaultSet3;
use crate::grid::Grid3;
use crate::mesh::Mesh3D;
use crate::region::Region3;
use mesh2d::NodeStatus;
use mocp_core::extension3d::Coord3;
use mocp_topology::{BitmapOps, FaultStore, MeshTopology, RegionOps, StatusOps};

impl MeshTopology for Mesh3D {
    type Coord = Coord3;
    type Bitmap = BitGrid3;
    type Region = Region3;
    type Status = Grid3<NodeStatus>;
    type FaultSet = FaultSet3;

    const DIM: u32 = 3;

    fn from_side(side: u32) -> Self {
        Mesh3D::cube(side)
    }

    fn node_count(&self) -> usize {
        Mesh3D::node_count(self)
    }

    fn contains(&self, c: Coord3) -> bool {
        Mesh3D::contains(self, c)
    }

    fn index(&self, c: Coord3) -> usize {
        Mesh3D::index(self, c)
    }

    fn coord(&self, index: usize) -> Coord3 {
        Mesh3D::coord(self, index)
    }

    fn cluster_neighbors(&self, c: Coord3) -> Vec<Coord3> {
        self.neighbors26(c).collect()
    }
}

impl BitmapOps for BitGrid3 {
    type Coord = Coord3;

    fn empty() -> Self {
        BitGrid3::empty()
    }

    fn from_coords(coords: &[Coord3]) -> Self {
        BitGrid3::from_coords(coords.iter().copied())
    }

    fn len(&self) -> usize {
        BitGrid3::len(self)
    }

    fn contains(&self, c: Coord3) -> bool {
        BitGrid3::contains(self, c)
    }

    fn insert(&mut self, c: Coord3) -> bool {
        BitGrid3::insert(self, c)
    }

    fn union_with(&mut self, other: &Self) {
        BitGrid3::union_with(self, other)
    }

    fn subtract(&mut self, other: &Self) {
        BitGrid3::subtract(self, other)
    }

    fn intersects(&self, other: &Self) -> bool {
        BitGrid3::intersects(self, other)
    }

    fn is_subset_of(&self, other: &Self) -> bool {
        BitGrid3::is_subset_of(self, other)
    }

    fn is_orthogonally_convex(&self) -> bool {
        BitGrid3::is_orthogonally_convex(self)
    }

    fn dilate_cluster(&self) -> Self {
        self.dilate26()
    }

    fn coords(&self) -> Vec<Coord3> {
        self.iter().collect()
    }
}

impl RegionOps for Region3 {
    type Coord = Coord3;
    type Bitmap = BitGrid3;

    fn from_coords(coords: Vec<Coord3>) -> Self {
        Region3::from_coords(coords)
    }

    fn len(&self) -> usize {
        Region3::len(self)
    }

    fn contains(&self, c: Coord3) -> bool {
        Region3::contains(self, c)
    }

    fn coords(&self) -> Vec<Coord3> {
        self.iter().collect()
    }

    fn union(&self, other: &Self) -> Self {
        Region3::from_coords(self.iter().chain(other.iter()))
    }

    fn is_disjoint(&self, other: &Self) -> bool {
        // Stream the bitmap directly instead of materializing coords().
        self.iter().all(|c| !other.contains(c))
    }

    fn cluster_components(&self) -> Vec<Self> {
        self.components26()
    }

    fn is_orthogonally_convex(&self) -> bool {
        Region3::is_orthogonally_convex(self)
    }

    fn to_bitmap(&self) -> BitGrid3 {
        self.bits().clone()
    }
}

impl StatusOps for Grid3<NodeStatus> {
    type Coord = Coord3;

    fn disabled_count(&self) -> usize {
        self.count_where(|&s| s == NodeStatus::Disabled)
    }

    fn faulty_count(&self) -> usize {
        self.count_where(|&s| s == NodeStatus::Faulty)
    }

    fn faulty_coords(&self) -> Vec<Coord3> {
        self.iter()
            .filter(|&(_, &s)| s == NodeStatus::Faulty)
            .map(|(c, _)| c)
            .collect()
    }
}

impl FaultStore<Mesh3D> for FaultSet3 {
    fn empty(mesh: Mesh3D) -> Self {
        FaultSet3::new(mesh)
    }

    fn insert(&mut self, c: Coord3) -> bool {
        FaultSet3::insert(self, c)
    }

    fn remove(&mut self, c: Coord3) -> bool {
        FaultSet3::remove(self, c)
    }

    fn len(&self) -> usize {
        FaultSet3::len(self)
    }

    fn in_insertion_order(&self) -> &[Coord3] {
        FaultSet3::in_insertion_order(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh3d_trait_view_matches_the_inherent_api() {
        let mesh = <Mesh3D as MeshTopology>::from_side(4);
        assert_eq!(mesh, Mesh3D::cube(4));
        assert_eq!(MeshTopology::node_count(&mesh), 64);
        for i in 0..MeshTopology::node_count(&mesh) {
            let c = MeshTopology::coord(&mesh, i);
            assert!(MeshTopology::contains(&mesh, c));
            assert_eq!(MeshTopology::index(&mesh, c), i);
        }
        assert_eq!(mesh.cluster_neighbors(Coord3::new(0, 0, 0)).len(), 7);
        assert_eq!(mesh.cluster_neighbors(Coord3::new(1, 1, 1)).len(), 26);
        assert_eq!(Mesh3D::DIM, 3);
    }

    #[test]
    fn region3_ops_union_and_components() {
        let a =
            <Region3 as RegionOps>::from_coords(vec![Coord3::new(0, 0, 0), Coord3::new(1, 1, 1)]);
        let b = <Region3 as RegionOps>::from_coords(vec![Coord3::new(5, 5, 5)]);
        let u = RegionOps::union(&a, &b);
        assert_eq!(RegionOps::len(&u), 3);
        assert_eq!(
            u.cluster_components().len(),
            2,
            "26-adjacency joins the diagonal pair"
        );
        assert!(RegionOps::is_orthogonally_convex(&a));
        assert_eq!(u.coords().len(), 3);
    }

    #[test]
    fn grid3_status_ops_count_and_enumerate() {
        let mesh = Mesh3D::cube(3);
        let mut status = Grid3::for_mesh(&mesh, NodeStatus::Enabled);
        status[Coord3::new(0, 0, 0)] = NodeStatus::Faulty;
        status[Coord3::new(1, 0, 0)] = NodeStatus::Disabled;
        assert_eq!(StatusOps::disabled_count(&status), 1);
        assert_eq!(StatusOps::faulty_count(&status), 1);
        assert_eq!(status.faulty_coords(), vec![Coord3::new(0, 0, 0)]);
    }

    #[test]
    fn fault_store_round_trips() {
        let mesh = Mesh3D::cube(3);
        let mut fs = <FaultSet3 as FaultStore<Mesh3D>>::empty(mesh);
        assert!(FaultStore::insert(&mut fs, Coord3::new(1, 1, 1)));
        assert!(!FaultStore::insert(&mut fs, Coord3::new(1, 1, 1)));
        assert_eq!(FaultStore::len(&fs), 1);
        assert!(FaultStore::remove(&mut fs, Coord3::new(1, 1, 1)));
        assert!(FaultStore::is_empty(&fs));
    }
}
