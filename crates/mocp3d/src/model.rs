//! The 3-D fault models: the FB-3D rectangular-cuboid baseline and the
//! MFP-3D minimum orthogonal convex polyhedron construction.
//!
//! Both models share one skeleton — the 3-D merge process. Starting from
//! the faults, 26-connected components of the excluded set are repeatedly
//! replaced by their *completion* (the bounding cuboid for FB-3D, the
//! minimum orthogonal convex hull for MFP-3D) until nothing grows. The
//! outer iteration is what merges components whose completions touch or
//! overlap, the 3-D counterpart of the paper's 2-D merge/superseding
//! process. Since a component's hull is contained in its bounding cuboid,
//! the MFP-3D excluded set is a subset of the FB-3D excluded set at every
//! step, so MFP-3D never disables more non-faulty nodes than FB-3D.

use crate::fault::FaultSet3;
use crate::grid::Grid3;
use crate::mesh::Mesh3D;
use crate::region::Region3;
use distsim::RoundStats;
use mesh2d::NodeStatus;
use mocp_core::extension3d::Coord3;
use mocp_topology::{FaultModel, Outcome};

/// The outcome of running a 3-D fault-model construction on a faulty
/// mesh: the `Mesh3D` instantiation of the one generic
/// [`Outcome`], exactly as `fblock::ModelOutcome`
/// is its `Mesh2D` instantiation. The Figure 9/10 metrics
/// (`disabled_nonfaulty`, `average_region_size`) and the safety
/// predicates (`covers_all_faults`, `all_regions_convex`,
/// `regions_disjoint`) come from the shared generic impl.
pub type Outcome3 = Outcome<Mesh3D>;

/// How one merge-process step completes a 26-connected component.
fn complete_component(comp: &Region3, cuboid: bool) -> Region3 {
    if cuboid {
        let (lo, hi) = comp.bounding_box().expect("components are non-empty");
        let mut cells = Vec::with_capacity(
            ((hi.x - lo.x + 1) * (hi.y - lo.y + 1) * (hi.z - lo.z + 1)) as usize,
        );
        for z in lo.z..=hi.z {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    cells.push(Coord3::new(x, y, z));
                }
            }
        }
        Region3::from_coords(cells)
    } else {
        comp.orthogonal_convex_hull()
    }
}

/// The shared merge-process fixpoint: replace every 26-connected component
/// of the excluded set by its completion until the set stops growing, then
/// report the final components as the model's regions.
fn merge_process(mesh: &Mesh3D, faults: &FaultSet3, name: &'static str, cuboid: bool) -> Outcome3 {
    let mut excluded = faults.region();
    let mut growth_rounds = 0u32;
    let regions = loop {
        let components = excluded.components26();
        // The hulls are independent per component — fan them out over
        // the pool (ordered collect keeps the component order, and with
        // one effective thread this is a plain sequential map).
        use rayon::prelude::*;
        let completed: Vec<Region3> = components
            .par_iter()
            .map(|c| complete_component(c, cuboid))
            .collect();
        // Completions stay inside their component's bounding box, and
        // faults are in-mesh by FaultSet3 construction, so `next` never
        // leaves the mesh. Accumulate by whole-word union instead of
        // re-materializing coordinates.
        let mut next = Region3::new();
        for completion in &completed {
            next.union_in_place(completion);
        }
        if next.len() == excluded.len() {
            break completed;
        }
        growth_rounds += 1;
        excluded = next;
    };

    mocp_obs::counter!("merge3d.constructions").inc();
    mocp_obs::counter!("merge3d.growth_rounds").add(growth_rounds as u64);
    mocp_obs::counter!("merge3d.excluded_beyond_faults")
        .add((excluded.len() - faults.len()) as u64);

    let mut status = Grid3::for_mesh(mesh, NodeStatus::Enabled);
    for region in &regions {
        for c in region.iter() {
            status[c] = NodeStatus::Disabled;
        }
    }
    for &c in faults.in_insertion_order() {
        status[c] = NodeStatus::Faulty;
    }
    Outcome3 {
        model: name.to_string(),
        // The Figure 11 analogue for the merge process: one round per
        // fixpoint iteration that grew the excluded set (the final
        // quiescent pass is not counted, matching `RoundStats::rounds`),
        // one event per node the model excluded beyond the faults.
        rounds: RoundStats {
            rounds: growth_rounds,
            events: (excluded.len() - faults.len()) as u64,
            converged: true,
        },
        status,
        regions,
    }
}

/// The FB-3D baseline: every fault component is blocked out by its full
/// bounding cuboid — the 3-D generalization of the rectangular faulty
/// block of labelling scheme 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultyCuboidModel;

impl FaultModel<Mesh3D> for FaultyCuboidModel {
    fn name(&self) -> &'static str {
        "FB3D"
    }

    fn construct(&self, mesh: &Mesh3D, faults: &FaultSet3) -> Outcome3 {
        merge_process(mesh, faults, FaultModel::name(self), true)
    }
}

/// The MFP-3D construction: every fault component is completed to its
/// minimum orthogonal convex polyhedron — the paper's future-work
/// extension, promoted to a full model.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinimumPolyhedronModel;

impl FaultModel<Mesh3D> for MinimumPolyhedronModel {
    fn name(&self) -> &'static str {
        "MFP3D"
    }

    fn construct(&self, mesh: &Mesh3D, faults: &FaultSet3) -> Outcome3 {
        merge_process(mesh, faults, FaultModel::name(self), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::generate_faults_3d;
    use faultgen::FaultDistribution;

    fn faults(mesh: Mesh3D, list: &[(i32, i32, i32)]) -> FaultSet3 {
        FaultSet3::from_coords(mesh, list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)))
    }

    #[test]
    fn cuboid_blocks_out_the_bounding_box() {
        let mesh = Mesh3D::cube(8);
        // Two opposite corners of a 2x2x2 box: FB-3D disables the other 6.
        let fs = faults(mesh, &[(2, 2, 2), (3, 3, 3)]);
        let outcome = FaultyCuboidModel.construct(&mesh, &fs);
        assert_eq!(outcome.model, "FB3D");
        assert_eq!(outcome.regions.len(), 1);
        assert_eq!(outcome.regions[0].len(), 8);
        assert_eq!(outcome.disabled_nonfaulty(), 6);
        assert_eq!(outcome.faulty_count(), 2);
        assert!(outcome.covers_all_faults());
        assert!(outcome.all_regions_convex());
    }

    #[test]
    fn polyhedron_disables_only_forced_nodes() {
        let mesh = Mesh3D::cube(8);
        // The same diagonal pair is already orthogonally convex: MFP-3D
        // disables nothing where FB-3D disables six nodes.
        let fs = faults(mesh, &[(2, 2, 2), (3, 3, 3)]);
        let outcome = MinimumPolyhedronModel.construct(&mesh, &fs);
        assert_eq!(outcome.model, "MFP3D");
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert_eq!(outcome.average_region_size(), 2.0);
        assert!(outcome.covers_all_faults());
        assert!(outcome.all_regions_convex());
        assert!(outcome.regions_disjoint());
    }

    #[test]
    fn touching_completions_merge() {
        let mesh = Mesh3D::cube(10);
        // Two U-shapes whose fills land adjacent: the merge process must
        // reach a fixpoint with disjoint regions either way.
        let fs = faults(
            mesh,
            &[(0, 0, 0), (2, 0, 0), (4, 0, 0), (0, 2, 0), (4, 2, 0)],
        );
        for (model, name) in [
            (&FaultyCuboidModel as &dyn FaultModel<Mesh3D>, "FB3D"),
            (&MinimumPolyhedronModel as &dyn FaultModel<Mesh3D>, "MFP3D"),
        ] {
            let outcome = model.construct(&mesh, &fs);
            assert_eq!(outcome.model, name);
            assert!(outcome.covers_all_faults());
            assert!(outcome.regions_disjoint());
            assert!(outcome.all_regions_convex());
        }
    }

    #[test]
    fn mfp_never_disables_more_than_fb() {
        let mesh = Mesh3D::cube(10);
        for seed in 0..4 {
            for dist in FaultDistribution::ALL {
                let fs = generate_faults_3d(mesh, 60, dist, seed);
                let fb = FaultyCuboidModel.construct(&mesh, &fs);
                let mfp = MinimumPolyhedronModel.construct(&mesh, &fs);
                assert!(
                    mfp.disabled_nonfaulty() <= fb.disabled_nonfaulty(),
                    "seed {seed} {dist:?}: MFP3D {} > FB3D {}",
                    mfp.disabled_nonfaulty(),
                    fb.disabled_nonfaulty()
                );
                assert!(mfp.covers_all_faults() && fb.covers_all_faults());
            }
        }
    }

    #[test]
    fn empty_fault_set_yields_empty_outcome() {
        let mesh = Mesh3D::cube(4);
        let outcome = MinimumPolyhedronModel.construct(&mesh, &FaultSet3::new(mesh));
        assert!(outcome.regions.is_empty());
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert_eq!(outcome.average_region_size(), 0.0);
        assert!(outcome.covers_all_faults());
    }
}
