//! The 3-D mesh topology: bounds, flattened indexing and neighborhoods.

use mocp_core::extension3d::Coord3;
use serde::{Deserialize, Serialize};

/// A `width × height × depth` 3-D mesh of nodes addressed by [`Coord3`].
///
/// The 3-D analogue of `mesh2d::Mesh2D`, restricted to the mesh topology
/// (no torus wrap): the paper's future-work extension concerns 3-D meshes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mesh3D {
    width: i32,
    height: i32,
    depth: i32,
}

impl Mesh3D {
    /// A `width × height × depth` mesh. Panics on zero dimensions.
    pub fn new(width: u32, height: u32, depth: u32) -> Self {
        assert!(
            width > 0 && height > 0 && depth > 0,
            "mesh dimensions must be non-zero"
        );
        Mesh3D {
            width: width as i32,
            height: height as i32,
            depth: depth as i32,
        }
    }

    /// An `n × n × n` mesh.
    pub fn cube(n: u32) -> Self {
        Mesh3D::new(n, n, n)
    }

    /// Extent along x.
    #[inline]
    pub fn width(&self) -> i32 {
        self.width
    }

    /// Extent along y.
    #[inline]
    pub fn height(&self) -> i32 {
        self.height
    }

    /// Extent along z.
    #[inline]
    pub fn depth(&self) -> i32 {
        self.depth
    }

    /// Total number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        (self.width as usize) * (self.height as usize) * (self.depth as usize)
    }

    /// True when `c` addresses a node of this mesh.
    #[inline]
    pub fn contains(&self, c: Coord3) -> bool {
        (0..self.width).contains(&c.x)
            && (0..self.height).contains(&c.y)
            && (0..self.depth).contains(&c.z)
    }

    /// Flattens an in-mesh coordinate to its x-major index
    /// (`x + width * (y + height * z)`).
    #[inline]
    pub fn index(&self, c: Coord3) -> usize {
        debug_assert!(self.contains(c), "{c:?} outside {self:?}");
        (c.x as usize)
            + (self.width as usize) * ((c.y as usize) + (self.height as usize) * (c.z as usize))
    }

    /// Inverse of [`index`](Self::index).
    #[inline]
    pub fn coord(&self, index: usize) -> Coord3 {
        let (w, h) = (self.width as usize, self.height as usize);
        debug_assert!(index < self.node_count());
        Coord3::new(
            (index % w) as i32,
            ((index / w) % h) as i32,
            (index / (w * h)) as i32,
        )
    }

    /// The in-mesh 26-neighborhood of `c` — the 3-D analogue of the paper's
    /// Definition 2 adjacency, used by the component merge process and the
    /// clustered fault model's rate boost.
    pub fn neighbors26(&self, c: Coord3) -> impl Iterator<Item = Coord3> + '_ {
        let mesh = *self;
        (-1..=1).flat_map(move |dz| {
            (-1..=1).flat_map(move |dy| {
                (-1..=1).filter_map(move |dx| {
                    if (dx, dy, dz) == (0, 0, 0) {
                        return None;
                    }
                    let n = Coord3::new(c.x + dx, c.y + dy, c.z + dz);
                    mesh.contains(n).then_some(n)
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        let mesh = Mesh3D::new(4, 3, 2);
        assert_eq!(mesh.node_count(), 24);
        for i in 0..mesh.node_count() {
            assert_eq!(mesh.index(mesh.coord(i)), i);
        }
        assert_eq!(mesh.index(Coord3::new(0, 0, 0)), 0);
        assert_eq!(mesh.index(Coord3::new(3, 2, 1)), 23);
    }

    #[test]
    fn bounds() {
        let mesh = Mesh3D::cube(3);
        assert!(mesh.contains(Coord3::new(2, 2, 2)));
        assert!(!mesh.contains(Coord3::new(3, 0, 0)));
        assert!(!mesh.contains(Coord3::new(0, -1, 0)));
    }

    #[test]
    fn neighborhood_sizes() {
        let mesh = Mesh3D::cube(3);
        assert_eq!(mesh.neighbors26(Coord3::new(1, 1, 1)).count(), 26);
        assert_eq!(mesh.neighbors26(Coord3::new(0, 0, 0)).count(), 7);
        assert_eq!(mesh.neighbors26(Coord3::new(0, 1, 1)).count(), 17);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        Mesh3D::new(4, 0, 4);
    }
}
