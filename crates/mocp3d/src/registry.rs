//! The name-keyed registry of 3-D fault models.
//!
//! Reuses `fblock`'s generic [`NamedRegistry`] — the exact machinery the
//! 2-D sweeps resolve "FB"/"FP"/"CMFP"/"DMFP" through — instantiated for
//! the 3-D [`FaultModel3`] trait, so the 3-D experiment harness resolves
//! "FB3D"/"MFP3D" the same way.

use crate::fault::FaultSet3;
use crate::mesh::Mesh3D;
use crate::model::{FaultModel3, FaultyCuboidModel, MinimumPolyhedronModel, Outcome3};
use fblock::{NamedRegistry, UnknownModel};

/// A boxed, thread-shareable 3-D fault model, as produced by the registry.
pub type BoxedModel3 = Box<dyn FaultModel3 + Send + Sync>;

/// Registry mapping 3-D model names to constructors.
pub type ModelRegistry3 = NamedRegistry<dyn FaultModel3 + Send + Sync>;

/// The registry of the 3-D models this crate implements, in presentation
/// order: the FB-3D cuboid baseline and the MFP-3D minimum polyhedron.
pub fn standard_registry_3d() -> ModelRegistry3 {
    let mut registry = ModelRegistry3::empty();
    registry.register(
        "FB3D",
        "rectangular faulty cuboid baseline (bounding boxes of fault components)",
        || Box::new(FaultyCuboidModel),
    );
    registry.register(
        "MFP3D",
        "minimum orthogonal convex polyhedron (dense dirty-line hull construction)",
        || Box::new(MinimumPolyhedronModel),
    );
    registry
}

/// Resolves `name` in `registry` and runs its construction in one call —
/// the 3-D counterpart of `ModelRegistry::construct`.
pub fn construct_3d(
    registry: &ModelRegistry3,
    name: &str,
    mesh: &Mesh3D,
    faults: &FaultSet3,
) -> Result<Outcome3, UnknownModel> {
    Ok(registry.build(name)?.construct(mesh, faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocp_core::extension3d::Coord3;

    #[test]
    fn standard_registry_has_both_models_in_order() {
        let registry = standard_registry_3d();
        assert_eq!(registry.names().collect::<Vec<_>>(), ["FB3D", "MFP3D"]);
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("mfp3d"), "lookup is case-insensitive");
    }

    #[test]
    fn construct_runs_the_resolved_model() {
        let registry = standard_registry_3d();
        let mesh = Mesh3D::cube(6);
        let faults = FaultSet3::from_coords(mesh, [Coord3::new(1, 1, 1), Coord3::new(2, 2, 2)]);
        let outcome = construct_3d(&registry, "FB3D", &mesh, &faults).unwrap();
        assert_eq!(outcome.model, "FB3D");
        assert!(outcome.covers_all_faults());
        let err = construct_3d(&registry, "CMFP", &mesh, &faults).unwrap_err();
        assert_eq!(err.requested, "CMFP");
        assert_eq!(err.known, vec!["FB3D", "MFP3D"]);
    }
}
