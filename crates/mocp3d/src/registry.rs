//! The name-keyed registry of 3-D fault models.
//!
//! [`ModelRegistry3`] is `mocp_topology::ModelRegistry<Mesh3D>` — the
//! *same* generic registry type the 2-D sweeps resolve
//! "FB"/"FP"/"CMFP"/"DMFP" through (`fblock::ModelRegistry` is its
//! `Mesh2D` instantiation), so the one generic scenario runner drives
//! "FB3D"/"MFP3D" with no 3-D-specific harness code.

use crate::mesh::Mesh3D;
use crate::model::{FaultyCuboidModel, MinimumPolyhedronModel};

/// A boxed, thread-shareable 3-D fault model, as produced by the registry.
pub type BoxedModel3 = mocp_topology::BoxedModel<Mesh3D>;

/// Registry mapping 3-D model names to constructors.
pub type ModelRegistry3 = mocp_topology::ModelRegistry<Mesh3D>;

/// The registry of the 3-D models this crate implements, in presentation
/// order: the FB-3D cuboid baseline and the MFP-3D minimum polyhedron.
pub fn standard_registry_3d() -> ModelRegistry3 {
    let mut registry = ModelRegistry3::empty();
    registry.register(
        "FB3D",
        "rectangular faulty cuboid baseline (bounding boxes of fault components)",
        || Box::new(FaultyCuboidModel),
    );
    registry.register(
        "MFP3D",
        "minimum orthogonal convex polyhedron (dense dirty-line hull construction)",
        || Box::new(MinimumPolyhedronModel),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultSet3;
    use mocp_core::extension3d::Coord3;
    use mocp_topology::UnknownModel;

    #[test]
    fn standard_registry_has_both_models_in_order() {
        let registry = standard_registry_3d();
        assert_eq!(registry.names().collect::<Vec<_>>(), ["FB3D", "MFP3D"]);
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("mfp3d"), "lookup is case-insensitive");
    }

    #[test]
    fn construct_runs_the_resolved_model() {
        let registry = standard_registry_3d();
        let mesh = Mesh3D::cube(6);
        let faults = FaultSet3::from_coords(mesh, [Coord3::new(1, 1, 1), Coord3::new(2, 2, 2)]);
        let outcome = registry.construct("FB3D", &mesh, &faults).unwrap();
        assert_eq!(outcome.model, "FB3D");
        assert!(outcome.covers_all_faults());
        let err: UnknownModel = registry.construct("CMFP", &mesh, &faults).unwrap_err();
        assert_eq!(err.requested, "CMFP");
        assert_eq!(err.known, vec!["FB3D", "MFP3D"]);
    }
}
