//! Differential and structural property tests of the dense 3-D hull.
//!
//! The `mocp_core::extension3d` prototype is the specification oracle: the
//! dense, bitmap-backed construction must produce exactly its polyhedra on
//! arbitrary small regions, and the hull must be idempotent, orthogonally
//! convex and *minimal* — removing any non-fault node breaks convexity (no
//! added node is optional).

use mocp_3d::{minimum_polyhedra, Coord3, Region3};
use mocp_core::extension3d as oracle;
use proptest::prelude::*;

fn coords(list: &[(i32, i32, i32)]) -> Vec<Coord3> {
    list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)).collect()
}

/// Normalizes a polyhedron list to nested sorted coordinate lists, so the
/// dense and oracle results compare independently of component order and
/// internal representation.
fn normalize(polyhedra: Vec<Vec<Coord3>>) -> Vec<Vec<Coord3>> {
    let mut out: Vec<Vec<Coord3>> = polyhedra
        .into_iter()
        .map(|mut p| {
            p.sort_unstable();
            p
        })
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole acceptance property: the dense construction equals the
    /// prototype's `minimum_polyhedra` on random small regions.
    #[test]
    fn dense_construction_matches_the_prototype_oracle(
        pts in prop::collection::vec((0..6i32, 0..6i32, 0..6i32), 0..36)
    ) {
        let cs = coords(&pts);
        let dense = minimum_polyhedra(&Region3::from_coords(cs.iter().copied()));
        let proto = oracle::minimum_polyhedra(&oracle::Region3::from_coords(cs.iter().copied()));
        prop_assert_eq!(
            normalize(dense.iter().map(|p| p.iter().collect()).collect()),
            normalize(proto.iter().map(|p| p.iter().collect()).collect())
        );
    }

    /// Idempotence, convexity, containment, and minimality of the hull on
    /// ≤6³ grids: every node the hull adds is forced, i.e. removing any
    /// non-fault node breaks convexity or containment (containment holds
    /// trivially after removing an added node, so convexity must break).
    #[test]
    fn hull_is_idempotent_convex_and_minimal(
        pts in prop::collection::vec((0..6i32, 0..6i32, 0..6i32), 1..24)
    ) {
        let cs = coords(&pts);
        let region = Region3::from_coords(cs.iter().copied());
        let hull = region.orthogonal_convex_hull();

        prop_assert!(hull.is_orthogonally_convex());
        prop_assert!(region.iter().all(|c| hull.contains(c)), "hull contains the region");
        prop_assert_eq!(hull.orthogonal_convex_hull(), hull.clone(), "idempotent");

        // Against the brute-force/specification oracle.
        let oracle_hull = oracle::Region3::from_coords(cs.iter().copied()).orthogonal_convex_hull();
        prop_assert_eq!(hull.len(), oracle_hull.len());
        prop_assert!(hull.iter().all(|c| oracle_hull.contains(c)));

        // Minimality: dropping any added (non-fault) node breaks convexity.
        for added in hull.iter().filter(|&c| !region.contains(c)) {
            let without = Region3::from_coords(hull.iter().filter(|&c| c != added));
            prop_assert!(
                !without.is_orthogonally_convex(),
                "hull node {added:?} is not forced"
            );
        }
    }

    /// The convexity test agrees with the oracle's definition.
    #[test]
    fn convexity_test_matches_the_oracle(
        pts in prop::collection::vec((0..5i32, 0..5i32, 0..5i32), 0..20)
    ) {
        let cs = coords(&pts);
        let dense = Region3::from_coords(cs.iter().copied());
        let proto = oracle::Region3::from_coords(cs.iter().copied());
        prop_assert_eq!(dense.is_orthogonally_convex(), proto.is_orthogonally_convex());
    }

    /// Component labelling agrees with the oracle's 26-adjacency merge.
    #[test]
    fn components_match_the_oracle(
        pts in prop::collection::vec((0..6i32, 0..6i32, 0..6i32), 0..30)
    ) {
        let cs = coords(&pts);
        let dense = Region3::from_coords(cs.iter().copied()).components26();
        let proto = oracle::Region3::from_coords(cs.iter().copied()).components26();
        prop_assert_eq!(
            normalize(dense.iter().map(|p| p.iter().collect()).collect()),
            normalize(proto.iter().map(|p| p.iter().collect()).collect())
        );
    }
}
