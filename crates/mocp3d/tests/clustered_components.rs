//! Distribution-shape property of the 3-D injector: clustering packs the
//! same number of faults into fewer 26-connected components than uniform
//! placement, mirroring the 2-D statistical check in `faultgen`.

use faultgen::FaultDistribution;
use mocp_3d::{generate_faults_3d, Mesh3D};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At equal fault counts, clustered injection yields fewer 26-connected
    /// components than random injection. Averaged over a band of seeds per
    /// case to keep the statistical assertion stable.
    #[test]
    fn clustered_injection_yields_fewer_components_than_random(base in 0u64..1000) {
        let mesh = Mesh3D::cube(16);
        let count = 160;
        let mut random_components = 0usize;
        let mut clustered_components = 0usize;
        for offset in 0..6 {
            let seed = base * 1000 + offset;
            let rf = generate_faults_3d(mesh, count, FaultDistribution::Random, seed);
            let cf = generate_faults_3d(mesh, count, FaultDistribution::Clustered, seed);
            prop_assert_eq!(rf.len(), count);
            prop_assert_eq!(cf.len(), count);
            random_components += rf.region().components26().len();
            clustered_components += cf.region().components26().len();
        }
        prop_assert!(
            clustered_components < random_components,
            "clustered {} should be < random {}",
            clustered_components,
            random_components
        );
    }
}
