//! The per-component construction entry point.
//!
//! Both centralized solutions — the virtual-block labelling emulation of
//! [`centralized`](crate::centralized) and the concave-section scan of
//! [`concave`](crate::concave) — compute the minimum orthogonal convex
//! polygon of *one* faulty component. Before this module existed that fact
//! was buried inside [`CentralizedMfpModel`](crate::CentralizedMfpModel),
//! whose API only accepted a whole mesh's fault set; consumers that already
//! know the component decomposition (most importantly the incremental
//! maintenance engine in `mocp_incremental`, which tracks components across
//! a stream of inject/repair events) had no way to re-solve just one
//! component.
//!
//! [`construct_component`] is that entry point: one component in, its
//! minimum polygon and round accounting out, with the solution formulation
//! chosen by [`CentralizedSolution`]. [`polygon_from_cells`] is the
//! cell-set-shaped convenience wrapper. `CentralizedMfpModel` itself now
//! routes every component through here, so the batch models, the ablation
//! benches and the incremental engine all share one construction path.

use crate::analysis::CentralizedSolution;
use crate::centralized::VirtualBlockSolver;
use crate::component::FaultyComponent;
use crate::concave::ConcaveSectionSolver;
use distsim::RoundStats;
use mesh2d::{Connectivity, Coord, Mesh2D, Region};

/// The minimum faulty polygon of a single component, with the round
/// accounting of the construction that produced it.
#[derive(Clone, Debug)]
pub struct ComponentPolygon {
    /// The component's minimum orthogonal convex polygon (its faults plus
    /// the forced non-faulty nodes), in mesh coordinates.
    pub polygon: Region,
    /// Rounds the construction needed: labelling rounds for
    /// [`CentralizedSolution::VirtualBlock`], scan iterations for
    /// [`CentralizedSolution::ConcaveSections`].
    pub rounds: RoundStats,
}

/// Computes the minimum faulty polygon of one component using the chosen
/// centralized formulation. Both formulations produce the same polygon (the
/// component's orthogonal convex hull); they differ only in cost model and
/// round accounting.
pub fn construct_component(
    mesh: &Mesh2D,
    component: &FaultyComponent,
    solution: CentralizedSolution,
) -> ComponentPolygon {
    match solution {
        CentralizedSolution::VirtualBlock => {
            let sol = VirtualBlockSolver.solve(mesh, component);
            ComponentPolygon {
                polygon: sol.polygon,
                rounds: sol.rounds,
            }
        }
        CentralizedSolution::ConcaveSections => {
            let (polygon, iterations) = ConcaveSectionSolver.solve(component);
            let added = (polygon.len() - component.len()) as u64;
            ComponentPolygon {
                polygon,
                rounds: RoundStats {
                    rounds: iterations,
                    events: added,
                    converged: true,
                },
            }
        }
    }
}

/// [`construct_component`] over a raw cell set: wraps the cells of one
/// 8-connected faulty component and solves it. Returns `None` for an empty
/// cell set.
///
/// The cells must form a single 8-connected component (the caller is
/// expected to have decomposed the fault set already); this is
/// `debug_assert`ed, not checked in release builds, because the incremental
/// engine calls this on every dirty component of every event.
pub fn polygon_from_cells(
    mesh: &Mesh2D,
    cells: impl IntoIterator<Item = Coord>,
    solution: CentralizedSolution,
) -> Option<ComponentPolygon> {
    let region = Region::from_coords(cells);
    if region.is_empty() {
        return None;
    }
    debug_assert!(
        region.is_connected(Connectivity::Eight),
        "polygon_from_cells expects one 8-connected component"
    );
    Some(construct_component(
        mesh,
        &FaultyComponent::new(region),
        solution,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::minimum_polygon;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn both_solutions_match_the_specification() {
        let mesh = Mesh2D::square(12);
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let spec = minimum_polygon(&u);
        for solution in [
            CentralizedSolution::VirtualBlock,
            CentralizedSolution::ConcaveSections,
        ] {
            let sol = construct_component(&mesh, &u, solution);
            assert_eq!(sol.polygon, spec, "{solution:?}");
            assert!(sol.rounds.converged);
        }
    }

    #[test]
    fn cells_wrapper_agrees_with_component_entry_point() {
        let mesh = Mesh2D::square(10);
        let cells = [(1, 1), (2, 2), (3, 1)].map(|(x, y)| Coord::new(x, y));
        let via_cells =
            polygon_from_cells(&mesh, cells, CentralizedSolution::ConcaveSections).unwrap();
        let via_component = construct_component(
            &mesh,
            &FaultyComponent::new(Region::from_coords(cells)),
            CentralizedSolution::ConcaveSections,
        );
        assert_eq!(via_cells.polygon, via_component.polygon);
    }

    #[test]
    fn empty_cell_set_yields_none() {
        let mesh = Mesh2D::square(4);
        assert!(polygon_from_cells(&mesh, [], CentralizedSolution::VirtualBlock).is_none());
    }
}
