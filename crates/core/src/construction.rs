//! The per-component construction entry point.
//!
//! Both centralized solutions — the virtual-block labelling emulation of
//! [`centralized`](crate::centralized) and the concave-section scan of
//! [`concave`](crate::concave) — compute the minimum orthogonal convex
//! polygon of *one* faulty component. Before this module existed that fact
//! was buried inside [`CentralizedMfpModel`](crate::CentralizedMfpModel),
//! whose API only accepted a whole mesh's fault set; consumers that already
//! know the component decomposition (most importantly the incremental
//! maintenance engine in `mocp_incremental`, which tracks components across
//! a stream of inject/repair events) had no way to re-solve just one
//! component.
//!
//! [`construct_component`] is that entry point: one component in, its
//! minimum polygon and round accounting out, with the solution formulation
//! chosen by [`CentralizedSolution`]. [`polygon_from_cells`] is the
//! cell-set-shaped convenience wrapper. `CentralizedMfpModel` itself now
//! routes every component through here, so the batch models, the ablation
//! benches and the incremental engine all share one construction path.

use crate::analysis::CentralizedSolution;
use crate::centralized::VirtualBlockSolver;
use crate::component::FaultyComponent;
use crate::concave::ConcaveSectionSolver;
use distsim::RoundStats;
use mesh2d::{BitGrid, BitScratch, Connectivity, Coord, Mesh2D, Rect, Region};

/// Size cap under which the bit-parallel concave-section construction
/// re-verifies against the scalar [`ConcaveSectionSolver`] in debug builds.
const ORACLE_NODE_CAP: usize = 1024;

/// Reusable buffers threaded through the construction entry points so the
/// hull fixpoint and the callers' flood fills allocate nothing in steady
/// state: one re-framable occupancy grid plus the flood/fill scratch set.
///
/// One scratch serves a whole sweep (the batch models) or the entire
/// lifetime of an incremental engine; [`grows`](Self::grows) exposes how
/// often any buffer had to grow, which the no-allocation tests pin.
#[derive(Clone, Debug, Default)]
pub struct ConstructionScratch {
    /// Occupancy grid reused across components (re-framed per component).
    grid: BitGrid,
    /// Flood / gap-fill working buffers.
    bits: BitScratch,
    /// Times `grid`'s backing storage grew.
    grid_grows: u64,
}

impl ConstructionScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        ConstructionScratch::default()
    }

    /// Total number of buffer growths since construction. Constant across
    /// calls ⇔ the construction ran allocation-free (steady state).
    pub fn grows(&self) -> u64 {
        self.grid_grows + self.bits.grows()
    }

    /// The flood scratch, for callers that run their own component floods
    /// between constructions (the incremental engine's localized re-flood).
    pub fn flood_scratch(&mut self) -> &mut BitScratch {
        &mut self.bits
    }

    /// Word-flood decomposition of `cells` (which must lie inside `bbox`)
    /// into its 8-connected components on the scratch buffers — the
    /// incremental engine's localized re-flood after a repair. Only the
    /// returned component grids are allocated.
    pub fn flood_components(&mut self, cells: &Region, bbox: Rect) -> Vec<BitGrid> {
        if self.grid.reset_frame(bbox.min(), bbox.max()) {
            self.grid_grows += 1;
        }
        for c in cells.iter() {
            self.grid.set(c);
        }
        self.grid
            .components_with(Connectivity::Eight, &mut self.bits)
    }
}

/// The concave-section (solution 2) construction of one component's
/// minimum polygon over an arbitrary cell iterator, on scratch buffers:
/// the bit-parallel hull fixpoint inside the component's bounding box.
///
/// `cells` must be the nodes of one 8-connected component and `bbox` its
/// bounding rectangle. The returned iteration count matches the scalar
/// [`ConcaveSectionSolver`]'s scan-then-fill rounds exactly.
pub(crate) fn concave_polygon_with(
    cells: impl Iterator<Item = Coord>,
    cell_count: usize,
    bbox: Rect,
    scratch: &mut ConstructionScratch,
) -> ComponentPolygon {
    if scratch.grid.reset_frame(bbox.min(), bbox.max()) {
        scratch.grid_grows += 1;
    }
    for c in cells {
        scratch.grid.set(c);
    }
    let (iterations, added) = scratch.grid.hull_fixpoint(&mut scratch.bits);
    let polygon = scratch.grid.to_region();
    debug_assert_eq!(polygon.len(), cell_count + added as usize);
    mocp_obs::counter!("construct.components").inc();
    mocp_obs::counter!("construct.fixpoint_rounds").add(iterations as u64);
    mocp_obs::counter!("construct.nodes_added").add(added);
    mocp_obs::histogram!("construct.rounds_per_component").record(iterations as u64);
    ComponentPolygon {
        polygon,
        rounds: RoundStats {
            rounds: iterations,
            events: added,
            converged: true,
        },
    }
}

/// The minimum faulty polygon of a single component, with the round
/// accounting of the construction that produced it.
#[derive(Clone, Debug)]
pub struct ComponentPolygon {
    /// The component's minimum orthogonal convex polygon (its faults plus
    /// the forced non-faulty nodes), in mesh coordinates.
    pub polygon: Region,
    /// Rounds the construction needed: labelling rounds for
    /// [`CentralizedSolution::VirtualBlock`], scan iterations for
    /// [`CentralizedSolution::ConcaveSections`].
    pub rounds: RoundStats,
}

/// Computes the minimum faulty polygon of one component using the chosen
/// centralized formulation. Both formulations produce the same polygon (the
/// component's orthogonal convex hull); they differ only in cost model and
/// round accounting.
pub fn construct_component(
    mesh: &Mesh2D,
    component: &FaultyComponent,
    solution: CentralizedSolution,
) -> ComponentPolygon {
    construct_component_with(mesh, component, solution, &mut ConstructionScratch::new())
}

/// [`construct_component`] with caller-provided scratch buffers: the batch
/// models thread one scratch across every component of a sweep, and the
/// incremental engine threads one across its whole event stream, so the
/// hull fixpoint allocates nothing in steady state.
pub fn construct_component_with(
    mesh: &Mesh2D,
    component: &FaultyComponent,
    solution: CentralizedSolution,
    scratch: &mut ConstructionScratch,
) -> ComponentPolygon {
    match solution {
        CentralizedSolution::VirtualBlock => {
            let sol = VirtualBlockSolver.solve(mesh, component);
            mocp_obs::counter!("construct.components").inc();
            mocp_obs::counter!("construct.labelling_rounds").add(sol.rounds.rounds as u64);
            ComponentPolygon {
                polygon: sol.polygon,
                rounds: sol.rounds,
            }
        }
        CentralizedSolution::ConcaveSections => {
            let sol = concave_polygon_with(
                component.iter(),
                component.len(),
                component.virtual_block(),
                scratch,
            );
            debug_assert!(
                component.len() > ORACLE_NODE_CAP || {
                    let (oracle_polygon, oracle_iterations) = ConcaveSectionSolver.solve(component);
                    oracle_polygon == sol.polygon && oracle_iterations == sol.rounds.rounds
                },
                "bit-parallel concave-section construction diverged from the scalar solver"
            );
            sol
        }
    }
}

/// Per-component construction over a live cell set with its maintained
/// bounding box — the incremental engine's entry point: no
/// [`FaultyComponent`] is materialized and, for the concave-section
/// solution, no intermediate `Region` either, so a steady-state caller
/// holding one [`ConstructionScratch`] allocates only the output polygon.
pub fn construct_cells_with(
    mesh: &Mesh2D,
    cells: &Region,
    bbox: Rect,
    solution: CentralizedSolution,
    scratch: &mut ConstructionScratch,
) -> ComponentPolygon {
    debug_assert!(!cells.is_empty(), "components are never empty");
    debug_assert_eq!(
        Some(bbox),
        cells.bounding_rect(),
        "bbox must be the cells' bounding rectangle"
    );
    match solution {
        CentralizedSolution::VirtualBlock => construct_component_with(
            mesh,
            &FaultyComponent::new(cells.clone()),
            solution,
            scratch,
        ),
        CentralizedSolution::ConcaveSections => {
            let sol = concave_polygon_with(cells.iter(), cells.len(), bbox, scratch);
            debug_assert!(
                cells.len() > ORACLE_NODE_CAP
                    || sol.polygon
                        == ConcaveSectionSolver
                            .solve(&FaultyComponent::new(cells.clone()))
                            .0,
                "bit-parallel cell-set construction diverged from the scalar solver"
            );
            sol
        }
    }
}

/// [`construct_component`] over a raw cell set: wraps the cells of one
/// 8-connected faulty component and solves it. Returns `None` for an empty
/// cell set.
///
/// The cells must form a single 8-connected component (the caller is
/// expected to have decomposed the fault set already); this is
/// `debug_assert`ed, not checked in release builds, because the incremental
/// engine calls this on every dirty component of every event.
pub fn polygon_from_cells(
    mesh: &Mesh2D,
    cells: impl IntoIterator<Item = Coord>,
    solution: CentralizedSolution,
) -> Option<ComponentPolygon> {
    let region = Region::from_coords(cells);
    if region.is_empty() {
        return None;
    }
    debug_assert!(
        region.is_connected(Connectivity::Eight),
        "polygon_from_cells expects one 8-connected component"
    );
    Some(construct_component(
        mesh,
        &FaultyComponent::new(region),
        solution,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::minimum_polygon;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn both_solutions_match_the_specification() {
        let mesh = Mesh2D::square(12);
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let spec = minimum_polygon(&u);
        for solution in [
            CentralizedSolution::VirtualBlock,
            CentralizedSolution::ConcaveSections,
        ] {
            let sol = construct_component(&mesh, &u, solution);
            assert_eq!(sol.polygon, spec, "{solution:?}");
            assert!(sol.rounds.converged);
        }
    }

    #[test]
    fn cells_wrapper_agrees_with_component_entry_point() {
        let mesh = Mesh2D::square(10);
        let cells = [(1, 1), (2, 2), (3, 1)].map(|(x, y)| Coord::new(x, y));
        let via_cells =
            polygon_from_cells(&mesh, cells, CentralizedSolution::ConcaveSections).unwrap();
        let via_component = construct_component(
            &mesh,
            &FaultyComponent::new(Region::from_coords(cells)),
            CentralizedSolution::ConcaveSections,
        );
        assert_eq!(via_cells.polygon, via_component.polygon);
    }

    #[test]
    fn empty_cell_set_yields_none() {
        let mesh = Mesh2D::square(4);
        assert!(polygon_from_cells(&mesh, [], CentralizedSolution::VirtualBlock).is_none());
    }
}
