//! Future-work extension: minimum orthogonal convex polyhedra in 3-D meshes.
//!
//! The paper's conclusion names the extension of the construction to higher
//! dimensional meshes as future work. This module provides the 3-D analogue
//! of the specification layer: 3-D coordinates, 26-adjacency components, the
//! orthogonal-convexity test along the three axes, and the iterated
//! axis-fill closure that yields the minimum orthogonal convex polyhedron of
//! a component. It is intentionally self-contained (it does not try to reuse
//! the 2-D grid machinery) and is exercised by its own unit tests and by the
//! `extension_3d` example.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A node address in a 3-D mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct Coord3 {
    /// X coordinate.
    pub x: i32,
    /// Y coordinate.
    pub y: i32,
    /// Z coordinate.
    pub z: i32,
}

impl Coord3 {
    /// Creates a 3-D coordinate.
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        Coord3 { x, y, z }
    }

    /// Chebyshev distance, whose unit ball is the 26-neighborhood (the 3-D
    /// analogue of Definition 2 adjacency).
    pub fn chebyshev(self, other: Coord3) -> u32 {
        self.x
            .abs_diff(other.x)
            .max(self.y.abs_diff(other.y))
            .max(self.z.abs_diff(other.z))
    }

    /// True when the two nodes are distinct and within Chebyshev distance 1.
    pub fn is_adjacent26(self, other: Coord3) -> bool {
        self != other && self.chebyshev(other) == 1
    }
}

/// A set of 3-D mesh nodes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Region3 {
    nodes: BTreeSet<Coord3>,
}

impl Region3 {
    /// Builds a region from coordinates.
    pub fn from_coords(coords: impl IntoIterator<Item = Coord3>) -> Self {
        Region3 {
            nodes: coords.into_iter().collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, c: Coord3) -> bool {
        self.nodes.contains(&c)
    }

    /// Inserts a node.
    pub fn insert(&mut self, c: Coord3) -> bool {
        self.nodes.insert(c)
    }

    /// Iterates in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Coord3> + '_ {
        self.nodes.iter().copied()
    }

    /// Decomposes into 26-connected components (the 3-D merge process).
    pub fn components26(&self) -> Vec<Region3> {
        let mut unvisited = self.nodes.clone();
        let mut out = Vec::new();
        while let Some(&start) = unvisited.iter().next() {
            unvisited.remove(&start);
            let mut comp = BTreeSet::new();
            comp.insert(start);
            let mut queue = VecDeque::new();
            queue.push_back(start);
            while let Some(c) = queue.pop_front() {
                for dx in -1..=1 {
                    for dy in -1..=1 {
                        for dz in -1..=1 {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let n = Coord3::new(c.x + dx, c.y + dy, c.z + dz);
                            if unvisited.remove(&n) {
                                comp.insert(n);
                                queue.push_back(n);
                            }
                        }
                    }
                }
            }
            out.push(Region3 { nodes: comp });
        }
        out
    }

    /// The 3-D orthogonal convexity test: along every axis-parallel line the
    /// region's nodes form a contiguous run.
    pub fn is_orthogonally_convex(&self) -> bool {
        axis_runs(self, Axis::X).values().all(|v| contiguous(v))
            && axis_runs(self, Axis::Y).values().all(|v| contiguous(v))
            && axis_runs(self, Axis::Z).values().all(|v| contiguous(v))
    }

    /// The minimum orthogonal convex polyhedron containing the region:
    /// iterated gap filling along all three axes.
    ///
    /// Scanning an axis fills every gap on every line parallel to it, so
    /// the axis stays gap-free until a fill along a *different* axis inserts
    /// nodes. The per-axis dirty flags exploit that: an axis whose last scan
    /// found no gaps is skipped until another axis changes the region,
    /// instead of recomputing its full `axis_runs` on every fixpoint
    /// iteration. Each filled node is forced (it lies between two region
    /// nodes on an axis line, so every orthogonally convex superset must
    /// contain it), hence any fair scan order converges to the same unique
    /// minimum — the result is identical to the naive all-axes loop.
    pub fn orthogonal_convex_hull(&self) -> Region3 {
        let mut hull = self.clone();
        let axes = [Axis::X, Axis::Y, Axis::Z];
        let mut dirty = [true; 3];
        while dirty.iter().any(|&d| d) {
            for i in 0..3 {
                if !dirty[i] {
                    continue;
                }
                dirty[i] = false;
                let mut added = Vec::new();
                for (key, vals) in axis_runs(&hull, axes[i]) {
                    for w in vals.windows(2) {
                        for v in (w[0] + 1)..w[1] {
                            added.push(axes[i].rebuild(key, v));
                        }
                    }
                }
                let mut inserted = false;
                for c in added {
                    inserted |= hull.insert(c);
                }
                if inserted {
                    for (j, flag) in dirty.iter_mut().enumerate() {
                        *flag = j != i;
                    }
                }
            }
        }
        hull
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

impl Axis {
    fn split(self, c: Coord3) -> ((i32, i32), i32) {
        match self {
            Axis::X => ((c.y, c.z), c.x),
            Axis::Y => ((c.x, c.z), c.y),
            Axis::Z => ((c.x, c.y), c.z),
        }
    }

    fn rebuild(self, key: (i32, i32), v: i32) -> Coord3 {
        match self {
            Axis::X => Coord3::new(v, key.0, key.1),
            Axis::Y => Coord3::new(key.0, v, key.1),
            Axis::Z => Coord3::new(key.0, key.1, v),
        }
    }
}

fn axis_runs(region: &Region3, axis: Axis) -> BTreeMap<(i32, i32), Vec<i32>> {
    let mut map: BTreeMap<(i32, i32), Vec<i32>> = BTreeMap::new();
    for c in region.iter() {
        let (key, v) = axis.split(c);
        map.entry(key).or_default().push(v);
    }
    for v in map.values_mut() {
        v.sort_unstable();
    }
    map
}

fn contiguous(sorted: &[i32]) -> bool {
    sorted.windows(2).all(|w| w[1] == w[0] + 1)
}

/// The 3-D analogue of the paper's construction: merge the faults into
/// 26-adjacent components and return each component's minimum orthogonal
/// convex polyhedron.
pub fn minimum_polyhedra(faults: &Region3) -> Vec<Region3> {
    faults
        .components26()
        .into_iter()
        .map(|c| c.orthogonal_convex_hull())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(list: &[(i32, i32, i32)]) -> Region3 {
        Region3::from_coords(list.iter().map(|&(x, y, z)| Coord3::new(x, y, z)))
    }

    #[test]
    fn diagonal_chain_is_one_component_and_convex() {
        let r = region(&[(0, 0, 0), (1, 1, 1), (2, 2, 2)]);
        assert_eq!(r.components26().len(), 1);
        assert!(r.is_orthogonally_convex());
        assert_eq!(r.orthogonal_convex_hull(), r);
    }

    #[test]
    fn u_shape_in_a_plane_is_filled() {
        let u = region(&[(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0), (2, 1, 0)]);
        assert!(!u.is_orthogonally_convex());
        let hull = u.orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 0)));
        assert_eq!(hull.len(), 6);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn separated_clusters_stay_separate() {
        let r = region(&[(0, 0, 0), (5, 5, 5)]);
        let polys = minimum_polyhedra(&r);
        assert_eq!(polys.len(), 2);
        assert!(polys.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn hollow_cube_shell_fills_center() {
        // 3x3x3 cube minus its center: the hull must restore the center.
        let mut nodes = Vec::new();
        for x in 0..3 {
            for y in 0..3 {
                for z in 0..3 {
                    if (x, y, z) != (1, 1, 1) {
                        nodes.push((x, y, z));
                    }
                }
            }
        }
        let shell = region(&nodes);
        let hull = shell.orthogonal_convex_hull();
        assert!(hull.contains(Coord3::new(1, 1, 1)));
        assert_eq!(hull.len(), 27);
        assert!(hull.is_orthogonally_convex());
    }

    #[test]
    fn hull_is_idempotent() {
        let r = region(&[(0, 0, 0), (2, 0, 0), (1, 1, 0), (0, 0, 2)]);
        let h1 = r.orthogonal_convex_hull();
        let h2 = h1.orthogonal_convex_hull();
        assert_eq!(h1, h2);
        assert!(h1.is_orthogonally_convex());
    }
}
