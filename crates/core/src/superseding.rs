//! Piling per-component diagrams with the superseding rule.
//!
//! Each component produces its own minimum faulty polygon. The final diagram
//! is constructed by "piling" all the per-component diagrams on top of each
//! other with the rule: *black nodes overwrite gray and white nodes, and gray
//! nodes overwrite white nodes*. In status terms: a node that is faulty
//! anywhere stays faulty; a non-faulty node disabled by any polygon is
//! disabled; everything else stays enabled.

use mesh2d::{FaultSet, Mesh2D, NodeStatus, Region, StatusMap};

/// Combines per-component minimum polygons into the network-wide status map.
///
/// `polygons` are the per-component minimum faulty polygons (each containing
/// that component's faults plus the forced non-faulty nodes).
pub fn pile_polygons(mesh: &Mesh2D, faults: &FaultSet, polygons: &[Region]) -> StatusMap {
    let mut status = StatusMap::from_faults(mesh, &faults.region());
    for polygon in polygons {
        for c in polygon.iter() {
            // The superseding rule keeps faulty (black) nodes faulty and
            // upgrades enabled (white) nodes to disabled (gray).
            status.supersede(c, NodeStatus::Disabled);
        }
    }
    status
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    #[test]
    fn faults_stay_black_even_when_covered_by_other_polygons() {
        let mesh = Mesh2D::square(6);
        let faults = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(3, 3)]);
        // A polygon of component A that happens to cover the fault of
        // component B must not downgrade it to gray.
        let poly_a = Region::from_coords([Coord::new(1, 1), Coord::new(2, 1), Coord::new(3, 1)]);
        let poly_b = Region::from_coords([Coord::new(3, 3)]);
        let status = pile_polygons(&mesh, &faults, &[poly_a, poly_b]);
        assert_eq!(status.status(Coord::new(1, 1)), NodeStatus::Faulty);
        assert_eq!(status.status(Coord::new(3, 3)), NodeStatus::Faulty);
        assert_eq!(status.status(Coord::new(2, 1)), NodeStatus::Disabled);
        assert_eq!(status.status(Coord::new(3, 1)), NodeStatus::Disabled);
        assert_eq!(status.disabled_count(), 2);
    }

    #[test]
    fn overlapping_polygons_do_not_double_count() {
        let mesh = Mesh2D::square(6);
        let faults = FaultSet::from_coords(mesh, [Coord::new(0, 0), Coord::new(4, 0)]);
        let a = Region::from_coords([Coord::new(0, 0), Coord::new(1, 0), Coord::new(2, 0)]);
        let b = Region::from_coords([Coord::new(2, 0), Coord::new(3, 0), Coord::new(4, 0)]);
        let status = pile_polygons(&mesh, &faults, &[a, b]);
        assert_eq!(status.disabled_count(), 3);
        assert_eq!(status.faulty_count(), 2);
    }

    #[test]
    fn empty_polygon_list_keeps_only_faults() {
        let mesh = Mesh2D::square(4);
        let faults = FaultSet::from_coords(mesh, [Coord::new(2, 2)]);
        let status = pile_polygons(&mesh, &faults, &[]);
        assert_eq!(status.faulty_count(), 1);
        assert_eq!(status.disabled_count(), 0);
    }
}
