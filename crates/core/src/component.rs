//! Phase 1 of the minimum-polygon construction: the merge process.
//!
//! Faulty nodes are grouped into *components*, where each component consists
//! of adjacent faulty nodes only (adjacency is the 8-neighborhood of
//! Definition 2). Each component maintains the minimum and maximum
//! coordinates of its nodes along both dimensions — the corners of its
//! *virtual faulty block*.

use mesh2d::{BitGrid, BitScratch, Connectivity, Coord, FaultSet, Rect, Region};
use serde::{Deserialize, Serialize};

/// Size cap under which [`merge_components`] re-verifies against the
/// scalar `Region::components` oracle in debug builds (larger fault sets
/// are pinned by the property tests).
const ORACLE_NODE_CAP: usize = 1024;

/// A maximal set of mutually 8-adjacent faulty nodes, together with the
/// bounding-box bookkeeping (`min_x`, `min_y`, `max_x`, `max_y`) the merge
/// process maintains.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultyComponent {
    /// The faulty nodes of the component.
    region: Region,
    /// The virtual faulty block: `[(min_x, min_y), (max_x, max_y)]`.
    bbox: Rect,
}

impl FaultyComponent {
    /// Wraps an already-merged region. Panics on an empty region.
    pub fn new(region: Region) -> Self {
        let bbox = region
            .bounding_rect()
            .expect("a faulty component contains at least one fault");
        FaultyComponent { region, bbox }
    }

    /// The faulty nodes of the component.
    pub fn region(&self) -> &Region {
        &self.region
    }

    /// The component's virtual faulty block (bounding rectangle).
    pub fn virtual_block(&self) -> Rect {
        self.bbox
    }

    /// Number of faulty nodes in the component.
    pub fn len(&self) -> usize {
        self.region.len()
    }

    /// Components are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Minimum coordinate along X maintained by the merge process.
    pub fn min_x(&self) -> i32 {
        self.bbox.min().x
    }

    /// Minimum coordinate along Y maintained by the merge process.
    pub fn min_y(&self) -> i32 {
        self.bbox.min().y
    }

    /// Maximum coordinate along X maintained by the merge process.
    pub fn max_x(&self) -> i32 {
        self.bbox.max().x
    }

    /// Maximum coordinate along Y maintained by the merge process.
    pub fn max_y(&self) -> i32 {
        self.bbox.max().y
    }

    /// True when `c` is a faulty node of this component.
    pub fn contains(&self, c: Coord) -> bool {
        self.region.contains(c)
    }

    /// Iterates over the component's faulty nodes in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.region.iter()
    }
}

/// The merge process: groups the faulty nodes into components of adjacent
/// (8-neighborhood) faulty nodes. Components are returned in deterministic
/// order (by their smallest node).
///
/// Labelling runs as a word-scan flood over the packed fault bitmap
/// (find-first-set seeds, whole-word frontier expansion); the scalar
/// `Region::components` decomposition remains the debug oracle.
pub fn merge_components(faults: &FaultSet) -> Vec<FaultyComponent> {
    merge_components_with(faults, &mut BitScratch::new())
}

/// [`merge_components`] with caller-provided flood scratch buffers, for
/// allocation-free steady-state use by the sweep loops.
pub fn merge_components_with(faults: &FaultSet, scratch: &mut BitScratch) -> Vec<FaultyComponent> {
    let bits = BitGrid::from_coords(faults.in_insertion_order().iter().copied());
    let components: Vec<FaultyComponent> = bits
        .components_with(Connectivity::Eight, scratch)
        .iter()
        .map(|comp| FaultyComponent::new(comp.to_region()))
        .collect();
    debug_assert!(
        faults.len() > ORACLE_NODE_CAP
            || components
                == faults
                    .region()
                    .components(Connectivity::Eight)
                    .into_iter()
                    .map(FaultyComponent::new)
                    .collect::<Vec<_>>(),
        "word-flood merge process diverged from the scalar oracle"
    );
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Mesh2D;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn no_faults_means_no_components() {
        let mesh = Mesh2D::square(5);
        assert!(merge_components(&FaultSet::new(mesh)).is_empty());
    }

    #[test]
    fn diagonal_faults_merge_into_one_component() {
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (3, 3), (4, 4)]);
        let comps = merge_components(&fs);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[0].virtual_block().min(), Coord::new(2, 2));
        assert_eq!(comps[0].virtual_block().max(), Coord::new(4, 4));
    }

    #[test]
    fn distance_two_faults_stay_separate() {
        let mesh = Mesh2D::square(8);
        let fs = faults(mesh, &[(2, 2), (4, 2)]);
        let comps = merge_components(&fs);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn bbox_bookkeeping_matches_region_extremes() {
        let mesh = Mesh2D::square(12);
        let fs = faults(mesh, &[(3, 7), (4, 6), (5, 7), (4, 8), (5, 8)]);
        let comps = merge_components(&fs);
        assert_eq!(comps.len(), 1);
        let c = &comps[0];
        assert_eq!((c.min_x(), c.min_y(), c.max_x(), c.max_y()), (3, 6, 5, 8));
        assert_eq!(c.virtual_block().area(), 9);
    }

    #[test]
    fn components_partition_the_fault_set() {
        let mesh = Mesh2D::square(20);
        let fs = faults(
            mesh,
            &[
                (1, 1),
                (2, 2),
                (3, 1),
                (10, 10),
                (11, 11),
                (17, 3),
                (17, 4),
                (18, 5),
            ],
        );
        let comps = merge_components(&fs);
        let total: usize = comps.iter().map(FaultyComponent::len).sum();
        assert_eq!(total, fs.len());
        for (i, a) in comps.iter().enumerate() {
            for b in &comps[i + 1..] {
                assert!(a.region().is_disjoint(b.region()));
            }
        }
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn single_fault_component() {
        let mesh = Mesh2D::square(5);
        let fs = faults(mesh, &[(4, 0)]);
        let comps = merge_components(&fs);
        assert_eq!(comps.len(), 1);
        assert!(comps[0].contains(Coord::new(4, 0)));
        assert_eq!(comps[0].virtual_block(), Rect::single(Coord::new(4, 0)));
    }
}
