//! # mocp-core — minimum orthogonal convex polygons in 2-D faulty meshes
//!
//! This crate implements the primary contribution of *Wu & Jiang, "On
//! Constructing the Minimum Orthogonal Convex Polygon in 2-D Faulty Meshes"
//! (IPDPS 2004)*: given a set of faulty nodes, construct a set of disjoint
//! orthogonal convex polygons that covers every fault while disabling the
//! minimum number of non-faulty nodes.
//!
//! The construction has two phases (Section 3):
//!
//! 1. **Component formation** — faulty nodes are merged into components of
//!    adjacent (8-neighborhood, Definition 2) faulty nodes
//!    ([`component::FaultyComponent`], [`component::merge_components`]).
//! 2. **Polygon completion** — a minimum number of non-faulty nodes is added
//!    to make each component orthogonally convex. Two equivalent centralized
//!    formulations are provided:
//!    * [`centralized::VirtualBlockSolver`] emulates labelling schemes 1 and
//!      2 on each component's *virtual faulty block* (solution 1);
//!    * [`concave::ConcaveSectionSolver`] directly disables every node on a
//!      *concave row/column section* of the component (solution 2);
//!
//!    and a **distributed** formulation ([`distributed`]) in which boundary
//!    nodes build a ring around each component, detect concave sections with
//!    the boundary array `V[1..n](E,S,W,N)`, and notify the section nodes,
//!    routing around blocking polygons when necessary.
//!
//! The high-level entry points are the two [`fblock::FaultModel`]
//! implementations:
//!
//! * [`CentralizedMfpModel`] (model name `"CMFP"`),
//! * [`DistributedMfpModel`] (model name `"DMFP"`),
//!
//! both of which produce a [`fblock::ModelOutcome`] whose disabled set is the
//! union of per-component minimum faulty polygons combined under the
//! superseding rule, together with the round counts plotted in Figure 11.
//!
//! ```
//! use mesh2d::{Coord, FaultSet, Mesh2D};
//! use fblock::FaultModel;
//! use mocp_core::CentralizedMfpModel;
//!
//! let mesh = Mesh2D::square(8);
//! // A U-shaped fault pattern: the minimum polygon must add the two notch
//! // nodes, and nothing else.
//! let faults = FaultSet::from_coords(
//!     mesh,
//!     [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]
//!         .map(|(x, y)| Coord::new(x, y)),
//! );
//! let outcome = CentralizedMfpModel::default().construct(&mesh, &faults);
//! assert_eq!(outcome.disabled_nonfaulty(), 2);
//! assert!(outcome.all_regions_convex());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod centralized;
pub mod component;
pub mod concave;
pub mod construction;
pub mod distributed;
pub mod extension3d;
pub mod hull;
pub mod registry;
pub mod superseding;
pub mod verify;

pub use analysis::{CentralizedMfpModel, CentralizedSolution, MfpAnalysis};
pub use component::{merge_components, merge_components_with, FaultyComponent};
pub use concave::{concave_sections, ConcaveSection, Orientation};
pub use construction::{
    construct_cells_with, construct_component, construct_component_with, polygon_from_cells,
    ComponentPolygon, ConstructionScratch,
};
pub use distributed::protocol::DistributedMfpModel;
pub use hull::minimum_polygon;
pub use registry::{ablation_registry, standard_registry};
pub use verify::is_minimum_covering_polygon;
