//! High-level entry points: the CMFP fault model and the cross-model
//! analysis helper.

use crate::component::{merge_components, FaultyComponent};
use crate::superseding::pile_polygons;
use distsim::RoundStats;
use fblock::{FaultModel, FaultyBlockModel, ModelOutcome, SubMinimumPolygonModel};
use mesh2d::{BitGrid, BitScratch, Connectivity, FaultSet, Mesh2D, NodeStatus, Region, StatusMap};
use serde::{Deserialize, Serialize};

/// Size cap under which the fused construction re-verifies against the
/// staged merge/solve/pile pipeline in debug builds.
const ORACLE_NODE_CAP: usize = 1024;

/// Fault count from which the concave-section CMFP construction prefers
/// the staged pipeline (whose per-component solves fan out over the
/// thread pool) over the fused single-pass construction. Below this the
/// fused path's zero-materialization wins even against several cores.
const PARALLEL_FAULT_THRESHOLD: usize = 128;

/// Which centralized formulation computes the per-component polygons.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum CentralizedSolution {
    /// Solution 1: emulate labelling schemes 1 and 2 on each component's
    /// virtual faulty block. Round counts are the per-component labelling
    /// rounds (the CMFP series of Figure 11).
    #[default]
    VirtualBlock,
    /// Solution 2: disable every node on a concave row/column section.
    /// Reported "rounds" are scan iterations (an algorithmic metric used by
    /// the ablation benchmark, not neighbor exchanges).
    ConcaveSections,
}

/// The centralized minimum faulty polygon construction (model name `CMFP`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CentralizedMfpModel {
    /// Formulation used to compute each component's polygon.
    pub solution: CentralizedSolution,
}

impl CentralizedMfpModel {
    /// A model using centralized solution 1 (virtual faulty blocks).
    pub fn virtual_block() -> Self {
        CentralizedMfpModel {
            solution: CentralizedSolution::VirtualBlock,
        }
    }

    /// A model using centralized solution 2 (concave row/column sections).
    pub fn concave_sections() -> Self {
        CentralizedMfpModel {
            solution: CentralizedSolution::ConcaveSections,
        }
    }

    /// Solves every component and returns the per-component polygons together
    /// with the network-wide round statistics (components are constructed in
    /// disjoint areas of the mesh, so their rounds compose in parallel).
    ///
    /// Each component is solved through the shared per-component entry point
    /// ([`construct_component`](crate::construction::construct_component)),
    /// the same path the incremental maintenance
    /// engine uses for its dirty components.
    pub fn solve_components(
        &self,
        mesh: &Mesh2D,
        components: &[FaultyComponent],
    ) -> (Vec<Region>, RoundStats) {
        use rayon::prelude::*;
        // With a pool, independent components fan out across the workers,
        // each chunk with its own scratch (no shared mutable scratch
        // across tasks); sequentially one scratch serves every component:
        // the hull fixpoint re-frames the same buffers instead of
        // allocating per component. The ordered collect keeps component
        // order, and the round composition (max rounds, summed events) is
        // fold-order-independent, so both paths report identical stats.
        let solutions: Vec<crate::construction::ComponentPolygon> =
            if components.len() > 1 && rayon::current_num_threads() > 1 {
                components
                    .par_iter()
                    .map_init(
                        crate::construction::ConstructionScratch::new,
                        |scratch, c| {
                            crate::construction::construct_component_with(
                                mesh,
                                c,
                                self.solution,
                                scratch,
                            )
                        },
                    )
                    .collect()
            } else {
                let mut scratch = crate::construction::ConstructionScratch::new();
                components
                    .iter()
                    .map(|c| {
                        crate::construction::construct_component_with(
                            mesh,
                            c,
                            self.solution,
                            &mut scratch,
                        )
                    })
                    .collect()
            };
        let mut polygons = Vec::with_capacity(components.len());
        let mut rounds = RoundStats::quiescent();
        for sol in solutions {
            rounds = rounds.in_parallel_with(sol.rounds);
            polygons.push(sol.polygon);
        }
        (polygons, rounds)
    }
}

impl FaultModel for CentralizedMfpModel {
    fn name(&self) -> &'static str {
        "CMFP"
    }

    fn construct(&self, mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
        match self.solution {
            // The concave-section construction runs fully fused on the
            // packed fault bitmap: word-flood labelling straight into the
            // per-component hull fixpoint, materializing only the output
            // polygons — no intermediate component regions at all.
            CentralizedSolution::ConcaveSections => {
                // With an active pool and enough faults, the staged
                // pipeline wins: its per-component solves run on the
                // workers, while the fused pass is inherently serial.
                // Both produce identical outcomes (the debug oracles
                // below and in the fused branch pin the equivalence from
                // both directions).
                if rayon::current_num_threads() > 1 && faults.len() >= PARALLEL_FAULT_THRESHOLD {
                    let components = merge_components(faults);
                    let (polygons, rounds) = self.solve_components(mesh, &components);
                    let status = pile_polygons(mesh, faults, &polygons);
                    let outcome = ModelOutcome {
                        model: "CMFP".to_string(),
                        status,
                        regions: polygons,
                        rounds,
                    };
                    debug_assert!(
                        faults.len() > ORACLE_NODE_CAP || {
                            let fused = construct_concave_fused(mesh, faults);
                            fused.regions == outcome.regions
                                && fused.rounds == outcome.rounds
                                && fused.status == outcome.status
                        },
                        "staged parallel construction diverged from the fused pass"
                    );
                    return outcome;
                }
                let outcome = construct_concave_fused(mesh, faults);
                debug_assert!(
                    faults.len() > ORACLE_NODE_CAP || {
                        let components = merge_components(faults);
                        let (polygons, rounds) = self.solve_components(mesh, &components);
                        polygons == outcome.regions
                            && rounds == outcome.rounds
                            && pile_polygons(mesh, faults, &polygons) == outcome.status
                    },
                    "fused concave construction diverged from the staged pipeline"
                );
                outcome
            }
            CentralizedSolution::VirtualBlock => {
                let components = merge_components(faults);
                let (polygons, rounds) = self.solve_components(mesh, &components);
                let status = pile_polygons(mesh, faults, &polygons);
                ModelOutcome {
                    model: "CMFP".to_string(),
                    status,
                    regions: polygons,
                    rounds,
                }
            }
        }
    }
}

/// The fused concave-section CMFP construction: one packed fault bitmap,
/// word-flood component labelling, the bit-parallel hull fixpoint in each
/// component's own grid, and the superseding pile applied straight from
/// the packed polygons.
fn construct_concave_fused(mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
    let mut scratch = BitScratch::new();
    let mut rounds = RoundStats::quiescent();
    let mut status = StatusMap::all_enabled(mesh);
    // One pass marks the faults and finds their bounding box; a second
    // packs them — no intermediate coordinate vector.
    let mut bounds: Option<(mesh2d::Coord, mesh2d::Coord)> = None;
    for &c in faults.in_insertion_order() {
        status.set(c, NodeStatus::Faulty);
        bounds = Some(match bounds {
            None => (c, c),
            Some((lo, hi)) => (
                mesh2d::Coord::new(lo.x.min(c.x), lo.y.min(c.y)),
                mesh2d::Coord::new(hi.x.max(c.x), hi.y.max(c.y)),
            ),
        });
    }
    let bits = match bounds {
        None => BitGrid::empty(),
        Some((lo, hi)) => {
            let mut bits = BitGrid::with_bounds(lo, hi);
            for &c in faults.in_insertion_order() {
                bits.set(c);
            }
            bits
        }
    };
    // Hull-fill each component in place inside the shared flood buffer —
    // no per-component grid is ever allocated — then sort the extracted
    // polygons into the merge process's x-major component order (the
    // round composition is order-independent: max rounds, summed events).
    let mut polygons: Vec<(mesh2d::Coord, Region)> = Vec::new();
    bits.for_each_component_with(Connectivity::Eight, &mut scratch, |view| {
        let key = view.min_coord_x_major();
        let (iterations, added) = view.hull_fixpoint();
        mocp_obs::counter!("construct.components").inc();
        mocp_obs::counter!("construct.fixpoint_rounds").add(iterations as u64);
        mocp_obs::counter!("construct.nodes_added").add(added);
        mocp_obs::histogram!("construct.rounds_per_component").record(iterations as u64);
        rounds = rounds.in_parallel_with(RoundStats {
            rounds: iterations,
            events: added,
            converged: true,
        });
        for c in view.iter() {
            status.supersede(c, NodeStatus::Disabled);
        }
        polygons.push((key, view.to_region()));
    });
    polygons.sort_by_key(|&(key, _)| key);
    ModelOutcome {
        model: "CMFP".to_string(),
        status,
        regions: polygons.into_iter().map(|(_, region)| region).collect(),
        rounds,
    }
}

/// Runs all four fault models (FB, FP, CMFP, DMFP) on the same fault pattern
/// and keeps their outcomes side by side — the comparison the paper's
/// Figures 9–11 are built from.
#[derive(Clone, Debug)]
pub struct MfpAnalysis {
    /// Rectangular faulty block outcome.
    pub fb: ModelOutcome,
    /// Sub-minimum faulty polygon outcome (Wu, IPDPS 2001).
    pub fp: ModelOutcome,
    /// Centralized minimum faulty polygon outcome.
    pub cmfp: ModelOutcome,
    /// Distributed minimum faulty polygon outcome.
    pub dmfp: ModelOutcome,
}

impl MfpAnalysis {
    /// Runs the four constructions on the same mesh and fault set.
    pub fn run(mesh: &Mesh2D, faults: &FaultSet) -> Self {
        MfpAnalysis {
            fb: FaultyBlockModel.construct(mesh, faults),
            fp: SubMinimumPolygonModel.construct(mesh, faults),
            cmfp: CentralizedMfpModel::virtual_block().construct(mesh, faults),
            dmfp: crate::distributed::protocol::DistributedMfpModel.construct(mesh, faults),
        }
    }

    /// The outcomes in presentation order (FB, FP, CMFP, DMFP).
    pub fn all(&self) -> [&ModelOutcome; 4] {
        [&self.fb, &self.fp, &self.cmfp, &self.dmfp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::Coord;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn both_centralized_solutions_agree() {
        let mesh = Mesh2D::square(16);
        let fs = faults(
            mesh,
            &[
                (2, 2),
                (3, 2),
                (4, 2),
                (2, 3),
                (4, 3),
                (2, 4),
                (4, 4),
                (9, 9),
                (10, 10),
                (11, 9),
                (10, 8),
                (0, 15),
                (1, 14),
            ],
        );
        let a = CentralizedMfpModel::virtual_block().construct(&mesh, &fs);
        let b = CentralizedMfpModel::concave_sections().construct(&mesh, &fs);
        assert_eq!(a.status, b.status);
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn cmfp_never_disables_more_than_fp() {
        // The paper's Theorem: the per-component polygons contain no more
        // non-faulty nodes than any covering set of convex polygons — in
        // particular no more than the sub-minimum polygons.
        let mesh = Mesh2D::square(20);
        let fs = faults(
            mesh,
            &[
                (2, 6),
                (3, 7),
                (3, 5),
                (2, 4),
                (7, 6),
                (7, 5),
                (8, 5),
                (8, 4),
                (9, 4),
                (7, 7),
                (14, 14),
                (15, 15),
                (16, 14),
            ],
        );
        let fp = SubMinimumPolygonModel.construct(&mesh, &fs);
        let cmfp = CentralizedMfpModel::virtual_block().construct(&mesh, &fs);
        assert!(cmfp.disabled_nonfaulty() <= fp.disabled_nonfaulty());
        assert!(cmfp.covers_all_faults());
        assert!(cmfp.all_regions_convex());
    }

    #[test]
    fn cmfp_outcome_metadata() {
        let mesh = Mesh2D::square(10);
        let fs = faults(mesh, &[(2, 2), (3, 3), (7, 7)]);
        let outcome = CentralizedMfpModel::default().construct(&mesh, &fs);
        assert_eq!(outcome.model, "CMFP");
        assert_eq!(outcome.regions.len(), 2);
        assert!(outcome.rounds.converged);
        assert_eq!(CentralizedMfpModel::default().name(), "CMFP");
    }

    #[test]
    fn analysis_runs_all_models_consistently() {
        let mesh = Mesh2D::square(14);
        let fs = faults(mesh, &[(3, 3), (4, 4), (5, 3), (4, 2), (9, 9), (10, 10)]);
        let analysis = MfpAnalysis::run(&mesh, &fs);
        for outcome in analysis.all() {
            assert!(outcome.covers_all_faults(), "{}", outcome.model);
            assert_eq!(outcome.faulty_count(), fs.len(), "{}", outcome.model);
        }
        // The ordering the paper reports: MFP disables no more than FP, which
        // disables no more than FB.
        assert!(analysis.cmfp.disabled_nonfaulty() <= analysis.fp.disabled_nonfaulty());
        assert!(analysis.fp.disabled_nonfaulty() <= analysis.fb.disabled_nonfaulty());
        assert_eq!(
            analysis.cmfp.disabled_nonfaulty(),
            analysis.dmfp.disabled_nonfaulty()
        );
    }

    #[test]
    fn empty_fault_set_produces_empty_outcome() {
        let mesh = Mesh2D::square(8);
        let outcome = CentralizedMfpModel::default().construct(&mesh, &FaultSet::new(mesh));
        assert!(outcome.regions.is_empty());
        assert_eq!(outcome.disabled_nonfaulty(), 0);
        assert_eq!(outcome.rounds.rounds, 0);
    }
}
