//! Verification of the paper's Theorem: every polygon produced by the
//! construction is a *minimum* faulty polygon.
//!
//! The proof in Section 3.1 argues that any set of disjoint orthogonal
//! convex polygons covering a component's faults must contain every node the
//! construction adds. Computationally, that is the statement that the
//! polygon equals the component's orthogonal convex hull: the hull is
//! contained in *every* orthogonal convex superset of the component (it is a
//! closure), so no covering polygon can disable fewer non-faulty nodes.
//!
//! This module provides the predicate used throughout the test suites plus a
//! brute-force oracle for very small components that directly searches for a
//! smaller convex cover, as an independent check of the theorem.

use crate::component::FaultyComponent;
use crate::hull::minimum_polygon;
use mesh2d::{Coord, Region};

/// True when `polygon` is the minimum orthogonal convex polygon covering
/// `component`: it contains every fault, it is orthogonally convex, and it
/// equals the component's orthogonal convex hull (hence no orthogonal convex
/// cover can be smaller).
pub fn is_minimum_covering_polygon(component: &FaultyComponent, polygon: &Region) -> bool {
    component.region().is_subset(polygon)
        && polygon.is_orthogonally_convex()
        && *polygon == minimum_polygon(component)
}

/// Brute-force oracle for tiny components (bounding box of at most
/// `MAX_BRUTE_NODES` nodes): enumerates every subset of the virtual block
/// that contains the faults and is orthogonally convex, and returns the size
/// of the smallest one. Exponential — test-only scale.
pub fn brute_force_minimum_cover_size(component: &FaultyComponent) -> Option<usize> {
    const MAX_BRUTE_NODES: usize = 20;
    let block: Vec<Coord> = component
        .virtual_block()
        .nodes()
        .filter(|c| !component.contains(*c))
        .collect();
    if block.len() > MAX_BRUTE_NODES {
        return None;
    }
    let faults = component.region().clone();
    let mut best = usize::MAX;
    for mask in 0u32..(1u32 << block.len()) {
        let mut candidate = faults.clone();
        for (i, c) in block.iter().enumerate() {
            if mask & (1 << i) != 0 {
                candidate.insert(*c);
            }
        }
        if candidate.is_orthogonally_convex() {
            best = best.min(candidate.len());
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn hull_is_accepted_as_minimum() {
        let c = component(&[(0, 0), (1, 1), (2, 0)]);
        let hull = minimum_polygon(&c);
        assert!(is_minimum_covering_polygon(&c, &hull));
    }

    #[test]
    fn non_convex_polygon_rejected() {
        let c = component(&[(0, 0), (1, 1)]);
        let mut bad = c.region().clone();
        bad.insert(Coord::new(3, 0));
        bad.insert(Coord::new(5, 0));
        assert!(!is_minimum_covering_polygon(&c, &bad));
    }

    #[test]
    fn oversized_polygon_rejected() {
        let c = component(&[(0, 0), (1, 1)]);
        let mut big = minimum_polygon(&c);
        big.insert(Coord::new(0, 1));
        big.insert(Coord::new(1, 0));
        // still convex (2x2 square) and a superset, but not minimum
        assert!(big.is_orthogonally_convex());
        assert!(!is_minimum_covering_polygon(&c, &big));
    }

    #[test]
    fn polygon_missing_a_fault_rejected() {
        let c = component(&[(0, 0), (1, 1)]);
        let partial = Region::from_coords([Coord::new(0, 0)]);
        assert!(!is_minimum_covering_polygon(&c, &partial));
    }

    #[test]
    fn brute_force_agrees_with_hull_on_small_shapes() {
        let shapes: Vec<Vec<(i32, i32)>> = vec![
            vec![(0, 0)],
            vec![(0, 0), (1, 1)],
            vec![(0, 0), (1, 1), (2, 0)],
            vec![(0, 0), (1, 0), (2, 0), (0, 1), (2, 1)],
            vec![(0, 0), (1, 1), (0, 2)],
            vec![(0, 2), (1, 1), (2, 0), (3, 1)],
        ];
        for shape in shapes {
            let c = component(&shape);
            let hull = minimum_polygon(&c);
            let best = brute_force_minimum_cover_size(&c).expect("small enough for brute force");
            assert_eq!(hull.len(), best, "shape {shape:?}");
        }
    }

    #[test]
    fn brute_force_declines_large_blocks() {
        let long: Vec<(i32, i32)> = (0..8).map(|i| (i, i)).collect();
        let c = component(&long);
        assert!(brute_force_minimum_cover_size(&c).is_none());
    }
}
