//! The distributed minimum faulty polygon fault model (DMFP).
//!
//! Per component the protocol proceeds in phases, and the phases of
//! different components run concurrently in disjoint parts of the mesh:
//!
//! 1. **Boundary classification** (1 round): every node learns from its
//!    neighbors whether it is an east/south/west/north boundary node of an
//!    adjacent component and whether it is a south-west inner/outer corner.
//! 2. **Ring traversal**: the west-most south-west corner's initiation
//!    message circulates around the component (and around each closed
//!    concave region), carrying the boundary array and detecting the
//!    notification end node of every concave row/column section. The paper's
//!    overwriting rule makes the west-most initiator dominate; secondary
//!    corners that start concurrently only add traffic, not rounds.
//! 3. **Notification**: each notification end node disables the nodes of its
//!    section, routing around blocking polygons where needed.
//!
//! New south-west corners formed by freshly disabled nodes restart the
//! procedure, so the phases repeat until no new concave section appears —
//! in practice a single pass suffices for every 8-connected component.
//! Should the traversal nevertheless fail to detect some forced node (it
//! never has in our test corpus), the construction falls back to the
//! centralized specification for the remainder and records the fact in the
//! per-component trace so that fidelity regressions are visible to tests.

use crate::component::{merge_components, FaultyComponent};
use crate::distributed::boundary::ring_walks;
use crate::distributed::notify::{plan_notification, Notification};
use crate::distributed::ring::process_walk;
use crate::hull::minimum_polygon;
use crate::superseding::pile_polygons;
use distsim::RoundStats;
use fblock::{FaultModel, ModelOutcome};
use mesh2d::{FaultSet, Mesh2D, Region};

/// Per-component record of what the distributed protocol did.
#[derive(Clone, Debug)]
pub struct ComponentTrace {
    /// The component's faults.
    pub component: FaultyComponent,
    /// The minimum faulty polygon the protocol produced.
    pub polygon: Region,
    /// Rounds spent: boundary classification + ring traversal + notification,
    /// summed over protocol iterations.
    pub rounds: RoundStats,
    /// Notifications that were planned (one per detected concave section).
    pub notifications: Vec<Notification>,
    /// Number of protocol iterations (ring + notify passes) that were needed.
    pub iterations: u32,
    /// True when every ring walk visited all of its ring nodes and the
    /// detected sections alone produced the minimum polygon (no fallback).
    pub faithful: bool,
}

/// The distributed minimum faulty polygon construction (model name `DMFP`).
#[derive(Clone, Copy, Debug, Default)]
pub struct DistributedMfpModel;

impl DistributedMfpModel {
    /// Runs the protocol for a single component.
    pub fn run_component(
        &self,
        mesh: &Mesh2D,
        faults: &FaultSet,
        component: &FaultyComponent,
    ) -> ComponentTrace {
        // Phase 1: boundary classification costs one round of neighbor
        // information exchange.
        let mut rounds = RoundStats {
            rounds: 1,
            events: 0,
            converged: true,
        };
        let mut polygon = component.region().clone();
        let mut notifications = Vec::new();
        let mut iterations = 0u32;
        let mut faithful = true;

        loop {
            iterations += 1;
            // The procedure restarts on the region grown so far ("whenever a
            // new south-west corner is formed").
            let grown = FaultyComponent::new(polygon.clone());
            let walks = ring_walks(mesh, &grown);
            let mut ring_rounds = 0u32;
            let mut ring_events = 0u64;
            let mut detected = Vec::new();
            for walk in &walks {
                let outcome = process_walk(&grown, walk);
                faithful &= outcome.complete;
                // Rings of the same component circulate concurrently.
                ring_rounds = ring_rounds.max(outcome.hops);
                ring_events += outcome.hops as u64;
                detected.extend(outcome.detected);
            }

            let mut notify_rounds = 0u32;
            let mut notify_events = 0u64;
            let mut added_any = false;
            for d in &detected {
                let notification = plan_notification(mesh, faults, d.notification_end, &d.section);
                notify_rounds = notify_rounds.max(notification.hops);
                notify_events += notification.hops as u64;
                for node in d.section.nodes() {
                    if mesh.contains(node) && polygon.insert(node) {
                        added_any = true;
                    }
                }
                notifications.push(notification);
            }

            rounds = rounds.then(RoundStats {
                rounds: ring_rounds + notify_rounds,
                events: ring_events + notify_events,
                converged: true,
            });

            // A new pass is only needed when freshly disabled nodes created a
            // concavity that was not yet notified (new south-west corners
            // forming, in the paper's terms). For 8-connected components one
            // pass reaches the convex fixpoint.
            if !added_any || polygon.is_orthogonally_convex() {
                break;
            }
        }

        // Safety net: the distributed detection has matched the centralized
        // specification on every component we have ever tested; if a shape
        // ever escapes it, fall back to the specification so the model's
        // output stays a minimum polygon, and record the infidelity.
        let spec = minimum_polygon(component);
        if polygon != spec {
            faithful = false;
            polygon = polygon.union(&spec);
        }

        ComponentTrace {
            component: component.clone(),
            polygon,
            rounds,
            notifications,
            iterations,
            faithful,
        }
    }

    /// Runs the full construction and returns both the model outcome and the
    /// per-component traces.
    pub fn construct_detailed(
        &self,
        mesh: &Mesh2D,
        faults: &FaultSet,
    ) -> (ModelOutcome, Vec<ComponentTrace>) {
        let components = merge_components(faults);
        let mut traces = Vec::with_capacity(components.len());
        let mut rounds = RoundStats::quiescent();
        let mut polygons = Vec::with_capacity(components.len());
        for component in &components {
            let trace = self.run_component(mesh, faults, component);
            rounds = rounds.in_parallel_with(trace.rounds);
            polygons.push(trace.polygon.clone());
            traces.push(trace);
        }
        let status = pile_polygons(mesh, faults, &polygons);
        (
            ModelOutcome {
                model: "DMFP".to_string(),
                status,
                regions: polygons,
                rounds,
            },
            traces,
        )
    }
}

impl FaultModel for DistributedMfpModel {
    fn name(&self) -> &'static str {
        "DMFP"
    }

    fn construct(&self, mesh: &Mesh2D, faults: &FaultSet) -> ModelOutcome {
        self.construct_detailed(mesh, faults).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentralizedMfpModel;
    use mesh2d::Coord;

    fn faults(mesh: Mesh2D, list: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, list.iter().map(|&(x, y)| Coord::new(x, y)))
    }

    #[test]
    fn dmfp_matches_cmfp_on_simple_scenarios() {
        let mesh = Mesh2D::square(14);
        let cases: Vec<Vec<(i32, i32)>> = vec![
            vec![(3, 3)],
            vec![(2, 2), (3, 3)],
            vec![(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)],
            vec![(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)],
            vec![
                (2, 6),
                (3, 7),
                (3, 5),
                (2, 4),
                (7, 6),
                (7, 5),
                (8, 5),
                (8, 4),
                (9, 4),
                (7, 7),
            ],
            vec![
                (0, 0),
                (1, 1),
                (0, 2),
                (1, 3),
                (2, 2),
                (3, 3),
                (4, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ],
        ];
        for case in cases {
            let fs = faults(mesh, &case);
            let cmfp = CentralizedMfpModel::virtual_block().construct(&mesh, &fs);
            let (dmfp, traces) = DistributedMfpModel.construct_detailed(&mesh, &fs);
            assert_eq!(dmfp.status, cmfp.status, "case {case:?}");
            assert!(
                traces.iter().all(|t| t.faithful),
                "case {case:?} needed the fallback"
            );
            assert!(dmfp.covers_all_faults());
            assert!(dmfp.all_regions_convex());
        }
    }

    #[test]
    fn dmfp_counts_ring_and_notification_rounds() {
        let mesh = Mesh2D::square(12);
        let fs = faults(
            mesh,
            &[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)],
        );
        let (outcome, traces) = DistributedMfpModel.construct_detailed(&mesh, &fs);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        // ring of the U-shaped component has more than a dozen nodes, so the
        // traversal alone needs that many rounds, plus 1 for classification.
        assert!(
            outcome.rounds.rounds > 12,
            "rounds = {}",
            outcome.rounds.rounds
        );
        assert!(!t.notifications.is_empty());
        assert_eq!(t.iterations, 1, "one pass reaches the convex fixpoint");
    }

    #[test]
    fn blocking_polygon_scenario_stays_correct() {
        // Component 1 is a large C; component 2 sits inside its mouth so the
        // concave sections of component 1 overlap component 2.
        let mesh = Mesh2D::square(12);
        let mut list = vec![
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 2),
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (2, 7),
            (2, 8),
            (3, 8),
            (4, 8),
            (5, 8),
        ];
        list.extend([(4, 4), (4, 5), (5, 4), (5, 5)]);
        let fs = faults(mesh, &list);
        let cmfp = CentralizedMfpModel::virtual_block().construct(&mesh, &fs);
        let (dmfp, traces) = DistributedMfpModel.construct_detailed(&mesh, &fs);
        assert_eq!(dmfp.status, cmfp.status);
        // at least one notification had to detour around the blocking polygon
        let any_detour = traces
            .iter()
            .flat_map(|t| t.notifications.iter())
            .any(|n| n.detoured);
        assert!(any_detour);
    }

    #[test]
    fn rounds_scale_with_component_perimeter_not_block_size() {
        // A long diagonal chain: its faulty block is huge, but the component
        // perimeter (and hence the DMFP round count) grows only linearly.
        let mesh = Mesh2D::square(30);
        let chain: Vec<(i32, i32)> = (0..10).map(|i| (2 + i, 2 + i)).collect();
        let fs = faults(mesh, &chain);
        let fb = fblock::FaultyBlockModel.construct(&mesh, &fs);
        let fp = fblock::SubMinimumPolygonModel.construct(&mesh, &fs);
        let dmfp = DistributedMfpModel.construct(&mesh, &fs);
        assert!(fp.rounds.rounds > fb.rounds.rounds);
        assert_eq!(dmfp.disabled_nonfaulty(), 0);
        assert!(dmfp.covers_all_faults());
    }

    #[test]
    fn no_faults_is_a_no_op() {
        let mesh = Mesh2D::square(6);
        let outcome = DistributedMfpModel.construct(&mesh, &FaultSet::new(mesh));
        assert!(outcome.regions.is_empty());
        assert_eq!(outcome.rounds.rounds, 0);
        assert_eq!(outcome.disabled_nonfaulty(), 0);
    }
}
