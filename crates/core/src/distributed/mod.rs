//! The distributed minimum faulty polygon construction (Section 3.2).
//!
//! The distributed solution is built from three pieces, mirroring the paper:
//!
//! * [`boundary`] — boundary-node classification (north / south / east / west
//!   boundary with respect to a component), the south-west inner and outer
//!   corners that may initiate the protocol, and the clockwise boundary-ring
//!   walk itself (including the separate inner rings that surround closed
//!   concave regions);
//! * [`ring`] — the circulating initiation message: the boundary array
//!   `V[1..n](E, S, W, N)`, its per-node update rules, and the detection of
//!   notification end nodes for concave row and column sections;
//! * [`notify`] — the notification phase in which each notification end node
//!   disables every node of its concave section, routing around *blocking
//!   polygons* (other components that happen to lie on the section) when the
//!   straight path is interrupted;
//! * [`protocol`] — the [`protocol::DistributedMfpModel`] fault model that
//!   ties the phases together, accounts rounds (boundary classification +
//!   ring circulation + notification, composed in parallel across
//!   components), and piles the per-component polygons with the superseding
//!   rule.

pub mod boundary;
pub mod notify;
pub mod protocol;
pub mod ring;
