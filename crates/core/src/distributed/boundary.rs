//! Boundary nodes, corners, and the boundary-ring walk.
//!
//! The construction of a component's minimum polygon is carried out by its
//! *boundary nodes*: nodes outside the component but adjacent to it. A node
//! directly north of a component node is a *north boundary node*, and
//! similarly for the other sides; a node can carry several boundary roles at
//! once. Boundary nodes (plus the diagonal outer-corner nodes) form a ring
//! around the component along which the initiation message travels clockwise.
//!
//! Because a concave region can be *closed* (a hole entirely enclosed by the
//! component), the ring around the hole is disconnected from the outer ring;
//! the paper handles this by letting the west-most south-west **inner**
//! corner initiate a separate traversal. Here every 4-connected free region
//! touching the component gets its own walk.

use crate::component::FaultyComponent;
use mesh2d::{Connectivity, Coord, Mesh2D, Region};
use serde::{Deserialize, Serialize};

/// The boundary roles a node can play with respect to one component.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct BoundaryKind {
    /// The node sits directly north of a component node.
    pub north: bool,
    /// The node sits directly south of a component node.
    pub south: bool,
    /// The node sits directly east of a component node.
    pub east: bool,
    /// The node sits directly west of a component node.
    pub west: bool,
}

impl BoundaryKind {
    /// True when the node carries at least one of the four side roles.
    pub fn is_side_boundary(&self) -> bool {
        self.north || self.south || self.east || self.west
    }
}

/// Classifies `c` with respect to `component`. Component members themselves
/// carry no boundary role.
pub fn classify(component: &FaultyComponent, c: Coord) -> BoundaryKind {
    if component.contains(c) {
        return BoundaryKind::default();
    }
    BoundaryKind {
        north: component.contains(c.offset(0, -1)),
        south: component.contains(c.offset(0, 1)),
        east: component.contains(c.offset(-1, 0)),
        west: component.contains(c.offset(1, 0)),
    }
}

/// True when `c` is a south-west *outer* corner of the ring: it has a west
/// boundary neighbor (to its east) and a south boundary neighbor (to its
/// north), i.e. it sits diagonally south-west of a component corner.
pub fn is_south_west_outer_corner(component: &FaultyComponent, c: Coord) -> bool {
    !component.contains(c)
        && component.contains(c.offset(1, 1))
        && !component.contains(c.offset(1, 0))
        && !component.contains(c.offset(0, 1))
}

/// True when `c` is a south-west *inner* corner: it is an east and a north
/// boundary node at the same time (the component bends around its south-west
/// side).
pub fn is_south_west_inner_corner(component: &FaultyComponent, c: Coord) -> bool {
    let k = classify(component, c);
    k.east && k.north
}

/// All ring nodes of the component: in-mesh, non-component nodes within
/// Chebyshev distance 1 of the component (side boundary nodes plus outer
/// corner nodes).
pub fn ring_nodes(mesh: &Mesh2D, component: &FaultyComponent) -> Region {
    let mut ring = Region::new();
    for c in component.iter() {
        for n in mesh.neighbors8(c) {
            if !component.contains(n) {
                ring.insert(n);
            }
        }
    }
    ring
}

/// One traversal of a component's boundary: the free region it runs in, the
/// ordered sequence of ring nodes the token visits (hop by hop), and whether
/// the region is a closed concave region (a hole) or the outside.
#[derive(Clone, Debug)]
pub struct RingWalk {
    /// The initiator node the walk starts from (the west-most, then
    /// south-most ring node of the region, matching the overwriting rule's
    /// eventual winner).
    pub initiator: Coord,
    /// The ring nodes in visit order; consecutive entries are 4-adjacent.
    /// The initiator appears first and the walk ends when the token is back
    /// at the initiator (the final return hop is not repeated in the list).
    pub visits: Vec<Coord>,
    /// Number of hops the token needs to circulate the ring once and return
    /// to the initiator (one hop per ring node of the walk).
    pub hops: u32,
    /// True when this walk surrounds a closed concave region (hole) rather
    /// than running on the outside of the component.
    pub is_inner: bool,
    /// True when the walk visited every ring node of its region; the
    /// detection of concave sections is provably complete in that case.
    pub complete: bool,
}

/// Builds every boundary-ring walk of the component: one for the outer free
/// region and one per closed concave region (hole).
pub fn ring_walks(mesh: &Mesh2D, component: &FaultyComponent) -> Vec<RingWalk> {
    let ring = ring_nodes(mesh, component);
    if ring.is_empty() {
        return Vec::new();
    }

    // Partition the free space around the component into 4-connected regions:
    // the window is the virtual block plus a one-node margin clipped to the
    // mesh, which is guaranteed to contain every ring node and to connect the
    // outside into a single region.
    let block = component.virtual_block();
    let min = Coord::new((block.min().x - 1).max(0), (block.min().y - 1).max(0));
    let max = Coord::new(
        (block.max().x + 1).min(mesh.width() - 1),
        (block.max().y + 1).min(mesh.height() - 1),
    );
    let window = mesh2d::Rect::new(min, max);
    let free = Region::from_coords(window.nodes().filter(|c| !component.contains(*c)));
    let free_regions = free.components(Connectivity::Four);

    let mut walks = Vec::new();
    for region in free_regions {
        let ring_in_region = region.intersection(&ring);
        if ring_in_region.is_empty() {
            continue;
        }
        // A region is "inner" (a hole) when it never touches the window
        // border: it is completely enclosed by the component.
        let is_inner = !region.iter().any(|c| window.on_boundary(c));
        let walk = trace_walk(&ring_in_region, is_inner);
        walks.push(walk);
    }
    walks
}

/// Traversal of a single 1-node-wide ring band.
///
/// The token performs a depth-first walk along the band (4-adjacent hops,
/// backtracking through already-visited cells when a notch dead-ends), which
/// is exactly how the circulating initiation message behaves: it hugs the
/// component, enters every notch, and returns to the initiator. `hops`
/// counts every hop including the backtracking ones. If the band happens to
/// be 4-disconnected inside one free region (possible for components pinched
/// against the mesh border), the remaining pieces are traversed by secondary
/// initiators, matching the paper's multiple-initiation handling; their hops
/// accrue to the same walk because they run concurrently with it.
fn trace_walk(band: &Region, is_inner: bool) -> RingWalk {
    let initiator = band
        .iter()
        .min_by_key(|c| (c.x, c.y))
        .expect("band is non-empty");

    let mut visits = Vec::with_capacity(band.len());
    let mut visited = Region::new();
    let mut hops = 0u32;
    let mut max_piece_hops = 0u32;

    let mut pending: Vec<Coord> = band.iter().collect();
    pending.sort_by_key(|c| (c.x, c.y));

    // Primary walk from the west-most south-west ring node, then secondary
    // walks from the next unvisited initiators (overwriting-rule order).
    for start in std::iter::once(initiator).chain(pending) {
        if visited.contains(start) {
            continue;
        }
        let mut piece_nodes = 0u32;
        let mut path = vec![start];
        visited.insert(start);
        visits.push(start);
        piece_nodes += 1;
        while let Some(&cur) = path.last() {
            let next = cur
                .neighbors4()
                .into_iter()
                .filter(|n| band.contains(*n) && !visited.contains(*n))
                .min_by_key(|n| (n.x, n.y));
            match next {
                Some(n) => {
                    visited.insert(n);
                    visits.push(n);
                    path.push(n);
                    piece_nodes += 1;
                }
                None => {
                    path.pop();
                }
            }
        }
        // The circulating token passes every ring node of the piece exactly
        // once on its way back to the initiator, so the piece costs one hop
        // per ring node.
        hops += piece_nodes;
        max_piece_hops = max_piece_hops.max(piece_nodes);
    }
    // Concurrent pieces overlap in time: the walk completes when its longest
    // piece does, but we keep the total in `hops` monotone with band size.
    let hops = hops.max(max_piece_hops);

    let complete = visited.len() == band.len();
    RingWalk {
        initiator,
        visits,
        hops,
        is_inner,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn classify_single_node_component() {
        let c = component(&[(3, 3)]);
        assert!(classify(&c, Coord::new(3, 4)).north);
        assert!(classify(&c, Coord::new(3, 2)).south);
        assert!(classify(&c, Coord::new(4, 3)).east);
        assert!(classify(&c, Coord::new(2, 3)).west);
        assert!(!classify(&c, Coord::new(4, 4)).is_side_boundary());
        assert!(!classify(&c, Coord::new(3, 3)).is_side_boundary());
    }

    #[test]
    fn south_west_corners() {
        let c = component(&[(3, 3), (4, 3), (3, 4), (4, 4)]);
        assert!(is_south_west_outer_corner(&c, Coord::new(2, 2)));
        assert!(!is_south_west_outer_corner(&c, Coord::new(2, 3)));
        // An L-shaped component has an inner SW corner in its armpit.
        let l = component(&[(2, 2), (2, 3), (2, 4), (3, 2), (4, 2)]);
        assert!(is_south_west_inner_corner(&l, Coord::new(3, 3)));
        assert!(!is_south_west_inner_corner(&l, Coord::new(1, 1)));
    }

    #[test]
    fn ring_of_interior_single_node_has_eight_nodes() {
        let mesh = Mesh2D::square(7);
        let c = component(&[(3, 3)]);
        let ring = ring_nodes(&mesh, &c);
        assert_eq!(ring.len(), 8);
    }

    #[test]
    fn ring_clipped_at_mesh_corner() {
        let mesh = Mesh2D::square(7);
        let c = component(&[(0, 0)]);
        let ring = ring_nodes(&mesh, &c);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn single_walk_around_interior_component() {
        let mesh = Mesh2D::square(9);
        let c = component(&[(4, 4), (5, 4), (4, 5), (5, 5)]);
        let walks = ring_walks(&mesh, &c);
        assert_eq!(walks.len(), 1);
        let w = &walks[0];
        assert!(!w.is_inner);
        assert!(w.complete, "walk should visit every ring node");
        assert_eq!(w.visits.len(), 12, "a 2x2 block has a 12-node ring");
        assert_eq!(w.initiator, Coord::new(3, 3));
        assert!(w.hops >= 12);
        // consecutive visited nodes are 4-adjacent
        for pair in w.visits.windows(2) {
            assert!(pair[0].is_neighbor4(pair[1]) || pair[0].is_adjacent8(pair[1]));
        }
    }

    #[test]
    fn hole_produces_an_inner_walk() {
        // 5x5 ring of faults with a 3x3 hole... use a 3-thick frame around a
        // single-node hole to keep it small: frame of the 3x3 square.
        let mesh = Mesh2D::square(9);
        let frame: Vec<(i32, i32)> = vec![
            (2, 2),
            (3, 2),
            (4, 2),
            (2, 3),
            (4, 3),
            (2, 4),
            (3, 4),
            (4, 4),
        ];
        let c = component(&frame);
        let walks = ring_walks(&mesh, &c);
        assert_eq!(walks.len(), 2);
        let inner: Vec<_> = walks.iter().filter(|w| w.is_inner).collect();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].visits, vec![Coord::new(3, 3)]);
    }

    #[test]
    fn u_shape_walk_enters_the_notch() {
        let mesh = Mesh2D::square(9);
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let walks = ring_walks(&mesh, &u);
        assert_eq!(walks.len(), 1);
        let w = &walks[0];
        assert!(w.complete);
        // the notch nodes (3,3) and (3,4) are ring nodes and must be visited
        assert!(w.visits.contains(&Coord::new(3, 3)));
        assert!(w.visits.contains(&Coord::new(3, 4)));
    }

    #[test]
    fn border_component_still_gets_a_walk() {
        let mesh = Mesh2D::square(6);
        let c = component(&[(0, 0), (1, 0), (0, 1)]);
        let walks = ring_walks(&mesh, &c);
        assert_eq!(walks.len(), 1);
        assert!(walks[0].complete);
    }
}
