//! The circulating initiation message and the boundary array `V`.
//!
//! While the initiation message travels around a component's boundary ring,
//! every east / south / west / north boundary node it passes updates the
//! corresponding entry of the boundary array `V[1..n](E, S, W, N)` — the row
//! number of the most recently visited north/south boundary node of each
//! column, and the column number of the most recently visited east/west
//! boundary node of each row. A node becomes a **notification end node** when
//! its own update closes a concave row or column section:
//!
//! * an east (west) boundary node fires when the west (east) entry of its row
//!   records a column no smaller (no larger) than its own;
//! * a south (north) boundary node fires when the north (south) entry of its
//!   column records a row no smaller (no larger) than its own.
//!
//! Detected sections are clamped to the contiguous run of non-component
//! nodes containing the detector (a stale entry from an earlier section of
//! the same line can only widen the span across component nodes, never into
//! healthy territory that is not actually concave).

use crate::component::FaultyComponent;
use crate::concave::{ConcaveSection, Orientation};
use crate::distributed::boundary::{classify, RingWalk};
use mesh2d::Coord;
use std::collections::{BTreeMap, BTreeSet};

/// The boundary array `V[1..n](E, S, W, N)` carried by the initiation
/// message. Entries are created lazily (the paper initialises them to "-").
#[derive(Clone, Debug, Default)]
pub struct BoundaryArray {
    /// Row → column of the most recently visited east boundary node.
    east: BTreeMap<i32, i32>,
    /// Row → column of the most recently visited west boundary node.
    west: BTreeMap<i32, i32>,
    /// Column → row of the most recently visited north boundary node.
    north: BTreeMap<i32, i32>,
    /// Column → row of the most recently visited south boundary node.
    south: BTreeMap<i32, i32>,
}

impl BoundaryArray {
    /// Looks up the east entry of a row (used by tests).
    pub fn east_of_row(&self, row: i32) -> Option<i32> {
        self.east.get(&row).copied()
    }

    /// Looks up the west entry of a row.
    pub fn west_of_row(&self, row: i32) -> Option<i32> {
        self.west.get(&row).copied()
    }

    /// Looks up the north entry of a column.
    pub fn north_of_column(&self, col: i32) -> Option<i32> {
        self.north.get(&col).copied()
    }

    /// Looks up the south entry of a column.
    pub fn south_of_column(&self, col: i32) -> Option<i32> {
        self.south.get(&col).copied()
    }
}

/// A concave section detected during the ring traversal, together with the
/// notification end node in charge of it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DetectedSection {
    /// The boundary node that detected (and will notify) the section.
    pub notification_end: Coord,
    /// The concave row or column section itself.
    pub section: ConcaveSection,
}

/// The result of processing one ring walk.
#[derive(Clone, Debug)]
pub struct RingOutcome {
    /// Sections detected during the traversal (deduplicated).
    pub detected: Vec<DetectedSection>,
    /// Hops the initiation message travelled.
    pub hops: u32,
    /// Whether the walk covered every ring node of its free region.
    pub complete: bool,
    /// Final state of the boundary array (exposed for tests and traces).
    pub boundary_array: BoundaryArray,
}

/// Replays the boundary-array protocol along one ring walk.
pub fn process_walk(component: &FaultyComponent, walk: &RingWalk) -> RingOutcome {
    let mut v = BoundaryArray::default();
    let mut detected = Vec::new();
    let mut seen: BTreeSet<(u8, i32, i32, i32)> = BTreeSet::new();

    for &node in &walk.visits {
        let kind = classify(component, node);
        if !kind.is_side_boundary() {
            continue;
        }
        // Step (a): update the boundary array entries for every role the
        // node carries (all with the same timestamp).
        if kind.east {
            v.east.insert(node.y, node.x);
        }
        if kind.west {
            v.west.insert(node.y, node.x);
        }
        if kind.north {
            v.north.insert(node.x, node.y);
        }
        if kind.south {
            v.south.insert(node.x, node.y);
        }
        // Step (b): check whether this node closes a concave section.
        let mut fire = |section: Option<ConcaveSection>| {
            if let Some(section) = section {
                let key = (
                    matches!(section.orientation, Orientation::Row) as u8,
                    section.line,
                    section.start,
                    section.end,
                );
                if seen.insert(key) {
                    detected.push(DetectedSection {
                        notification_end: node,
                        section,
                    });
                }
            }
        };
        if kind.east {
            if let Some(w) = v.west_of_row(node.y) {
                if w >= node.x {
                    fire(clamp_row_section(component, node.y, node.x, w, node.x));
                }
            }
        }
        if kind.west {
            if let Some(e) = v.east_of_row(node.y) {
                if e <= node.x {
                    fire(clamp_row_section(component, node.y, e, node.x, node.x));
                }
            }
        }
        if kind.south {
            if let Some(n) = v.north_of_column(node.x) {
                if n <= node.y {
                    fire(clamp_column_section(component, node.x, n, node.y, node.y));
                }
            }
        }
        if kind.north {
            if let Some(s) = v.south_of_column(node.x) {
                if s >= node.y {
                    fire(clamp_column_section(component, node.x, node.y, s, node.y));
                }
            }
        }
    }

    RingOutcome {
        detected,
        hops: walk.hops,
        complete: walk.complete,
        boundary_array: v,
    }
}

/// Clamps the raw span `[lo, hi]` of row `row` to the contiguous run of
/// non-component nodes containing `anchor`, and keeps it only when the run is
/// bounded by component nodes on both sides (a genuine concave section).
fn clamp_row_section(
    component: &FaultyComponent,
    row: i32,
    lo: i32,
    hi: i32,
    anchor: i32,
) -> Option<ConcaveSection> {
    let (start, end) = clamp_run(lo, hi, anchor, |v| component.contains(Coord::new(v, row)))?;
    Some(ConcaveSection {
        orientation: Orientation::Row,
        line: row,
        start,
        end,
    })
}

/// Column analogue of [`clamp_row_section`].
fn clamp_column_section(
    component: &FaultyComponent,
    col: i32,
    lo: i32,
    hi: i32,
    anchor: i32,
) -> Option<ConcaveSection> {
    let (start, end) = clamp_run(lo, hi, anchor, |v| component.contains(Coord::new(col, v)))?;
    Some(ConcaveSection {
        orientation: Orientation::Column,
        line: col,
        start,
        end,
    })
}

/// Shrinks `[lo, hi]` to the maximal sub-run of non-member positions that
/// contains `anchor`; requires both immediate outside neighbors of the run to
/// be members so the run really lies *between* two component nodes.
fn clamp_run(lo: i32, hi: i32, anchor: i32, is_member: impl Fn(i32) -> bool) -> Option<(i32, i32)> {
    debug_assert!(lo <= anchor && anchor <= hi);
    if is_member(anchor) {
        return None;
    }
    let mut start = anchor;
    while start > lo && !is_member(start - 1) {
        start -= 1;
    }
    let mut end = anchor;
    while end < hi && !is_member(end + 1) {
        end += 1;
    }
    (is_member(start - 1) && is_member(end + 1)).then_some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concave::concave_sections;
    use crate::distributed::boundary::ring_walks;
    use mesh2d::{Mesh2D, Region};

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    fn detect_all(mesh: &Mesh2D, comp: &FaultyComponent) -> Vec<ConcaveSection> {
        let mut out: Vec<ConcaveSection> = Vec::new();
        for walk in ring_walks(mesh, comp) {
            let outcome = process_walk(comp, &walk);
            assert!(outcome.complete, "walk must visit every ring node");
            for d in outcome.detected {
                if !out.contains(&d.section) {
                    out.push(d.section);
                }
            }
        }
        out
    }

    fn sections_as_region(sections: &[ConcaveSection]) -> Region {
        Region::from_coords(sections.iter().flat_map(|s| s.nodes()))
    }

    #[test]
    fn convex_component_detects_nothing() {
        let mesh = Mesh2D::square(10);
        let comp = component(&[(2, 4), (3, 4), (4, 3)]);
        assert!(detect_all(&mesh, &comp).is_empty());
    }

    #[test]
    fn u_shape_detection_matches_definition_3() {
        let mesh = Mesh2D::square(10);
        let comp = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let detected = sections_as_region(&detect_all(&mesh, &comp));
        let geometric = sections_as_region(&concave_sections(&comp));
        assert_eq!(detected, geometric);
        assert!(detected.contains(Coord::new(3, 3)));
        assert!(detected.contains(Coord::new(3, 4)));
    }

    #[test]
    fn hole_is_detected_from_the_inner_ring() {
        let mesh = Mesh2D::square(10);
        let frame = component(&[
            (2, 2),
            (3, 2),
            (4, 2),
            (2, 3),
            (4, 3),
            (2, 4),
            (3, 4),
            (4, 4),
        ]);
        let detected = sections_as_region(&detect_all(&mesh, &frame));
        assert!(detected.contains(Coord::new(3, 3)));
    }

    #[test]
    fn detection_covers_hull_on_varied_shapes() {
        let mesh = Mesh2D::square(16);
        let shapes: Vec<Vec<(i32, i32)>> = vec![
            vec![(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)],
            vec![(2, 2), (2, 3), (2, 4), (3, 2), (4, 2), (4, 3)],
            vec![
                (0, 0),
                (1, 1),
                (0, 2),
                (1, 3),
                (2, 2),
                (3, 3),
                (4, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ],
            vec![(5, 5), (6, 6), (7, 5), (6, 4)],
            vec![
                (1, 1),
                (2, 1),
                (3, 1),
                (1, 2),
                (3, 2),
                (1, 3),
                (2, 3),
                (3, 3),
                (1, 4),
                (3, 4),
                (1, 5),
                (2, 5),
                (3, 5),
            ],
        ];
        for shape in shapes {
            let comp = component(&shape);
            let detected = sections_as_region(&detect_all(&mesh, &comp));
            let polygon = comp.region().union(&detected);
            assert_eq!(
                polygon,
                crate::hull::minimum_polygon(&comp),
                "shape {shape:?}"
            );
        }
    }

    #[test]
    fn clamp_run_bounds() {
        // membership: columns 4,5,6 are component
        let member = |v: i32| (4..=6).contains(&v);
        assert_eq!(
            clamp_run(2, 9, 8, member),
            Some((7, 9)).filter(|_| member(10))
        );
        // with a proper closing member at 10:
        let member2 = |v: i32| (4..=6).contains(&v) || v == 10 || v == 1;
        assert_eq!(clamp_run(2, 9, 8, member2), Some((7, 9)));
        assert_eq!(clamp_run(2, 9, 2, member2), Some((2, 3)));
        assert_eq!(
            clamp_run(2, 9, 5, member2),
            None,
            "anchor inside the component"
        );
    }

    #[test]
    fn boundary_array_records_latest_visit() {
        let mesh = Mesh2D::square(10);
        let comp = component(&[(3, 3), (4, 3)]);
        let walks = ring_walks(&mesh, &comp);
        let outcome = process_walk(&comp, &walks[0]);
        // north boundary of column 3 is (3,4); south boundary is (3,2)
        assert_eq!(outcome.boundary_array.north_of_column(3), Some(4));
        assert_eq!(outcome.boundary_array.south_of_column(3), Some(2));
        assert_eq!(outcome.boundary_array.west_of_row(3), Some(2));
        assert_eq!(outcome.boundary_array.east_of_row(3), Some(5));
        assert!(outcome.detected.is_empty());
    }
}
