//! The notification phase: disabling every node of a concave section.
//!
//! After the ring traversal, each *notification end node* is in charge of one
//! concave row/column section: it must tell every node of the section to
//! become disabled. In the absence of blocking polygons the status message
//! simply travels straight along the section; when the section overlaps
//! another faulty component (a *blocking polygon*, Figure 7), the message
//! routes around that polygon through non-faulty nodes and the overlapped
//! portion keeps the status assigned by its own component.

use crate::concave::ConcaveSection;
use mesh2d::{Coord, FaultSet, Mesh2D};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The planned delivery of disable notifications for one concave section.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Notification {
    /// The section being notified.
    pub section: ConcaveSection,
    /// The notification end node that initiates the delivery.
    pub end_node: Coord,
    /// Number of hops (rounds) needed to reach the farthest node of the
    /// section from the end node.
    pub hops: u32,
    /// True when a blocking polygon forced the message off the straight path.
    pub detoured: bool,
}

/// Plans the notification for one section.
///
/// The message starts at `end_node`, walks the section towards its far end,
/// and detours around faulty nodes (blocking polygons) via breadth-first
/// search through non-faulty nodes when the straight path is interrupted.
pub fn plan_notification(
    mesh: &Mesh2D,
    faults: &FaultSet,
    end_node: Coord,
    section: &ConcaveSection,
) -> Notification {
    let nodes = section.nodes();
    let blocked = nodes.iter().any(|c| faults.is_faulty(*c));
    if !blocked {
        // Straight delivery: the farthest node is at one of the two ends.
        let (a, b) = section.end_nodes();
        let hops = end_node.manhattan(a).max(end_node.manhattan(b));
        return Notification {
            section: *section,
            end_node,
            hops,
            detoured: false,
        };
    }

    // Blocking polygons on the section: deliver by BFS through non-faulty
    // nodes; the cost is the distance to the farthest still-reachable
    // non-faulty node of the section.
    let distances = bfs_distances(mesh, faults, end_node);
    let hops = nodes
        .iter()
        .filter(|c| !faults.is_faulty(**c))
        .filter_map(|c| distances.get(c).copied())
        .max()
        .unwrap_or(0);
    Notification {
        section: *section,
        end_node,
        hops,
        detoured: true,
    }
}

/// Breadth-first hop distances from `from` through non-faulty nodes.
fn bfs_distances(mesh: &Mesh2D, faults: &FaultSet, from: Coord) -> BTreeMap<Coord, u32> {
    let mut dist = BTreeMap::new();
    let mut seen = BTreeSet::new();
    let mut queue = VecDeque::new();
    dist.insert(from, 0);
    seen.insert(from);
    queue.push_back(from);
    while let Some(c) = queue.pop_front() {
        let d = dist[&c];
        for n in mesh.neighbors4(c) {
            if !faults.is_faulty(n) && seen.insert(n) {
                dist.insert(n, d + 1);
                queue.push_back(n);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concave::Orientation;

    #[test]
    fn straight_notification_cost_is_section_length() {
        let mesh = Mesh2D::square(10);
        let faults = FaultSet::new(mesh);
        let section = ConcaveSection {
            orientation: Orientation::Row,
            line: 4,
            start: 2,
            end: 6,
        };
        // end node at the west end of the section
        let n = plan_notification(&mesh, &faults, Coord::new(2, 4), &section);
        assert_eq!(n.hops, 4);
        assert!(!n.detoured);
        // end node adjacent to (but outside) the section still pays the
        // distance to the far end
        let n2 = plan_notification(&mesh, &faults, Coord::new(6, 4), &section);
        assert_eq!(n2.hops, 4);
    }

    #[test]
    fn single_node_section_costs_nothing_extra() {
        let mesh = Mesh2D::square(6);
        let faults = FaultSet::new(mesh);
        let section = ConcaveSection {
            orientation: Orientation::Column,
            line: 3,
            start: 3,
            end: 3,
        };
        let n = plan_notification(&mesh, &faults, Coord::new(3, 3), &section);
        assert_eq!(n.hops, 0);
        assert!(!n.detoured);
    }

    #[test]
    fn blocking_polygon_forces_a_detour() {
        // Section runs along row 5 from x=2 to x=8; a blocking component
        // occupies (4,5),(5,5),(6,5) so the message must route around it.
        let mesh = Mesh2D::square(12);
        let faults =
            FaultSet::from_coords(mesh, [Coord::new(4, 5), Coord::new(5, 5), Coord::new(6, 5)]);
        let section = ConcaveSection {
            orientation: Orientation::Row,
            line: 5,
            start: 2,
            end: 8,
        };
        let n = plan_notification(&mesh, &faults, Coord::new(2, 5), &section);
        assert!(n.detoured);
        // straight distance to (8,5) would be 6; the detour around a 3-node
        // blockage costs 2 extra hops
        assert_eq!(n.hops, 8);
    }

    #[test]
    fn fully_blocked_far_side_is_ignored() {
        // A wall of faults spanning the whole mesh cuts the section in two;
        // only the reachable side is counted.
        let mesh = Mesh2D::square(8);
        let wall: Vec<Coord> = (0..8).map(|y| Coord::new(4, y)).collect();
        let faults = FaultSet::from_coords(mesh, wall);
        let section = ConcaveSection {
            orientation: Orientation::Row,
            line: 3,
            start: 1,
            end: 6,
        };
        let n = plan_notification(&mesh, &faults, Coord::new(1, 3), &section);
        assert!(n.detoured);
        assert_eq!(n.hops, 2, "only (2,3) and (3,3) are reachable");
    }
}
