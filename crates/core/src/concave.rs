//! Centralized solution 2: concave row and column sections (Definition 3).
//!
//! > *Given a component, for a horizontal (vertical) line where two end nodes
//! > on the line are inside the component, each section of the line that is
//! > outside the component is called a concave row (column) section.*
//!
//! To find the minimum faulty polygon it suffices to disable every node on a
//! concave row or column section. Because disabling those nodes can create
//! new row/column pairs (the added nodes themselves lie between component
//! nodes), the scan is iterated until no new section appears; for 8-connected
//! components a single horizontal + vertical scan already reaches the
//! fixpoint, which the property tests confirm.

use crate::component::FaultyComponent;
use mesh2d::{Coord, Region};
use serde::{Deserialize, Serialize};

/// Whether a concave section runs along a row or a column.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Orientation {
    /// A horizontal run of non-component nodes between two component nodes of
    /// the same row.
    Row,
    /// A vertical run of non-component nodes between two component nodes of
    /// the same column.
    Column,
}

/// One maximal concave row or column section.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConcaveSection {
    /// Row or column section.
    pub orientation: Orientation,
    /// The fixed coordinate: the row (`y`) for a row section, the column
    /// (`x`) for a column section.
    pub line: i32,
    /// First varying coordinate of the section (inclusive).
    pub start: i32,
    /// Last varying coordinate of the section (inclusive).
    pub end: i32,
}

impl ConcaveSection {
    /// The nodes of the section.
    pub fn nodes(&self) -> Vec<Coord> {
        (self.start..=self.end)
            .map(|v| match self.orientation {
                Orientation::Row => Coord::new(v, self.line),
                Orientation::Column => Coord::new(self.line, v),
            })
            .collect()
    }

    /// Number of nodes in the section.
    pub fn len(&self) -> usize {
        (self.end - self.start + 1) as usize
    }

    /// Sections are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The two end nodes of the section (the positions a notification end
    /// node records in the distributed solution).
    pub fn end_nodes(&self) -> (Coord, Coord) {
        match self.orientation {
            Orientation::Row => (
                Coord::new(self.start, self.line),
                Coord::new(self.end, self.line),
            ),
            Orientation::Column => (
                Coord::new(self.line, self.start),
                Coord::new(self.line, self.end),
            ),
        }
    }
}

/// Scans a node set once and returns every concave row and column section
/// with respect to it (Definition 3, applied literally to `occupied`).
pub fn scan_sections(occupied: &Region) -> Vec<ConcaveSection> {
    let mut sections = Vec::new();
    for (&y, xs) in occupied.rows().iter() {
        for w in xs.windows(2) {
            if w[1] > w[0] + 1 {
                sections.push(ConcaveSection {
                    orientation: Orientation::Row,
                    line: y,
                    start: w[0] + 1,
                    end: w[1] - 1,
                });
            }
        }
    }
    for (&x, ys) in occupied.columns().iter() {
        for w in ys.windows(2) {
            if w[1] > w[0] + 1 {
                sections.push(ConcaveSection {
                    orientation: Orientation::Column,
                    line: x,
                    start: w[0] + 1,
                    end: w[1] - 1,
                });
            }
        }
    }
    sections
}

/// The concave row and column sections of a faulty component (first scan
/// only — exactly Definition 3 with respect to the component's faults).
pub fn concave_sections(component: &FaultyComponent) -> Vec<ConcaveSection> {
    scan_sections(component.region())
}

/// Centralized solution 2: disable every node on a concave row/column
/// section, iterating the scan until no section remains, and return the
/// resulting minimum faulty polygon (component plus disabled nodes).
#[derive(Clone, Copy, Debug, Default)]
pub struct ConcaveSectionSolver;

impl ConcaveSectionSolver {
    /// Computes the component's minimum faulty polygon and the number of scan
    /// iterations that were required (1 for every 8-connected component seen
    /// in practice; the loop guards against pathological inputs).
    pub fn solve(&self, component: &FaultyComponent) -> (Region, u32) {
        let mut polygon = component.region().clone();
        let mut iterations = 0;
        loop {
            let sections = scan_sections(&polygon);
            if sections.is_empty() {
                break;
            }
            iterations += 1;
            for s in sections {
                for c in s.nodes() {
                    polygon.insert(c);
                }
            }
        }
        (polygon, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::minimum_polygon;
    use mesh2d::Region;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn convex_component_has_no_sections() {
        let l = component(&[(2, 4), (3, 4), (4, 3)]);
        assert!(concave_sections(&l).is_empty());
        let (poly, iters) = ConcaveSectionSolver.solve(&l);
        assert_eq!(poly, l.region().clone());
        assert_eq!(iters, 0);
    }

    #[test]
    fn u_shape_has_one_column_section() {
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let sections = concave_sections(&u);
        // column 3 rows 3..4 is outside the component between (3,2) and ...
        // no component node above in column 3, so the *column* section does
        // not exist; rows 3 and 4 each have a row section at x = 3.
        let row_sections: Vec<_> = sections
            .iter()
            .filter(|s| s.orientation == Orientation::Row)
            .collect();
        assert_eq!(row_sections.len(), 2);
        for s in &row_sections {
            assert_eq!((s.start, s.end), (3, 3));
            assert_eq!(s.len(), 1);
        }
        let (poly, iters) = ConcaveSectionSolver.solve(&u);
        assert_eq!(iters, 1);
        assert_eq!(poly.len(), 9);
    }

    #[test]
    fn section_nodes_and_end_nodes() {
        let s = ConcaveSection {
            orientation: Orientation::Column,
            line: 4,
            start: 2,
            end: 5,
        };
        assert_eq!(s.len(), 4);
        assert_eq!(s.nodes().first().copied(), Some(Coord::new(4, 2)));
        assert_eq!(s.nodes().last().copied(), Some(Coord::new(4, 5)));
        assert_eq!(s.end_nodes(), (Coord::new(4, 2), Coord::new(4, 5)));
        let r = ConcaveSection {
            orientation: Orientation::Row,
            line: 1,
            start: 7,
            end: 8,
        };
        assert_eq!(r.nodes(), vec![Coord::new(7, 1), Coord::new(8, 1)]);
    }

    #[test]
    fn solver_matches_hull_specification() {
        let shapes: Vec<Vec<(i32, i32)>> = vec![
            vec![(0, 0), (1, 1), (2, 2)],
            vec![(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)],
            vec![(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)],
            vec![
                (0, 0),
                (1, 0),
                (2, 0),
                (0, 1),
                (2, 1),
                (0, 2),
                (1, 2),
                (2, 2),
            ],
            vec![(5, 5)],
            vec![(1, 3), (2, 2), (3, 3), (2, 4), (2, 3)],
        ];
        for shape in shapes {
            let comp = component(&shape);
            let (poly, _) = ConcaveSectionSolver.solve(&comp);
            assert_eq!(poly, minimum_polygon(&comp), "shape {shape:?}");
            assert!(poly.is_orthogonally_convex());
        }
    }

    #[test]
    fn ring_component_fills_hole_via_column_section() {
        let ring = component(&[
            (0, 0),
            (1, 0),
            (2, 0),
            (0, 1),
            (2, 1),
            (0, 2),
            (1, 2),
            (2, 2),
        ]);
        let sections = concave_sections(&ring);
        assert!(sections.iter().any(|s| s.orientation == Orientation::Column
            && s.line == 1
            && s.start == 1
            && s.end == 1));
        let (poly, _) = ConcaveSectionSolver.solve(&ring);
        assert_eq!(poly.len(), 9);
    }
}
