//! The minimum orthogonal convex polygon of a single component.
//!
//! For one 8-connected faulty component the minimum faulty polygon is the
//! component's orthogonal convex hull: the smallest superset whose
//! intersection with every row and every column is contiguous. Both
//! centralized solutions and the distributed protocol must produce exactly
//! this set for every component; this module is the specification they are
//! tested against.

use crate::component::FaultyComponent;
use mesh2d::{BitGrid, BitScratch, Region};

/// Size cap under which the bit-parallel hull re-verifies against the
/// scalar [`Region::orthogonal_convex_hull`] in debug builds.
const ORACLE_NODE_CAP: usize = 1024;

/// The minimum orthogonal convex polygon covering `component`: the
/// component's faults plus every node forced by Definition 1.
///
/// Computed by the bit-parallel hull fixpoint (per-row occupied spans from
/// leading/trailing-zero counts, word-parallel column fills); the scalar
/// specification — iterated row/column gap filling on a [`Region`]
/// ([`Region::orthogonal_convex_hull`]) — remains the oracle this and the
/// production solvers in [`centralized`](crate::centralized),
/// [`concave`](crate::concave) and [`distributed`](crate::distributed)
/// are verified against.
pub fn minimum_polygon(component: &FaultyComponent) -> Region {
    let mut bits = BitGrid::from_region(component.region());
    bits.hull_fixpoint(&mut BitScratch::new());
    let hull = bits.to_region();
    debug_assert!(
        component.len() > ORACLE_NODE_CAP || hull == component.region().orthogonal_convex_hull(),
        "bit-parallel minimum polygon diverged from the scalar hull"
    );
    hull
}

/// Number of non-faulty nodes the minimum polygon of `component` contains.
pub fn added_node_count(component: &FaultyComponent) -> usize {
    minimum_polygon(component).len() - component.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh2d::{Coord, Rect};

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn convex_component_needs_no_additions() {
        let l = component(&[(2, 4), (3, 4), (4, 3)]);
        assert_eq!(minimum_polygon(&l), l.region().clone());
        assert_eq!(added_node_count(&l), 0);
    }

    #[test]
    fn u_shape_needs_exactly_the_notch() {
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let poly = minimum_polygon(&u);
        assert_eq!(added_node_count(&u), 2);
        assert!(poly.contains(Coord::new(3, 3)));
        assert!(poly.contains(Coord::new(3, 4)));
        assert!(poly.is_orthogonally_convex());
    }

    #[test]
    fn staircase_is_already_minimum() {
        let s = component(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(added_node_count(&s), 0);
    }

    #[test]
    fn polygon_is_contained_in_virtual_block() {
        let c = component(&[(1, 1), (2, 2), (3, 1), (4, 2), (5, 1)]);
        let poly = minimum_polygon(&c);
        let block = Region::from_rect(c.virtual_block());
        assert!(poly.is_subset(&block));
        assert!(c.region().is_subset(&poly));
    }

    #[test]
    fn hole_in_component_is_filled() {
        // A 3x3 ring of faults with a hole in the middle: the closed concave
        // region must be filled by the minimum polygon.
        let ring = component(&[
            (0, 0),
            (1, 0),
            (2, 0),
            (0, 1),
            (2, 1),
            (0, 2),
            (1, 2),
            (2, 2),
        ]);
        let poly = minimum_polygon(&ring);
        assert!(poly.contains(Coord::new(1, 1)));
        assert_eq!(added_node_count(&ring), 1);
        assert_eq!(
            poly,
            Region::from_rect(Rect::new(Coord::new(0, 0), Coord::new(2, 2)))
        );
    }

    #[test]
    fn polygon_never_smaller_than_component() {
        let c = component(&[(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)]);
        let poly = minimum_polygon(&c);
        assert!(poly.len() >= c.len());
        assert!(poly.is_orthogonally_convex());
    }
}
