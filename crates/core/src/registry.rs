//! Registry constructors exposing every model this workspace implements.

use crate::analysis::CentralizedMfpModel;
use crate::distributed::protocol::DistributedMfpModel;
use fblock::ModelRegistry;

/// The registry of the paper's four fault models, in presentation order:
/// FB and FP (from `fblock`) plus CMFP and DMFP (from this crate). This
/// is the single constructor the experiment harness, benches, examples
/// and tests resolve models through.
pub fn standard_registry() -> ModelRegistry {
    let mut registry = fblock::baseline_registry();
    registry.register(
        "CMFP",
        "centralized minimum faulty polygon (solution 1: virtual faulty blocks)",
        || Box::new(CentralizedMfpModel::virtual_block()),
    );
    registry.register(
        "DMFP",
        "distributed minimum faulty polygon (boundary rings + concave sections)",
        || Box::new(DistributedMfpModel),
    );
    registry
}

/// [`standard_registry`] extended with internal formulation variants used
/// by the ablation benches: `CMFP-concave` runs centralized solution 2
/// (concave row/column sections) which produces the same polygons as
/// `CMFP` through a different algorithm.
pub fn ablation_registry() -> ModelRegistry {
    let mut registry = standard_registry();
    registry.register(
        "CMFP-concave",
        "centralized minimum faulty polygon (solution 2: concave sections)",
        || Box::new(CentralizedMfpModel::concave_sections()),
    );
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_registry_has_the_paper_models_in_order() {
        let registry = standard_registry();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            ["FB", "FP", "CMFP", "DMFP"]
        );
    }

    #[test]
    fn ablation_registry_adds_the_concave_variant() {
        let registry = ablation_registry();
        assert!(registry.contains("CMFP-concave"));
        assert_eq!(registry.len(), 5);
    }

    #[test]
    fn registry_models_agree_with_direct_construction() {
        use fblock::FaultModel as _;
        use mesh2d::{Coord, FaultSet, Mesh2D};

        let mesh = Mesh2D::square(10);
        let faults = FaultSet::from_coords(
            mesh,
            [(2, 2), (3, 2), (4, 2), (2, 3), (4, 3)].map(|(x, y)| Coord::new(x, y)),
        );
        let registry = ablation_registry();
        let direct = CentralizedMfpModel::virtual_block().construct(&mesh, &faults);
        let via_registry = registry.construct("CMFP", &mesh, &faults).unwrap();
        assert_eq!(direct.status, via_registry.status);
        let concave = registry.construct("CMFP-concave", &mesh, &faults).unwrap();
        assert_eq!(direct.status, concave.status);
    }
}
