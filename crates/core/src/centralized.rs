//! Centralized solution 1: emulate labelling schemes 1 and 2 on each
//! component's virtual faulty block.
//!
//! For every faulty component the merge process recorded the corners of its
//! virtual faulty block `[(min_x, min_y), (max_x, max_y)]`. Labelling
//! scheme 1, applied to the component alone, grows exactly this rectangle;
//! labelling scheme 2 then re-enables the unsafe non-faulty nodes that have
//! two or more enabled neighbors. The nodes that remain disabled form the
//! component's minimum faulty polygon.
//!
//! To keep the construction cheap on large meshes (the paper's simulation
//! uses a 100×100 mesh with up to 800 faults), the emulation runs on a small
//! window — the virtual block plus a one-node margin — rather than on the
//! whole network. The margin is required because scheme 2 counts enabled
//! neighbors *outside* the block. The margin is **not** clipped at the mesh
//! border: the minimum faulty polygon is a geometric notion (the component's
//! orthogonal convex hull), so the shrinking phase treats the mesh as if it
//! extended past its border; otherwise a component hugging the border would
//! keep extra healthy nodes disabled merely because border nodes have fewer
//! neighbors, and the centralized solutions, the distributed protocol and
//! the specification would disagree on border components.

use crate::component::FaultyComponent;
use distsim::RoundStats;
use fblock::scheme1::label_safety;
use fblock::scheme2::label_activation;
use mesh2d::{Activation, Coord, FaultSet, Mesh2D, Rect, Region};

/// Centralized solution 1 (virtual faulty block + labelling schemes 1 and 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualBlockSolver;

/// The result of solving one component.
#[derive(Clone, Debug)]
pub struct ComponentSolution {
    /// The component's minimum faulty polygon (faults plus forced non-faulty
    /// nodes), in mesh coordinates.
    pub polygon: Region,
    /// Rounds of neighbor information exchange the per-component emulation
    /// of labelling schemes 1 and 2 needed (the CMFP contribution to
    /// Figure 11).
    pub rounds: RoundStats,
}

impl VirtualBlockSolver {
    /// Solves a single component.
    pub fn solve(&self, _mesh: &Mesh2D, component: &FaultyComponent) -> ComponentSolution {
        let window = window_around(component.virtual_block());
        let offset = window.min();
        let window_mesh = Mesh2D::mesh(window.width(), window.height());

        // Translate the component's faults into window coordinates.
        let local_faults = FaultSet::from_coords(
            window_mesh,
            component
                .iter()
                .map(|c| Coord::new(c.x - offset.x, c.y - offset.y)),
        );

        // Labelling scheme 1 grows the component into its virtual faulty
        // block; labelling scheme 2 shrinks it to the minimum polygon.
        let (safety, rounds1) = label_safety(&window_mesh, &local_faults);
        let (activation, rounds2) = label_activation(&window_mesh, &local_faults, &safety);

        let polygon = Region::from_coords(
            activation
                .coords_where(|&a| a == Activation::Disabled)
                .map(|c| Coord::new(c.x + offset.x, c.y + offset.y)),
        );
        ComponentSolution {
            polygon,
            rounds: rounds1.then(rounds2),
        }
    }
}

/// The virtual block expanded by a one-node margin in every direction.
fn window_around(block: Rect) -> Rect {
    Rect::new(
        Coord::new(block.min().x - 1, block.min().y - 1),
        Coord::new(block.max().x + 1, block.max().y + 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hull::minimum_polygon;

    fn component(list: &[(i32, i32)]) -> FaultyComponent {
        FaultyComponent::new(Region::from_coords(
            list.iter().map(|&(x, y)| Coord::new(x, y)),
        ))
    }

    #[test]
    fn u_shape_polygon_matches_hull() {
        let mesh = Mesh2D::square(10);
        let u = component(&[(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)]);
        let sol = VirtualBlockSolver.solve(&mesh, &u);
        assert_eq!(sol.polygon, minimum_polygon(&u));
        assert!(sol.rounds.rounds > 0);
        assert!(sol.rounds.converged);
    }

    #[test]
    fn staircase_polygon_is_the_component() {
        let mesh = Mesh2D::square(10);
        let s = component(&[(2, 2), (3, 3), (4, 4)]);
        let sol = VirtualBlockSolver.solve(&mesh, &s);
        assert_eq!(sol.polygon, s.region().clone());
    }

    #[test]
    fn component_touching_mesh_border_is_handled() {
        // Components hugging the mesh corner still shrink to their geometric
        // hull — the emulation's window extends past the border so that the
        // shrinking rule is not starved of enabled neighbors there.
        let mesh = Mesh2D::square(6);
        let corner = component(&[(0, 0), (1, 1), (0, 2)]);
        let sol = VirtualBlockSolver.solve(&mesh, &corner);
        assert_eq!(sol.polygon, minimum_polygon(&corner));
        for c in sol.polygon.iter() {
            assert!(mesh.contains(c), "the hull never leaves the bounding box");
        }
    }

    #[test]
    fn window_adds_a_margin_on_every_side() {
        let w = window_around(Rect::new(Coord::new(0, 0), Coord::new(5, 5)));
        assert_eq!(w, Rect::new(Coord::new(-1, -1), Coord::new(6, 6)));
        let w2 = window_around(Rect::new(Coord::new(2, 2), Coord::new(3, 3)));
        assert_eq!(w2, Rect::new(Coord::new(1, 1), Coord::new(4, 4)));
    }

    #[test]
    fn solution_equals_specification_on_many_shapes() {
        let mesh = Mesh2D::square(16);
        let shapes: Vec<Vec<(i32, i32)>> = vec![
            vec![(5, 5)],
            vec![(3, 3), (4, 4), (5, 5), (6, 6)],
            vec![(2, 2), (3, 2), (4, 2), (2, 3), (4, 3), (2, 4), (4, 4)],
            vec![(0, 2), (1, 1), (2, 0), (3, 1), (4, 2)],
            vec![
                (8, 8),
                (9, 8),
                (10, 8),
                (8, 9),
                (10, 9),
                (8, 10),
                (9, 10),
                (10, 10),
            ],
            vec![
                (0, 0),
                (1, 1),
                (0, 2),
                (1, 3),
                (2, 2),
                (3, 3),
                (4, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ],
        ];
        for shape in shapes {
            let comp = component(&shape);
            let sol = VirtualBlockSolver.solve(&mesh, &comp);
            assert_eq!(sol.polygon, minimum_polygon(&comp), "shape {shape:?}");
        }
    }

    #[test]
    fn rounds_scale_with_component_extent() {
        let mesh = Mesh2D::square(30);
        let small = component(&[(2, 2), (3, 3)]);
        let long: Vec<(i32, i32)> = (0..12).map(|i| (i + 2, i + 2)).collect();
        let large = component(&long);
        let r_small = VirtualBlockSolver.solve(&mesh, &small).rounds;
        let r_large = VirtualBlockSolver.solve(&mesh, &large).rounds;
        assert!(r_large.rounds > r_small.rounds);
    }
}
