//! Live gap-recovering rerouting against a real `mocp_serve` service:
//! lossless tracking, forced drops with snapshot resync, and convergence
//! under churn plus an injected worker kill.

use std::time::{Duration, Instant};

use mesh2d::{Coord, FaultEvent, Mesh2D};
use meshroute::PairSample;
use mocp_serve::chaos::install_quiet_panic_hook;
use mocp_serve::{ChaosPlan, KillMode, KillSpec, MonitorService, ServeConfig, TenantHealth};
use mocp_traffic::LiveReroute;

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_micros(200));
    }
}

/// The subscriber's mirror equals the tenant's live state and the routes
/// equal the from-scratch oracle over it.
fn assert_converged(live: &mut LiveReroute, service: &MonitorService) {
    live.sync(service);
    let snap = service.status_snapshot(live.tenant()).unwrap();
    assert_eq!(*live.index().status(), snap.status, "mirror == service");
    assert!(live.index().matches_from_scratch(), "routes == oracle");
}

#[test]
fn roomy_subscription_tracks_without_gaps() {
    let service = MonitorService::start(ServeConfig::default().with_workers(1).with_shards(2));
    let mesh = Mesh2D::square(16);
    assert!(service.create_tenant(1, mesh));
    let sample = PairSample::random(&mesh, 60, 11);
    let mut live = LiveReroute::attach(&service, 1, &mesh, &sample, 64).unwrap();

    for i in 0..6i32 {
        service
            .submit(1, vec![FaultEvent::Inject(Coord::new(2 + i, 7))])
            .unwrap();
    }
    service.quiesce();
    let drained = live.pump(&service);
    assert_eq!(drained, 6, "roomy buffer dropped nothing");
    assert_eq!(live.gaps(), 0);
    assert_eq!(live.resyncs(), 0);
    assert!(
        live.sync(&service),
        "the pumped stream alone converged — no repair"
    );
    assert_converged(&mut live, &service);
    service.shutdown();
}

#[test]
fn dropped_updates_are_detected_as_gaps_and_resynced() {
    let service = MonitorService::start(ServeConfig::default().with_workers(1).with_shards(2));
    let mesh = Mesh2D::square(16);
    assert!(service.create_tenant(1, mesh));
    let sample = PairSample::random(&mesh, 60, 12);
    // Capacity 1: while the subscriber is not pumping, every fan-out
    // beyond the first is dropped on the floor.
    let mut live = LiveReroute::attach(&service, 1, &mesh, &sample, 1).unwrap();

    for i in 0..8i32 {
        service
            .submit(1, vec![FaultEvent::Inject(Coord::new(2 + i, 2 + i))])
            .unwrap();
    }
    service.quiesce();
    let drained = live.pump(&service);
    assert_eq!(drained, 1, "capacity-1 buffer kept exactly one update");
    // The survivor was update seq 1 (applied in order, no gap yet); the
    // seven dropped updates surface as divergence at sync time...
    assert_converged(&mut live, &service);
    assert!(live.resyncs() >= 1, "a snapshot repair ran");

    // ...and a drop *in front of* a surviving update surfaces as a hard
    // seq gap on the pump path itself: fill the buffer (seq k kept,
    // seq k+1 dropped), drain it, then let seq k+2 arrive.
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(12, 2))])
        .unwrap();
    service.quiesce();
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(12, 3))])
        .unwrap();
    service.quiesce();
    live.pump(&service); // applies seq k; seq k+1 is already lost
    service
        .submit(1, vec![FaultEvent::Inject(Coord::new(12, 4))])
        .unwrap();
    service.quiesce();
    live.pump(&service); // sees seq k+2 — a discontinuity
    assert!(live.gaps() >= 1, "gap detected from seq discontinuity");
    assert_converged(&mut live, &service);
    service.shutdown();
}

#[test]
fn churn_with_worker_kill_and_drops_matches_oracle() {
    install_quiet_panic_hook();
    let plan = ChaosPlan {
        kills: vec![KillSpec {
            after_batches: 5,
            mode: KillMode::MidApply { after_events: 1 },
        }],
    };
    let service = MonitorService::start_with_chaos(
        ServeConfig::default()
            .with_workers(1)
            .with_shards(2)
            .with_snapshot_every(2),
        plan,
    );
    let mesh = Mesh2D::square(20);
    assert!(service.create_tenant(1, mesh));
    let sample = PairSample::random(&mesh, 60, 13);
    let mut live = LiveReroute::attach(&service, 1, &mesh, &sample, 2).unwrap();

    // Fault/repair churn: batch 5 dies mid-apply and is replayed from the
    // WAL; the capacity-2 subscription drops most of the rest.
    let churn: Vec<Vec<FaultEvent>> = (0..10i32)
        .map(|i| {
            let c = Coord::new(3 + i, 9);
            if i % 3 == 2 {
                vec![FaultEvent::Repair(Coord::new(3 + i - 1, 9))]
            } else {
                vec![
                    FaultEvent::Inject(c),
                    FaultEvent::Inject(Coord::new(3 + i, 10)),
                ]
            }
        })
        .collect();
    for batch in churn {
        service.submit(1, batch).unwrap();
    }
    service.quiesce();
    wait_until("tenant live after recovery", || {
        service.health(1) == Some(TenantHealth::Live)
    });
    assert!(service.chaos().kills_fired() >= 1, "the kill fired");

    live.pump(&service);
    assert_converged(&mut live, &service);
    assert!(
        live.gaps() + live.resyncs() >= 1,
        "drops or recovery forced at least one repair"
    );
    let report = service.shutdown();
    assert_eq!(report.panicked_workers, 1);
}
