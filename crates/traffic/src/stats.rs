//! Aggregate statistics of one traffic run.
//!
//! Everything here is a deterministic function of the simulated message
//! stream, so two runs with the same configuration produce bit-identical
//! reports — the property the golden-fixture and thread-determinism tests
//! pin.

use serde::{Deserialize, Serialize};

/// Latency distribution over delivered messages (cycles from injection to
/// arrival, source queueing included). Percentiles are nearest-rank over
/// the exact latency population, not an approximation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Mean latency in cycles.
    pub mean: f64,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Worst delivered latency.
    pub max: u64,
}

impl LatencySummary {
    /// Summarises a latency population (consumed and sorted in place).
    pub fn from_latencies(latencies: &mut [u64]) -> Self {
        if latencies.is_empty() {
            return LatencySummary::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        let rank = |pct: u64| latencies[((n as u64 * pct).div_ceil(100) as usize).max(1) - 1];
        LatencySummary {
            mean: latencies.iter().sum::<u64>() as f64 / n as f64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: latencies[n - 1],
        }
    }
}

/// Occupancy of one virtual channel across the whole run: how many
/// messages sat in that channel's link buffers, sampled once per cycle.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VcOccupancy {
    /// Mean buffered messages per cycle.
    pub mean: f64,
    /// Peak buffered messages in any cycle.
    pub max: u64,
    /// Power-of-two occupancy histogram: bucket 0 counts cycles with zero
    /// buffered messages, bucket `i > 0` counts cycles with occupancy in
    /// `[2^(i-1), 2^i)`.
    pub histogram: Vec<u64>,
}

impl VcOccupancy {
    /// Records one per-cycle occupancy sample.
    pub fn record(&mut self, occupancy: u64) {
        let bucket = if occupancy == 0 {
            0
        } else {
            64 - occupancy.leading_zeros() as usize
        };
        if self.histogram.len() <= bucket {
            self.histogram.resize(bucket + 1, 0);
        }
        self.histogram[bucket] += 1;
        self.max = self.max.max(occupancy);
        // mean is finalised by `finish`; stash the running sum in `mean`.
        self.mean += occupancy as f64;
    }

    /// Converts the running sum into the per-cycle mean.
    pub fn finish(&mut self, cycles: u64) {
        if cycles > 0 {
            self.mean /= cycles as f64;
        }
    }

    /// Lower bound of histogram bucket `i` (`0, 1, 2, 4, 8, …`).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }
}

/// Reachability of a shared pair sample under the run's status map —
/// the static counterpart of the dynamic delivery statistics, measured
/// with the extended e-cube router directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ReachableStats {
    /// Pairs probed.
    pub sampled: usize,
    /// Pairs with a route through enabled nodes.
    pub reachable: usize,
    /// Pairs rejected because an endpoint is faulty or disabled.
    pub endpoint_excluded: usize,
    /// Pairs with both endpoints enabled but no connecting path.
    pub unreachable: usize,
}

impl ReachableStats {
    /// Fraction of probed pairs that were routable.
    pub fn fraction(&self) -> f64 {
        if self.sampled == 0 {
            1.0
        } else {
            self.reachable as f64 / self.sampled as f64
        }
    }
}

/// The full report of one simulated traffic run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Pattern that generated the messages.
    pub pattern: String,
    /// Messages drawn from the pattern.
    pub offered: usize,
    /// Messages whose endpoints were both enabled (entered the network or
    /// its source queues).
    pub injected: usize,
    /// Messages dropped at generation: an endpoint was faulty or disabled.
    pub endpoint_excluded: usize,
    /// Messages dropped in flight: no path of enabled nodes to the
    /// destination.
    pub unreachable: usize,
    /// Messages that reached their destination.
    pub delivered: usize,
    /// Messages still queued or in flight when the cycle horizon hit
    /// (non-zero means the run saturated — expected under heavy hotspot).
    pub stranded: usize,
    /// Cycles simulated.
    pub cycles: u64,
    /// Links traversed by all messages (delivered or not).
    pub total_hops: u64,
    /// Hops taken in the abnormal (around-region) mode.
    pub abnormal_hops: u64,
    /// Detours entered (one per region circumnavigation).
    pub detours: u64,
    /// Mean hops / Manhattan distance over delivered messages.
    pub avg_stretch: f64,
    /// Latency distribution over delivered messages.
    pub latency: LatencySummary,
    /// Per-virtual-channel buffer occupancy (vc0..vc3, the EW/WE/NS/SN
    /// message classes).
    pub vc: [VcOccupancy; 4],
    /// Reachable-pair probe over the shared sampler.
    pub reachable: ReachableStats,
}

impl TrafficReport {
    /// Delivered fraction of injected messages.
    pub fn delivered_fraction(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.delivered as f64 / self.injected as f64
        }
    }

    /// Delivered messages per cycle.
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_nearest_rank() {
        let mut lat: Vec<u64> = (1..=100).collect();
        let s = LatencySummary::from_latencies(&mut lat);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p90, 90);
        assert_eq!(s.p99, 99);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(
            LatencySummary::from_latencies(&mut []),
            LatencySummary::default()
        );
    }

    #[test]
    fn occupancy_buckets_are_powers_of_two() {
        let mut vc = VcOccupancy::default();
        for occ in [0, 0, 1, 2, 3, 4, 7, 8] {
            vc.record(occ);
        }
        vc.finish(8);
        assert_eq!(vc.histogram, vec![2, 1, 2, 2, 1]);
        assert_eq!(vc.max, 8);
        assert!((vc.mean - 25.0 / 8.0).abs() < 1e-12);
        assert_eq!(VcOccupancy::bucket_floor(0), 0);
        assert_eq!(VcOccupancy::bucket_floor(3), 4);
    }
}
