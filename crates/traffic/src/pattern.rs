//! Seeded, deterministic traffic pattern generators.
//!
//! A [`TrafficPattern`] is a stream of `(source, destination)` pairs drawn
//! from one seeded generator: the same seed always produces the same
//! message population, on any thread count, which is what makes the
//! simulator's CSV byte-identical across parallel sweeps. The three
//! classic mesh workloads are provided:
//!
//! * [`Uniform`] — both endpoints uniformly random (the paper-benchmark
//!   baseline; load spreads evenly, detours dominate latency);
//! * [`Transpose`] — `(x, y)` sends to `(y, x)` (adversarial for
//!   dimension-order routing: every message turns at the diagonal);
//! * [`Hotspot`] — a configurable fraction of messages target one hot
//!   node at the mesh centre (models a shared resource; exercises the
//!   virtual-channel buffers and the round-robin arbitration).

use mesh2d::{Coord, Mesh2D};
use rand::{rngs::StdRng, Rng};

/// A deterministic generator of message endpoints.
///
/// Implementations must be pure functions of `(mesh, rng)`: all randomness
/// comes from the caller-seeded `rng`, so replaying the stream reproduces
/// the exact message population.
pub trait TrafficPattern: Send + Sync {
    /// The pattern's stable name (CLI flag value and CSV column).
    fn name(&self) -> &'static str;

    /// Draws the endpoints of the next message. Source and destination are
    /// always distinct in-mesh nodes (they may still be faulty or disabled
    /// — the simulator accounts those as excluded endpoints).
    fn pair(&self, mesh: &Mesh2D, rng: &mut StdRng) -> (Coord, Coord);
}

fn random_node(mesh: &Mesh2D, rng: &mut StdRng) -> Coord {
    Coord::new(
        rng.gen_range(0..mesh.width()),
        rng.gen_range(0..mesh.height()),
    )
}

/// Uniformly random source and destination.
#[derive(Clone, Copy, Debug, Default)]
pub struct Uniform;

impl TrafficPattern for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn pair(&self, mesh: &Mesh2D, rng: &mut StdRng) -> (Coord, Coord) {
        assert!(mesh.node_count() >= 2, "mesh too small for traffic");
        loop {
            let src = random_node(mesh, rng);
            let dst = random_node(mesh, rng);
            if src != dst {
                return (src, dst);
            }
        }
    }
}

/// Matrix-transpose traffic: `(x, y)` sends to `(y, x)`.
///
/// On non-square meshes the destination is wrapped into bounds
/// (`(y mod width, x mod height)`), which degenerates to the classic
/// transpose on the square meshes the sweeps use. Diagonal sources (which
/// would send to themselves) are redrawn.
#[derive(Clone, Copy, Debug, Default)]
pub struct Transpose;

impl TrafficPattern for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn pair(&self, mesh: &Mesh2D, rng: &mut StdRng) -> (Coord, Coord) {
        assert!(mesh.node_count() >= 2, "mesh too small for traffic");
        loop {
            let src = random_node(mesh, rng);
            let dst = Coord::new(src.y % mesh.width(), src.x % mesh.height());
            if src != dst {
                return (src, dst);
            }
        }
    }
}

/// Hotspot traffic: a fixed percentage of messages target the mesh-centre
/// node, the rest are uniform.
#[derive(Clone, Copy, Debug)]
pub struct Hotspot {
    /// Percent (0..=100) of messages whose destination is the hot node.
    pub percent: u32,
}

impl Default for Hotspot {
    fn default() -> Self {
        Hotspot { percent: 10 }
    }
}

impl Hotspot {
    /// The hot node: the mesh centre.
    pub fn hot_node(mesh: &Mesh2D) -> Coord {
        Coord::new(mesh.width() / 2, mesh.height() / 2)
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> &'static str {
        "hotspot"
    }

    fn pair(&self, mesh: &Mesh2D, rng: &mut StdRng) -> (Coord, Coord) {
        assert!(mesh.node_count() >= 2, "mesh too small for traffic");
        let hot = Self::hot_node(mesh);
        loop {
            let src = random_node(mesh, rng);
            let dst = if rng.gen_range(0..100u32) < self.percent {
                hot
            } else {
                random_node(mesh, rng)
            };
            if src != dst {
                return (src, dst);
            }
        }
    }
}

/// The built-in pattern names, in canonical sweep order.
pub const PATTERN_NAMES: [&str; 3] = ["uniform", "transpose", "hotspot"];

/// Resolves a pattern by name (`uniform`, `transpose`, `hotspot`).
pub fn pattern_by_name(name: &str) -> Option<Box<dyn TrafficPattern>> {
    match name {
        "uniform" => Some(Box::new(Uniform)),
        "transpose" => Some(Box::new(Transpose)),
        "hotspot" => Some(Box::new(Hotspot::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn draw(pattern: &dyn TrafficPattern, seed: u64, n: usize) -> Vec<(Coord, Coord)> {
        let mesh = Mesh2D::square(16);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| pattern.pair(&mesh, &mut rng)).collect()
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for name in PATTERN_NAMES {
            let p = pattern_by_name(name).unwrap();
            assert_eq!(p.name(), name);
            assert_eq!(draw(p.as_ref(), 42, 200), draw(p.as_ref(), 42, 200));
            assert_ne!(draw(p.as_ref(), 42, 200), draw(p.as_ref(), 43, 200));
        }
        assert!(pattern_by_name("nonsense").is_none());
    }

    #[test]
    fn endpoints_are_distinct_in_mesh_nodes() {
        let mesh = Mesh2D::square(16);
        for name in PATTERN_NAMES {
            let p = pattern_by_name(name).unwrap();
            for (src, dst) in draw(p.as_ref(), 7, 500) {
                assert!(mesh.contains(src) && mesh.contains(dst));
                assert_ne!(src, dst);
            }
        }
    }

    #[test]
    fn transpose_sends_across_the_diagonal() {
        for (src, dst) in draw(&Transpose, 9, 100) {
            assert_eq!((dst.x, dst.y), (src.y, src.x));
        }
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let mesh = Mesh2D::square(16);
        let hot = Hotspot::hot_node(&mesh);
        let pairs = draw(&Hotspot { percent: 30 }, 11, 2000);
        let hits = pairs.iter().filter(|&&(_, d)| d == hot).count();
        // ~30% ± sampling noise.
        assert!((400..=800).contains(&hits), "hot hits: {hits}");
    }
}
