//! Heavy-traffic network simulation over live MFP regions.
//!
//! This crate drives millions of messages through a faulty 2-D mesh whose
//! excluded regions come from any fault-model outcome (fault blocks or
//! minimal orthogonal convex polygons), and measures what the region shape
//! costs the network *dynamically*: delivered throughput, latency
//! distribution, path stretch and virtual-channel buffer pressure — the
//! operational counterpart of the static node-loss metrics the rest of the
//! workspace reports.
//!
//! The simulator is cycle-driven and flit-free: a message occupies one
//! virtual-channel buffer slot per hop, links arbitrate round-robin among
//! the four message-class channels each cycle, and routing decisions are
//! taken hop-by-hop with [`meshroute::ExtendedECube`] — so the measured
//! detours are exactly the router the workspace ships, not a model of it.
//! Everything is seeded and sequential per run: the same configuration
//! produces a bit-identical [`TrafficReport`] on any thread count.
//!
//! Modules:
//!
//! * [`pattern`] — seeded uniform / transpose / hotspot generators behind
//!   the [`TrafficPattern`] trait;
//! * [`sim`] — the cycle-driven simulator ([`simulate`], [`SimConfig`]);
//! * [`stats`] — the deterministic [`TrafficReport`] and its pieces;
//! * [`reroute`] — incremental rerouting: a [`RerouteIndex`] that consumes
//!   coalesced [`mesh2d::StatusDelta`] batches and recomputes only the
//!   routes whose dependency footprint the changed cells intersect, with a
//!   from-scratch oracle proving exact equivalence; [`LiveReroute`] runs
//!   the same index against a live `mocp_serve` tenant over a bounded,
//!   lossy subscription, detecting `seq` gaps and resynchronizing from a
//!   coherent snapshot.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pattern;
pub mod reroute;
pub mod sim;
pub mod stats;

pub use pattern::{pattern_by_name, Hotspot, TrafficPattern, Transpose, Uniform, PATTERN_NAMES};
pub use reroute::{BatchOutcome, LiveReroute, RerouteIndex, RerouteStats};
pub use sim::{simulate, SimConfig};
pub use stats::{LatencySummary, ReachableStats, TrafficReport, VcOccupancy};
